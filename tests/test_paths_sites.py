"""Tests for path generation, track metrics, and site presets."""

import numpy as np
import pytest

from repro.algorithms.base import LocationEstimate
from repro.core.geometry import Point
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.paths import (
    TrackMetrics,
    patrol_path,
    path_length,
    random_waypoint_path,
    track_errors,
)
from repro.experiments.sites import office_floor, paper_house, warehouse

BOUNDS = (0.0, 0.0, 50.0, 40.0)


class TestPaths:
    def test_random_waypoint_inside_bounds(self):
        path = random_waypoint_path(BOUNDS, n_waypoints=10, margin_ft=3.0, rng=0)
        assert len(path) == 10
        for p in path:
            assert 3.0 <= p.x <= 47.0 and 3.0 <= p.y <= 37.0

    def test_random_waypoint_reproducible(self):
        assert random_waypoint_path(BOUNDS, rng=5) == random_waypoint_path(BOUNDS, rng=5)
        assert random_waypoint_path(BOUNDS, rng=5) != random_waypoint_path(BOUNDS, rng=6)

    def test_random_waypoint_validation(self):
        with pytest.raises(ValueError):
            random_waypoint_path(BOUNDS, n_waypoints=1)
        with pytest.raises(ValueError):
            random_waypoint_path(BOUNDS, margin_ft=100.0)

    def test_patrol_loop_closes(self):
        loop = patrol_path(BOUNDS, inset_ft=5.0)
        assert loop[0] == loop[-1]
        assert len(loop) == 5
        with pytest.raises(ValueError):
            patrol_path(BOUNDS, inset_ft=30.0)

    def test_path_length(self):
        assert path_length([Point(0, 0), Point(3, 4), Point(3, 0)]) == pytest.approx(9.0)
        assert path_length([Point(1, 1)]) == 0.0


class TestTrackErrors:
    def make(self, offsets, valid=None):
        truth = [Point(float(i), 0.0) for i in range(len(offsets))]
        ests = [
            LocationEstimate(
                position=Point(float(i) + off, 0.0),
                valid=True if valid is None else valid[i],
            )
            for i, off in enumerate(offsets)
        ]
        return truth, ests

    def test_perfect_track(self):
        truth, ests = self.make([0.0] * 10)
        m = track_errors(truth, ests, warmup=2)
        assert m.mean_error_ft == 0.0
        assert m.rmse_ft == 0.0
        assert m.n_fixes == 10
        assert m.jumpiness_ratio == pytest.approx(1.0)

    def test_constant_offset(self):
        truth, ests = self.make([3.0] * 10)
        m = track_errors(truth, ests, warmup=0)
        assert m.mean_error_ft == pytest.approx(3.0)
        assert m.median_error_ft == pytest.approx(3.0)

    def test_invalid_steps_skipped(self):
        truth, ests = self.make([0.0] * 6, valid=[True, False, True, True, False, True])
        m = track_errors(truth, ests, warmup=0)
        assert m.n_fixes == 4
        assert m.n_steps == 6

    def test_all_invalid(self):
        truth, ests = self.make([0.0] * 4, valid=[False] * 4)
        m = track_errors(truth, ests)
        assert m.mean_error_ft == float("inf")

    def test_jumpy_estimates_flagged(self):
        truth = [Point(float(i), 0.0) for i in range(10)]
        rng = np.random.default_rng(0)
        ests = [
            LocationEstimate(position=Point(float(rng.uniform(0, 50)), 0.0))
            for _ in range(10)
        ]
        m = track_errors(truth, ests, warmup=0)
        assert m.jumpiness_ratio > 3.0

    def test_length_mismatch(self):
        truth, ests = self.make([0.0] * 3)
        with pytest.raises(ValueError):
            track_errors(truth[:-1], ests)

    def test_row_format(self):
        truth, ests = self.make([1.0] * 5)
        row = track_errors(truth, ests, warmup=0).row("kalman")
        assert "kalman" in row and "mean=" in row


class TestSitePresets:
    def test_paper_house_is_default_geometry(self):
        site = paper_house(dwell_s=10.0)
        assert site.config.width_ft == 50.0
        assert len(site.aps) == 4

    def test_office_layout(self):
        site = office_floor(dwell_s=5.0)
        assert site.config.width_ft == 120.0
        assert len(site.aps) == 8
        # APs sit near the corridor center line.
        for ap in site.aps:
            assert abs(ap.position.y - 40.0) <= 6.5
        assert len(site.environment.walls) > 10

    def test_warehouse_layout(self):
        site = warehouse(dwell_s=5.0)
        assert site.config.grid_step_ft == 20.0
        materials = {w.material.name for w in site.environment.walls}
        assert materials == {"metal"}

    def test_custom_walls_and_aps_via_house(self):
        from repro.radio.environment import Wall

        site = ExperimentHouse(
            HouseConfig(n_aps=3, dwell_s=5.0),
            walls=[Wall.of(10, 0, 10, 40, "brick")],
            ap_positions=[Point(0, 0), Point(50, 0), Point(25, 40)],
        )
        assert len(site.environment.walls) == 1
        assert [tuple(a.position) for a in site.aps] == [(0, 0), (50, 0), (25, 40)]

    def test_ap_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ExperimentHouse(HouseConfig(n_aps=4), ap_positions=[Point(0, 0)])

    def test_office_protocol_runs(self):
        from repro.experiments.runner import run_protocol

        site = office_floor(dwell_s=5.0, n_test_points=5)
        r = run_protocol("probabilistic", house=site, rng=0)
        assert r.metrics.n_observations == 5
        assert np.isfinite(r.metrics.mean_deviation_ft)

    def test_blueprint_spec_follows_custom_walls(self):
        site = office_floor(dwell_s=5.0)
        spec = site.blueprint_spec()
        assert spec.width_ft == 120.0
        assert len(spec.interior_walls) == len(site.environment.walls)
        assert spec.labels == []  # custom geometry: no house room labels

    def test_floor_plan_renders_for_presets(self):
        site = warehouse(dwell_s=5.0)
        plan = site.floor_plan(pixels_per_foot=2.0)
        assert plan.has_scale and plan.has_origin
        assert len(plan.access_points) == 6
