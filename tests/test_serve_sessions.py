"""The serving-side tracking engine: store lifecycle, batched stepping.

Everything here is tier-1 — no sockets.  The store tests drive time
with :class:`ManualClock`; the concurrency test races real threads but
synchronizes on futures, not sleeps.  The HTTP surface over this
engine is covered in ``test_serve_http.py`` (service tier).
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms.base import Observation
from repro.algorithms.knn import KNNLocalizer
from repro.core.geometry import Point
from repro.serve import (
    BadTimestampError,
    BatchFailure,
    ManualClock,
    QueueFullError,
    SessionClosedError,
    SessionStore,
    TrackingSessions,
    UnknownSessionError,
    canonical_json,
    track_estimate_to_json,
)
from repro.serve.sessions import _StepJob

# Shared synthetic-site builders (also used by the registry suite).
from tests.siteutils import (
    GRID_AP_POSITIONS as AP_POS,
    GRID_BSSIDS as B,
    make_grid_db as grid_db,
    rssi_at,
    straight_path,
    walk_observations,
)


class _Model:
    """Stand-in for LocalizationService._Model: just the three fields
    the tracking factory reads."""

    def __init__(self, localizer, db, generation):
        self.localizer = localizer
        self.db = db
        self.generation = generation


class _FakeService:
    def __init__(self, localizer, db):
        self._model = _Model(localizer, db, 1)

    def model(self):
        return self._model

    def bump(self, localizer=None, db=None):
        """Simulate a hot reload: new generation, optionally new chain/db."""
        m = self._model
        self._model = _Model(
            localizer if localizer is not None else m.localizer,
            db if db is not None else m.db,
            m.generation + 1,
        )


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(scope="module")
def db():
    return grid_db()


@pytest.fixture(scope="module")
def localizer(db):
    return KNNLocalizer(k=3).fit(db)


@pytest.fixture()
def service(localizer, db):
    return _FakeService(localizer, db)


def fresh_store(capacity=3, ttl_s=10.0):
    clock = ManualClock()
    store = SessionStore(lambda: None, capacity=capacity, ttl_s=ttl_s, clock=clock)
    return store, clock


class TestSessionStore:
    def test_obtain_creates_then_reuses(self):
        store, _ = fresh_store()
        a, created = store.obtain("dev-1")
        b, created_again = store.obtain("dev-1")
        assert created is True and created_again is False
        assert a is b
        assert store.active() == 1
        assert obs.snapshot()["counters"]["serve.sessions.created"] == 1

    def test_ttl_expiry_makes_session_unreachable(self):
        store, clock = fresh_store(ttl_s=10.0)
        sess, _ = store.obtain("dev-1")
        clock.advance(10.0)
        with pytest.raises(UnknownSessionError):
            store.get("dev-1")
        assert sess.closed and sess.close_reason == "expired"
        assert store.active() == 0
        assert obs.snapshot()["counters"]["serve.sessions.expired"] == 1

    def test_touch_refreshes_ttl(self):
        store, clock = fresh_store(ttl_s=10.0)
        store.obtain("dev-1")
        clock.advance(6.0)
        store.get("dev-1")  # touch
        clock.advance(6.0)  # 12s since create, 6s since touch
        assert store.get("dev-1") is not None

    def test_lru_eviction_never_exceeds_capacity(self):
        store, _ = fresh_store(capacity=3)
        first, _ = store.obtain("a")
        for sid in ("b", "c", "d"):
            store.obtain(sid)
        assert store.active() == 3
        assert first.closed and first.close_reason == "evicted"
        with pytest.raises(UnknownSessionError):
            store.get("a")
        assert obs.snapshot()["counters"]["serve.sessions.evicted"] == 1

    def test_lru_eviction_respects_recency(self):
        store, _ = fresh_store(capacity=3)
        for sid in ("a", "b", "c"):
            store.obtain(sid)
        store.get("a")  # a is now most recent; b is the LRU victim
        store.obtain("d")
        with pytest.raises(UnknownSessionError):
            store.get("b")
        assert store.get("a") is not None

    def test_close_is_exactly_once(self):
        store, _ = fresh_store()
        sess, _ = store.obtain("dev-1")
        closed = store.close("dev-1")
        assert closed is sess and sess.closed
        with pytest.raises(UnknownSessionError):
            store.close("dev-1")
        # Even a direct second close on the session object is a no-op.
        assert sess.close("again") is False
        assert sess.close_reason == "closed"

    def test_occupancy_sweeps_expired(self):
        store, clock = fresh_store(ttl_s=10.0)
        store.obtain("dev-1")
        assert store.occupancy() == {"active": 1, "capacity": 3, "ttl_s": 10.0}
        clock.advance(10.0)
        assert store.occupancy()["active"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SessionStore(lambda: None, capacity=0)
        with pytest.raises(ValueError):
            SessionStore(lambda: None, ttl_s=0.0)


class _ShadowStore:
    """Reference model for the hypothesis suite: a plain recency list."""

    def __init__(self, capacity, ttl_s):
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.now = 0.0
        self.last_seen = {}  # id -> last_seen, dict order = recency order

    def _sweep(self):
        for sid in list(self.last_seen):
            if self.now - self.last_seen[sid] >= self.ttl_s:
                del self.last_seen[sid]
            else:
                break  # recency order: the rest are fresher

    def _touch(self, sid):
        del self.last_seen[sid]
        self.last_seen[sid] = self.now

    def obtain(self, sid):
        self._sweep()
        if sid in self.last_seen:
            self._touch(sid)
            return False
        while len(self.last_seen) >= self.capacity:
            del self.last_seen[next(iter(self.last_seen))]
        self.last_seen[sid] = self.now
        return True

    def get(self, sid):
        self._sweep()
        if sid not in self.last_seen:
            return False
        self._touch(sid)
        return True

    def close(self, sid):
        self._sweep()
        return self.last_seen.pop(sid, None) is not None


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("obtain"), st.sampled_from("abcde")),
        st.tuples(st.just("get"), st.sampled_from("abcde")),
        st.tuples(st.just("close"), st.sampled_from("abcde")),
        st.tuples(st.just("advance"), st.integers(min_value=1, max_value=7)),
    ),
    max_size=40,
)


class TestSessionStoreProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_store_matches_reference_model(self, ops):
        store, clock = fresh_store(capacity=3, ttl_s=10.0)
        shadow = _ShadowStore(capacity=3, ttl_s=10.0)
        seen = {}  # every session object ever handed out, by identity
        for op, arg in ops:
            if op == "advance":
                clock.advance(float(arg))
                shadow.now += float(arg)
                continue
            if op == "obtain":
                sess, created = store.obtain(arg)
                assert created == shadow.obtain(arg)
                seen[id(sess)] = sess
            elif op == "get":
                live = shadow.get(arg)
                if live:
                    seen_sess = store.get(arg)
                    assert not seen_sess.closed
                else:
                    with pytest.raises(UnknownSessionError):
                        store.get(arg)
            elif op == "close":
                if shadow.close(arg):
                    store.close(arg)
                else:
                    with pytest.raises(UnknownSessionError):
                        store.close(arg)
            # Invariants after every operation:
            assert store.active() <= 3
            assert store.active() == len(shadow.last_seen)
        # Exactly-once lifecycle: every session ever created is either
        # still live (open) or was closed exactly once — a second close
        # attempt on any of them reports "already closed".
        shadow._sweep()  # trailing advances may have expired the rest
        store.occupancy()  # expiry closes lazily: force one sweep
        live = {id(store.get(sid)) for sid in list(shadow.last_seen)}
        for key, sess in seen.items():
            assert sess.closed == (key not in live)
            if sess.closed:
                assert sess.close("double") is False


class TestTrackingSessionsEngine:
    def test_batched_steps_match_offline_tracker(self, service, localizer):
        """HTTP-path stepping (measurement split, locate_many) must be
        bit-for-bit the offline ``KalmanTracker.step`` sequence."""
        from repro.algorithms.tracking import KalmanTracker

        paths = {f"dev-{i}": straight_path(6) for i in range(3)}
        observed = {
            sid: walk_observations(path, seed=i)
            for i, (sid, path) in enumerate(paths.items())
        }
        offline = {}
        for sid, observations in observed.items():
            t = KalmanTracker(localizer)
            offline[sid] = [t.step(o) for o in observations]
        with TrackingSessions(service, kind="kalman", max_wait_ms=0.5) as engine:
            for step_i in range(6):
                futures = {
                    sid: engine.step(sid, observed[sid][step_i])[0]
                    for sid in paths
                }
                for sid, future in futures.items():
                    est, seq = future.result(timeout=30)
                    want = offline[sid][step_i]
                    assert seq == step_i + 1
                    assert est.position.x == want.position.x
                    assert est.position.y == want.position.y
                    assert est.valid == want.valid

    def test_one_locate_many_call_per_batch(self, service, db):
        calls = []

        class _SpyLocalizer:
            def __init__(self, inner):
                self.inner = inner

            def locate(self, observation):
                return self.inner.locate(observation)

            def locate_many(self, observations):
                calls.append(len(observations))
                return self.inner.locate_many(observations)

        spy = _SpyLocalizer(KNNLocalizer(k=3).fit(db))
        engine = TrackingSessions(_FakeService(spy, db), kind="kalman")
        jobs = []
        for i in range(8):
            sess, _ = engine.store.obtain(f"dev-{i}")
            jobs.append(_StepJob(sess, walk_observations([Point(10, 10)])[0], 1.0))
        results = engine._step_batch(jobs)
        assert calls == [8]  # one vectorized pass, not 8 scalar locates
        assert all(seq == 1 for _, seq in results)

    def test_closed_session_fails_its_step_only(self, service):
        engine = TrackingSessions(service, kind="kalman")
        alive, _ = engine.store.obtain("alive")
        doomed, _ = engine.store.obtain("doomed")
        engine.store.close("doomed")
        o = walk_observations([Point(10, 10)])[0]
        results = engine._step_batch([_StepJob(alive, o, 1.0), _StepJob(doomed, o, 1.0)])
        est, seq = results[0]
        assert seq == 1 and est is not None
        assert isinstance(results[1], BatchFailure)
        assert isinstance(results[1].error, SessionClosedError)
        counters = obs.snapshot()["counters"]
        assert counters["serve.track.step_errors{kind=session_closed}"] == 1

    def test_bayes_and_particle_step_serially_in_batch(self, localizer, db):
        for kind in ("bayes", "particle"):
            engine = TrackingSessions(
                _FakeService(localizer, db), kind=kind,
                tracker_kwargs={"rng": 0} if kind == "particle" else None,
            )
            sess, _ = engine.store.obtain("dev-1")
            assert sess.tracker.measurement_localizer is None
            o = walk_observations([Point(25, 20)])[0]
            results = engine._step_batch([_StepJob(sess, o, 1.0)])
            est, seq = results[0]
            assert seq == 1 and est.valid

    def test_step_validates_dt(self, service):
        engine = TrackingSessions(service)
        with pytest.raises(ValueError):
            engine.step("dev-1", walk_observations([Point(10, 10)])[0], dt_s=0.0)
        with pytest.raises(ValueError):
            TrackingSessions(service, default_dt_s=0.0)
        with pytest.raises(ValueError):
            TrackingSessions(service, kind="madgwick")

    def test_current_and_close_report_progress(self, service):
        with TrackingSessions(service, kind="kalman") as engine:
            future, created = engine.step("dev-1", walk_observations([Point(10, 10)])[0])
            assert created is True
            est, seq = future.result(timeout=30)
            assert engine.current("dev-1") == (est, 1)
            assert engine.close("dev-1") == {"steps": 1}
            with pytest.raises(UnknownSessionError):
                engine.current("dev-1")

    def test_concurrent_steps_and_close_never_lose_a_scan(self, service):
        """Race many steppers against a close: every accepted scan is
        either applied exactly once (distinct seq) or failed exactly
        once with SessionClosedError — never both, never neither."""
        engine = TrackingSessions(service, kind="kalman", max_batch=8)
        o = walk_observations([Point(10, 10)])[0]
        futures, futures_lock = [], threading.Lock()
        stop = threading.Event()

        def stepper():
            while not stop.is_set():
                try:
                    future, _ = engine.step("shared", o)
                except QueueFullError:
                    continue  # backpressure; not under test here
                with futures_lock:
                    futures.append(future)

        first, _ = engine.store.obtain("shared")
        with engine:
            threads = [threading.Thread(target=stepper) for _ in range(4)]
            for t in threads:
                t.start()
            # Wait for real progress (applied steps, not just queued
            # futures) so the close genuinely lands mid-stream.
            deadline = time.monotonic() + 30.0
            while engine.current("shared")[1] < 16:
                assert time.monotonic() < deadline, "no steps applied"
            engine.store.close("shared")
            stop.set()
            for t in threads:
                t.join(timeout=30)
        applied, failed = [], 0
        for future in futures:
            try:
                _, seq = future.result(timeout=30)
                applied.append(seq)
            except SessionClosedError:
                failed += 1
        # A stepper racing past the close may have re-created the id;
        # that second session's seqs restart at 1 and are legitimate.
        expected = list(range(1, first.steps + 1))
        try:
            reborn = engine.store.get("shared")
            if reborn is not first:
                expected += range(1, reborn.steps + 1)
        except UnknownSessionError:
            pass
        assert applied, "no step applied before the close"
        # Exactly-once application: every applied seq accounted for,
        # no scan applied twice, none silently dropped.
        assert sorted(applied) == sorted(expected)
        assert len(applied) + failed == len(futures)


class TestRebindAfterReload:
    def test_kalman_sessions_survive_reload(self, service, db):
        engine = TrackingSessions(service, kind="kalman")
        sess, _ = engine.store.obtain("dev-1")
        engine._step_batch([_StepJob(sess, walk_observations([Point(10, 10)])[0], 1.0)])
        state = sess.tracker._x.copy()
        service.bump(localizer=KNNLocalizer(k=4).fit(db))
        assert engine.rebind() == {"sessions": 1, "kept": 1, "reset": 0}
        assert sess.tracker.localizer is service.model().localizer
        assert np.array_equal(sess.tracker._x, state)

    def test_bayes_rebind_same_grid_keeps_belief(self, service):
        engine = TrackingSessions(service, kind="bayes")
        sess, _ = engine.store.obtain("dev-1")
        engine._step_batch([_StepJob(sess, walk_observations([Point(5, 5)])[0], 1.0)])
        belief = sess.tracker.belief
        service.bump()  # same db, new generation
        assert engine.rebind()["kept"] == 1
        assert np.array_equal(sess.tracker.belief, belief)

    def test_bayes_rebind_new_grid_resets(self, service):
        engine = TrackingSessions(service, kind="bayes")
        sess, _ = engine.store.obtain("dev-1")
        engine._step_batch([_StepJob(sess, walk_observations([Point(5, 5)])[0], 1.0)])
        service.bump(db=grid_db(step=25.0))
        assert engine.rebind()["reset"] == 1
        assert np.allclose(sess.tracker.belief, 1.0 / len(service.model().db))

    def test_shared_materials_cached_per_generation(self, service):
        engine = TrackingSessions(service, kind="bayes")
        a, _ = engine.store.obtain("dev-a")
        b, _ = engine.store.obtain("dev-b")
        assert a.tracker.emission is b.tracker.emission
        service.bump()
        engine.rebind()
        assert a.tracker.emission is b.tracker.emission
        assert a.tracker.emission is not None


class TestWireRoundTrip:
    def test_every_tracker_estimate_round_trips_canonically(self, service, localizer, db):
        """canonical_json over every tracker's wire doc must survive a
        strict JSON round trip byte-identically (no NaN, no numpy)."""
        for kind, kwargs in (
            ("kalman", {}),
            ("bayes", {}),
            ("particle", {"rng": 0}),
        ):
            engine = TrackingSessions(
                _FakeService(localizer, db), kind=kind, tracker_kwargs=kwargs
            )
            sess, _ = engine.store.obtain("dev-1")
            for i, o in enumerate(walk_observations(straight_path(3))):
                (est, seq), = engine._step_batch([_StepJob(sess, o, 1.0)])
                doc = track_estimate_to_json(est, "dev-1", seq, created=(i == 0))
                blob = canonical_json(doc)
                parsed = json.loads(blob, parse_constant=pytest.fail)
                assert canonical_json(parsed) == blob
                assert parsed["session"] == {
                    "id": "dev-1", "seq": i + 1, "created": i == 0,
                }
                assert "tracking" in parsed

    def test_silent_observation_round_trips(self, service):
        engine = TrackingSessions(service, kind="kalman")
        sess, _ = engine.store.obtain("dev-1")
        silent = Observation(np.full((2, 4), np.nan))
        (est, _), = engine._step_batch([_StepJob(sess, silent, 1.0)])
        blob = canonical_json(track_estimate_to_json(est, "dev-1", 1))
        assert json.loads(blob)["valid"] is False


class TestTimestamps:
    """Client ``ts`` → per-session Δt with a monotonic-regression guard."""

    def test_ts_derived_dt_matches_explicit_dt(self, service, localizer):
        from repro.algorithms.tracking import KalmanTracker

        observed = walk_observations(straight_path(4))
        # ts stream 100, 101.5, 101.75, 104.75 → dts 1.0 (default), 1.5,
        # 0.25, 3.0 — the offline tracker stepped with those exact dts
        # must agree bit-for-bit.
        dts = [1.0, 1.5, 0.25, 3.0]
        offline = KalmanTracker(localizer)
        want = [offline.step(o, dt) for o, dt in zip(observed, dts)]
        with TrackingSessions(service, kind="kalman", max_wait_ms=0.5) as engine:
            for o, ts, w in zip(observed, [100.0, 101.5, 101.75, 104.75], want):
                future, _ = engine.step("dev-1", o, ts=ts)
                est, _ = future.result(timeout=30)
                assert est.position.x == w.position.x
                assert est.position.y == w.position.y
                assert est.valid == w.valid

    def test_small_rewind_clamps_and_keeps_high_water_mark(self, service):
        engine = TrackingSessions(service, kind="kalman")
        sess, _ = engine.store.obtain("dev-1")
        o = walk_observations([Point(10, 10)])[0]
        engine._step_batch([_StepJob(sess, o, None, 100.0)])
        (est, seq), = engine._step_batch([_StepJob(sess, o, None, 99.9)])
        assert seq == 2 and est is not None  # accepted, dt clamped
        assert sess.last_ts == 100.0  # a rewind never moves the mark back
        counters = obs.snapshot()["counters"]
        assert counters["tracking.bad_timestamps{kind=clamped}"] == 1
        engine._step_batch([_StepJob(sess, o, None, 100.5)])
        assert sess.last_ts == 100.5

    def test_large_rewind_rejected_session_survives(self, service):
        engine = TrackingSessions(service, kind="kalman")  # rewind limit 60s
        sess, _ = engine.store.obtain("dev-1")
        o = walk_observations([Point(10, 10)])[0]
        engine._step_batch([_StepJob(sess, o, None, 1000.0)])
        result, = engine._step_batch([_StepJob(sess, o, None, 900.0)])
        assert isinstance(result, BatchFailure)
        assert isinstance(result.error, BadTimestampError)
        assert result.error.ts == 900.0 and result.error.last_ts == 1000.0
        assert sess.steps == 1 and sess.last_ts == 1000.0  # scan not applied
        counters = obs.snapshot()["counters"]
        assert counters["tracking.bad_timestamps{kind=rejected}"] == 1
        # One lying clock reading poisons nothing: the next sane scan lands.
        (_, seq), = engine._step_batch([_StepJob(sess, o, None, 1001.0)])
        assert seq == 2

    def test_explicit_dt_wins_but_guard_still_applies(self, service):
        engine = TrackingSessions(service, kind="kalman")
        sess, _ = engine.store.obtain("dev-1")
        o = walk_observations([Point(10, 10)])[0]
        engine._step_batch([_StepJob(sess, o, 2.0, 50.0)])
        assert sess.last_ts == 50.0  # ts advances the mark even with dt_s
        result, = engine._step_batch([_StepJob(sess, o, 1.0, -100.0)])
        assert isinstance(result, BatchFailure)
        assert isinstance(result.error, BadTimestampError)

    def test_ts_and_guard_validation(self, service):
        engine = TrackingSessions(service)
        o = walk_observations([Point(10, 10)])[0]
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                engine.step("dev-1", o, ts=bad)
        with pytest.raises(ValueError):
            TrackingSessions(service, max_ts_rewind_s=-1.0)
        with pytest.raises(ValueError):
            TrackingSessions(service, min_dt_s=0.0)


class TestBayesEmissionBatching:
    """Grouped ``log_likelihood_matrix`` stepping is bit-parity with serial."""

    def test_batched_bayes_bit_identical_to_serial(self, service, db):
        from repro.algorithms.tracking import DiscreteBayesTracker

        engine = TrackingSessions(service, kind="bayes")
        paths = {
            f"dev-{i}": walk_observations(straight_path(4), seed=10 + i)
            for i in range(4)
        }
        sessions = {sid: engine.store.obtain(sid)[0] for sid in paths}
        # All sessions of one generation share the factory's emission
        # fit; the offline reference steps serially on that same fit.
        emission = sessions["dev-0"].tracker.emission
        assert all(s.tracker.emission is emission for s in sessions.values())
        offline = {sid: DiscreteBayesTracker(emission, db) for sid in paths}
        for step_i in range(4):
            sids = list(paths)
            jobs = [_StepJob(sessions[sid], paths[sid][step_i], 1.0) for sid in sids]
            results = engine._step_batch(jobs)
            for sid, result in zip(sids, results):
                est, seq = result
                want = offline[sid].step(paths[sid][step_i], 1.0)
                assert seq == step_i + 1
                assert canonical_json(
                    track_estimate_to_json(est, sid, seq)
                ) == canonical_json(track_estimate_to_json(want, sid, seq))
        hist = obs.snapshot()["histograms"]["serve.track.emission_batch"]
        assert hist["count"] == 4 and hist["min"] == hist["max"] == 4.0

    def test_one_matrix_call_per_batch(self, service):
        engine = TrackingSessions(service, kind="bayes")
        sessions = [engine.store.obtain(f"dev-{i}")[0] for i in range(6)]
        emission = sessions[0].tracker.emission
        calls = []
        original = emission.log_likelihood_matrix
        emission.log_likelihood_matrix = lambda obs_list: (
            calls.append(len(obs_list)),
            original(obs_list),
        )[1]
        try:
            o = walk_observations([Point(25, 20)])[0]
            results = engine._step_batch(
                [_StepJob(sess, o, 1.0) for sess in sessions]
            )
        finally:
            del emission.log_likelihood_matrix
        assert calls == [6]  # one matrix pass, not 6 log_likelihoods calls
        assert all(seq == 1 for _, seq in results)

    def test_silent_scan_in_batch_is_predict_only(self, service):
        engine = TrackingSessions(service, kind="bayes")
        sess, _ = engine.store.obtain("dev-1")
        engine._step_batch(
            [_StepJob(sess, walk_observations([Point(25, 20)])[0], 1.0)]
        )
        silent = Observation(np.full((2, 4), np.nan))
        (est, seq), = engine._step_batch([_StepJob(sess, silent, 1.0)])
        assert seq == 2 and est.valid is False
