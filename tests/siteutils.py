"""Shared synthetic-site builders for the serving test suites.

One place to make deterministic model databases, in two sizes:

* The **grid site** — a tiny 50 ft x 40 ft synthetic floor with four
  corner APs and a log-distance path-loss field.  Small enough that a
  ``LocalizationService`` builds in milliseconds, which is what the
  registry property suite needs (it loads and evicts sites hundreds of
  times per run).  ``bias_db`` shifts the whole field so two grid
  sites with different biases give measurably different answers.
* The **grid fleet** — N grid sites written to disk as packs plus a
  ``fleet.json`` manifest, ready for a :class:`ModelRegistry`.

The house-sized two-site fleet lives in ``conftest.py`` as the
session-scoped ``site_fleet`` fixture; these helpers stay import-level
so module-scope constants (bssids, AP positions) and hypothesis
strategies can use them too.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.algorithms.base import Observation
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase

GRID_BSSIDS = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
GRID_AP_POSITIONS = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]
GRID_BOUNDS = (0.0, 0.0, 50.0, 40.0)


def rssi_at(p: Point, bias_db: float = 0.0) -> np.ndarray:
    """Noise-free log-distance RSSI vector at ``p`` (one value per AP)."""
    d = np.array([max(p.distance_to(a), 1.0) for a in GRID_AP_POSITIONS])
    return bias_db - 35.0 - 25.0 * np.log10(d)


def make_grid_db(
    step: float = 10.0,
    n_samples: int = 10,
    noise: float = 1.0,
    seed: int = 0,
    bias_db: float = 0.0,
) -> TrainingDatabase:
    """A surveyed grid over the synthetic floor (row-major, stable ids)."""
    rng = np.random.default_rng(seed)
    records = []
    y = 0.0
    while y <= 40.0:
        x = 0.0
        while x <= 50.0:
            mean = rssi_at(Point(x, y), bias_db=bias_db)
            samples = rng.normal(mean, noise, size=(n_samples, 4)).astype(np.float32)
            records.append(LocationRecord(f"g{x:g}-{y:g}", Point(x, y), samples))
            x += step
        y += step
    return TrainingDatabase(GRID_BSSIDS, records)


def walk_observations(path: Sequence[Point], noise: float = 2.0, seed: int = 1):
    rng = np.random.default_rng(seed)
    return [Observation(rng.normal(rssi_at(p), noise, size=(3, 4))) for p in path]


def straight_path(n: int = 10):
    return [Point(5 + 40 * i / (n - 1), 5 + 30 * i / (n - 1)) for i in range(n)]


def write_grid_fleet(
    root,
    n_sites: int,
    step: float = 25.0,
    n_samples: int = 4,
    algorithm: str = "knn",
    freeze: Tuple[int, ...] = (),
) -> Tuple[Dict[str, "object"], str]:
    """Write N distinct grid sites + manifest under ``root``.

    Site ``i`` surveys with seed ``i`` and a ``6 * i`` dB field bias,
    so every site is cheap to build yet answers differently.  Indexes
    in ``freeze`` are written as frozen ``.tdbx`` packs.  Returns
    ``(sites, manifest_path)``.
    """
    from repro.serve.registry import SiteDefinition, write_fleet_manifest

    sites: Dict[str, SiteDefinition] = {}
    for i in range(n_sites):
        site_id = f"g{i:02d}"
        db = make_grid_db(step=step, n_samples=n_samples, seed=i, bias_db=6.0 * i)
        if i in freeze:
            path = root / f"{site_id}.tdbx"
            db.freeze(str(path))
        else:
            path = root / f"{site_id}.tdb"
            db.save(str(path))
        sites[site_id] = SiteDefinition(
            site_id, str(path), algorithm=algorithm, bounds=GRID_BOUNDS
        )
    manifest = write_fleet_manifest(root, sites, default=sorted(sites)[0])
    return sites, manifest
