"""Tests for the observability subsystem (repro.obs) and its hookups."""

import json
import statistics

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


@pytest.fixture()
def registry():
    """A fresh default registry, restored afterwards (test isolation)."""
    previous = obs.set_registry(obs.MetricsRegistry())
    yield obs.get_registry()
    obs.set_registry(previous)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge("g")
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0


class TestHistogram:
    def test_quantiles_match_statistics_on_known_data(self):
        rng = np.random.default_rng(0)
        data = rng.lognormal(mean=1.0, sigma=0.8, size=5000)
        h = Histogram("lat")
        for v in data:
            h.observe(v)
        # statistics.quantiles with n=100 gives percentile cut points.
        cuts = statistics.quantiles(data, n=100)
        for q, exact in ((0.50, cuts[49]), (0.95, cuts[94]), (0.99, cuts[98])):
            approx = h.quantile(q)
            assert approx == pytest.approx(exact, rel=0.06), f"p{int(q*100)}"

    def test_quantile_relative_error_bound(self):
        # Uniform stream: every quantile answer must sit within one
        # bucket (growth-1 relative) of the true order statistic.
        data = np.linspace(1.0, 1000.0, 2000)
        h = Histogram("u", growth=1.04)
        for v in data:
            h.observe(v)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            exact = float(np.quantile(data, q))
            assert h.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_count_sum_min_max_mean(self):
        h = Histogram("h")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 2.0 and h.max == 6.0
        assert h.mean == 4.0

    def test_nonpositive_values_counted(self):
        h = Histogram("h")
        for v in (-1.0, 0.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 4
        assert h.min == -1.0
        assert h.quantile(0.01) == -1.0  # underflow bucket answers the min

    def test_empty_histogram(self):
        h = Histogram("h")
        assert np.isnan(h.quantile(0.5))
        assert h.summary() == {"count": 0}

    def test_bad_growth_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)


class TestRegistry:
    def test_same_name_same_metric(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a") is not r.counter("b")

    def test_labels_are_distinct_series(self):
        r = MetricsRegistry()
        r.counter("locate", algorithm="knn").inc()
        r.counter("locate", algorithm="probabilistic").inc(2)
        snap = r.snapshot()
        assert snap["counters"]["locate{algorithm=knn}"] == 1
        assert snap["counters"]["locate{algorithm=probabilistic}"] == 2

    def test_label_order_does_not_matter(self):
        r = MetricsRegistry()
        assert r.counter("x", a="1", b="2") is r.counter("x", b="2", a="1")

    def test_snapshot_is_json_serializable(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(1.5)
        r.histogram("h").observe(3.0)
        json.dumps(r.snapshot())

    def test_reset_isolates_tests(self, registry):
        obs.counter("leak").inc()
        assert obs.snapshot()["counters"]["leak"] == 1
        obs.reset()
        assert obs.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_set_registry_swaps_default(self, registry):
        obs.counter("mine").inc()
        fresh = obs.MetricsRegistry()
        previous = obs.set_registry(fresh)
        try:
            assert "mine" not in obs.snapshot()["counters"]
            obs.counter("other").inc()
            assert previous.snapshot()["counters"]["mine"] == 1
        finally:
            obs.set_registry(previous)

    def test_disabled_emission_is_noop(self, registry):
        obs.set_enabled(False)
        try:
            obs.counter("off").inc()
            obs.gauge("off").set(3)
            obs.histogram("off").observe(1.0)
        finally:
            obs.set_enabled(True)
        snap = obs.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestSpans:
    def test_no_tracer_is_passthrough(self):
        with obs.span("free"):
            pass  # must not raise, must not need a tracer

    def test_nesting_depth_and_parents(self):
        tracer = obs.Tracer()
        with tracer.activate():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        by_name = {e["name"]: e for e in tracer.events}
        assert by_name["inner"]["depth"] == 1
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] is None
        # children close first
        assert tracer.events[0]["name"] == "inner"

    def test_span_records_on_exception(self):
        tracer = obs.Tracer()
        with tracer.activate():
            with pytest.raises(KeyError):
                with obs.span("will-fail"):
                    raise KeyError("oops")
            with obs.span("after"):
                pass
        by_name = {e["name"]: e for e in tracer.events}
        assert by_name["will-fail"]["status"] == "KeyError"
        # the stack unwound: the next span is a root again
        assert by_name["after"]["depth"] == 0
        assert by_name["after"]["parent"] is None

    def test_wall_and_cpu_time_recorded(self):
        tracer = obs.Tracer()
        with tracer.activate():
            with obs.span("work"):
                sum(range(10000))
        (event,) = tracer.events
        assert event["wall_ms"] >= 0.0
        assert event["cpu_ms"] >= 0.0

    def test_attrs_carried(self):
        tracer = obs.Tracer()
        with tracer.activate():
            with obs.span("s", source="file.zip", n=3):
                pass
        assert tracer.events[0]["attrs"] == {"source": "file.zip", "n": 3}

    def test_write_jsonl(self, tmp_path):
        tracer = obs.Tracer()
        with tracer.activate():
            with obs.span("a"):
                with obs.span("b"):
                    pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 2
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["b", "a"]

    def test_activation_restores_previous(self):
        outer, inner = obs.Tracer(), obs.Tracer()
        with outer.activate():
            with inner.activate():
                assert obs.current_tracer() is inner
            assert obs.current_tracer() is outer
        assert obs.current_tracer() is None


class TestRenderText:
    def test_empty(self, registry):
        assert obs.render_text() == "no metrics recorded"

    def test_sections_present(self, registry):
        obs.counter("ingest.files_read").inc(3)
        obs.gauge("trainingdb.locations").set(30)
        h = obs.histogram("locate.latency_ms")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = obs.render_text()
        assert "counters:" in text and "gauges:" in text and "histograms:" in text
        assert "ingest.files_read" in text
        assert "p95=" in text

    def test_output_independent_of_insertion_order(self):
        # Same series created in opposite orders must render identically
        # (exporters and diffs depend on deterministic series order).
        forward, backward = obs.MetricsRegistry(), obs.MetricsRegistry()
        for reg, order in ((forward, (1, 2, 3)), (backward, (3, 2, 1))):
            for i in order:
                reg.counter("req", algo=f"a{i}").inc(i)
                reg.gauge("lvl", algo=f"a{i}").set(i)
                reg.histogram("lat", algo=f"a{i}").observe(float(i))
        assert obs.render_text(forward.snapshot()) == obs.render_text(
            backward.snapshot()
        )

    def test_series_sorted_by_name_then_label_tuple(self, registry):
        obs.counter("x", b="1").inc()
        obs.counter("x", a="2").inc()
        obs.counter("w").inc()
        text = obs.render_text()
        assert (
            text.index("w") < text.index("x{a=2}") < text.index("x{b=1}")
        )


class TestMetricsCliFlags:
    def test_metrics_and_metrics_json_written(self, registry, tmp_path, house):
        from repro.cli import generator_main
        from repro.obs.export import JSON_SCHEMA

        survey_dir = tmp_path / "survey"
        house.survey(rng=0).save_directory(survey_dir)
        map_path = tmp_path / "locations.txt"
        house.location_map().save(map_path)

        raw_path = tmp_path / "metrics.json"
        exporter_path = tmp_path / "metrics.export.json"
        rc = generator_main(
            [
                str(survey_dir),
                str(map_path),
                str(tmp_path / "out.tdb"),
                "--metrics",
                str(raw_path),
                "--metrics-json",
                str(exporter_path),
            ]
        )
        assert rc == 0

        raw = json.loads(raw_path.read_text())
        assert raw["counters"]["trainingdb.builds"] == 1  # raw snapshot shape

        payload = json.loads(exporter_path.read_text())
        assert payload["schema"] == JSON_SCHEMA  # exporter document shape
        names = {entry["name"] for entry in payload["counters"]}
        assert "trainingdb.builds" in names and "ingest.files_read" in names

    def test_metrics_json_alone(self, registry, tmp_path, house):
        from repro.cli import generator_main

        survey_dir = tmp_path / "survey"
        house.survey(rng=0).save_directory(survey_dir)
        map_path = tmp_path / "locations.txt"
        house.location_map().save(map_path)

        exporter_path = tmp_path / "m.json"
        rc = generator_main(
            [
                str(survey_dir),
                str(map_path),
                str(tmp_path / "out.tdb"),
                "--metrics-json",
                str(exporter_path),
            ]
        )
        assert rc == 0
        assert json.loads(exporter_path.read_text())["schema"]


class TestPipelineInstrumentation:
    """The hot paths actually emit (light integration checks)."""

    def test_locate_counters_and_latency(self, registry):
        from repro.algorithms.base import Observation
        from repro.algorithms.knn import KNNLocalizer
        from repro.core.geometry import Point
        from repro.core.trainingdb import LocationRecord, TrainingDatabase

        B = ["a", "b", "c"]
        rng = np.random.default_rng(0)
        db = TrainingDatabase(
            B,
            [
                LocationRecord(f"p{i}", Point(float(i), 0.0),
                               rng.normal(-60, 2, (5, 3)).astype(np.float32))
                for i in range(4)
            ],
        )
        loc = KNNLocalizer().fit(db)
        o = Observation(rng.normal(-60, 2, (3, 3)), bssids=B)
        loc.locate(o)
        loc.locate_many([o, o])
        snap = obs.snapshot()
        assert snap["counters"]["locate.valid{algorithm=knn}"] == 3
        assert snap["counters"]["locate.batched{algorithm=knn}"] == 2
        assert snap["histograms"]["locate.latency_ms{algorithm=knn}"]["count"] == 1
        assert snap["histograms"]["locate.batch_ms{algorithm=knn}"]["count"] == 1

    def test_default_batch_loop_counts_each_request_once(self, registry):
        from repro.algorithms.base import Observation
        from repro.algorithms.fieldmle import FieldMLELocalizer
        from repro.core.geometry import Point
        from repro.core.trainingdb import LocationRecord, TrainingDatabase

        B = ["a", "b", "c"]
        rng = np.random.default_rng(1)
        db = TrainingDatabase(
            B,
            [
                LocationRecord(f"p{i}-{j}", Point(10.0 * i, 10.0 * j),
                               rng.normal(-60, 2, (5, 3)).astype(np.float32))
                for i in range(3)
                for j in range(3)
            ],
        )
        loc = FieldMLELocalizer(resolution_ft=5.0).fit(db)
        o = Observation(rng.normal(-60, 2, (3, 3)), bssids=B)
        loc.locate_many([o, o, o])
        snap = obs.snapshot()
        valid = snap["counters"].get("locate.valid{algorithm=fieldmle}", 0)
        invalid = snap["counters"].get("locate.invalid{algorithm=fieldmle}", 0)
        assert valid + invalid == 3  # not double-counted by the inner loop

    def test_ingest_counters_from_report(self, registry):
        from repro.robustness.report import IngestReport

        report = IngestReport(lenient=True)
        report.count_file()
        report.count_records(7)
        report.skip_line("f", 3, "junk")
        report.quarantine("g", "not utf-8")
        report.conflict("loc", "position", "(0,0)", "(1,1)", "h")
        snap = obs.snapshot()
        assert snap["counters"]["ingest.files_read"] == 1
        assert snap["counters"]["ingest.records_kept"] == 7
        assert snap["counters"]["ingest.skipped_lines"] == 1
        assert snap["counters"]["ingest.quarantined"] == 1
        assert snap["counters"]["ingest.header_conflicts"] == 1
        # the report's own tallies are unchanged by the metric emission
        assert report.files_read == 1 and report.records_kept == 7

    def test_trainingdb_build_metrics_and_spans(self, registry, tmp_path):
        from repro.core.locationmap import LocationMap
        from repro.core.trainingdb import generate_training_db
        from repro.experiments.house import ExperimentHouse, HouseConfig

        house = ExperimentHouse(HouseConfig(dwell_s=2.0))
        survey_dir = tmp_path / "survey"
        house.survey(rng=0).save_directory(survey_dir)
        map_path = tmp_path / "locations.txt"
        house.location_map().save(map_path)

        tracer = obs.Tracer()
        with tracer.activate():
            db = generate_training_db(survey_dir, map_path)
        snap = obs.snapshot()
        assert snap["counters"]["trainingdb.builds"] == 1
        assert snap["gauges"]["trainingdb.locations"] == len(db)
        assert snap["counters"]["ingest.files_read"] == len(db)
        names = [e["name"] for e in tracer.events]
        assert "trainingdb.build" in names
        assert "wiscan.from_directory" in names
        build = next(e for e in tracer.events if e["name"] == "trainingdb.build")
        load = next(e for e in tracer.events if e["name"] == "wiscan.load")
        assert load["parent"] == build["id"]  # ingestion nests under the build

    def test_fallback_decision_counters(self, registry):
        from repro.algorithms.base import Observation
        from repro.algorithms.fallback import FallbackLocalizer
        from repro.core.geometry import Point
        from repro.core.trainingdb import LocationRecord, TrainingDatabase

        B = ["a", "b", "c"]
        rng = np.random.default_rng(2)
        db = TrainingDatabase(
            B,
            [
                LocationRecord(f"p{i}", Point(float(i), 0.0),
                               rng.normal(-60, 2, (5, 3)).astype(np.float32))
                for i in range(4)
            ],
        )
        chain = FallbackLocalizer().fit(db)  # no ap_positions: prob + nearest
        # Observation hearing one AP: probabilistic declines (min_common_aps),
        # the nearest tier answers.
        samples = np.full((3, 3), np.nan)
        samples[:, 0] = -58.0
        est = chain.locate(Observation(samples, bssids=B))
        assert est.valid
        snap = obs.snapshot()
        assert snap["counters"]["fallback.declined{tier=probabilistic}"] == 1
        assert snap["counters"]["fallback.answered{tier=nearest}"] == 1
