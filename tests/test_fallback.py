"""Degraded-mode localization: the fallback chain and its diagnostics."""

import numpy as np
import pytest

from repro.algorithms import FallbackLocalizer, make_localizer
from repro.algorithms.base import (
    LocationEstimate,
    Localizer,
    Observation,
    invalid_estimate,
)
from repro.algorithms.fallback import DEFAULT_CHAIN
from repro.core.geometry import Point
from repro.core.system import LocalizationSystem
from repro.core.trainingdb import LocationRecord, TrainingDatabase
from repro.robustness import APDropout, inject_observation

B = [f"02:00:00:00:00:{i:02x}" for i in range(3)]


def synthetic_db(rng_seed=0, n_samples=40):
    rng = np.random.default_rng(rng_seed)
    profiles = {
        "west": ((-40.0, -70.0, -80.0), (0.0, 0.0)),
        "mid": ((-60.0, -50.0, -60.0), (25.0, 20.0)),
        "east": ((-80.0, -70.0, -40.0), (50.0, 40.0)),
    }
    records = []
    for name, (means, pos) in profiles.items():
        samples = rng.normal(means, 2.0, size=(n_samples, 3)).astype(np.float32)
        records.append(LocationRecord(name, Point(*pos), samples))
    return TrainingDatabase(B, records)


def obs(means, n=10, noise=1.0, seed=1):
    rng = np.random.default_rng(seed)
    return Observation(rng.normal(means, noise, size=(n, 3)))


class TestChainConstruction:
    def test_registered(self):
        loc = make_localizer("fallback")
        assert isinstance(loc, FallbackLocalizer)

    def test_default_chain_without_ap_positions_drops_geometric(self):
        loc = FallbackLocalizer()
        names = [t.name for t in loc.tiers]
        assert names == ["probabilistic", "nearest"]

    def test_explicit_geometric_without_positions_raises(self):
        with pytest.raises(ValueError, match="ap_positions"):
            FallbackLocalizer(tiers=["geometric", "probabilistic"])

    def test_bad_bounds(self):
        with pytest.raises(ValueError, match="bounds"):
            FallbackLocalizer(bounds=(10, 0, 0, 10))

    def test_locate_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            FallbackLocalizer().locate(obs((-40, -70, -80)))


class TestFitQuarantine:
    def test_unfittable_tier_is_dropped_not_fatal(self):
        # Geometric with a single positioned AP cannot fit (needs >= 3).
        loc = FallbackLocalizer(
            tiers=["geometric", "probabilistic"],
            ap_positions={B[0]: Point(0, 0)},
        )
        loc.fit(synthetic_db())
        assert "geometric" in loc.fit_errors
        est = loc.locate(obs((-40, -70, -80)))
        assert est.valid and est.details["tier"] == "probabilistic"
        # The fit failure shows up in the per-request decline trail too.
        assert any(
            d["tier"] == "geometric" and "fit failed" in d["reason"]
            for d in est.details["declined"]
        )

    def test_no_tier_survives_fit_raises(self):
        loc = FallbackLocalizer(
            tiers=["geometric"], ap_positions={B[0]: Point(0, 0)}
        )
        with pytest.raises(ValueError, match="no fallback tier survived"):
            loc.fit(synthetic_db())


class TestDegradedLocate:
    def test_first_tier_answers_when_healthy(self):
        loc = FallbackLocalizer().fit(synthetic_db())
        est = loc.locate(obs((-40, -70, -80)))
        assert est.valid
        assert est.details["tier"] == "probabilistic"
        assert est.details["declined"] == []
        assert est.location_name == "west"

    def test_ap_dropout_falls_through_with_reason(self):
        # Probabilistic needs >= 2 common APs; leave only one heard.
        loc = FallbackLocalizer(
            tiers=[make_localizer("probabilistic", min_common_aps=2), "nearest"]
        ).fit(synthetic_db())
        one_ap = Observation(np.array([[-40.0, np.nan, np.nan]] * 5))
        est = loc.locate(one_ap)
        assert est.valid
        assert est.details["tier"] == "nearest"
        declined = est.details["declined"]
        assert declined[0]["tier"] == "probabilistic"
        assert "common AP" in declined[0]["reason"]

    def test_out_of_bounds_answer_declined(self):
        # A stub tier that always answers off-site.
        class OffSite(Localizer):
            name = "offsite"

            def fit(self, db):
                return self

            def locate(self, observation):
                return LocationEstimate(position=Point(999.0, 999.0), valid=True)

        loc = FallbackLocalizer(
            tiers=[OffSite(), "nearest"], bounds=(0, 0, 50, 40), bounds_margin_ft=5.0
        ).fit(synthetic_db())
        est = loc.locate(obs((-40, -70, -80)))
        assert est.valid and est.details["tier"] == "nearest"
        assert "out-of-bounds" in est.details["declined"][0]["reason"]

    def test_score_underflow_declined(self):
        class Underflow(Localizer):
            name = "underflow"

            def fit(self, db):
                return self

            def locate(self, observation):
                return LocationEstimate(position=Point(1, 1), valid=True, score=-1e9)

        loc = FallbackLocalizer(tiers=[Underflow(), "nearest"], min_score=-1e6).fit(
            synthetic_db()
        )
        est = loc.locate(obs((-40, -70, -80)))
        assert est.details["tier"] == "nearest"
        assert "underflow" in est.details["declined"][0]["reason"]

    def test_tier_error_is_caught_and_recorded(self):
        class Explodes(Localizer):
            name = "explodes"

            def fit(self, db):
                return self

            def locate(self, observation):
                raise ValueError("boom")

        loc = FallbackLocalizer(tiers=[Explodes(), "nearest"]).fit(synthetic_db())
        est = loc.locate(obs((-40, -70, -80)))
        assert est.valid and est.details["tier"] == "nearest"
        assert est.details["declined"][0]["reason"] == "error: boom"

    def test_all_tiers_decline(self):
        loc = FallbackLocalizer(
            tiers=[make_localizer("probabilistic", min_common_aps=3)]
        ).fit(synthetic_db())
        est = loc.locate(Observation(np.array([[-40.0, np.nan, np.nan]] * 5)))
        assert not est.valid
        assert est.details["reason"] == "all fallback tiers declined"
        assert [d["tier"] for d in est.details["declined"]] == ["probabilistic"]

    def test_nearest_tier_answers_on_single_ap(self):
        loc = FallbackLocalizer().fit(synthetic_db())
        est = loc.locate(Observation(np.array([[-40.0, np.nan, np.nan]] * 5)))
        assert est.valid
        assert est.details["tier"] == "nearest"


class TestHouseIntegration:
    """Against the simulated house: dropout degrades, the chain survives."""

    def test_validity_beats_geometric_baseline(self, house, training_db, test_points):
        aps = {ap.bssid: ap.position for ap in house.aps}
        geo = make_localizer("geometric", ap_positions=aps, min_aps=4).fit(training_db)
        chain = FallbackLocalizer(
            ap_positions=aps, bounds=(0, 0, 50, 40)
        ).fit(training_db)

        observations = house.observe_all(test_points, rng=1)
        rng = np.random.default_rng(7)
        degraded = [inject_observation(o, [APDropout(k=1)], rng) for o in observations]

        geo_valid = sum(geo.locate(o).valid for o in degraded)
        chain_valid = sum(chain.locate(o).valid for o in degraded)
        assert chain_valid > geo_valid
        tiers = {chain.locate(o).details.get("tier") for o in degraded}
        assert tiers <= {"geometric", "probabilistic", "nearest"}

    def test_system_surfaces_diagnostics(self, house):
        survey = house.survey(rng=0)
        system = LocalizationSystem.train(
            survey, house.location_map(), algorithm="fallback"
        )
        observation = house.observe(Point(25, 20), rng=2)
        resolved = system.locate(observation)
        assert resolved.valid
        assert resolved.tier in ("probabilistic", "nearest")
        assert resolved.diagnostics["tier"] == resolved.tier
        assert "declined" in resolved.diagnostics

    def test_non_chain_resolved_location_has_no_tier(self, house, training_db):
        system = LocalizationSystem(
            make_localizer("probabilistic").fit(training_db),
            training_db,
            location_map=house.location_map(),
        )
        resolved = system.locate(house.observe(Point(25, 20), rng=2))
        assert resolved.tier is None


def test_default_chain_constant():
    assert DEFAULT_CHAIN == ("geometric", "probabilistic", "nearest")
