"""Unit and property tests for repro.core.geometry."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import (
    Circle,
    Point,
    best_circle_intersection,
    centroid,
    circle_intersections,
    distance,
    geometric_median,
    median_point,
    point_segment_distance,
    polygon_contains,
    segment_intersects,
)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, finite, finite)
radii = st.floats(min_value=0.01, max_value=1e3, allow_nan=False)


class TestPoint:
    def test_arithmetic(self):
        a, b = Point(1, 2), Point(3, -1)
        assert a + b == Point(4, 1)
        assert a - b == Point(-2, 3)
        assert a * 2 == Point(2, 4)
        assert 2 * a == Point(2, 4)
        assert a / 2 == Point(0.5, 1)
        assert -a == Point(-1, -2)

    def test_dot_cross(self):
        assert Point(1, 0).dot(Point(0, 1)) == 0
        assert Point(2, 3).dot(Point(4, 5)) == 23
        assert Point(1, 0).cross(Point(0, 1)) == 1
        assert Point(0, 1).cross(Point(1, 0)) == -1

    def test_norm_distance(self):
        assert Point(3, 4).norm() == 5
        assert Point(0, 0).distance_to(Point(3, 4)) == 5
        assert distance(Point(1, 1), Point(4, 5)) == 5

    def test_iter_and_array(self):
        p = Point(1.5, -2.5)
        assert tuple(p) == (1.5, -2.5)
        assert np.allclose(p.as_array(), [1.5, -2.5])
        assert Point.from_array([1.5, -2.5]) == p

    def test_from_array_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Point.from_array([1, 2, 3])

    def test_rotation(self):
        p = Point(1, 0).rotated(math.pi / 2)
        assert abs(p.x) < 1e-12 and abs(p.y - 1) < 1e-12

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    def test_round(self):
        assert Point(1.23456789, -2.3456789).round(3) == Point(1.235, -2.346)


class TestCircle:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -1.0)

    def test_contains_and_boundary(self):
        c = Circle(Point(0, 0), 5.0)
        assert c.contains(Point(3, 4))
        assert c.on_boundary(Point(3, 4))
        assert not c.contains(Point(4, 4))


class TestCircleIntersections:
    def test_two_point_case(self):
        c1 = Circle(Point(0, 0), 5)
        c2 = Circle(Point(8, 0), 5)
        pts = circle_intersections(c1, c2)
        assert len(pts) == 2
        for p in pts:
            assert c1.on_boundary(p, tol=1e-6)
            assert c2.on_boundary(p, tol=1e-6)
        # Symmetric about the x-axis at x=4.
        assert {round(p.x, 6) for p in pts} == {4.0}
        assert sorted(round(p.y, 6) for p in pts) == [-3.0, 3.0]

    def test_tangent_external(self):
        pts = circle_intersections(Circle(Point(0, 0), 2), Circle(Point(5, 0), 3))
        assert len(pts) == 1
        assert pts[0].round(6) == Point(2, 0)

    def test_tangent_internal(self):
        pts = circle_intersections(Circle(Point(0, 0), 5), Circle(Point(2, 0), 3))
        assert len(pts) == 1
        assert pts[0].round(6) == Point(5, 0)

    def test_separate_and_nested_empty(self):
        assert circle_intersections(Circle(Point(0, 0), 1), Circle(Point(10, 0), 1)) == []
        assert circle_intersections(Circle(Point(0, 0), 10), Circle(Point(1, 0), 1)) == []

    def test_concentric_empty(self):
        assert circle_intersections(Circle(Point(0, 0), 2), Circle(Point(0, 0), 2)) == []

    @given(points, radii, points, radii)
    @settings(max_examples=200)
    def test_intersections_lie_on_both_circles(self, c1, r1, c2, r2):
        pts = circle_intersections(Circle(c1, r1), Circle(c2, r2))
        for p in pts:
            scale = max(1.0, r1, r2, c1.distance_to(c2))
            assert abs(c1.distance_to(p) - r1) <= 1e-6 * scale + 1e-6
            assert abs(c2.distance_to(p) - r2) <= 1e-6 * scale + 1e-6


class TestBestCircleIntersection:
    def test_real_intersection_passthrough(self):
        pts = best_circle_intersection(Circle(Point(0, 0), 5), Circle(Point(8, 0), 5))
        assert len(pts) == 2

    def test_separate_fallback_between(self):
        pts = best_circle_intersection(Circle(Point(0, 0), 2), Circle(Point(10, 0), 3))
        assert len(pts) == 1
        # t* = (10 + 2 - 3)/2 = 4.5, between the boundaries (2 and 7).
        assert pts[0].round(6) == Point(4.5, 0)

    def test_nested_fallback_between_boundaries(self):
        pts = best_circle_intersection(Circle(Point(0, 0), 10), Circle(Point(2, 0), 1))
        assert len(pts) == 1
        # t* = (2 + 10 + 1)/2 = 6.5: midpoint of inner far side (3) and outer (10).
        assert pts[0].round(6) == Point(6.5, 0)
        assert 3 <= pts[0].x <= 10

    def test_concentric_empty(self):
        assert best_circle_intersection(Circle(Point(0, 0), 1), Circle(Point(0, 0), 5)) == []

    @given(points, radii, points, radii)
    @settings(max_examples=200)
    def test_always_returns_point_for_distinct_centers(self, c1, r1, c2, r2):
        if c1.distance_to(c2) <= 1e-9:
            return
        pts = best_circle_intersection(Circle(c1, r1), Circle(c2, r2))
        assert 1 <= len(pts) <= 2

    @given(points, radii, points, radii)
    @settings(max_examples=100)
    def test_fallback_minimizes_radial_error_on_line(self, c1, r1, c2, r2):
        d = c1.distance_to(c2)
        if d <= 1e-6:
            return
        circle1, circle2 = Circle(c1, r1), Circle(c2, r2)
        if circle_intersections(circle1, circle2):
            return
        (p,) = best_circle_intersection(circle1, circle2)

        def cost(q):
            return (q.distance_to(c1) - r1) ** 2 + (q.distance_to(c2) - r2) ** 2

        ex = (c2 - c1) / d
        base = cost(p)
        for eps in (-0.01, 0.01):
            assert base <= cost(p + ex * (eps * max(d, 1.0))) + 1e-6 * max(base, 1.0)


class TestAggregators:
    def test_median_point_odd(self):
        pts = [Point(0, 0), Point(10, 2), Point(4, 100)]
        assert median_point(pts) == Point(4, 2)

    def test_median_point_even_is_midrange_of_middles(self):
        pts = [Point(0, 0), Point(2, 2), Point(4, 4), Point(100, 100)]
        assert median_point(pts) == Point(3, 3)

    def test_median_point_empty_raises(self):
        with pytest.raises(ValueError):
            median_point([])

    def test_centroid(self):
        assert centroid([Point(0, 0), Point(2, 4)]) == Point(1, 2)
        with pytest.raises(ValueError):
            centroid([])

    def test_geometric_median_of_single_point(self):
        assert geometric_median([Point(3, 4)]).round(5) == Point(3, 4)

    def test_geometric_median_robust_to_outlier(self):
        cluster = [Point(0, 0), Point(0.1, 0), Point(0, 0.1), Point(1000, 1000)]
        gm = geometric_median(cluster)
        cen = centroid(cluster)
        assert gm.norm() < 1.0  # stays with the cluster
        assert cen.norm() > 100.0  # centroid dragged away

    @given(st.lists(points, min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_geometric_median_inside_bbox(self, pts):
        gm = geometric_median(pts)
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        assert min(xs) - 1e-3 <= gm.x <= max(xs) + 1e-3
        assert min(ys) - 1e-3 <= gm.y <= max(ys) + 1e-3

    @given(st.lists(points, min_size=3, max_size=6))
    @settings(max_examples=100)
    def test_geometric_median_is_local_min(self, pts):
        gm = geometric_median(pts)

        def cost(q):
            return sum(q.distance_to(p) for p in pts)

        base = cost(gm)
        # Weiszfeld converges sublinearly on near-collinear inputs, so
        # allow a small relative slack.
        for dx, dy in ((0.5, 0), (-0.5, 0), (0, 0.5), (0, -0.5)):
            assert base <= cost(gm + Point(dx, dy)) + 1e-3 * max(base, 1.0)


class TestPolygonAndSegments:
    SQUARE = [Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)]

    def test_polygon_contains(self):
        assert polygon_contains(self.SQUARE, Point(5, 5))
        assert not polygon_contains(self.SQUARE, Point(15, 5))
        assert not polygon_contains(self.SQUARE, Point(-1, -1))

    def test_degenerate_polygon(self):
        assert not polygon_contains([Point(0, 0), Point(1, 1)], Point(0.5, 0.5))

    def test_segment_intersects_crossing(self):
        assert segment_intersects(Point(0, 0), Point(10, 10), Point(0, 10), Point(10, 0))

    def test_segment_intersects_disjoint(self):
        assert not segment_intersects(Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1))

    def test_segment_touching_endpoint(self):
        assert segment_intersects(Point(0, 0), Point(5, 0), Point(5, 0), Point(5, 5))

    def test_collinear_overlap(self):
        assert segment_intersects(Point(0, 0), Point(10, 0), Point(5, 0), Point(15, 0))

    def test_point_segment_distance(self):
        assert point_segment_distance(Point(5, 5), Point(0, 0), Point(10, 0)) == 5
        assert point_segment_distance(Point(-3, 4), Point(0, 0), Point(10, 0)) == 5
        # Degenerate segment.
        assert point_segment_distance(Point(3, 4), Point(0, 0), Point(0, 0)) == 5
