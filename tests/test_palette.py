"""Tests for palette building and quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.palette import (
    build_palette,
    exact_palette,
    map_to_palette,
    quantize,
)


def image_with_colors(colors, shape=(8, 8)):
    rng = np.random.default_rng(0)
    idx = rng.integers(0, len(colors), size=shape)
    return np.asarray(colors, dtype=np.uint8)[idx]


class TestExactPalette:
    def test_small_image_exact(self):
        img = image_with_colors([(255, 0, 0), (0, 255, 0)])
        result = exact_palette(img)
        assert result is not None
        indices, palette = result
        assert len(palette) == 2
        assert np.array_equal(palette[indices], img)

    def test_over_budget_returns_none(self):
        rng = np.random.default_rng(1)
        img = rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8)
        assert exact_palette(img, max_colors=16) is None

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            exact_palette(np.zeros((4, 4), dtype=np.uint8))


class TestBuildPalette:
    def test_few_colors_returned_verbatim(self):
        img = image_with_colors([(1, 2, 3), (4, 5, 6), (7, 8, 9)])
        pal = build_palette(img, max_colors=8)
        assert {tuple(c) for c in pal} == {(1, 2, 3), (4, 5, 6), (7, 8, 9)}

    def test_respects_max_colors(self):
        rng = np.random.default_rng(2)
        img = rng.integers(0, 256, size=(64, 64, 3)).astype(np.uint8)
        for n in (2, 16, 64):
            assert len(build_palette(img, max_colors=n)) <= n

    def test_min_colors_validation(self):
        with pytest.raises(ValueError):
            build_palette(np.zeros((2, 2, 3), dtype=np.uint8), max_colors=1)

    def test_separates_clusters(self):
        # Two well-separated clusters must land in different palette cells.
        dark = np.zeros((8, 8, 3), dtype=np.uint8)
        light = np.full((8, 8, 3), 250, dtype=np.uint8)
        img = np.concatenate([dark, light], axis=0)
        pal = build_palette(img, max_colors=2).astype(int)
        assert len(pal) == 2
        spread = abs(int(pal[0].mean()) - int(pal[1].mean()))
        assert spread > 200


class TestMapToPalette:
    def test_nearest_mapping(self):
        palette = np.array([[0, 0, 0], [255, 255, 255]], dtype=np.uint8)
        img = np.array([[[10, 10, 10], [240, 240, 240]]], dtype=np.uint8)
        idx = map_to_palette(img, palette)
        assert idx.tolist() == [[0, 1]]

    def test_exact_colors_map_to_themselves(self):
        palette = np.array([[5, 5, 5], [100, 0, 0], [0, 200, 0]], dtype=np.uint8)
        img = palette[np.array([[0, 1], [2, 1]])]
        idx = map_to_palette(img, palette)
        assert np.array_equal(palette[idx], img)


class TestQuantize:
    def test_lossless_under_budget(self):
        img = image_with_colors([(0, 0, 0), (255, 0, 0), (0, 0, 255)], shape=(16, 16))
        indices, palette = quantize(img)
        assert np.array_equal(palette[indices], img)

    def test_budget_enforced(self):
        rng = np.random.default_rng(3)
        img = rng.integers(0, 256, size=(40, 40, 3)).astype(np.uint8)
        indices, palette = quantize(img, max_colors=8)
        assert len(palette) <= 8
        assert indices.max() < len(palette)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((2, 2, 3), dtype=np.uint8), max_colors=257)
        with pytest.raises(ValueError):
            quantize(np.zeros((2, 2, 3), dtype=np.uint8), max_colors=1)

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_quantized_error_bounded_by_coarseness(self, n_colors):
        rng = np.random.default_rng(n_colors)
        img = rng.integers(0, 256, size=(16, 16, 3)).astype(np.uint8)
        indices, palette = quantize(img, max_colors=n_colors)
        recon = palette[indices].astype(int)
        err = np.abs(recon - img.astype(int)).mean()
        assert err <= 130  # loose sanity: mapping is nearest-neighbour

    def test_grayscale_quantization_ordered(self):
        # A gradient image: palette entries should span the range.
        grad = np.linspace(0, 255, 256).astype(np.uint8)
        img = np.repeat(grad[None, :, None], 3, axis=2).reshape(1, 256, 3)
        indices, palette = quantize(img, max_colors=4)
        values = sorted(int(c[0]) for c in palette)
        assert values[0] < 70 and values[-1] > 185
