"""End-to-end integration: the complete §3 Figure-1 pipeline, via files.

Replays the paper's whole workflow through on-disk artifacts, exactly as
a user of the released toolkit would: draw/scan a blueprint → annotate
it with the Processor → survey the training grid into wi-scan files →
generate the training database → locate Phase-2 observations → render
the true/estimate comparison with the Compositor.
"""

import numpy as np
import pytest

from repro.algorithms.base import Observation, make_localizer
from repro.core.compositor import EstimatePair, FloorPlanCompositor
from repro.core.floorplan import FloorPlan
from repro.core.geometry import Point
from repro.core.processor import FloorPlanProcessor
from repro.core.system import LocalizationSystem, ap_positions_by_bssid
from repro.core.trainingdb import TrainingDatabase, generate_training_db
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.metrics import ExperimentMetrics
from repro.imaging.blueprint import experiment_house_blueprint
from repro.imaging.gif import read_gif, write_gif
from repro.wiscan.collection import WiScanCollection


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Run the full file-based pipeline once; tests inspect the stages."""
    root = tmp_path_factory.mktemp("site")
    house = ExperimentHouse(HouseConfig(dwell_s=10.0))

    # 1. The scanned blueprint arrives as a GIF.
    blueprint_path = root / "scan.gif"
    write_gif(blueprint_path, experiment_house_blueprint(pixels_per_foot=8.0))

    # 2. Annotate with the Processor, via its scripted command interface.
    proc = FloorPlanProcessor()
    margin, ppf, height_px = 40, 8.0, 40 * 8
    def px(x_ft, y_ft):
        return (margin + x_ft * ppf, margin + (40 - y_ft) * ppf)

    ox, oy = px(0, 0)
    x2, _ = px(50, 0)
    proc.run_script([f"load {blueprint_path}"])
    proc.set_scale(ox, oy, x2, oy, 50.0)
    proc.set_origin(ox, oy)
    for ap in house.aps:
        proc.add_access_point(ap.name, *px(ap.position.x, ap.position.y))
    for sp in house.training_points():
        proc.add_location(sp.name, *px(sp.position.x, sp.position.y))
    plan_path = root / "annotated.gif"
    proc.save(plan_path)

    # 3. Survey into wi-scan files; export the location map.
    survey_dir = root / "survey"
    house.survey(rng=0).save_directory(survey_dir)
    map_path = root / "locations.txt"
    proc.export_locations(map_path)

    # 4. Generate the training database.
    db_path = root / "training.tdb"
    generate_training_db(survey_dir, map_path, output=db_path)

    return {
        "root": root,
        "house": house,
        "plan_path": plan_path,
        "survey_dir": survey_dir,
        "map_path": map_path,
        "db_path": db_path,
    }


class TestPipelineArtifacts:
    def test_annotated_plan_roundtrips(self, pipeline):
        plan = FloorPlan.load(pipeline["plan_path"])
        assert plan.has_scale and plan.has_origin
        assert len(plan.access_points) == 4
        assert len(plan.locations) == 30
        assert plan.feet_per_pixel == pytest.approx(1 / 8.0, rel=1e-6)

    def test_plan_is_also_a_plain_gif(self, pipeline):
        image = read_gif(pipeline["plan_path"])
        assert image.width > 0  # any viewer can open the annotated plan

    def test_exported_map_matches_grid(self, pipeline):
        from repro.core.locationmap import LocationMap

        lm = LocationMap.load(pipeline["map_path"])
        assert len(lm) == 30
        # Processor clicks → floor coordinates round-trip within a pixel.
        assert lm.position("grid-20-10").distance_to(Point(20, 10)) < 0.3

    def test_database_loads_and_aligns(self, pipeline):
        db = TrainingDatabase.load(pipeline["db_path"])
        assert len(db) == 30
        assert len(db.bssids) == 4
        coll = WiScanCollection.load(pipeline["survey_dir"])
        assert db.total_samples() == len(
            {(r.time_s, s.location) for s in coll for r in s.records}
        )

    def test_tdb_smaller_than_wiscan_collection(self, pipeline):
        raw = sum(p.stat().st_size for p in pipeline["survey_dir"].glob("*.wi-scan"))
        tdb = pipeline["db_path"].stat().st_size
        assert tdb < raw / 2  # the §4.3 compression claim


class TestPipelineLocalization:
    @pytest.mark.parametrize("algorithm", ["probabilistic", "geometric", "knn"])
    def test_locate_through_files(self, pipeline, algorithm):
        db = TrainingDatabase.load(pipeline["db_path"])
        plan = FloorPlan.load(pipeline["plan_path"])
        house = pipeline["house"]
        kwargs = {}
        if algorithm == "geometric":
            kwargs["ap_positions"] = ap_positions_by_bssid(plan, db)
        localizer = make_localizer(algorithm, **kwargs).fit(db)

        test_points = house.test_points()
        observations = house.observe_all(test_points, rng=1)
        estimates = [localizer.locate(o) for o in observations]
        metrics = ExperimentMetrics.compute(test_points, estimates, tolerance_ft=10.0)
        assert metrics.n_reported >= 10
        assert metrics.mean_deviation_ft < 25.0  # sane indoor-RSSI territory

    def test_compositor_renders_results(self, pipeline):
        db = TrainingDatabase.load(pipeline["db_path"])
        plan = FloorPlan.load(pipeline["plan_path"])
        house = pipeline["house"]
        localizer = make_localizer("probabilistic").fit(db)
        test_points = house.test_points()[:5]
        pairs = [
            EstimatePair(p, localizer.locate(o).position, label=f"T{i}")
            for i, (p, o) in enumerate(
                zip(test_points, house.observe_all(test_points, rng=2))
            )
        ]
        out = FloorPlanCompositor(plan).render(pairs=pairs)
        result_path = pipeline["root"] / "results.gif"
        write_gif(result_path, out)
        assert read_gif(result_path) == out  # Figure-3 artifact round-trips

    def test_system_train_from_paths(self, pipeline, house):
        system = LocalizationSystem.train(
            str(pipeline["survey_dir"]),
            str(pipeline["map_path"]),
            "probabilistic",
        )
        obs = pipeline["house"].observe(Point(25, 20), rng=3)
        res = system.locate(obs)
        assert res.valid and res.name.startswith("grid-")


class TestCalibration:
    def test_headline_numbers_in_bands(self):
        """The §5 reproduction: prob valid-rate and geo deviation bands."""
        from repro.experiments.calibration import check_calibration

        report = check_calibration(n_runs=4, rng=0)
        assert report.within_bands, report.summary()

    def test_probabilistic_beats_geometric(self):
        """The paper's own comparison shape: fingerprinting wins."""
        from repro.experiments.runner import aggregate_metrics, run_repeated

        house = ExperimentHouse()
        prob = aggregate_metrics(run_repeated("probabilistic", house=house, n_runs=3, rng=1))
        geo = aggregate_metrics(run_repeated("geometric", house=house, n_runs=3, rng=1))
        assert prob["mean_deviation_ft"] < geo["mean_deviation_ft"]
        assert prob["valid_rate"] > geo["valid_rate"]
