"""Tests for the parallel utilities."""

import numpy as np
import pytest

from repro import obs
from repro.parallel import pool
from repro.parallel.pool import ParallelConfig, parallel_map, parallel_starmap
from repro.parallel.rng import (
    check_independence,
    resolve_rng,
    spawn_rngs,
    spawn_seeds,
    split_rng,
    stable_seed,
)


def square(x):
    return x * x


def add(a, b):
    return a + b


def boom(x):
    raise RuntimeError(f"boom {x}")


class TestRng:
    def test_resolve_accepts_everything(self):
        assert isinstance(resolve_rng(None), np.random.Generator)
        assert isinstance(resolve_rng(5), np.random.Generator)
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen
        assert isinstance(resolve_rng(np.random.SeedSequence(1)), np.random.Generator)

    def test_seeded_reproducible(self):
        assert resolve_rng(7).random() == resolve_rng(7).random()

    def test_spawn_seeds_independent(self):
        seeds = spawn_seeds(0, 10)
        assert len(seeds) == 10
        assert check_independence(seeds)

    def test_spawn_rngs_distinct_streams(self):
        rngs = spawn_rngs(0, 5)
        draws = [g.random() for g in rngs]
        assert len(set(draws)) == 5

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_split_rng(self):
        children = split_rng(np.random.default_rng(0), 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4

    def test_stable_seed_deterministic(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert 0 <= stable_seed("x") < 2**63


class TestParallelConfig:
    def test_defaults(self):
        cfg = ParallelConfig()
        assert cfg.resolved_workers() >= 1
        assert cfg.resolved_chunk_size(100, 4) == 7  # ceil(100/16)

    def test_explicit(self):
        cfg = ParallelConfig(max_workers=2, chunk_size=10)
        assert cfg.resolved_workers() == 2
        assert cfg.resolved_chunk_size(100, 2) == 10


class TestParallelMap:
    def test_serial_small_input(self):
        assert parallel_map(square, [1, 2, 3]) == [1, 4, 9]

    def test_order_preserved_parallel(self):
        cfg = ParallelConfig(max_workers=2, serial_threshold=1)
        items = list(range(40))
        assert parallel_map(square, items, cfg) == [x * x for x in items]

    def test_forced_serial(self):
        cfg = ParallelConfig(max_workers=1)
        assert parallel_map(square, list(range(20)), cfg) == [x * x for x in range(20)]

    def test_exception_propagates(self):
        cfg = ParallelConfig(max_workers=2, serial_threshold=1)
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(boom, list(range(10)), cfg)

    def test_empty(self):
        assert parallel_map(square, []) == []

    def test_starmap(self):
        cfg = ParallelConfig(max_workers=2, serial_threshold=1)
        pairs = [(i, i + 1) for i in range(30)]
        assert parallel_starmap(add, pairs, cfg) == [2 * i + 1 for i in range(30)]

    def test_starmap_serial(self):
        assert parallel_starmap(add, [(1, 2)]) == [3]


class _UnstartablePool:
    """Stand-in for ProcessPoolExecutor in a sandbox without fork."""

    def __init__(self, *args, **kwargs):
        raise OSError("no fork for you")


class TestSerialFallbackVisibility:
    """A pool that cannot start must degrade loudly, not silently."""

    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        previous = obs.set_registry(obs.MetricsRegistry())
        yield
        obs.set_registry(previous)

    def test_map_warns_counts_and_still_answers(self, monkeypatch):
        monkeypatch.setattr(pool, "ProcessPoolExecutor", _UnstartablePool)
        cfg = ParallelConfig(max_workers=2, serial_threshold=1)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = parallel_map(square, list(range(10)), cfg)
        assert result == [x * x for x in range(10)]
        snap = obs.snapshot()
        assert snap["counters"]["parallel.serial_fallback{kind=parallel_map}"] == 1

    def test_starmap_warns_counts_and_still_answers(self, monkeypatch):
        monkeypatch.setattr(pool, "ProcessPoolExecutor", _UnstartablePool)
        cfg = ParallelConfig(max_workers=2, serial_threshold=1)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = parallel_starmap(add, [(i, i) for i in range(10)], cfg)
        assert result == [2 * i for i in range(10)]
        snap = obs.snapshot()
        assert snap["counters"]["parallel.serial_fallback{kind=parallel_starmap}"] == 1

    def test_healthy_pool_does_not_warn(self, recwarn):
        cfg = ParallelConfig(max_workers=2, serial_threshold=1)
        parallel_map(square, list(range(8)), cfg)
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]
        snap = obs.snapshot()
        assert "parallel.serial_fallback{kind=parallel_map}" not in snap["counters"]
        assert snap["counters"]["parallel.maps{kind=map}"] == 1
        assert snap["counters"]["parallel.chunks{kind=map}"] >= 1
