"""The service-layer acceptance criterion: wire answers == direct answers.

Every response body from ``POST /v1/locate`` must be *bit-for-bit*
identical to ``canonical_json(estimate_to_json(...))`` of a direct
``locate_many`` call on the same fitted model — single requests, batch
requests, coalesced micro-batches, and the fallback-chain diagnostics
paths (tier taken, tiers declined, invalid-with-reason).

Canonical JSON (sorted keys, compact separators, shortest-repr floats)
is what makes byte comparison meaningful: Python floats survive a JSON
round-trip exactly, so equal bytes ⇔ equal IEEE doubles.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.serve import LocalizationHTTPServer, LocalizationService
from repro.serve.wire import canonical_json, estimate_to_json, observation_from_json

pytestmark = pytest.mark.service


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(scope="module")
def service(house, training_db):
    return LocalizationService(
        training_db,
        ap_positions=house.ap_positions_by_bssid(),
        bounds=house.bounds(),
    )


def observation_doc(observation):
    return {
        "samples": [
            [None if v != v else v for v in row]
            for row in observation.samples.tolist()
        ],
        "bssids": list(observation.bssids),
    }


def post(url, doc):
    req = urllib.request.Request(
        url, data=json.dumps(doc).encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(req, timeout=60) as r:
        return r.status, r.read()


def expected_bytes(service, docs):
    """What the wire *must* carry: direct locate_many, canonically encoded.

    Decoding each document exactly as the server does keeps the
    comparison honest — both sides see the same post-JSON floats.
    """
    decoded = [observation_from_json(doc) for doc in docs]
    return [
        canonical_json(estimate_to_json(e))
        for e in service.locate_many(decoded)
    ]


def declining_docs(observations):
    """Observations that exercise every fallback path, as wire documents.

    - all columns but two NaN-ed: too few APs for the geometric tier,
      so the chain falls through with recorded declines;
    - all-NaN: every tier declines, the answer is invalid-with-reason.
    """
    docs = []
    base = observations[0]
    few = base.samples.copy()
    few[:, 2:] = np.nan
    docs.append(
        {
            "samples": [[None if v != v else v for v in row] for row in few.tolist()],
            "bssids": list(base.bssids),
        }
    )
    nothing = np.full_like(base.samples, np.nan)
    docs.append(
        {
            "samples": [[None] * nothing.shape[1]] * nothing.shape[0],
            "bssids": list(base.bssids),
        }
    )
    return docs


class TestSingleRequestParity:
    def test_wire_bytes_match_direct_locate_many(self, service, observations):
        docs = [observation_doc(o) for o in observations]
        expected = expected_bytes(service, docs)
        with LocalizationHTTPServer(service) as server:
            for doc, want in zip(docs, expected):
                status, body = post(server.url + "/v1/locate", doc)
                assert status == 200
                assert body == want  # bit-for-bit

    def test_fallback_diagnostics_survive_the_wire(self, service, observations):
        docs = declining_docs(observations)
        expected = expected_bytes(service, docs)
        with LocalizationHTTPServer(service) as server:
            bodies = [post(server.url + "/v1/locate", d)[1] for d in docs]
        assert bodies == expected
        degraded = json.loads(bodies[0])
        assert degraded["diagnostics"]["declined"], "expected tier declines"
        assert all("tier" in d and "reason" in d for d in degraded["diagnostics"]["declined"])
        exhausted = json.loads(bodies[1])
        assert exhausted["valid"] is False
        assert exhausted["reason"]


class TestBatchEndpointParity:
    def test_batch_bytes_match_direct_locate_many(self, service, observations):
        docs = [observation_doc(o) for o in observations] + declining_docs(observations)
        decoded = [observation_from_json(d) for d in docs]
        want = canonical_json(
            {"estimates": [estimate_to_json(e) for e in service.locate_many(decoded)]}
        )
        with LocalizationHTTPServer(service) as server:
            status, body = post(
                server.url + "/v1/locate/batch", {"observations": docs}
            )
        assert status == 200
        assert body == want


class TestCoalescedBatchParity:
    def test_concurrent_requests_coalesce_and_stay_correct(self, service, observations):
        """N concurrent singles ride one micro-batch; each caller still
        gets exactly the bytes a direct solo call would have produced."""
        n = 6
        docs = [observation_doc(o) for o in observations[:n]]
        expected = expected_bytes(service, docs)

        entered, release = threading.Event(), threading.Event()
        armed = [True]
        inner = service.locate_many

        def gated(batch):
            if armed[0]:
                armed[0] = False
                entered.set()
                assert release.wait(timeout=30.0)
            return inner(batch)

        server = LocalizationHTTPServer(
            service, max_batch=64, max_wait_ms=5.0, max_queue=256
        )
        server.batcher._dispatch = gated
        with server:
            # Park the dispatcher on a probe so the N requests below are
            # all queued together — coalescing is then structural, not a
            # race against the batch window.
            probe = server.batcher.submit(observation_from_json(docs[0]))
            assert entered.wait(timeout=30.0)

            bodies = [None] * n

            def call(i):
                bodies[i] = post(server.url + "/v1/locate", docs[i])[1]

            threads = [threading.Thread(target=call, args=(i,)) for i in range(n)]
            for t in threads:
                t.start()
            while server.batcher.queue_depth() < n:
                pass  # HTTP workers are enqueueing; depth only grows
            release.set()
            for t in threads:
                t.join(timeout=60.0)
            assert probe.result(timeout=30).valid

        assert bodies == expected  # parity per caller, through one dispatch
        sizes = obs.snapshot()["histograms"]["serve.batch_size{batcher=http}"]
        assert sizes["max"] >= n, "requests were not coalesced into one batch"


class TestCrossSiteParity:
    """Fleet routing must not perturb a single byte of any answer.

    Three paths to the same model — ``/v1/sites/{id}/locate``, the
    legacy ``/v1/locate`` (aliasing the default site) and a direct
    ``locate_many`` on an independently built service — and two pack
    formats (``site-a`` heap ``.tdb``, ``site-b`` frozen ``.tdbx``).
    """

    @pytest.fixture(scope="class")
    def fleet_server(self, site_fleet):
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(site_fleet.manifest)
        with LocalizationHTTPServer(registry=registry) as server:
            yield server

    @pytest.fixture(scope="class")
    def direct_services(self, site_fleet):
        """Independently fitted per-site services — the parity oracle."""
        return {
            sid: LocalizationService(
                d.database,
                algorithm=d.algorithm,
                ap_positions=d.ap_positions,
                bounds=d.bounds,
            )
            for sid, d in site_fleet.sites.items()
        }

    @pytest.mark.parametrize("sid", ["site-a", "site-b"])
    def test_site_route_bytes_match_direct(
        self, fleet_server, direct_services, observations, sid
    ):
        docs = [observation_doc(o) for o in observations[:6]]
        docs += declining_docs(observations)
        expected = expected_bytes(direct_services[sid], docs)
        for doc, want in zip(docs, expected):
            status, body = post(fleet_server.url + f"/v1/sites/{sid}/locate", doc)
            assert status == 200
            assert body == want  # bit-for-bit, heap and frozen alike

    @pytest.mark.parametrize("sid", ["site-a", "site-b"])
    def test_site_batch_route_bytes_match_direct(
        self, fleet_server, direct_services, observations, sid
    ):
        docs = [observation_doc(o) for o in observations[:5]]
        docs += declining_docs(observations)
        decoded = [observation_from_json(d) for d in docs]
        want = canonical_json(
            {
                "estimates": [
                    estimate_to_json(e)
                    for e in direct_services[sid].locate_many(decoded)
                ]
            }
        )
        status, body = post(
            fleet_server.url + f"/v1/sites/{sid}/locate/batch",
            {"observations": docs},
        )
        assert status == 200
        assert body == want

    def test_legacy_route_aliases_the_default_site(
        self, fleet_server, observations
    ):
        for obs_ in observations[:6]:
            doc = observation_doc(obs_)
            status_a, legacy = post(fleet_server.url + "/v1/locate", doc)
            status_b, sited = post(
                fleet_server.url + "/v1/sites/site-a/locate", doc
            )
            assert status_a == status_b == 200
            assert legacy == sited

    def test_routing_actually_switches_models(
        self, fleet_server, direct_services, observations
    ):
        """Different surveys → at least one observation answered
        differently — proof requests are not all hitting one model."""
        docs = [observation_doc(o) for o in observations]
        a = expected_bytes(direct_services["site-a"], docs)
        b = expected_bytes(direct_services["site-b"], docs)
        assert a != b, "fleet fixture sites are indistinguishable"
        via_a = [
            post(fleet_server.url + "/v1/sites/site-a/locate", d)[1] for d in docs
        ]
        via_b = [
            post(fleet_server.url + "/v1/sites/site-b/locate", d)[1] for d in docs
        ]
        assert via_a == a
        assert via_b == b
