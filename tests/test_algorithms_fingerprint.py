"""Tests for the fingerprinting algorithms: probabilistic, kNN,
histogram, scene analysis, sector — plus the shared Observation and
registry machinery."""

import numpy as np
import pytest

from repro.algorithms.base import (
    LocationEstimate,
    Observation,
    available_algorithms,
    make_localizer,
)
from repro.algorithms.histogram import HistogramLocalizer
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.scene import SceneAnalysisLocalizer
from repro.algorithms.sector import (
    SectorLocalizer,
    is_identifying,
    minimal_identifying_subset,
)
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase

B = [f"02:00:00:00:00:{i:02x}" for i in range(3)]


def synthetic_db(rng_seed=0, n_samples=40):
    """Three training points with cleanly separated fingerprints."""
    rng = np.random.default_rng(rng_seed)
    profiles = {
        "west": ((-40.0, -70.0, -80.0), (0.0, 0.0)),
        "mid": ((-60.0, -50.0, -60.0), (25.0, 20.0)),
        "east": ((-80.0, -70.0, -40.0), (50.0, 40.0)),
    }
    records = []
    for name, (means, pos) in profiles.items():
        samples = rng.normal(means, 2.0, size=(n_samples, 3)).astype(np.float32)
        records.append(LocationRecord(name, Point(*pos), samples))
    return TrainingDatabase(B, records)


def obs(means, n=10, noise=1.0, seed=1):
    rng = np.random.default_rng(seed)
    return Observation(rng.normal(means, noise, size=(n, 3)))


class TestObservation:
    def test_shapes_and_means(self):
        o = Observation(np.array([[-50.0, np.nan], [-52.0, -70.0]]))
        assert o.n_sweeps == 2 and o.n_aps == 2
        assert o.mean_rssi()[0] == pytest.approx(-51.0)
        assert o.mean_rssi()[1] == pytest.approx(-70.0)

    def test_1d_promoted(self):
        o = Observation(np.array([-50.0, -60.0]))
        assert o.samples.shape == (1, 2)

    def test_detection_and_heard(self):
        o = Observation(np.array([[-50.0, np.nan], [np.nan, np.nan]]))
        assert o.detection_rate().tolist() == [0.5, 0.0]
        assert o.heard_mask().tolist() == [True, False]

    def test_truncated(self):
        o = Observation(np.zeros((10, 2)) - 50.0)
        assert o.truncated(3).n_sweeps == 3
        with pytest.raises(ValueError):
            o.truncated(0)

    def test_bssid_count_checked(self):
        with pytest.raises(ValueError):
            Observation(np.zeros((1, 2)) - 50, bssids=["a"])


class TestEstimate:
    def test_error_to(self):
        est = LocationEstimate(position=Point(3, 4))
        assert est.error_to(Point(0, 0)) == 5.0

    def test_invalid_is_inf(self):
        est = LocationEstimate(position=Point(0, 0), valid=False)
        assert est.error_to(Point(0, 0)) == float("inf")
        assert LocationEstimate(position=None).error_to(Point(0, 0)) == float("inf")


class TestRegistry:
    def test_all_registered(self):
        names = available_algorithms()
        for expected in ("probabilistic", "geometric", "knn", "histogram",
                         "multilateration", "sector", "scene"):
            assert expected in names

    def test_make_by_name(self):
        loc = make_localizer("knn", k=5)
        assert isinstance(loc, KNNLocalizer)
        assert loc.k == 5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            make_localizer("magic")


class TestProbabilistic:
    def test_finds_right_training_point(self):
        db = synthetic_db()
        loc = ProbabilisticLocalizer().fit(db)
        est = loc.locate(obs((-40, -70, -80)))
        assert est.location_name == "west"
        assert est.position == Point(0, 0)
        assert est.valid

    def test_returns_training_point_only(self):
        # §5.1: answers are training locations, never interpolations.
        db = synthetic_db()
        loc = ProbabilisticLocalizer().fit(db)
        est = loc.locate(obs((-50, -60, -70)))
        assert est.location_name in db.locations()

    def test_log_likelihood_ordering(self):
        db = synthetic_db()
        loc = ProbabilisticLocalizer().fit(db)
        ll = loc.log_likelihoods(obs((-80, -70, -40)))
        order = np.argsort(ll)
        assert db.locations()[order[-1]] == "east"

    def test_posterior_normalized(self):
        loc = ProbabilisticLocalizer().fit(synthetic_db())
        p = loc.posterior(obs((-60, -50, -60)))
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            ProbabilisticLocalizer().locate(obs((-50, -50, -50)))

    def test_min_common_aps_invalidates(self):
        db = synthetic_db()
        loc = ProbabilisticLocalizer(min_common_aps=2).fit(db)
        one_ap = Observation(np.array([[-50.0, np.nan, np.nan]]))
        assert not loc.locate(one_ap).valid

    def test_missing_ap_penalized(self):
        # Training point that never hears AP 2 vs one that always does.
        records = [
            LocationRecord("deaf", Point(0, 0),
                           np.column_stack([np.full(20, -50.0), np.full(20, -60.0), np.full(20, np.nan)]).astype(np.float32)),
            LocationRecord("hears", Point(10, 0),
                           np.random.default_rng(0).normal((-50, -60, -70), 1, (20, 3)).astype(np.float32)),
        ]
        db = TrainingDatabase(B, records)
        loc = ProbabilisticLocalizer().fit(db)
        est = loc.locate(obs((-50, -60, -70)))
        assert est.location_name == "hears"

    def test_column_count_checked(self):
        loc = ProbabilisticLocalizer().fit(synthetic_db())
        with pytest.raises(ValueError):
            loc.locate(Observation(np.zeros((1, 2)) - 50))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticLocalizer(min_std_db=0)
        with pytest.raises(ValueError):
            ProbabilisticLocalizer(missing_penalty_sigma=-1)
        with pytest.raises(ValueError):
            ProbabilisticLocalizer(min_common_aps=0)

    def test_empty_db_rejected(self):
        with pytest.raises(ValueError):
            ProbabilisticLocalizer().fit(TrainingDatabase(B, []))

    def test_paper_formula_matches_manual(self):
        """The §5.1 Gaussian: value = exp(-(o-t)²/2σ²)/√(2πσ²)."""
        samples = np.array([[-50.0], [-54.0], [-52.0], [-48.0], [-46.0]], dtype=np.float32)
        db = TrainingDatabase([B[0]], [LocationRecord("p", Point(0, 0), samples)])
        loc = ProbabilisticLocalizer(min_common_aps=1).fit(db)
        o = Observation(np.array([[-51.0]]))
        mu, sigma = samples.mean(), max(samples.std(), 0.5)
        manual = np.exp(-((-51.0 - mu) ** 2) / (2 * sigma**2)) / np.sqrt(2 * np.pi * sigma**2)
        assert loc.log_likelihoods(o)[0] == pytest.approx(np.log(manual), rel=1e-6)


class TestKNN:
    def test_k1_matches_nearest_fingerprint(self):
        loc = KNNLocalizer(k=1).fit(synthetic_db())
        est = loc.locate(obs((-40, -70, -80)))
        assert est.location_name == "west"
        assert est.position == Point(0, 0)

    def test_k3_interpolates(self):
        loc = KNNLocalizer(k=3).fit(synthetic_db())
        est = loc.locate(obs((-60, -50, -60)))
        # Average of all three training points pulls off-grid.
        assert est.location_name is None
        assert 0 < est.position.x < 50

    def test_weighted_closer_to_best(self):
        db = synthetic_db()
        plain = KNNLocalizer(k=3, weighted=False).fit(db)
        weighted = KNNLocalizer(k=3, weighted=True).fit(db)
        o = obs((-40, -70, -80))
        d_plain = plain.locate(o).position.distance_to(Point(0, 0))
        d_weighted = weighted.locate(o).position.distance_to(Point(0, 0))
        assert d_weighted < d_plain

    def test_k_larger_than_db_clamped(self):
        loc = KNNLocalizer(k=99).fit(synthetic_db())
        assert loc.locate(obs((-50, -60, -70))).valid

    def test_signal_distances_shape(self):
        loc = KNNLocalizer().fit(synthetic_db())
        d = loc.signal_distances(obs((-50, -60, -70)))
        assert d.shape == (3,)
        assert (d >= 0).all()

    def test_neighbors_in_details(self):
        loc = KNNLocalizer(k=2).fit(synthetic_db())
        est = loc.locate(obs((-40, -70, -80)))
        assert est.details["neighbors"][0] == "west"

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNLocalizer(k=0)
        with pytest.raises(ValueError):
            KNNLocalizer(mismatch_penalty_db=-1)


class TestHistogram:
    def test_finds_right_training_point(self):
        loc = HistogramLocalizer().fit(synthetic_db())
        est = loc.locate(obs((-80, -70, -40)))
        assert est.location_name == "east"

    def test_uses_distribution_not_only_mean(self):
        """Two training points with the same mean but different spread:
        the histogram method must distinguish them (the §6.2 motivation)."""
        rng = np.random.default_rng(0)
        tight = rng.normal(-60, 0.8, size=(300, 1)).astype(np.float32)
        wide = np.concatenate([
            rng.normal(-45, 0.8, size=(150, 1)),
            rng.normal(-75, 0.8, size=(150, 1)),
        ]).astype(np.float32)  # same mean (-60), bimodal
        db = TrainingDatabase([B[0]], [
            LocationRecord("tight", Point(0, 0), tight),
            LocationRecord("wide", Point(10, 0), wide),
        ])
        loc = HistogramLocalizer(bin_width_db=2.0).fit(db)
        # A bimodal observation matches "wide" even though means agree.
        o = Observation(rng.normal(-45, 0.8, size=(10, 1)))
        assert loc.locate(o).location_name == "wide"
        # ...while a mid-value observation matches "tight".
        o2 = Observation(rng.normal(-60, 0.8, size=(10, 1)))
        assert loc.locate(o2).location_name == "tight"

    def test_posterior_normalized(self):
        loc = HistogramLocalizer().fit(synthetic_db())
        p = loc.posterior(obs((-60, -50, -60)))
        assert p.sum() == pytest.approx(1.0)

    def test_absence_informative(self):
        rng = np.random.default_rng(1)
        always = rng.normal((-50, -60, -70), 1, (50, 3)).astype(np.float32)
        never = always.copy()
        never[:, 2] = np.nan
        db = TrainingDatabase(B, [
            LocationRecord("hears", Point(0, 0), always),
            LocationRecord("deaf", Point(10, 0), never),
        ])
        loc = HistogramLocalizer().fit(db)
        silent_obs = Observation(
            np.column_stack([np.full(10, -50.0), np.full(10, -60.0), np.full(10, np.nan)])
        )
        assert loc.locate(silent_obs).location_name == "deaf"

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramLocalizer(bin_width_db=0)
        with pytest.raises(ValueError):
            HistogramLocalizer(rssi_range=(-20, -100))
        with pytest.raises(ValueError):
            HistogramLocalizer(laplace=0)

    def test_column_count_checked(self):
        loc = HistogramLocalizer().fit(synthetic_db())
        with pytest.raises(ValueError):
            loc.log_likelihoods(Observation(np.zeros((1, 5)) - 50))


class TestScene:
    def test_gain_invariance(self):
        """A constant dB offset on the observing device must not change
        the answer — the property Euclidean matchers lack."""
        db = synthetic_db()
        loc = SceneAnalysisLocalizer().fit(db)
        o_plain = obs((-40, -70, -80), noise=0.5)
        o_shifted = Observation(o_plain.samples - 12.0)  # cheap NIC
        assert loc.locate(o_plain).location_name == "west"
        assert loc.locate(o_shifted).location_name == "west"

    def test_symbolic_answer(self):
        loc = SceneAnalysisLocalizer().fit(synthetic_db())
        est = loc.locate(obs((-60, -50, -60)))
        assert est.location_name in synthetic_db().locations()

    def test_insufficient_common_aps_invalid(self):
        loc = SceneAnalysisLocalizer(min_common_aps=3).fit(synthetic_db())
        o = Observation(np.array([[-50.0, -60.0, np.nan]]))
        assert not loc.locate(o).valid

    def test_validation(self):
        with pytest.raises(ValueError):
            SceneAnalysisLocalizer(min_common_aps=1)


class TestSectorHelpers:
    def test_is_identifying(self):
        codes = {"a": frozenset({"x"}), "b": frozenset({"y"})}
        assert is_identifying(codes)
        assert not is_identifying({"a": frozenset({"x"}), "b": frozenset({"x"})})
        assert not is_identifying({"a": frozenset()})

    def test_minimal_subset_preserves_identification(self):
        codes = {
            "r1": frozenset({"t1"}),
            "r2": frozenset({"t1", "t2"}),
            "r3": frozenset({"t2", "t3"}),
            "r4": frozenset({"t3"}),
        }
        chosen = minimal_identifying_subset(codes)
        reduced = {k: frozenset(v & set(chosen)) for k, v in codes.items()}
        assert is_identifying(reduced)
        assert len(chosen) <= 3

    def test_minimal_subset_rejects_non_identifying(self):
        with pytest.raises(ValueError):
            minimal_identifying_subset({"a": frozenset({"x"}), "b": frozenset({"x"})})


class TestSectorLocalizer:
    def coded_db(self):
        """Presence patterns that form a genuine identifying code."""
        def samples(pattern, n=30):
            cols = []
            for bit in pattern:
                cols.append(np.full(n, -60.0) if bit else np.full(n, np.nan))
            return np.column_stack(cols).astype(np.float32)

        return TrainingDatabase(B, [
            LocationRecord("r1", Point(0, 0), samples((1, 0, 0))),
            LocationRecord("r2", Point(10, 0), samples((1, 1, 0))),
            LocationRecord("r3", Point(20, 0), samples((0, 1, 1))),
        ])

    def test_exact_code_lookup(self):
        loc = SectorLocalizer().fit(self.coded_db())
        assert loc.identifying()
        o = Observation(np.column_stack([np.full(5, -60.0), np.full(5, -60.0), np.full(5, np.nan)]))
        est = loc.locate(o)
        assert est.location_name == "r2"
        assert est.details["hamming_distance"] == 0

    def test_nearest_code_fallback(self):
        loc = SectorLocalizer().fit(self.coded_db())
        # Code {B2} alone doesn't exist; nearest is r2 {B0,B1} or r3 {B1,B2}.
        o = Observation(np.column_stack([np.full(5, np.nan), np.full(5, -60.0), np.full(5, np.nan)]))
        est = loc.locate(o)
        assert est.details["hamming_distance"] == 1

    def test_ambiguous_code_averages(self):
        def s(n=10):
            return np.column_stack([np.full(n, -60.0), np.full(n, np.nan), np.full(n, np.nan)]).astype(np.float32)

        db = TrainingDatabase(B, [
            LocationRecord("a", Point(0, 0), s()),
            LocationRecord("b", Point(10, 0), s()),
        ])
        loc = SectorLocalizer().fit(db)
        assert not loc.identifying()
        o = Observation(np.column_stack([np.full(5, -60.0), np.full(5, np.nan), np.full(5, np.nan)]))
        est = loc.locate(o)
        assert est.position == Point(5, 0)  # centroid of the tied rooms
        assert est.location_name is None

    def test_empty_code_invalid(self):
        loc = SectorLocalizer().fit(self.coded_db())
        o = Observation(np.full((5, 3), np.nan))
        assert not loc.locate(o).valid

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SectorLocalizer(presence_threshold=0.0)
        with pytest.raises(ValueError):
            SectorLocalizer(presence_threshold=1.5)
