"""Tests for the wi-scan format, collections, and capture sessions."""

import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point
from repro.radio.environment import AccessPoint, RadioEnvironment
from repro.radio.scanner import SimulatedScanner
from repro.wiscan.capture import CaptureSession, SurveyPoint
from repro.wiscan.collection import WiScanCollection, _safe_filename
from repro.wiscan.format import (
    WiScanFile,
    WiScanFormatError,
    WiScanRecord,
    parse_wiscan,
    render_wiscan,
)

BSSID1 = "02:00:5e:00:00:01"
BSSID2 = "02:00:5e:00:00:02"


def sample_session(location="kitchen", n=3):
    records = []
    for t in range(n):
        records.append(WiScanRecord(float(t), BSSID1, "net-one", 6, -50.0 - t))
        records.append(WiScanRecord(float(t), BSSID2, "net two", 11, -70.0 + t))
    return WiScanFile(
        location=location,
        records=records,
        position=(12.0, 30.5),
        interval_s=1.0,
        extra_headers={"tool": "test/1.0"},
    )


class TestRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            WiScanRecord(-1.0, BSSID1, "x", 6, -50.0)
        with pytest.raises(ValueError):
            WiScanRecord(0.0, "not-a-mac", "x", 6, -50.0)
        with pytest.raises(ValueError):
            WiScanRecord(0.0, BSSID1, "x", 0, -50.0)
        with pytest.raises(ValueError):
            WiScanRecord(0.0, BSSID1, "x", 6, 5.0)

    def test_bssid_normalized_lowercase(self):
        r = WiScanRecord(0.0, BSSID1.upper(), "x", 6, -50.0)
        assert r.bssid == BSSID1

    def test_render_escapes_tabs(self):
        r = WiScanRecord(0.0, BSSID1, "has\ttab", 6, -50.0)
        assert "\\t" in r.render()
        assert r.render().count("\t") == 4  # field separators only


class TestFormatRoundTrip:
    def test_roundtrip(self):
        session = sample_session()
        parsed = parse_wiscan(render_wiscan(session))
        assert parsed.location == session.location
        assert parsed.position == session.position
        assert parsed.interval_s == session.interval_s
        assert parsed.extra_headers["tool"] == "test/1.0"
        assert parsed.records == session.records

    def test_tab_ssid_roundtrip(self):
        session = WiScanFile(
            location="x",
            records=[WiScanRecord(0.0, BSSID1, "a\tb\\c", 6, -50.0)],
        )
        parsed = parse_wiscan(render_wiscan(session))
        assert parsed.records[0].ssid == "a\tb\\c"

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e4, allow_nan=False),
                st.integers(min_value=1, max_value=14),
                st.floats(min_value=-119.9, max_value=-1.0, allow_nan=False),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, rows):
        records = [
            WiScanRecord(round(t, 3), BSSID1, "s", ch, round(rssi, 1)) for t, ch, rssi in rows
        ]
        session = WiScanFile(location="p", records=records)
        assert parse_wiscan(render_wiscan(session)).records == records


class TestParseErrors:
    def test_missing_magic(self):
        with pytest.raises(WiScanFormatError):
            parse_wiscan("# location: x\n")

    def test_empty(self):
        with pytest.raises(WiScanFormatError):
            parse_wiscan("")

    def test_missing_location(self):
        with pytest.raises(WiScanFormatError, match="location"):
            parse_wiscan("# wi-scan v1\n0.0\t" + BSSID1 + "\ts\t6\t-50.0\n")

    def test_wrong_field_count(self):
        text = "# wi-scan v1\n# location: x\n0.0\t" + BSSID1 + "\t-50.0\n"
        with pytest.raises(WiScanFormatError, match="5 tab-separated"):
            parse_wiscan(text)

    def test_bad_position_header(self):
        with pytest.raises(WiScanFormatError, match="position"):
            parse_wiscan("# wi-scan v1\n# location: x\n# position: 1 2 3\n")

    def test_bad_interval(self):
        with pytest.raises(WiScanFormatError, match="interval"):
            parse_wiscan("# wi-scan v1\n# location: x\n# interval: fast\n")

    def test_error_carries_line_number(self):
        text = "# wi-scan v1\n# location: x\nbroken line\twith\ttabs\n"
        try:
            parse_wiscan(text)
            assert False
        except WiScanFormatError as exc:
            assert exc.line_no == 3

    def test_free_comments_ignored(self):
        text = "# wi-scan v1\n# location: x\n# just a note without colon format!!\n"
        assert parse_wiscan(text).location == "x"

    def test_blank_lines_ignored(self):
        text = "# wi-scan v1\n\n# location: x\n\n"
        assert parse_wiscan(text).location == "x"


class TestSessionHelpers:
    def test_bssids_first_appearance_order(self):
        s = sample_session()
        assert s.bssids() == [BSSID1, BSSID2]

    def test_rssi_matrix(self):
        s = sample_session(n=3)
        m = s.rssi_matrix([BSSID2, BSSID1])
        assert m.shape == (3, 2)
        assert m[0, 1] == -50.0  # BSSID1 at t=0
        assert m[0, 0] == -70.0

    def test_rssi_matrix_missing_ap_nan(self):
        s = sample_session()
        m = s.rssi_matrix([BSSID1, "ff:ff:ff:ff:ff:ff"])
        assert np.isnan(m[:, 1]).all()

    def test_duration(self):
        assert sample_session(n=5).duration_s() == 4.0
        assert WiScanFile(location="x").duration_s() == 0.0


class TestCollection:
    def test_directory_roundtrip(self, tmp_path):
        coll = WiScanCollection({"a": sample_session("a"), "b room": sample_session("b room")})
        coll.save_directory(tmp_path / "survey")
        loaded = WiScanCollection.load(tmp_path / "survey")
        assert sorted(loaded.locations()) == ["a", "b room"]
        assert loaded.session("b room").records == sample_session().records

    def test_nested_directory(self, tmp_path):
        root = tmp_path / "survey"
        (root / "floor1").mkdir(parents=True)
        (root / "floor1" / "a.wi-scan").write_text(render_wiscan(sample_session("a")))
        (root / "b.wi-scan").write_text(render_wiscan(sample_session("b")))
        loaded = WiScanCollection.from_directory(root)
        assert sorted(loaded.locations()) == ["a", "b"]

    def test_zip_roundtrip(self, tmp_path):
        coll = WiScanCollection({"a": sample_session("a")})
        zpath = coll.save_zip(tmp_path / "survey.zip")
        loaded = WiScanCollection.load(zpath)
        assert loaded.locations() == ["a"]

    def test_zip_ignores_non_wiscan_members(self, tmp_path):
        zpath = tmp_path / "s.zip"
        with zipfile.ZipFile(zpath, "w") as zf:
            zf.writestr("a.wi-scan", render_wiscan(sample_session("a")))
            zf.writestr("notes.txt", "hello")
        assert WiScanCollection.load(zpath).locations() == ["a"]

    def test_directory_ignores_other_files(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "a.wi-scan").write_text(render_wiscan(sample_session("a")))
        (root / "plan.gif").write_bytes(b"GIF89a junk")
        assert WiScanCollection.load(root).locations() == ["a"]

    def test_empty_collection_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(WiScanFormatError):
            WiScanCollection.load(tmp_path / "empty")

    def test_missing_source(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WiScanCollection.load(tmp_path / "nope")

    def test_plain_file_rejected(self, tmp_path):
        p = tmp_path / "x.txt"
        p.write_text("hi")
        with pytest.raises(WiScanFormatError):
            WiScanCollection.load(p)

    def test_same_location_merges(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "visit1.wi-scan").write_text(render_wiscan(sample_session("spot", n=2)))
        (root / "visit2.wi-scan").write_text(render_wiscan(sample_session("spot", n=3)))
        loaded = WiScanCollection.load(root)
        assert len(loaded) == 1
        merged = loaded.session("spot")
        assert len(merged.records) == (2 + 3) * 2
        # Timestamps must not collide after merge.
        times = [(r.time_s, r.bssid) for r in merged.records]
        assert len(set(times)) == len(times)

    def test_conflicting_positions_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        a = sample_session("spot")
        b = sample_session("spot")
        object.__setattr__(b, "position", (99.0, 99.0)) if False else None
        b.position = (99.0, 99.0)
        (root / "v1.wi-scan").write_text(render_wiscan(a))
        (root / "v2.wi-scan").write_text(render_wiscan(b))
        with pytest.raises(WiScanFormatError, match="conflicting"):
            WiScanCollection.load(root)

    def test_all_bssids_union(self):
        coll = WiScanCollection({"a": sample_session("a")})
        assert coll.all_bssids() == [BSSID1, BSSID2]

    def test_total_records(self):
        coll = WiScanCollection({"a": sample_session("a", n=4)})
        assert coll.total_records() == 8

    def test_unknown_location(self):
        coll = WiScanCollection({"a": sample_session("a")})
        with pytest.raises(KeyError):
            coll.session("zzz")

    def test_safe_filename(self):
        assert _safe_filename("room D22") == "room_D22"
        assert _safe_filename("a/b\\c") == "a_b_c"
        assert _safe_filename("") == "unnamed"


class TestCaptureSession:
    @pytest.fixture(scope="class")
    def scanner(self):
        aps = [AccessPoint("A", Point(0, 0)), AccessPoint("B", Point(30, 0)), AccessPoint("C", Point(15, 25))]
        return SimulatedScanner(RadioEnvironment(aps, seed=0))

    def test_capture_point(self, scanner):
        cs = CaptureSession(scanner, dwell_s=5.0)
        session = cs.capture_point(SurveyPoint("p1", Point(10, 10)), rng=0)
        assert session.location == "p1"
        assert session.position == (10.0, 10.0)
        assert session.interval_s == 1.0
        assert len(session.records) > 0
        assert session.extra_headers["tool"].startswith("repro-simscan")

    def test_capture_survey_independent_streams(self, scanner):
        cs = CaptureSession(scanner, dwell_s=5.0)
        pts = [SurveyPoint("a", Point(5, 5)), SurveyPoint("b", Point(20, 10))]
        c1 = cs.capture_survey(pts, rng=0)
        # Reordering must not change a point's samples.
        c2 = cs.capture_survey(list(reversed(pts)), rng=0)
        m1 = c1.session("a").rssi_matrix(c1.all_bssids())
        m2 = c2.session("a").rssi_matrix(c1.all_bssids())
        assert np.array_equal(m1, m2, equal_nan=True)

    def test_duplicate_names_rejected(self, scanner):
        cs = CaptureSession(scanner)
        pts = [SurveyPoint("a", Point(0, 0)), SurveyPoint("a", Point(1, 1))]
        with pytest.raises(ValueError):
            cs.capture_survey(pts, rng=0)

    def test_empty_survey_rejected(self, scanner):
        with pytest.raises(ValueError):
            CaptureSession(scanner).capture_survey([], rng=0)

    def test_validation(self, scanner):
        with pytest.raises(ValueError):
            CaptureSession(scanner, dwell_s=0)
        with pytest.raises(ValueError):
            SurveyPoint("", Point(0, 0))

    def test_files_parse_back(self, scanner, tmp_path):
        cs = CaptureSession(scanner, dwell_s=4.0)
        coll = cs.capture_survey([SurveyPoint("spot x", Point(3, 3))], rng=1)
        coll.save_directory(tmp_path)
        loaded = WiScanCollection.load(tmp_path)
        assert loaded.locations() == ["spot x"]
