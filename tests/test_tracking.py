"""Tests for the tracking filters (future work §6.2)."""

import numpy as np
import pytest

from repro.algorithms.base import Observation
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.tracking import (
    DiscreteBayesTracker,
    KalmanTracker,
    ParticleFilterTracker,
    RSSIField,
)
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
AP_POS = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]


def rssi_at(p: Point) -> np.ndarray:
    """A clean synthetic radio map: log-distance, no noise."""
    d = np.array([max(p.distance_to(a), 1.0) for a in AP_POS])
    return -35.0 - 25.0 * np.log10(d)


def grid_db(step=10.0, n_samples=10, noise=1.0, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    y = 0.0
    while y <= 40.0:
        x = 0.0
        while x <= 50.0:
            mean = rssi_at(Point(x, y))
            samples = rng.normal(mean, noise, size=(n_samples, 4)).astype(np.float32)
            records.append(LocationRecord(f"g{x:g}-{y:g}", Point(x, y), samples))
            x += step
        y += step
    return TrainingDatabase(B, records)


def walk_observations(path, noise=2.0, seed=1):
    rng = np.random.default_rng(seed)
    return [
        Observation(rng.normal(rssi_at(p), noise, size=(3, 4)))
        for p in path
    ]


def straight_path(n=30):
    return [Point(5 + 40 * i / (n - 1), 5 + 30 * i / (n - 1)) for i in range(n)]


@pytest.fixture(scope="module")
def db():
    return grid_db()


@pytest.fixture(scope="module")
def emission(db):
    return ProbabilisticLocalizer().fit(db)


class TestDiscreteBayes:
    def test_initial_belief_uniform(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        assert np.allclose(t.belief, 1.0 / len(db))

    def test_belief_stays_normalized(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        for o in walk_observations(straight_path(5)):
            t.step(o)
            assert t.belief.sum() == pytest.approx(1.0)

    def test_tracks_a_walk(self, emission, db):
        t = DiscreteBayesTracker(emission, db, speed_ft_s=4.0)
        path = straight_path()
        ests = t.track(walk_observations(path), dt_s=1.0)
        tail_err = [e.position.distance_to(p) for e, p in zip(ests, path)][5:]
        assert np.mean(tail_err) < 9.0

    def test_smoother_than_static(self, emission, db):
        """Filtering must reduce estimate jumpiness vs per-shot argmax."""
        t = DiscreteBayesTracker(emission, db, speed_ft_s=3.0)
        path = straight_path()
        obs = walk_observations(path, noise=4.0, seed=3)
        tracked = t.track(obs)
        static = [emission.locate(o) for o in obs]

        def jumpiness(ests):
            ps = [e.position for e in ests]
            return np.mean([a.distance_to(b) for a, b in zip(ps, ps[1:])])

        assert jumpiness(tracked) < jumpiness(static)

    def test_reset(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        t.step(walk_observations([Point(5, 5)])[0])
        assert t.belief.max() > 1.0 / len(db)
        t.reset()
        assert np.allclose(t.belief, 1.0 / len(db))

    def test_validation(self, emission, db):
        with pytest.raises(TypeError):
            DiscreteBayesTracker(object(), db)
        with pytest.raises(ValueError):
            DiscreteBayesTracker(emission, db, speed_ft_s=0)
        with pytest.raises(ValueError):
            DiscreteBayesTracker(emission, db, teleport=1.0)
        t = DiscreteBayesTracker(emission, db)
        with pytest.raises(ValueError):
            t.step(walk_observations([Point(0, 0)])[0], dt_s=0)

    def test_step_with_loglik_bit_identical_to_step(self, emission, db):
        """The serving layer's batched path: a precomputed emission row
        fed to ``step_with_loglik`` must reproduce ``step`` exactly."""
        observed = walk_observations(straight_path(8))
        serial = DiscreteBayesTracker(emission, db)
        batched = DiscreteBayesTracker(emission, db)
        matrix = emission.log_likelihood_matrix(observed)
        for i, o in enumerate(observed):
            a = serial.step(o, 1.0)
            b = batched.step_with_loglik(matrix[i], o, 1.0)
            assert a.position.x == b.position.x
            assert a.position.y == b.position.y
            assert a.score == b.score
            np.testing.assert_array_equal(serial.belief, batched.belief)

    def test_emission_localizer_requires_matrix_support(self, emission, db):
        assert DiscreteBayesTracker(emission, db).emission_localizer is emission

        class _NoMatrix:
            def log_likelihoods(self, observation):
                return np.zeros(len(db))

        assert DiscreteBayesTracker(_NoMatrix(), db).emission_localizer is None

    def test_loglik_ignored_on_silent_scan(self, emission, db):
        """A precomputed row must not inject evidence ``step`` would
        never compute: nothing heard → predict-only, invalid fix."""
        t = DiscreteBayesTracker(emission, db)
        t.step(walk_observations([Point(25, 20)])[0], 1.0)
        silent = Observation(np.full((2, 4), np.nan))
        est = t.step_with_loglik(np.zeros(len(db)), silent, 1.0)
        assert est.valid is False


class TestKalman:
    def test_initializes_on_first_fix(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        est = t.step(walk_observations([Point(10, 10)])[0])
        assert est.valid

    def test_no_fix_yet_invalid(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        silent = Observation(np.full((2, 4), np.nan))
        est = t.step(silent)
        assert not est.valid

    def test_tracks_and_smooths(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        path = straight_path()
        obs = walk_observations(path, noise=4.0, seed=5)
        raw = [inner.locate(o) for o in obs]
        t = KalmanTracker(inner, measurement_std_ft=8.0)
        smoothed = t.track(obs)
        raw_err = np.mean([e.position.distance_to(p) for e, p in zip(raw, path)][5:])
        kal_err = np.mean([e.position.distance_to(p) for e, p in zip(smoothed, path)][5:])
        assert kal_err < raw_err * 1.15  # at worst marginally worse, usually better

    def test_velocity_estimated(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        path = straight_path()
        ests = t.track(walk_observations(path, noise=1.0), dt_s=1.0)
        vx, vy = ests[-1].details["velocity_ft_s"]
        # True velocity ≈ (40/29, 30/29) ≈ (1.4, 1.0) ft/s, same sign.
        assert vx > 0 and vy > 0

    def test_coasts_through_dropout(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        t.step(walk_observations([Point(10, 10)])[0])
        est = t.step(Observation(np.full((2, 4), np.nan)))  # measurement gap
        assert est.valid  # prediction continues

    def test_validation(self, db):
        inner = KNNLocalizer().fit(db)
        with pytest.raises(ValueError):
            KalmanTracker(inner, process_accel_ft_s2=0)
        with pytest.raises(ValueError):
            KalmanTracker(inner, measurement_std_ft=0)
        t = KalmanTracker(inner)
        with pytest.raises(ValueError):
            t.step(walk_observations([Point(0, 0)])[0], dt_s=-1)


class TestRSSIField:
    def test_interpolates_training_points_exactly_nearby(self, db):
        field = RSSIField(db, k=1)
        rec = db.records[7]
        pred = field.expected_rssi(np.array([[rec.position.x, rec.position.y]]))[0]
        assert np.allclose(pred, rec.mean_rssi(), atol=1e-3)

    def test_interpolation_between_points(self, db):
        field = RSSIField(db, k=4)
        pred = field.expected_rssi(np.array([[25.0, 20.0]]))[0]
        true = rssi_at(Point(25, 20))
        assert np.abs(pred - true).max() < 5.0

    def test_shapes(self, db):
        field = RSSIField(db)
        out = field.expected_rssi(np.zeros((7, 2)))
        assert out.shape == (7, 4)
        assert field.sigma_db.shape == (4,)

    def test_validation(self, db):
        with pytest.raises(ValueError):
            RSSIField(TrainingDatabase(B, []), k=1)
        with pytest.raises(ValueError):
            RSSIField(db, k=0)


class TestParticleFilter:
    def make(self, db, seed=0, n=400):
        return ParticleFilterTracker(
            RSSIField(db), bounds=(0, 0, 50, 40), n_particles=n, speed_ft_s=3.0, rng=seed
        )

    def test_converges_to_static_target(self, db):
        t = self.make(db)
        target = Point(35, 15)
        obs = walk_observations([target] * 25, noise=2.0, seed=7)
        est = t.track(obs)[-1]
        assert est.position.distance_to(target) < 8.0

    def test_particles_stay_in_bounds(self, db):
        t = self.make(db)
        for o in walk_observations([Point(1, 1)] * 10, seed=8):
            t.step(o)
            assert (t._particles[:, 0] >= 0).all() and (t._particles[:, 0] <= 50).all()
            assert (t._particles[:, 1] >= 0).all() and (t._particles[:, 1] <= 40).all()

    def test_tracks_walk(self, db):
        t = self.make(db, n=600)
        path = straight_path()
        ests = t.track(walk_observations(path, noise=2.0, seed=9))
        tail = [e.position.distance_to(p) for e, p in zip(ests, path)][10:]
        assert np.mean(tail) < 10.0

    def test_reproducible_given_seed(self, db):
        obs = walk_observations([Point(20, 20)] * 5, seed=10)
        a = self.make(db, seed=42).track(obs)[-1]
        b = self.make(db, seed=42).track(obs)[-1]
        assert a.position == b.position

    def test_silent_observation_is_motion_only(self, db):
        t = self.make(db)
        est = t.step(Observation(np.full((2, 4), np.nan)))
        assert not est.valid  # nothing heard

    def test_ess_and_resampling(self, db):
        t = self.make(db)
        for o in walk_observations([Point(25, 20)] * 5, seed=11):
            t.step(o)
        assert t.effective_sample_size() > t.n_particles / 4

    def test_validation(self, db):
        field = RSSIField(db)
        with pytest.raises(ValueError):
            ParticleFilterTracker(field, bounds=(10, 0, 0, 40))
        with pytest.raises(ValueError):
            ParticleFilterTracker(field, bounds=(0, 0, 50, 40), n_particles=5)
        with pytest.raises(ValueError):
            ParticleFilterTracker(field, bounds=(0, 0, 50, 40), speed_ft_s=0)


# ----------------------------------------------------------------------
# PR 7 correctness fixes: degenerate updates, zero evidence, wire-safe
# details, and the measurement split the serving sessions batch over.
# ----------------------------------------------------------------------
class _DegenerateEmission:
    """Emission stub assigning zero probability everywhere (all -inf)."""

    def __init__(self, n, fill=-np.inf):
        self.n = n
        self.fill = fill

    def log_likelihoods(self, observation):
        return np.full(self.n, self.fill)


class _FlakyEmission:
    """Real emission that returns one degenerate row on demand."""

    def __init__(self, real, n):
        self.real = real
        self.n = n
        self.fail_next = False

    def log_likelihoods(self, observation):
        if self.fail_next:
            self.fail_next = False
            return np.full(self.n, -np.inf)
        return self.real.log_likelihoods(observation)


def _silent():
    return Observation(np.full((2, 4), np.nan))


class TestBayesDegenerateUpdate:
    """bayes.py bugfix: an all -inf / non-finite emission row used to
    turn the belief into NaN permanently (``ll - ll.max()`` with
    ``max() == -inf``); now it is a predict-only step."""

    @pytest.mark.parametrize("fill", [-np.inf, np.nan])
    def test_predict_only_keeps_belief_normalized(self, db, fill):
        t = DiscreteBayesTracker(_DegenerateEmission(len(db), fill), db)
        est = t.step(walk_observations([Point(5, 5)])[0])
        assert np.all(np.isfinite(t.belief))
        assert t.belief.sum() == pytest.approx(1.0)
        assert est.valid  # evidence existed; the emission just refused it
        assert est.details["degenerate_update"] is True

    def test_degenerate_step_is_counted(self, db):
        from repro import obs

        previous = obs.set_registry(obs.MetricsRegistry())
        try:
            t = DiscreteBayesTracker(_DegenerateEmission(len(db)), db)
            t.step(walk_observations([Point(5, 5)])[0])
            t.step(walk_observations([Point(5, 5)])[0])
            counters = obs.snapshot()["counters"]
            assert counters["tracking.degenerate_updates{tracker=bayes}"] == 2
        finally:
            obs.set_registry(previous)

    def test_belief_not_poisoned_recovers_next_step(self, emission, db):
        flaky = _FlakyEmission(emission, len(db))
        t = DiscreteBayesTracker(flaky, db, speed_ft_s=4.0)
        path = straight_path(8)
        observations = walk_observations(path)
        t.step(observations[0])
        flaky.fail_next = True
        t.step(observations[1])  # degenerate mid-track
        for o in observations[2:]:
            est = t.step(o)
            assert np.all(np.isfinite(t.belief))
        # The filter still tracks after the bad row — belief was kept,
        # not poisoned into NaN.
        assert est.position.distance_to(path[-1]) < 12.0

    def test_old_fallback_path_still_works(self, emission, db):
        """A *partially* finite row with no overlap vs the prediction
        still answers from the emission alone (kidnapped robot)."""
        t = DiscreteBayesTracker(emission, db, speed_ft_s=1.0, teleport=0.0)
        # Lock the belief onto one corner...
        for o in walk_observations([Point(0, 0)] * 4):
            t.step(o)
        # ...then observe the far corner; the update must follow the
        # emission rather than zero out.
        est = t.step(walk_observations([Point(50, 40)], seed=9)[0])
        assert np.all(np.isfinite(t.belief))
        assert t.belief.sum() == pytest.approx(1.0)
        assert est.valid


class TestZeroEvidenceParity:
    """bayes.py bugfix: an all-unheard observation is not a fix.  All
    three trackers must agree on a silent *first* observation."""

    def test_bayes_silent_step_invalid(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        before = t.belief
        est = t.step(_silent())
        assert not est.valid
        assert est.details["reason"] == "no APs heard"
        # Predict-only: still normalized, still finite.
        assert t.belief.sum() == pytest.approx(1.0)
        assert np.all(np.isfinite(t.belief))

    def test_cross_tracker_parity_on_silence(self, emission, db):
        inner = KNNLocalizer(k=3).fit(db)
        trackers = {
            "bayes": DiscreteBayesTracker(emission, db),
            "kalman": KalmanTracker(inner),
            "particle": ParticleFilterTracker(
                RSSIField(db), bounds=(0, 0, 50, 40), rng=0
            ),
        }
        verdicts = {name: t.step(_silent()).valid for name, t in trackers.items()}
        assert verdicts == {"bayes": False, "kalman": False, "particle": False}

    def test_bayes_recovers_validity_after_silence(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        t.step(_silent())
        est = t.step(walk_observations([Point(5, 5)])[0])
        assert est.valid


def _assert_json_safe(value, path="details"):
    if isinstance(value, dict):
        for k, v in value.items():
            assert isinstance(k, str), f"non-str key at {path}: {k!r}"
            _assert_json_safe(v, f"{path}.{k}")
    elif isinstance(value, (list, tuple)):
        for i, v in enumerate(value):
            _assert_json_safe(v, f"{path}[{i}]")
    else:
        assert value is None or isinstance(value, (bool, int, float, str)), (
            f"non-JSON value at {path}: {type(value).__name__}"
        )
        if isinstance(value, float):
            assert np.isfinite(value), f"non-finite float at {path}"


class TestWireSafeDetails:
    """Details bugfix: estimates must carry JSON-safe summaries, not a
    nested LocationEstimate (kalman) or a numpy posterior (bayes)."""

    def test_kalman_raw_fix_is_plain_floats(self, db):
        t = KalmanTracker(KNNLocalizer(k=3).fit(db))
        est = t.step(walk_observations([Point(10, 10)])[0])
        raw = est.details["raw"]
        assert isinstance(raw, dict)
        assert isinstance(raw["x"], float) and isinstance(raw["y"], float)
        assert raw["valid"] is True
        _assert_json_safe(est.details)

    def test_kalman_coast_raw_reports_invalid_fix(self, db):
        t = KalmanTracker(KNNLocalizer(k=3).fit(db))
        t.step(walk_observations([Point(10, 10)])[0])
        est = t.step(_silent())
        assert est.valid  # coasting is still a track
        assert est.details["raw"]["valid"] is False
        _assert_json_safe(est.details)

    def test_bayes_posterior_summary(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        est = t.step(walk_observations([Point(5, 5)])[0])
        assert "posterior" not in est.details
        assert est.details["posterior_entropy"] >= 0.0
        top = est.details["top_k"]
        assert top[0]["point"] == est.details["map_point"]
        assert all(a["p"] >= b["p"] for a, b in zip(top, top[1:]))
        _assert_json_safe(est.details)

    def test_particle_details(self, db):
        t = ParticleFilterTracker(RSSIField(db), bounds=(0, 0, 50, 40), rng=0)
        est = t.step(walk_observations([Point(25, 20)])[0])
        _assert_json_safe(est.details)

    def test_every_tracker_details_survive_strict_json(self, emission, db):
        import json

        inner = KNNLocalizer(k=3).fit(db)
        trackers = [
            DiscreteBayesTracker(emission, db),
            KalmanTracker(inner),
            ParticleFilterTracker(RSSIField(db), bounds=(0, 0, 50, 40), rng=0),
        ]
        for t in trackers:
            for o in walk_observations(straight_path(4)):
                est = t.step(o)
                json.dumps(est.details, allow_nan=False)  # raises if unsafe


class TestMeasurementSplit:
    """The serving layer batches kalman measurement passes; split and
    unsplit stepping must agree bit for bit."""

    def test_kalman_split_parity(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        whole = KalmanTracker(inner)
        split = KalmanTracker(inner)
        assert split.measurement_localizer is inner
        for o in walk_observations(straight_path(10)):
            a = whole.step(o)
            m = split.measure(o)
            b = split.step_with_measurement(m, o)
            assert a.position.x == b.position.x and a.position.y == b.position.y
            assert a.score == b.score

    def test_non_splittable_trackers_say_so(self, emission, db):
        bayes = DiscreteBayesTracker(emission, db)
        particle = ParticleFilterTracker(RSSIField(db), bounds=(0, 0, 50, 40))
        assert bayes.measurement_localizer is None
        assert particle.measurement_localizer is None
        with pytest.raises(NotImplementedError):
            bayes.step_with_measurement(None, _silent())


class TestRebind:
    """Hot-reload support: trackers re-point at a new model generation
    without discarding filter state (where a mapping exists)."""

    def test_kalman_rebind_keeps_state(self, db):
        t = KalmanTracker(KNNLocalizer(k=3).fit(db))
        t.step(walk_observations([Point(10, 10)])[0])
        state = t._x.copy()
        new_inner = KNNLocalizer(k=4).fit(db)
        assert t.rebind(new_inner) is True
        assert t.localizer is new_inner
        assert np.array_equal(t._x, state)

    def test_bayes_rebind_same_grid_keeps_belief(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        t.step(walk_observations([Point(5, 5)])[0])
        belief = t.belief
        assert t.rebind(ProbabilisticLocalizer().fit(db), db) is True
        assert np.array_equal(t.belief, belief)

    def test_bayes_rebind_new_grid_resets(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        t.step(walk_observations([Point(5, 5)])[0])
        small = grid_db(step=25.0)
        assert len(small) != len(db)
        assert t.rebind(ProbabilisticLocalizer().fit(small), small) is False
        assert np.allclose(t.belief, 1.0 / len(small))

    def test_particle_rebind_keeps_cloud(self, db):
        t = ParticleFilterTracker(RSSIField(db), bounds=(0, 0, 50, 40), rng=0)
        t.step(walk_observations([Point(25, 20)])[0])
        cloud = t._particles.copy()
        new_field = RSSIField(db, k=6)
        assert t.rebind(new_field) is True
        assert t.field is new_field
        assert np.array_equal(t._particles, cloud)
