"""Tests for the tracking filters (future work §6.2)."""

import numpy as np
import pytest

from repro.algorithms.base import Observation
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.tracking import (
    DiscreteBayesTracker,
    KalmanTracker,
    ParticleFilterTracker,
    RSSIField,
)
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
AP_POS = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]


def rssi_at(p: Point) -> np.ndarray:
    """A clean synthetic radio map: log-distance, no noise."""
    d = np.array([max(p.distance_to(a), 1.0) for a in AP_POS])
    return -35.0 - 25.0 * np.log10(d)


def grid_db(step=10.0, n_samples=10, noise=1.0, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    y = 0.0
    while y <= 40.0:
        x = 0.0
        while x <= 50.0:
            mean = rssi_at(Point(x, y))
            samples = rng.normal(mean, noise, size=(n_samples, 4)).astype(np.float32)
            records.append(LocationRecord(f"g{x:g}-{y:g}", Point(x, y), samples))
            x += step
        y += step
    return TrainingDatabase(B, records)


def walk_observations(path, noise=2.0, seed=1):
    rng = np.random.default_rng(seed)
    return [
        Observation(rng.normal(rssi_at(p), noise, size=(3, 4)))
        for p in path
    ]


def straight_path(n=30):
    return [Point(5 + 40 * i / (n - 1), 5 + 30 * i / (n - 1)) for i in range(n)]


@pytest.fixture(scope="module")
def db():
    return grid_db()


@pytest.fixture(scope="module")
def emission(db):
    return ProbabilisticLocalizer().fit(db)


class TestDiscreteBayes:
    def test_initial_belief_uniform(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        assert np.allclose(t.belief, 1.0 / len(db))

    def test_belief_stays_normalized(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        for o in walk_observations(straight_path(5)):
            t.step(o)
            assert t.belief.sum() == pytest.approx(1.0)

    def test_tracks_a_walk(self, emission, db):
        t = DiscreteBayesTracker(emission, db, speed_ft_s=4.0)
        path = straight_path()
        ests = t.track(walk_observations(path), dt_s=1.0)
        tail_err = [e.position.distance_to(p) for e, p in zip(ests, path)][5:]
        assert np.mean(tail_err) < 9.0

    def test_smoother_than_static(self, emission, db):
        """Filtering must reduce estimate jumpiness vs per-shot argmax."""
        t = DiscreteBayesTracker(emission, db, speed_ft_s=3.0)
        path = straight_path()
        obs = walk_observations(path, noise=4.0, seed=3)
        tracked = t.track(obs)
        static = [emission.locate(o) for o in obs]

        def jumpiness(ests):
            ps = [e.position for e in ests]
            return np.mean([a.distance_to(b) for a, b in zip(ps, ps[1:])])

        assert jumpiness(tracked) < jumpiness(static)

    def test_reset(self, emission, db):
        t = DiscreteBayesTracker(emission, db)
        t.step(walk_observations([Point(5, 5)])[0])
        assert t.belief.max() > 1.0 / len(db)
        t.reset()
        assert np.allclose(t.belief, 1.0 / len(db))

    def test_validation(self, emission, db):
        with pytest.raises(TypeError):
            DiscreteBayesTracker(object(), db)
        with pytest.raises(ValueError):
            DiscreteBayesTracker(emission, db, speed_ft_s=0)
        with pytest.raises(ValueError):
            DiscreteBayesTracker(emission, db, teleport=1.0)
        t = DiscreteBayesTracker(emission, db)
        with pytest.raises(ValueError):
            t.step(walk_observations([Point(0, 0)])[0], dt_s=0)


class TestKalman:
    def test_initializes_on_first_fix(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        est = t.step(walk_observations([Point(10, 10)])[0])
        assert est.valid

    def test_no_fix_yet_invalid(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        silent = Observation(np.full((2, 4), np.nan))
        est = t.step(silent)
        assert not est.valid

    def test_tracks_and_smooths(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        path = straight_path()
        obs = walk_observations(path, noise=4.0, seed=5)
        raw = [inner.locate(o) for o in obs]
        t = KalmanTracker(inner, measurement_std_ft=8.0)
        smoothed = t.track(obs)
        raw_err = np.mean([e.position.distance_to(p) for e, p in zip(raw, path)][5:])
        kal_err = np.mean([e.position.distance_to(p) for e, p in zip(smoothed, path)][5:])
        assert kal_err < raw_err * 1.15  # at worst marginally worse, usually better

    def test_velocity_estimated(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        path = straight_path()
        ests = t.track(walk_observations(path, noise=1.0), dt_s=1.0)
        vx, vy = ests[-1].details["velocity_ft_s"]
        # True velocity ≈ (40/29, 30/29) ≈ (1.4, 1.0) ft/s, same sign.
        assert vx > 0 and vy > 0

    def test_coasts_through_dropout(self, db):
        inner = KNNLocalizer(k=3).fit(db)
        t = KalmanTracker(inner)
        t.step(walk_observations([Point(10, 10)])[0])
        est = t.step(Observation(np.full((2, 4), np.nan)))  # measurement gap
        assert est.valid  # prediction continues

    def test_validation(self, db):
        inner = KNNLocalizer().fit(db)
        with pytest.raises(ValueError):
            KalmanTracker(inner, process_accel_ft_s2=0)
        with pytest.raises(ValueError):
            KalmanTracker(inner, measurement_std_ft=0)
        t = KalmanTracker(inner)
        with pytest.raises(ValueError):
            t.step(walk_observations([Point(0, 0)])[0], dt_s=-1)


class TestRSSIField:
    def test_interpolates_training_points_exactly_nearby(self, db):
        field = RSSIField(db, k=1)
        rec = db.records[7]
        pred = field.expected_rssi(np.array([[rec.position.x, rec.position.y]]))[0]
        assert np.allclose(pred, rec.mean_rssi(), atol=1e-3)

    def test_interpolation_between_points(self, db):
        field = RSSIField(db, k=4)
        pred = field.expected_rssi(np.array([[25.0, 20.0]]))[0]
        true = rssi_at(Point(25, 20))
        assert np.abs(pred - true).max() < 5.0

    def test_shapes(self, db):
        field = RSSIField(db)
        out = field.expected_rssi(np.zeros((7, 2)))
        assert out.shape == (7, 4)
        assert field.sigma_db.shape == (4,)

    def test_validation(self, db):
        with pytest.raises(ValueError):
            RSSIField(TrainingDatabase(B, []), k=1)
        with pytest.raises(ValueError):
            RSSIField(db, k=0)


class TestParticleFilter:
    def make(self, db, seed=0, n=400):
        return ParticleFilterTracker(
            RSSIField(db), bounds=(0, 0, 50, 40), n_particles=n, speed_ft_s=3.0, rng=seed
        )

    def test_converges_to_static_target(self, db):
        t = self.make(db)
        target = Point(35, 15)
        obs = walk_observations([target] * 25, noise=2.0, seed=7)
        est = t.track(obs)[-1]
        assert est.position.distance_to(target) < 8.0

    def test_particles_stay_in_bounds(self, db):
        t = self.make(db)
        for o in walk_observations([Point(1, 1)] * 10, seed=8):
            t.step(o)
            assert (t._particles[:, 0] >= 0).all() and (t._particles[:, 0] <= 50).all()
            assert (t._particles[:, 1] >= 0).all() and (t._particles[:, 1] <= 40).all()

    def test_tracks_walk(self, db):
        t = self.make(db, n=600)
        path = straight_path()
        ests = t.track(walk_observations(path, noise=2.0, seed=9))
        tail = [e.position.distance_to(p) for e, p in zip(ests, path)][10:]
        assert np.mean(tail) < 10.0

    def test_reproducible_given_seed(self, db):
        obs = walk_observations([Point(20, 20)] * 5, seed=10)
        a = self.make(db, seed=42).track(obs)[-1]
        b = self.make(db, seed=42).track(obs)[-1]
        assert a.position == b.position

    def test_silent_observation_is_motion_only(self, db):
        t = self.make(db)
        est = t.step(Observation(np.full((2, 4), np.nan)))
        assert not est.valid  # nothing heard

    def test_ess_and_resampling(self, db):
        t = self.make(db)
        for o in walk_observations([Point(25, 20)] * 5, seed=11):
            t.step(o)
        assert t.effective_sample_size() > t.n_particles / 4

    def test_validation(self, db):
        field = RSSIField(db)
        with pytest.raises(ValueError):
            ParticleFilterTracker(field, bounds=(10, 0, 0, 40))
        with pytest.raises(ValueError):
            ParticleFilterTracker(field, bounds=(0, 0, 50, 40), n_particles=5)
        with pytest.raises(ValueError):
            ParticleFilterTracker(field, bounds=(0, 0, 50, 40), speed_ft_s=0)
