"""Tests for the planning package: coverage, quality, placement."""

import numpy as np
import pytest

from repro.core.geometry import Point
from repro.planning.coverage import audible_count_grid, coverage_map
from repro.planning.placement import (
    PlacementResult,
    _objective_factory,
    corner_placement,
    optimize_placement,
)
from repro.planning.quality import (
    expected_confusion,
    fingerprint_separability,
    site_quality,
)
from repro.radio.environment import AccessPoint, RadioEnvironment, Wall
from repro.radio.pathloss import LogDistanceModel

BOUNDS = (0.0, 0.0, 50.0, 40.0)


def corner_env(**kwargs):
    aps = [
        AccessPoint("A", Point(0, 0)),
        AccessPoint("B", Point(50, 0)),
        AccessPoint("C", Point(50, 40)),
        AccessPoint("D", Point(0, 40)),
    ]
    return RadioEnvironment(aps, shadowing_sigma_db=0.0, **kwargs)


def grid_points(step=10.0):
    xs, ys = np.meshgrid(np.arange(0, 51, step), np.arange(0, 41, step))
    return np.column_stack([xs.ravel(), ys.ravel()])


class TestCoverage:
    def test_full_coverage_small_house(self):
        cm = coverage_map(corner_env(), BOUNDS, resolution_ft=5.0)
        assert cm.fraction_covered(1) == 1.0
        assert cm.fraction_covered(4) == 1.0
        assert cm.dead_zones(3) == []

    def test_shapes(self):
        cm = coverage_map(corner_env(), BOUNDS, resolution_ft=10.0)
        assert cm.xs.shape == (6,)
        assert cm.ys.shape == (5,)
        assert cm.mean_rssi.shape == (5, 6, 4)
        assert cm.audible_count.shape == (5, 6)
        assert cm.rssi_of_ap(2).shape == (5, 6)

    def test_strongest_ap_voronoi(self):
        cm = coverage_map(corner_env(), BOUNDS, resolution_ft=1.0)
        strongest = cm.strongest_ap()
        # Near each corner, that corner's AP must dominate.
        assert strongest[0, 0] == 0       # (0, 0) → AP A
        assert strongest[0, -1] == 1      # (50, 0) → AP B
        assert strongest[-1, -1] == 2     # (50, 40) → AP C
        assert strongest[-1, 0] == 3      # (0, 40) → AP D

    def test_deaf_environment_has_dead_zones(self):
        env = corner_env(detection_threshold_dbm=-55.0)
        cm = coverage_map(env, BOUNDS, resolution_ft=5.0)
        assert cm.fraction_covered(3) < 1.0
        assert len(cm.dead_zones(3)) > 0

    def test_audible_count_grid_shortcut(self):
        counts = audible_count_grid(corner_env(), BOUNDS, resolution_ft=10.0)
        assert counts.shape == (5, 6)
        assert (counts == 4).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_map(corner_env(), (10, 0, 0, 40))
        with pytest.raises(ValueError):
            coverage_map(corner_env(), BOUNDS, resolution_ft=0)

    def test_min_aps_validation(self):
        cm = coverage_map(corner_env(), BOUNDS, resolution_ft=10.0)
        with pytest.raises(ValueError):
            cm.fraction_covered(0)


class TestQuality:
    def test_dprime_matrix_properties(self):
        dp = fingerprint_separability(corner_env(), grid_points())
        assert dp.shape == (30, 30)
        assert np.allclose(np.diag(dp), 0.0)
        assert np.allclose(dp, dp.T)
        assert (dp >= 0).all()

    def test_dprime_scales_inversely_with_noise(self):
        env = corner_env()
        pts = grid_points()
        dp_quiet = fingerprint_separability(env, pts, noise_std_db=1.0)
        dp_loud = fingerprint_separability(env, pts, noise_std_db=8.0)
        off = ~np.eye(len(pts), dtype=bool)
        assert np.allclose(dp_quiet[off] / dp_loud[off], 8.0)

    def test_confusion_monotone_in_dprime(self):
        conf = expected_confusion(np.array([[0.0, 1.0], [1.0, 0.0]]))
        conf2 = expected_confusion(np.array([[0.0, 4.0], [4.0, 0.0]]))
        assert conf[0, 1] > conf2[0, 1]
        assert conf[0, 0] == 0.0  # diagonal zeroed

    def test_confusion_half_at_zero_dprime(self):
        conf = expected_confusion(np.array([[0.0, 0.0], [0.0, 0.0]]))
        assert conf[0, 1] == pytest.approx(0.5)

    def test_site_quality_summary(self):
        q = site_quality(corner_env(), grid_points())
        assert q.min_neighbor_dprime > 0
        assert q.min_neighbor_dprime <= q.median_neighbor_dprime
        assert 0 <= q.max_pair_confusion <= 0.5
        assert "d'" in q.summary()

    def test_more_aps_improve_quality(self):
        few = corner_env()
        aps8 = list(few.aps) + [
            AccessPoint("E", Point(25, 0)),
            AccessPoint("F", Point(50, 20)),
            AccessPoint("G", Point(25, 40)),
            AccessPoint("H", Point(0, 20)),
        ]
        many = RadioEnvironment(aps8, shadowing_sigma_db=0.0)
        q_few = site_quality(few, grid_points())
        q_many = site_quality(many, grid_points())
        assert q_many.min_neighbor_dprime > q_few.min_neighbor_dprime

    def test_validation(self):
        with pytest.raises(ValueError):
            site_quality(corner_env(), grid_points()[:1])
        with pytest.raises(ValueError):
            site_quality(corner_env(), grid_points(), neighbor_radius_ft=0.1)
        with pytest.raises(ValueError):
            fingerprint_separability(corner_env(), grid_points(), noise_std_db=0)


class TestPlacement:
    def test_optimizer_beats_or_matches_corners(self):
        grid = grid_points()
        result = optimize_placement(
            4, BOUNDS, eval_points=grid, candidate_spacing_ft=12.5
        )
        obj = _objective_factory(
            (), grid, LogDistanceModel(), 4.0, 15.0, kind="damage"
        )
        assert result.objective >= obj(corner_placement(BOUNDS)) - 1e-9

    def test_positions_inside_bounds(self):
        result = optimize_placement(3, BOUNDS, candidate_spacing_ft=12.5)
        for p in result.positions:
            assert 0 <= p.x <= 50 and 0 <= p.y <= 40
        assert len(result.positions) == 3
        assert len(set(result.positions)) == 3

    def test_history_grows_with_aps(self):
        result = optimize_placement(4, BOUNDS, candidate_spacing_ft=25.0)
        counts = [n for n, _ in result.history]
        assert counts[0] == 2 and counts[-1] == 4

    def test_as_access_points(self):
        result = PlacementResult(positions=[Point(0, 0), Point(1, 1)], objective=1.0)
        aps = result.as_access_points()
        assert [a.name for a in aps] == ["AP1", "AP2"]

    def test_separability_objective_mode(self):
        result = optimize_placement(
            3, BOUNDS, candidate_spacing_ft=25.0, objective="separability"
        )
        assert result.objective > 0  # d' is positive

    def test_walls_affect_choice(self):
        wall = [Wall.of(25, -5, 25, 45, "metal")]
        open_r = optimize_placement(2, BOUNDS, candidate_spacing_ft=25.0)
        walled = optimize_placement(2, BOUNDS, walls=wall, candidate_spacing_ft=25.0)
        # Not asserting specific layouts, just that the wall changes the score.
        assert open_r.objective != walled.objective

    def test_validation(self):
        with pytest.raises(ValueError):
            optimize_placement(1, BOUNDS)
        with pytest.raises(ValueError):
            optimize_placement(3, BOUNDS, candidate_margin_ft=100.0)
        with pytest.raises(ValueError):
            optimize_placement(3, BOUNDS, objective="telepathy")

    def test_corner_placement_helper(self):
        corners = corner_placement(BOUNDS)
        assert corners == [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]
