"""Tests for the coverage-map CLI tool."""

import pytest

from repro.cli import coverage_main
from repro.core.trainingdb import generate_training_db
from repro.imaging.gif import read_gif


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory, house):
    root = tmp_path_factory.mktemp("coverage")
    plan_path = root / "plan.gif"
    house.floor_plan().save(plan_path)
    db_path = root / "training.tdb"
    generate_training_db(house.survey(rng=0), house.location_map(), output=db_path)
    return {"root": root, "plan": plan_path, "db": db_path}


class TestCoverageCLI:
    def test_by_index(self, artifacts, capsys):
        out = artifacts["root"] / "ap0.gif"
        rc = coverage_main([str(artifacts["plan"]), str(artifacts["db"]), str(out)])
        assert rc == 0
        assert read_gif(out).width > 0
        assert "wrote" in capsys.readouterr().out

    def test_by_bssid(self, artifacts):
        from repro.core.trainingdb import TrainingDatabase

        db = TrainingDatabase.load(artifacts["db"])
        out = artifacts["root"] / "bybssid.gif"
        rc = coverage_main(
            [str(artifacts["plan"]), str(artifacts["db"]), str(out), "--ap", db.bssids[2]]
        )
        assert rc == 0 and out.exists()

    def test_strongest_mode(self, artifacts):
        out = artifacts["root"] / "strongest.gif"
        rc = coverage_main(
            [str(artifacts["plan"]), str(artifacts["db"]), str(out), "--ap", "strongest"]
        )
        assert rc == 0 and out.exists()

    def test_resolution_flag(self, artifacts):
        out = artifacts["root"] / "fine.gif"
        rc = coverage_main(
            [str(artifacts["plan"]), str(artifacts["db"]), str(out), "--resolution", "5"]
        )
        assert rc == 0

    def test_bad_ap_index(self, artifacts):
        with pytest.raises(SystemExit):
            coverage_main(
                [str(artifacts["plan"]), str(artifacts["db"]),
                 str(artifacts["root"] / "x.gif"), "--ap", "99"]
            )

    def test_bad_ap_string(self, artifacts):
        with pytest.raises(SystemExit):
            coverage_main(
                [str(artifacts["plan"]), str(artifacts["db"]),
                 str(artifacts["root"] / "x.gif"), "--ap", "banana"]
            )

    def test_bad_resolution(self, artifacts):
        with pytest.raises(SystemExit):
            coverage_main(
                [str(artifacts["plan"]), str(artifacts["db"]),
                 str(artifacts["root"] / "x.gif"), "--resolution", "0"]
            )

    def test_missing_database(self, artifacts):
        with pytest.raises(SystemExit):
            coverage_main(
                [str(artifacts["plan"]), str(artifacts["root"] / "nope.tdb"),
                 str(artifacts["root"] / "x.gif")]
            )

    def test_unannotated_plan(self, artifacts, tmp_path):
        from repro.imaging.gif import write_gif
        from repro.imaging.raster import Raster

        bare = tmp_path / "bare.gif"
        write_gif(bare, Raster(20, 20))
        with pytest.raises(SystemExit):
            coverage_main([str(bare), str(artifacts["db"]), str(tmp_path / "x.gif")])
