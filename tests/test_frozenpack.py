"""Frozen model packs: format round-trip, corruption taxonomy, parity.

The pack's whole value proposition is "bit-for-bit the same answers,
zero-copy the whole way down", so the suite enforces three contracts:

* **Format**: ``write_pack`` → :class:`FrozenPack` round-trips arrays
  exactly (hypothesis-driven across dtypes/shapes), every view is
  ``writeable=False``, and each way a file can be wrong (bad magic,
  truncation, header rot, section rot) raises its own error class.
* **Parity**: every registered localizer fitted on a frozen database
  answers byte-identically (canonical wire JSON) to the same localizer
  fitted on the heap-backed ``.tdb`` database it was frozen from —
  including the fallback chain and the pack-spec sharded engine path.
* **Adoption**: geometric tiers reuse the pack's ranging tables only
  under a matching AP-map fingerprint, and the adopted arrays really
  are the mapped ones (``np.shares_memory``), not copies.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.algorithms  # noqa: F401 - populate the registry
from repro.algorithms.base import _REGISTRY, make_localizer
from repro.algorithms.engine import BatchConfig
from repro.core.frozenpack import (
    MAGIC,
    FrozenPack,
    FrozenPackChecksumError,
    FrozenPackError,
    FrozenPackMagicError,
    FrozenPackTruncatedError,
    freeze_training_db,
    frozen_ranging_for,
    is_frozen_pack,
    load_database,
    load_frozen_db,
    ranging_fingerprint,
    write_pack,
)
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDBError
from repro.parallel import ParallelConfig
from repro.serve.wire import canonical_json, estimate_to_json


@pytest.fixture(scope="module")
def pack_path(training_db, house, tmp_path_factory):
    path = tmp_path_factory.mktemp("packs") / "model.tdbx"
    freeze_training_db(
        training_db, path, ap_positions=house.ap_positions_by_bssid()
    )
    return path


@pytest.fixture(scope="module")
def frozen_db(pack_path):
    return load_frozen_db(pack_path)


# ----------------------------------------------------------------------
# format round-trip
# ----------------------------------------------------------------------
_DTYPES = st.sampled_from(["<f8", "<f4", "<i8", "<i4", "<u1"])


@st.composite
def _section(draw, index):
    dtype = np.dtype(draw(_DTYPES))
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=1, max_size=3)))
    if dtype.kind == "f":
        elems = st.floats(
            allow_nan=False, allow_infinity=False, width=32, min_value=-1e6, max_value=1e6
        )
    else:
        info = np.iinfo(dtype)
        elems = st.integers(int(info.min), int(info.max))
    n = int(np.prod(shape))
    values = draw(st.lists(elems, min_size=n, max_size=n))
    return f"s{index}", np.array(values, dtype=dtype).reshape(shape)


@st.composite
def _sections(draw):
    k = draw(st.integers(1, 4))
    return [draw(_section(i)) for i in range(k)]


@settings(max_examples=40, deadline=None)
@given(sections=_sections())
def test_pack_roundtrip_bitexact(tmp_path_factory, sections):
    path = tmp_path_factory.mktemp("rt") / "t.tdbx"
    size = write_pack(path, sections, meta={"k": "v"})
    assert path.stat().st_size == size
    with FrozenPack(path) as pack:
        assert pack.meta == {"k": "v"}
        assert pack.names() == [name for name, _ in sections]
        for name, arr in sections:
            view = pack.array(name)
            assert view.dtype == arr.dtype
            assert view.shape == arr.shape
            assert view.tobytes() == arr.tobytes()
            assert not view.flags.writeable


def test_pack_rejects_duplicate_sections(tmp_path):
    a = np.zeros(3)
    with pytest.raises(FrozenPackError, match="duplicate"):
        write_pack(tmp_path / "d.tdbx", [("x", a), ("x", a)])


def test_unknown_section_raises(tmp_path):
    path = tmp_path / "one.tdbx"
    write_pack(path, [("x", np.arange(4.0))])
    with FrozenPack(path) as pack:
        with pytest.raises(FrozenPackError, match="no section 'y'"):
            pack.array("y")


# ----------------------------------------------------------------------
# corruption taxonomy: each failure mode has its own exception
# ----------------------------------------------------------------------
@pytest.fixture()
def small_pack(tmp_path):
    path = tmp_path / "small.tdbx"
    write_pack(path, [("x", np.arange(64, dtype=np.float64))], meta={"m": 1})
    return path


def test_bad_magic_raises_magic_error(small_pack):
    raw = bytearray(small_pack.read_bytes())
    raw[:6] = b"NOTPCK"
    small_pack.write_bytes(bytes(raw))
    assert not is_frozen_pack(small_pack)
    with pytest.raises(FrozenPackMagicError):
        FrozenPack(small_pack)


def test_truncated_header_raises_truncated_error(small_pack):
    small_pack.write_bytes(small_pack.read_bytes()[: len(MAGIC) + 10])
    with pytest.raises(FrozenPackTruncatedError):
        FrozenPack(small_pack)


def test_truncated_section_raises_truncated_error(small_pack):
    small_pack.write_bytes(small_pack.read_bytes()[:-100])
    with pytest.raises(FrozenPackTruncatedError):
        FrozenPack(small_pack)


def test_header_bitflip_raises_checksum_error(small_pack):
    raw = bytearray(small_pack.read_bytes())
    raw[len(MAGIC) + 8 + 2] ^= 0x01  # inside the header JSON
    small_pack.write_bytes(bytes(raw))
    with pytest.raises(FrozenPackChecksumError):
        FrozenPack(small_pack)


def test_section_bitflip_raises_checksum_error(small_pack):
    raw = bytearray(small_pack.read_bytes())
    raw[-1] ^= 0x01  # last byte of the last section
    small_pack.write_bytes(bytes(raw))
    with pytest.raises(FrozenPackChecksumError):
        FrozenPack(small_pack)
    # verify=False skips section CRCs by design (trusted local file).
    pack = FrozenPack(small_pack, verify=False)
    pack.close()


def test_unknown_magic_names_both_formats(tmp_path):
    path = tmp_path / "garbage.bin"
    path.write_bytes(b"GARBAGE!" * 4)
    with pytest.raises(TrainingDBError, match="neither"):
        load_database(path)


# ----------------------------------------------------------------------
# the frozen database: zero-copy, read-only, sniffed loader
# ----------------------------------------------------------------------
def test_frozen_db_views_are_readonly_and_shared(frozen_db, training_db):
    pack = frozen_db.frozen_pack
    for arr in (
        frozen_db.positions(),
        frozen_db.mean_matrix(),
        frozen_db.std_matrix(),
    ):
        assert not arr.flags.writeable
    assert np.shares_memory(frozen_db.positions(), pack.array("positions"))
    assert np.shares_memory(frozen_db.mean_matrix(), pack.array("mean_matrix"))
    for rec in frozen_db.records:
        assert not rec.samples.flags.writeable
        assert np.shares_memory(rec.samples, pack.array("samples"))
    with pytest.raises((ValueError, RuntimeError)):
        frozen_db.mean_matrix()[0, 0] = 0.0


def test_frozen_db_matches_heap_db(frozen_db, training_db):
    assert list(frozen_db.bssids) == list(training_db.bssids)
    assert [r.name for r in frozen_db.records] == [r.name for r in training_db.records]
    np.testing.assert_array_equal(frozen_db.positions(), training_db.positions())
    np.testing.assert_array_equal(frozen_db.mean_matrix(), training_db.mean_matrix())
    np.testing.assert_array_equal(frozen_db.std_matrix(), training_db.std_matrix())
    for fr, hr in zip(frozen_db.records, training_db.records):
        np.testing.assert_array_equal(
            np.asarray(fr.samples, dtype=np.float32),
            np.asarray(hr.samples, dtype=np.float32),
        )


def test_load_database_sniffs_both_formats(tmp_path, training_db, house):
    tdb = tmp_path / "m.tdb"
    tdbx = tmp_path / "m.tdbx"
    training_db.save(tdb)
    training_db.freeze(tdbx, ap_positions=house.ap_positions_by_bssid())
    heap = load_database(tdb)
    frozen = load_database(tdbx)
    assert getattr(heap, "frozen_pack", None) is None
    assert frozen.frozen_pack is not None
    np.testing.assert_array_equal(heap.mean_matrix(), frozen.mean_matrix())


def test_uncommon_std_floor_still_works(frozen_db, training_db):
    # 0.5 rides in the pack; other floors compute from mapped samples.
    np.testing.assert_array_equal(
        frozen_db.std_matrix(min_std=2.0), training_db.std_matrix(min_std=2.0)
    )


# ----------------------------------------------------------------------
# parity: every registered localizer, frozen vs heap, byte-identical
# ----------------------------------------------------------------------
def _kwargs_for(name, house):
    if name in ("geometric", "multilateration"):
        return {"ap_positions": house.ap_positions_by_bssid()}
    if name == "fallback":
        return {
            "ap_positions": house.ap_positions_by_bssid(),
            "bounds": house.bounds(),
        }
    return {}


@pytest.mark.parametrize("name", sorted(_REGISTRY))
def test_frozen_parity_all_algorithms(name, frozen_db, training_db, house, observations):
    heap = make_localizer(name, **_kwargs_for(name, house)).fit(training_db)
    cold = make_localizer(name, **_kwargs_for(name, house)).fit(frozen_db)
    obs_list = list(observations)
    heap_many = heap.locate_many(obs_list)
    cold_many = cold.locate_many(obs_list)
    for h, c in zip(heap_many, cold_many):
        assert canonical_json(estimate_to_json(h)) == canonical_json(
            estimate_to_json(c)
        )
    # Scalar path too: locate() must agree with itself across backings.
    h1 = heap.locate(obs_list[0])
    c1 = cold.locate(obs_list[0])
    assert canonical_json(estimate_to_json(h1)) == canonical_json(estimate_to_json(c1))


def test_ranging_adoption_shares_pack_memory(frozen_db, house):
    ap_positions = house.ap_positions_by_bssid()
    packed = frozen_ranging_for(frozen_db, ap_positions)
    assert packed is not None
    assert np.shares_memory(packed.a, frozen_db.frozen_pack.array("ranging/a"))
    geo = make_localizer("geometric", ap_positions=ap_positions).fit(frozen_db)
    assert geo._packed is packed


def test_ranging_not_adopted_on_fingerprint_mismatch(frozen_db, house):
    moved = {
        b: Point(p.x + 1.0, p.y) for b, p in house.ap_positions_by_bssid().items()
    }
    assert frozen_ranging_for(frozen_db, moved) is None
    geo = make_localizer("geometric", ap_positions=moved).fit(frozen_db)
    assert not np.shares_memory(geo._packed.a, frozen_db.frozen_pack.array("ranging/a"))


def test_ranging_fingerprint_is_order_independent():
    a = {"aa": Point(1.0, 2.0), "bb": Point(3.0, 4.0)}
    b = dict(reversed(list(a.items())))
    assert ranging_fingerprint(a) == ranging_fingerprint(b)
    assert ranging_fingerprint(a) != ranging_fingerprint(
        {"aa": Point(1.0, 2.0), "bb": Point(3.0, 4.5)}
    )


# ----------------------------------------------------------------------
# the sharded engine path: workers rebuild from the pack spec
# ----------------------------------------------------------------------
def test_pack_spec_sharding_matches_serial(pack_path, observations, house):
    from repro.core.frozenpack import load_frozen_db as _load

    db = _load(pack_path)
    kwargs = _kwargs_for("fallback", house)
    serial = make_localizer("fallback", **kwargs).fit(db)
    sharded = make_localizer("fallback", **kwargs).fit(db)
    sharded.shard_pack_spec = {
        "pack_path": str(pack_path),
        "stat": list(db.frozen_pack.stat),
        "algorithm": "fallback",
        "kwargs": kwargs,
    }
    obs_list = list(observations) * 3
    sharded.batch_config = BatchConfig(
        chunk_size=8,
        shard_threshold=len(obs_list),  # force the sharded branch
        parallel=ParallelConfig(max_workers=2),
    )
    want = serial.locate_many(obs_list)
    got = sharded.locate_many(obs_list)
    assert len(got) == len(want)
    for w, g in zip(want, got):
        assert canonical_json(estimate_to_json(w)) == canonical_json(
            estimate_to_json(g)
        )


def test_freeze_cli_roundtrip(tmp_path, training_db, house):
    from repro.cli import repro_main

    tdb = tmp_path / "m.tdb"
    training_db.save(tdb)
    out = tmp_path / "m.tdbx"
    assert repro_main(["freeze", str(tdb), str(out)]) == 0
    db = load_database(out)
    assert db.frozen_pack is not None
    assert getattr(db, "frozen_ranging", None) is None
    np.testing.assert_array_equal(db.mean_matrix(), training_db.mean_matrix())
