"""Smoke tests: every shipped example must run clean, end to end.

Examples are a deliverable, not decoration — each is executed as a real
subprocess (fresh interpreter, no test-session state) and must exit 0
with its expected landmarks in stdout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "training database: 30 locations" in out
        assert "probabilistic ->" in out
        assert "geometric" in out

    def test_conference_guide(self):
        out = run_example("conference_guide.py")
        assert "trained on 5 rooms" in out
        assert "serving:" in out
        # At least 3 of the 4 stops should resolve correctly.
        assert out.count("OK") >= 3

    def test_site_survey_workflow(self):
        out = run_example("site_survey_workflow.py")
        for step in ("[1]", "[2]", "[3]", "[4]", "[5]", "[6]"):
            assert step in out
        output = EXAMPLES / "output"
        for artifact in ("blueprint.gif", "annotated_plan.gif", "training.tdb", "results.gif"):
            assert (output / artifact).is_file()

    def test_tracking_demo(self):
        out = run_example("tracking_demo.py")
        assert "particle filter" in out
        assert (EXAMPLES / "output" / "tracking.gif").is_file()

    def test_site_planner(self):
        out = run_example("site_planner.py")
        assert "corner layout" in out
        assert "optimized layout" in out
        assert (EXAMPLES / "output" / "heatmap_sweep.gif").is_file()

    def test_error_bounds_map(self):
        out = run_example("error_bounds_map.py")
        assert "ranging CRLB" in out
        assert "different estimation game" in out
        assert (EXAMPLES / "output" / "crlb_map.gif").is_file()
