"""Cross-process aggregation: mergeable registries and their pool round trip.

The telemetry v2 contract: a sharded run must report the same
``batch.*``/``locate.*``/``fallback.*`` totals a serial run would —
every worker's registry delta rides back with its results and folds
into the parent (``repro.parallel.pool._fold_deltas``), and nothing is
ever counted twice.  These tests pin the merge algebra (counters sum,
gauges last-write, histograms merge bucket-wise and associatively),
its thread safety, and the end-to-end parity through a sharded
``locate_many`` over the tiered fallback chain — the localizer whose
counters are emitted *inside* the workers.
"""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms.base import Observation
from repro.algorithms.engine import BatchConfig
from repro.algorithms.fallback import FallbackLocalizer
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase
from repro.obs.metrics import Histogram, MetricsRegistry, split_series
from repro.parallel import ParallelConfig


@pytest.fixture()
def registry():
    """A fresh default registry, restored afterwards (test isolation)."""
    previous = obs.set_registry(obs.MetricsRegistry())
    yield obs.get_registry()
    obs.set_registry(previous)


def _hist(values, name="h", growth=1.04):
    h = Histogram(name, growth=growth)
    h.observe_many(values)
    return h


class TestHistogramMerge:
    def test_merge_equals_single_stream(self):
        data = list(np.random.default_rng(0).lognormal(1.0, 0.8, 400))
        left, right = _hist(data[:150]), _hist(data[150:])
        left.merge_state(right.dump_state())
        whole = _hist(data)
        merged, single = left.dump_state(), whole.dump_state()
        for key in ("growth", "count", "nonpositive", "buckets", "min", "max"):
            assert merged[key] == single[key], key
        assert merged["total"] == pytest.approx(single["total"], rel=1e-12)
        assert left.quantile(0.5) == whole.quantile(0.5)

    def test_state_survives_json_round_trip(self):
        # Worker deltas cross process/pipe boundaries as JSON-ish dicts;
        # JSON stringifies the int bucket keys, merge must accept both.
        src = _hist([0.5, 1.0, 2.0, -3.0, 0.0])
        state = json.loads(json.dumps(src.dump_state()))
        dst = Histogram("h")
        dst.merge_state(state)
        assert dst.dump_state() == src.dump_state()

    def test_min_max_nonpositive_merged(self):
        left, right = _hist([5.0, -2.0]), _hist([0.25, 11.0])
        left.merge_state(right.dump_state())
        s = left.dump_state()
        assert s["min"] == -2.0 and s["max"] == 11.0
        assert s["nonpositive"] == 1 and s["count"] == 4

    def test_growth_mismatch_rejected(self):
        with pytest.raises(ValueError, match="growth"):
            _hist([1.0], growth=1.04).merge_state(_hist([1.0], growth=1.1).dump_state())

    def test_merging_empty_is_noop(self):
        h = _hist([1.0, 2.0])
        before = h.dump_state()
        h.merge_state(Histogram("empty").dump_state())
        assert h.dump_state() == before


# Value lists for the associativity property.  Finite, spanning signs
# and magnitudes — underflow bucket and log buckets both exercised.
_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    max_size=40,
)


class TestMergeAssociativity:
    @given(a=_values, b=_values, c=_values)
    @settings(max_examples=60, deadline=None)
    def test_histogram_merge_is_associative(self, a, b, c):
        left = _hist(a)
        left.merge_state(_hist(b).dump_state())
        left.merge_state(_hist(c).dump_state())

        bc = _hist(b)
        bc.merge_state(_hist(c).dump_state())
        right = _hist(a)
        right.merge_state(bc.dump_state())

        ls, rs = left.dump_state(), right.dump_state()
        # Bucket contents and counts are integer arithmetic: exact.
        for key in ("count", "nonpositive", "buckets", "min", "max"):
            assert ls[key] == rs[key], key
        # Float addition is not associative; the running sum only has
        # to agree to rounding.
        assert ls["total"] == pytest.approx(rs["total"], rel=1e-9, abs=1e-9)

    @given(a=_values, b=_values)
    @settings(max_examples=30, deadline=None)
    def test_merge_order_does_not_change_quantiles(self, a, b):
        ab = _hist(a)
        ab.merge_state(_hist(b).dump_state())
        ba = _hist(b)
        ba.merge_state(_hist(a).dump_state())
        if ab.count:
            for q in (0.5, 0.95):
                assert ab.quantile(q) == ba.quantile(q)


class TestRegistryMerge:
    def test_counters_sum_gauges_last_write_histograms_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("req", algo="knn").inc(3)
        b.counter("req", algo="knn").inc(4)
        b.counter("req", algo="prob").inc(1)  # only in b: created on merge
        a.gauge("workers").set(1.0)
        b.gauge("workers").set(5.0)
        a.histogram("lat").observe_many([1.0, 2.0])
        b.histogram("lat").observe_many([3.0])

        assert a.merge(b) is a
        snap = a.snapshot()
        assert snap["counters"]["req{algo=knn}"] == 7
        assert snap["counters"]["req{algo=prob}"] == 1
        assert snap["gauges"]["workers"] == 5.0  # last write wins
        assert snap["histograms"]["lat"]["count"] == 3

    def test_merge_accepts_dumped_state_dict(self):
        src = MetricsRegistry()
        src.counter("c").inc(2)
        src.histogram("h").observe(1.5)
        state = json.loads(json.dumps(src.dump_state()))

        dst = MetricsRegistry()
        dst.counter("c").inc(1)
        dst.merge(state)
        snap = dst.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_module_merge_state_respects_disabled(self, registry):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        previous = obs.set_enabled(False)
        try:
            obs.merge_state(src.dump_state())
        finally:
            obs.set_enabled(previous)
        assert "c" not in obs.snapshot()["counters"]

    def test_split_series_inverts_naming(self):
        r = MetricsRegistry()
        r.counter("x.y", b="2", a="1").inc()
        (series,) = r.snapshot()["counters"]
        assert split_series(series) == ("x.y", (("a", "1"), ("b", "2")))
        assert split_series("bare") == ("bare", ())


class TestThreadSafety:
    def test_concurrent_emission_hammer(self, registry):
        """8 threads × 2000 emissions: exact totals, no lost updates."""
        n_threads, n_iters = 8, 2000
        start = threading.Barrier(n_threads)
        errors = []

        def work(tid):
            try:
                start.wait()
                for i in range(n_iters):
                    obs.counter("hammer.count").inc()
                    obs.counter("hammer.per_thread", t=tid).inc()
                    obs.histogram("hammer.lat").observe((i % 37) + 0.5)
                    if i % 64 == 0:
                        obs.gauge("hammer.level", t=tid).set(i)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        snap = obs.snapshot()
        assert snap["counters"]["hammer.count"] == n_threads * n_iters
        for tid in range(n_threads):
            assert snap["counters"][f"hammer.per_thread{{t={tid}}}"] == n_iters
        assert snap["histograms"]["hammer.lat"]["count"] == n_threads * n_iters

    def test_merge_concurrent_with_emission(self, registry):
        """Folding worker deltas while the workload emits stays exact."""
        n_merges, per_delta = 50, 7
        delta = MetricsRegistry()
        delta.counter("m.count").inc(per_delta)
        delta.histogram("m.lat").observe_many([1.0] * per_delta)
        state = delta.dump_state()

        def emitter():
            for _ in range(1000):
                obs.counter("m.count").inc()
                obs.histogram("m.lat").observe(2.0)

        def merger():
            for _ in range(n_merges):
                obs.merge_state(state)

        threads = [threading.Thread(target=emitter), threading.Thread(target=merger)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        snap = obs.snapshot()
        expected = 1000 + n_merges * per_delta
        assert snap["counters"]["m.count"] == expected
        assert snap["histograms"]["m.lat"]["count"] == expected


# ----------------------------------------------------------------------
# End-to-end: sharded locate_many vs serial, counter-for-counter
# ----------------------------------------------------------------------
B = ["02:aa", "02:bb", "02:cc"]

#: Counter prefixes that only exist on one side by design: shard
#: bookkeeping and pool internals.  Everything else must match.
_SHARD_ONLY = ("batch.shard", "parallel.")


def _make_chain():
    rng = np.random.default_rng(3)
    db = TrainingDatabase(
        B,
        [
            LocationRecord(
                f"p{i}",
                Point(10.0 * i, 0.0),
                rng.normal(-60, 2, (5, 3)).astype(np.float32),
            )
            for i in range(4)
        ],
    )
    return FallbackLocalizer().fit(db)  # no ap_positions: prob + nearest


def _mixed_observations(n=64, seed=4):
    """Mix of full observations and one-AP ones (upper tier declines)."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        if i % 3 == 0:
            samples = np.full((3, 3), np.nan)
            samples[:, 0] = -58.0 + rng.normal(0, 0.5)
        else:
            samples = rng.normal(-60, 2, (3, 3))
        out.append(Observation(samples, bssids=B))
    return out


def _comparable_counters(snap):
    return {
        k: v
        for k, v in snap["counters"].items()
        if not k.startswith(_SHARD_ONLY)
    }


class TestShardedCounterParity:
    def test_sharded_locate_many_counts_each_request_exactly_once(self, registry):
        chain = _make_chain()
        chain.batch_config = BatchConfig(
            chunk_size=8,
            shard_threshold=16,
            parallel=ParallelConfig(max_workers=2),
        )
        observations = _mixed_observations()
        estimates = chain.locate_many(observations)
        assert len(estimates) == len(observations)

        snap = obs.snapshot()
        n = len(observations)
        assert snap["counters"]["batch.requests{algorithm=fallback}"] == n
        assert snap["counters"]["locate.batched{algorithm=fallback}"] == n
        answered = sum(
            v for k, v in snap["counters"].items() if k.startswith("fallback.answered")
        )
        exhausted = snap["counters"].get("fallback.exhausted", 0)
        # Every request answered or exhausted exactly once, even though
        # the tier counters were emitted inside pool workers.
        assert answered + exhausted == n

    def test_sharded_and_serial_report_identical_totals(self, registry):
        chain = _make_chain()
        observations = _mixed_observations()

        chain.batch_config = BatchConfig(chunk_size=8, shard_threshold=None)
        serial_estimates = chain.locate_many(observations)
        serial = obs.snapshot()

        obs.reset()
        chain.batch_config = BatchConfig(
            chunk_size=8,
            shard_threshold=16,
            parallel=ParallelConfig(max_workers=2),
        )
        sharded_estimates = chain.locate_many(observations)
        sharded = obs.snapshot()

        # Same answers...
        assert [e.location_name for e in serial_estimates] == [
            e.location_name for e in sharded_estimates
        ]
        # ...and, after the worker-delta merge, the same totals.
        assert _comparable_counters(serial) == _comparable_counters(sharded)
        # Timing histograms differ in values but not in what was counted.
        assert (
            sharded["histograms"]["quality.confidence{algorithm=fallback}"]["count"]
            == serial["histograms"]["quality.confidence{algorithm=fallback}"]["count"]
        )

    def test_sharded_run_really_merged_worker_deltas(self, registry):
        chain = _make_chain()
        chain.batch_config = BatchConfig(
            chunk_size=8,
            shard_threshold=16,
            parallel=ParallelConfig(max_workers=2),
        )
        chain.locate_many(_mixed_observations())
        counters = obs.snapshot()["counters"]
        merged = sum(
            v for k, v in counters.items() if k.startswith("parallel.deltas_merged")
        )
        # Not a vacuous parity test: deltas actually crossed the pool
        # (unless the platform fell back to serial, which self-reports).
        fell_back = any(k.startswith("parallel.serial_fallback") for k in counters)
        assert merged > 0 or fell_back
