"""Tests for the Raster drawing substrate."""

import numpy as np
import pytest

from repro.imaging.raster import BLACK, BLUE, GRAY, RED, WHITE, Raster


class TestConstruction:
    def test_filled_with_background(self):
        r = Raster(10, 5, background=RED)
        assert r.size == (10, 5)
        assert r.count_color(RED) == 50

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Raster(0, 5)
        with pytest.raises(ValueError):
            Raster(5, -1)

    def test_invalid_color(self):
        with pytest.raises(ValueError):
            Raster(2, 2, background=(300, 0, 0))
        with pytest.raises(ValueError):
            Raster(2, 2, background=(1, 2))

    def test_from_array_rgb_and_gray(self):
        rgb = np.zeros((3, 4, 3), dtype=np.uint8)
        assert Raster.from_array(rgb).size == (4, 3)
        gray = np.full((3, 4), 77, dtype=np.uint8)
        r = Raster.from_array(gray)
        assert r.get(0, 0) == (77, 77, 77)

    def test_from_array_bad_shape(self):
        with pytest.raises(ValueError):
            Raster.from_array(np.zeros((3, 4, 2), dtype=np.uint8))

    def test_copy_is_independent(self):
        a = Raster(4, 4)
        b = a.copy()
        b.set(0, 0, RED)
        assert a.get(0, 0) == WHITE
        assert a != b

    def test_equality(self):
        assert Raster(3, 3) == Raster(3, 3)
        assert Raster(3, 3) != Raster(3, 4)
        assert (Raster(3, 3) == "nope") is False


class TestPixelAccess:
    def test_get_set(self):
        r = Raster(4, 4)
        r.set(1, 2, BLUE)
        assert r.get(1, 2) == BLUE

    def test_set_out_of_bounds_is_noop(self):
        r = Raster(4, 4)
        r.set(10, 10, RED)  # silently clipped
        assert r.count_color(RED) == 0

    def test_get_out_of_bounds_raises(self):
        with pytest.raises(IndexError):
            Raster(4, 4).get(4, 0)

    def test_fill(self):
        r = Raster(3, 3)
        r.fill(BLACK)
        assert r.count_color(BLACK) == 9


class TestLines:
    def test_horizontal_line(self):
        r = Raster(10, 5)
        r.draw_line(1, 2, 8, 2, RED)
        assert r.count_color(RED) == 8
        assert r.get(1, 2) == RED and r.get(8, 2) == RED

    def test_vertical_line(self):
        r = Raster(5, 10)
        r.draw_line(2, 1, 2, 8, RED)
        assert r.count_color(RED) == 8

    def test_diagonal_line_endpoints(self):
        r = Raster(20, 20)
        r.draw_line(0, 0, 19, 19, RED)
        assert r.get(0, 0) == RED and r.get(19, 19) == RED
        assert r.count_color(RED) == 20

    def test_single_point_line(self):
        r = Raster(5, 5)
        r.draw_line(2, 2, 2, 2, RED)
        assert r.count_color(RED) == 1

    def test_thick_line_wider(self):
        thin, thick = Raster(20, 20), Raster(20, 20)
        thin.draw_line(2, 10, 18, 10, RED, 1)
        thick.draw_line(2, 10, 18, 10, RED, 3)
        assert thick.count_color(RED) == 3 * thin.count_color(RED)

    def test_line_clipped_at_border(self):
        r = Raster(5, 5)
        r.draw_line(-10, 2, 20, 2, RED)  # no exception, clipped
        assert r.count_color(RED) == 5

    def test_polyline(self):
        r = Raster(10, 10)
        r.draw_polyline([(0, 0), (5, 0), (5, 5)], RED)
        assert r.get(5, 0) == RED and r.get(0, 0) == RED and r.get(5, 5) == RED


class TestShapes:
    def test_rect_outline(self):
        r = Raster(10, 10)
        r.draw_rect(2, 2, 7, 7, RED)
        assert r.get(2, 2) == RED and r.get(7, 7) == RED
        assert r.get(4, 4) == WHITE  # hollow

    def test_fill_rect(self):
        r = Raster(10, 10)
        r.fill_rect(2, 3, 5, 6, BLUE)
        assert r.count_color(BLUE) == 4 * 4
        # Reversed corners work too.
        r2 = Raster(10, 10)
        r2.fill_rect(5, 6, 2, 3, BLUE)
        assert r2.count_color(BLUE) == 16

    def test_fill_rect_clipped(self):
        r = Raster(4, 4)
        r.fill_rect(-5, -5, 10, 10, BLUE)
        assert r.count_color(BLUE) == 16

    def test_fill_circle_area(self):
        r = Raster(41, 41)
        r.fill_circle(20, 20, 10, RED)
        count = r.count_color(RED)
        assert abs(count - np.pi * 100) < 30  # ~314 ± rasterization

    def test_draw_circle_is_ring(self):
        r = Raster(41, 41)
        r.draw_circle(20, 20, 10, RED, thickness=1)
        assert r.get(20, 20) == WHITE
        assert r.get(30, 20) == RED
        assert r.get(20, 10) == RED

    def test_markers(self):
        for draw in ("draw_cross", "draw_x", "draw_diamond"):
            r = Raster(21, 21)
            getattr(r, draw)(10, 10, 5, RED)
            assert r.count_color(RED) > 0

    def test_cross_shape(self):
        r = Raster(21, 21)
        r.draw_cross(10, 10, 4, RED)
        assert r.get(6, 10) == RED and r.get(14, 10) == RED
        assert r.get(10, 6) == RED and r.get(10, 14) == RED
        assert r.get(6, 6) == WHITE

    def test_x_shape(self):
        r = Raster(21, 21)
        r.draw_x(10, 10, 4, RED)
        assert r.get(6, 6) == RED and r.get(14, 14) == RED
        assert r.get(6, 10) == WHITE


class TestFloodFill:
    def test_fills_enclosed_region(self):
        r = Raster(20, 20)
        r.draw_rect(5, 5, 15, 15, BLACK)
        n = r.flood_fill(10, 10, RED)
        assert n > 0
        assert r.get(10, 10) == RED
        assert r.get(0, 0) == WHITE  # outside untouched
        assert r.get(5, 5) == BLACK  # border untouched

    def test_fill_same_color_is_noop(self):
        r = Raster(5, 5)
        assert r.flood_fill(0, 0, WHITE) == 0

    def test_out_of_bounds_is_noop(self):
        r = Raster(5, 5)
        assert r.flood_fill(99, 99, RED) == 0

    def test_counts_pixels(self):
        r = Raster(6, 6)
        assert r.flood_fill(0, 0, RED) == 36


class TestBlendAndBlit:
    def test_blend_alpha_zero_keeps_image(self):
        r = Raster(4, 4)
        r.blend_rect(0, 0, 3, 3, BLACK, 0.0)
        assert r.count_color(WHITE) == 16

    def test_blend_alpha_one_replaces(self):
        r = Raster(4, 4)
        r.blend_rect(0, 0, 3, 3, BLACK, 1.0)
        assert r.count_color(BLACK) == 16

    def test_blend_halfway(self):
        r = Raster(2, 2, background=(200, 100, 0))
        r.blend_rect(0, 0, 1, 1, (0, 100, 200), 0.5)
        assert r.get(0, 0) == (100, 100, 100)

    def test_blend_invalid_alpha(self):
        with pytest.raises(ValueError):
            Raster(2, 2).blend_rect(0, 0, 1, 1, BLACK, 1.5)

    def test_blit_basic(self):
        base = Raster(10, 10)
        patch = Raster(3, 3, background=RED)
        base.blit(patch, 4, 4)
        assert base.count_color(RED) == 9
        assert base.get(4, 4) == RED and base.get(6, 6) == RED

    def test_blit_clipped(self):
        base = Raster(5, 5)
        patch = Raster(4, 4, background=RED)
        base.blit(patch, 3, 3)  # only 2x2 fits
        assert base.count_color(RED) == 4
        base.blit(patch, -2, -2)  # top-left clip
        assert base.get(0, 0) == RED

    def test_blit_fully_outside(self):
        base = Raster(5, 5)
        base.blit(Raster(2, 2, background=RED), 99, 99)
        assert base.count_color(RED) == 0


class TestAnalysis:
    def test_unique_colors(self):
        r = Raster(4, 4)
        r.set(0, 0, RED)
        r.set(1, 1, BLUE)
        assert len(r.unique_colors()) == 3

    def test_scaled(self):
        r = Raster(2, 2)
        r.set(0, 0, RED)
        up = r.scaled(3)
        assert up.size == (6, 6)
        assert up.count_color(RED) == 9
        with pytest.raises(ValueError):
            r.scaled(0)
