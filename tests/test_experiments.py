"""Tests for the experiment harness: house, metrics, runner, sweeps."""

import numpy as np
import pytest

from repro.algorithms.base import LocationEstimate
from repro.core.geometry import Point
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.metrics import (
    ExperimentMetrics,
    error_cdf,
    mean_deviation,
    valid_estimation_rate,
)
from repro.experiments.runner import aggregate_metrics, run_protocol, run_repeated
from repro.experiments.sweeps import format_table, summarize, sweep
from repro.parallel.pool import ParallelConfig


class TestHouseConfig:
    def test_defaults_are_paper_protocol(self):
        cfg = HouseConfig()
        assert cfg.width_ft == 50.0 and cfg.height_ft == 40.0
        assert cfg.grid_step_ft == 10.0
        assert cfg.n_test_points == 13
        assert cfg.n_aps == 4
        assert cfg.dwell_s == 90.0  # the paper's 1.5 minutes

    def test_validation(self):
        with pytest.raises(ValueError):
            HouseConfig(width_ft=0)
        with pytest.raises(ValueError):
            HouseConfig(grid_step_ft=-1)
        with pytest.raises(ValueError):
            HouseConfig(n_aps=2)
        with pytest.raises(ValueError):
            HouseConfig(n_test_points=0)


class TestExperimentHouse:
    def test_training_grid_is_30_points(self, house):
        pts = house.training_points()
        assert len(pts) == 6 * 5  # x in {0..50}, y in {0..40}, step 10
        coords = {(p.position.x, p.position.y) for p in pts}
        assert (0.0, 0.0) in coords and (50.0, 40.0) in coords
        for x, y in coords:
            assert x % 10 == 0 and y % 10 == 0  # "products of 10 feet"

    def test_aps_at_corners(self, house):
        positions = [tuple(ap.position) for ap in house.aps]
        assert positions == [(0, 0), (50, 0), (50, 40), (0, 40)]
        assert [ap.name for ap in house.aps] == ["A", "B", "C", "D"]

    def test_test_points_scattered_and_fixed(self, house):
        pts = house.test_points()
        assert len(pts) == 13
        assert pts == house.test_points()  # deterministic
        for p in pts:
            assert 3 <= p.x <= 47 and 3 <= p.y <= 37
        assert house.test_points(seed=99) != pts

    def test_more_aps_supported(self):
        h = ExperimentHouse(HouseConfig(n_aps=8, dwell_s=5.0))
        assert len(h.aps) == 8
        assert len({ap.bssid for ap in h.aps}) == 8

    def test_survey_and_database(self, training_db, house):
        assert len(training_db) == 30
        assert len(training_db.bssids) == 4
        # 10 s dwell at 1 Hz → 10 sweeps per point.
        assert training_db.record("grid-0-0").samples.shape[0] == 10

    def test_observation_column_order_matches_db(self, house, training_db):
        obs = house.observe(Point(25, 20), rng=0)
        assert list(obs.bssids) == training_db.bssids

    def test_floor_plan_annotated(self, house):
        plan = house.floor_plan()
        assert plan.has_scale and plan.has_origin
        assert set(plan.access_points) == {"A", "B", "C", "D"}
        ap_pos = plan.ap_floor_positions()
        assert ap_pos["C"].distance_to(Point(50, 40)) < 0.5

    def test_location_map(self, house):
        lm = house.location_map()
        assert len(lm) == 30
        assert lm.position("grid-20-10") == Point(20, 10)

    def test_walls_toggle_changes_channel(self):
        p = np.array([[25.0, 20.0]])
        a = ExperimentHouse(HouseConfig(with_walls=True)).environment.mean_rssi(p)
        b = ExperimentHouse(HouseConfig(with_walls=False)).environment.mean_rssi(p)
        assert not np.allclose(a, b)


class TestMetrics:
    def est(self, x, y, valid=True):
        return LocationEstimate(position=Point(x, y), valid=valid)

    def test_valid_rate(self):
        truths = [Point(0, 0), Point(0, 0), Point(0, 0)]
        ests = [self.est(1, 0), self.est(50, 0), self.est(0, 0, valid=False)]
        assert valid_estimation_rate(truths, ests, tolerance_ft=10.0) == pytest.approx(1 / 3)

    def test_mean_deviation_skips_invalid(self):
        truths = [Point(0, 0), Point(0, 0)]
        ests = [self.est(3, 4), self.est(0, 0, valid=False)]
        assert mean_deviation(truths, ests) == pytest.approx(5.0)

    def test_mean_deviation_all_invalid(self):
        assert mean_deviation([Point(0, 0)], [self.est(0, 0, valid=False)]) == float("inf")

    def test_error_cdf_monotone(self):
        truths = [Point(0, 0)] * 5
        ests = [self.est(i, 0) for i in range(5)]
        grid, frac = error_cdf(truths, ests)
        assert (np.diff(frac) >= 0).all()
        assert frac[-1] == 1.0

    def test_compute_summary(self):
        truths = [Point(0, 0)] * 4
        ests = [self.est(0, 0), self.est(6, 8), self.est(30, 40), self.est(0, 0, valid=False)]
        m = ExperimentMetrics.compute(truths, ests, tolerance_ft=10.0)
        assert m.n_observations == 4
        assert m.n_reported == 3
        assert m.valid_rate == pytest.approx(0.5)
        assert m.mean_deviation_ft == pytest.approx((0 + 10 + 50) / 3)
        assert m.exact_hit_rate == pytest.approx(0.25)

    def test_row_format(self):
        m = ExperimentMetrics(13, 13, 0.6, 13.6, 12.0, 20.0, 0.1)
        row = m.row("probabilistic")
        assert "probabilistic" in row and "60.0%" in row and "13.60" in row

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            valid_estimation_rate([Point(0, 0)], [])


class TestRunner:
    def test_run_protocol_complete(self, house, training_db):
        r = run_protocol("probabilistic", house=house, rng=1, training_db=training_db)
        assert r.algorithm == "probabilistic"
        assert len(r.outcomes) == 13
        assert r.metrics.n_observations == 13
        assert r.training_db is None  # not kept by default

    def test_keep_db(self, house):
        r = run_protocol("knn", house=house, rng=1, keep_db=True)
        assert r.training_db is not None

    def test_same_seed_reproducible(self, house, training_db):
        a = run_protocol("probabilistic", house=house, rng=3, training_db=training_db)
        b = run_protocol("probabilistic", house=house, rng=3, training_db=training_db)
        assert np.array_equal(a.errors_ft(), b.errors_ft())

    def test_different_seeds_differ(self, house, training_db):
        a = run_protocol("probabilistic", house=house, rng=3, training_db=training_db)
        b = run_protocol("probabilistic", house=house, rng=4, training_db=training_db)
        assert not np.array_equal(a.errors_ft(), b.errors_ft())

    def test_geometric_gets_ap_positions_automatically(self, house, training_db):
        r = run_protocol("geometric", house=house, rng=1, training_db=training_db)
        assert r.metrics.n_reported > 0

    def test_observation_dwell_override(self, house, training_db):
        r = run_protocol(
            "probabilistic", house=house, rng=1, training_db=training_db, observation_dwell_s=3.0
        )
        assert len(r.outcomes) == 13

    def test_run_repeated_and_aggregate(self, house):
        results = run_repeated("knn", house=house, n_runs=2, rng=0)
        assert len(results) == 2
        agg = aggregate_metrics(results)
        assert agg["n_runs"] == 2
        assert 0 <= agg["valid_rate"] <= 1

    def test_run_repeated_validation(self, house):
        with pytest.raises(ValueError):
            run_repeated("knn", house=house, n_runs=0)
        with pytest.raises(ValueError):
            aggregate_metrics([])


class TestSweeps:
    def test_sweep_rows_complete(self, fast_config):
        rows = sweep(
            "shadowing_sigma_db",
            [2.0, 6.0],
            algorithms=("knn",),
            n_runs=2,
            base_config=fast_config,
            parallel=ParallelConfig(max_workers=1),
        )
        assert len(rows) == 2 * 1 * 2
        for row in rows:
            assert row["param"] == "shadowing_sigma_db"
            assert row["value"] in (2.0, 6.0)
            assert 0 <= row["valid_rate"] <= 1

    def test_sweep_deterministic_cells(self, fast_config):
        kw = dict(algorithms=("knn",), n_runs=1, base_config=fast_config,
                  parallel=ParallelConfig(max_workers=1))
        a = sweep("shadowing_sigma_db", [4.0], **kw)
        b = sweep("shadowing_sigma_db", [2.0, 4.0], **kw)
        a_cell = [r for r in a if r["value"] == 4.0][0]
        b_cell = [r for r in b if r["value"] == 4.0][0]
        # Adding a value must not change the other cell's result.
        assert a_cell["mean_deviation_ft"] == b_cell["mean_deviation_ft"]

    def test_pseudo_param_observation_dwell(self, fast_config):
        rows = sweep(
            "observation_dwell_s",
            [2.0, 8.0],
            algorithms=("knn",),
            n_runs=1,
            base_config=fast_config,
            parallel=ParallelConfig(max_workers=1),
        )
        assert {r["value"] for r in rows} == {2.0, 8.0}

    def test_unknown_param_rejected(self, fast_config):
        with pytest.raises(KeyError):
            sweep("not_a_field", [1], base_config=fast_config)

    def test_summarize_and_format(self, fast_config):
        rows = sweep(
            "shadowing_sigma_db",
            [3.0],
            algorithms=("knn", "probabilistic"),
            n_runs=2,
            base_config=fast_config,
            parallel=ParallelConfig(max_workers=1),
        )
        summary = summarize(rows)
        assert len(summary) == 2
        assert all(s["n_runs"] == 2 for s in summary)
        table = format_table(summary, title="test")
        assert "knn" in table and "probabilistic" in table and "test" in table
