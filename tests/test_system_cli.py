"""Tests for the assembled LocalizationSystem and the CLI programs."""

import numpy as np
import pytest

from repro.cli import compositor_main, generator_main, locate_main, processor_main
from repro.core.geometry import Point
from repro.core.system import LocalizationSystem, ap_positions_by_bssid
from repro.core.trainingdb import TrainingDatabase
from repro.imaging.gif import read_gif, write_gif
from repro.imaging.raster import Raster
from repro.wiscan.format import render_wiscan


@pytest.fixture(scope="module")
def site(house):
    """Survey + plan + map for one fast house."""
    return {
        "collection": house.survey(rng=0),
        "map": house.location_map(),
        "plan": house.floor_plan(),
    }


class TestLocalizationSystem:
    def test_train_probabilistic(self, site, house):
        system = LocalizationSystem.train(site["collection"], site["map"], "probabilistic")
        obs = house.observe(Point(25, 20), rng=1)
        res = system.locate(obs)
        assert res.valid
        assert res.name is not None
        assert res.name.startswith("grid-")

    def test_train_geometric_needs_plan(self, site):
        with pytest.raises(ValueError, match="ap_positions"):
            LocalizationSystem.train(site["collection"], site["map"], "geometric")

    def test_train_geometric_with_plan(self, site, house):
        system = LocalizationSystem.train(
            site["collection"], site["map"], "geometric", plan=site["plan"]
        )
        obs = house.observe(Point(25, 20), rng=1)
        res = system.locate(obs)
        assert res.position is not None
        # Coordinate answers resolve to the nearest named location.
        assert res.name is not None and res.name_distance_ft < 15.0

    def test_locate_rssi_vector(self, site):
        system = LocalizationSystem.train(site["collection"], site["map"], "knn")
        mean = system.training_db.record("grid-20-20").mean_rssi()
        res = system.locate_rssi(mean)
        assert res.valid
        assert res.position.distance_to(Point(20, 20)) < 12.0

    def test_prebuilt_localizer(self, site):
        from repro.algorithms.knn import KNNLocalizer

        system = LocalizationSystem.train(site["collection"], site["map"], KNNLocalizer(k=1))
        assert isinstance(system.localizer, KNNLocalizer)

    def test_ap_positions_by_bssid_positional(self, site, house):
        db = system_db(site)
        mapping = ap_positions_by_bssid(site["plan"], db)
        assert len(mapping) == 4
        # Order-matched: first BSSID is AP A at (0, 0).
        first = mapping[db.bssids[0]]
        assert first.distance_to(Point(0, 0)) < 0.5

    def test_ap_positions_exact_bssid_names(self, site, house):
        from repro.core.floorplan import FloorPlan, PixelPoint

        db = system_db(site)
        plan = FloorPlan(Raster(100, 100))
        plan.set_scale_direct(1.0)
        plan.set_origin(PixelPoint(0, 99))
        for i, b in enumerate(db.bssids):
            plan.add_access_point(b.upper(), PixelPoint(10 * i, 50))
        mapping = ap_positions_by_bssid(plan, db)
        assert set(mapping) == set(db.bssids)

    def test_ap_positions_ambiguous_rejected(self, site):
        from repro.core.floorplan import FloorPlan, PixelPoint

        db = system_db(site)
        plan = FloorPlan(Raster(100, 100))
        plan.set_scale_direct(1.0)
        plan.set_origin(PixelPoint(0, 99))
        plan.add_access_point("only-one", PixelPoint(5, 5))
        with pytest.raises(ValueError, match="cannot match"):
            ap_positions_by_bssid(plan, db)


def system_db(site):
    from repro.core.trainingdb import generate_training_db

    return generate_training_db(site["collection"], site["map"])


class TestProcessorCLI:
    def test_script_file(self, tmp_path, capsys):
        base = tmp_path / "base.gif"
        write_gif(base, Raster(100, 100))
        out = tmp_path / "annotated.gif"
        script = tmp_path / "cmds.txt"
        script.write_text(
            f"load {base}\n"
            "set-scale 0 0 100 0 50\n"
            "set-origin 0 99\n"
            "add-ap A 0 99\n"
            f"save {out}\n"
        )
        assert processor_main([str(script)]) == 0
        assert out.exists()

    def test_inline_commands(self, tmp_path):
        base = tmp_path / "b.gif"
        write_gif(base, Raster(50, 50))
        assert processor_main(["-c", f"load {base}", "-c", "info"]) == 0

    def test_no_input_shows_help(self, capsys):
        assert processor_main([]) == 1

    def test_missing_script(self, tmp_path):
        with pytest.raises(SystemExit):
            processor_main([str(tmp_path / "nope.txt")])

    def test_bad_command_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            processor_main(["-c", "explode"])


class TestCompositorCLI:
    def annotated(self, tmp_path, site):
        path = tmp_path / "plan.gif"
        site["plan"].save(path)
        return path

    def test_marks_coordinates(self, tmp_path, site, capsys):
        plan = self.annotated(tmp_path, site)
        out = tmp_path / "marked.gif"
        rc = compositor_main([str(plan), str(out), "10", "10", "40", "30"])
        assert rc == 0
        assert read_gif(out).width == site["plan"].image.width

    def test_pairs_mode(self, tmp_path, site):
        plan = self.annotated(tmp_path, site)
        out = tmp_path / "pairs.gif"
        rc = compositor_main([str(plan), str(out), "--pairs", "10", "10", "14", "12"])
        assert rc == 0 and out.exists()

    def test_odd_coordinates_rejected(self, tmp_path, site):
        plan = self.annotated(tmp_path, site)
        with pytest.raises(SystemExit):
            compositor_main([str(plan), str(tmp_path / "x.gif"), "1", "2", "3"])

    def test_pairs_need_quadruples(self, tmp_path, site):
        plan = self.annotated(tmp_path, site)
        with pytest.raises(SystemExit):
            compositor_main([str(plan), str(tmp_path / "x.gif"), "--pairs", "1", "2"])

    def test_unannotated_plan_rejected(self, tmp_path):
        bare = tmp_path / "bare.gif"
        write_gif(bare, Raster(20, 20))
        with pytest.raises(SystemExit):
            compositor_main([str(bare), str(tmp_path / "o.gif"), "1", "1"])


class TestGeneratorCLI:
    def test_end_to_end(self, tmp_path, site, capsys):
        survey_dir = tmp_path / "survey"
        site["collection"].save_directory(survey_dir)
        map_path = tmp_path / "map.txt"
        site["map"].save(map_path)
        out = tmp_path / "db.tdb"
        rc = generator_main([str(survey_dir), str(map_path), str(out)])
        assert rc == 0
        db = TrainingDatabase.load(out)
        assert len(db) == 30
        printed = capsys.readouterr().out
        assert "30 locations" in printed

    def test_zip_input(self, tmp_path, site):
        zpath = site["collection"].save_zip(tmp_path / "s.zip")
        map_path = tmp_path / "map.txt"
        site["map"].save(map_path)
        out = tmp_path / "db.tdb"
        assert generator_main([str(zpath), str(map_path), str(out)]) == 0

    def test_missing_map_entry_fails(self, tmp_path, site):
        survey_dir = tmp_path / "survey"
        site["collection"].save_directory(survey_dir)
        map_path = tmp_path / "partial.txt"
        map_path.write_text("grid-0-0\t0\t0\n")
        with pytest.raises(SystemExit):
            generator_main([str(survey_dir), str(map_path), str(tmp_path / "o.tdb")])

    def test_lenient_mode(self, tmp_path, site):
        survey_dir = tmp_path / "survey"
        site["collection"].save_directory(survey_dir)
        map_path = tmp_path / "partial.txt"
        map_path.write_text("grid-0-0\t0\t0\n")
        out = tmp_path / "o.tdb"
        assert generator_main([str(survey_dir), str(map_path), str(out), "--lenient"]) == 0


class TestLocateCLI:
    def make_db_and_obs(self, tmp_path, site, house):
        db_path = tmp_path / "db.tdb"
        system_db(site).save(db_path)
        cs_session = None
        from repro.wiscan.capture import CaptureSession, SurveyPoint

        session = CaptureSession(house.scanner, dwell_s=5.0).capture_point(
            SurveyPoint("obs", Point(25, 20)), rng=9
        )
        obs_path = tmp_path / "obs.wi-scan"
        obs_path.write_text(render_wiscan(session))
        return db_path, obs_path

    def test_probabilistic_locate(self, tmp_path, site, house, capsys):
        db_path, obs_path = self.make_db_and_obs(tmp_path, site, house)
        rc = locate_main([str(db_path), str(obs_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "estimated position" in out
        assert "estimated location" in out

    def test_geometric_requires_plan(self, tmp_path, site, house):
        db_path, obs_path = self.make_db_and_obs(tmp_path, site, house)
        with pytest.raises(SystemExit):
            locate_main([str(db_path), str(obs_path), "--algorithm", "geometric"])

    def test_geometric_with_plan(self, tmp_path, site, house, capsys):
        db_path, obs_path = self.make_db_and_obs(tmp_path, site, house)
        plan_path = tmp_path / "plan.gif"
        site["plan"].save(plan_path)
        rc = locate_main(
            [str(db_path), str(obs_path), "--algorithm", "geometric", "--plan", str(plan_path)]
        )
        assert rc == 0

    def test_unknown_algorithm(self, tmp_path, site, house):
        db_path, obs_path = self.make_db_and_obs(tmp_path, site, house)
        with pytest.raises(SystemExit):
            locate_main([str(db_path), str(obs_path), "--algorithm", "oracle"])

    def test_multiple_observations_batched(self, tmp_path, site, house, capsys):
        db_path, obs_path = self.make_db_and_obs(tmp_path, site, house)
        obs2 = tmp_path / "obs2.wi-scan"
        obs2.write_text(obs_path.read_text())
        rc = locate_main(
            [str(db_path), str(obs_path), str(obs2), "--chunk-size", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # one labelled block per file, identical answers for identical input
        assert out.count("estimated position") == 2
        assert f"{obs_path}:" in out and f"{obs2}:" in out
        lines = [l for l in out.splitlines() if l.startswith("estimated position")]
        assert lines[0] == lines[1]

    def test_batch_flags_validated(self, tmp_path, site, house):
        db_path, obs_path = self.make_db_and_obs(tmp_path, site, house)
        with pytest.raises(SystemExit):
            locate_main([str(db_path), str(obs_path), "--chunk-size", "0"])
        with pytest.raises(SystemExit):
            locate_main([str(db_path), str(obs_path), "--shard", "0"])

    def test_batch_flags_restore_default_config(self, tmp_path, site, house):
        from repro.algorithms.engine import get_batch_config

        db_path, obs_path = self.make_db_and_obs(tmp_path, site, house)
        before = get_batch_config()
        assert locate_main([str(db_path), str(obs_path), "--chunk-size", "7"]) == 0
        assert get_batch_config() is before
