"""Batch/single parity: locate_many must equal [locate(o) ...] bit-for-bit.

Every localizer's vectorized batch path re-derives the same quantities
as its per-observation path through differently-shaped broadcasts; this
property suite pins them together exactly — score, validity, position
and runner-up — under hypothesis-generated observations with arbitrary
missing-AP patterns, for every registered localizer including the
tiered fallback chain (whose per-request ``tier``/``declined``
diagnostics must also survive batching unchanged).

Also the aliasing regression: per-estimate detail arrays must be
copies, never live row views of the shared batch matrix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import Observation
from repro.algorithms.fallback import FallbackLocalizer
from repro.algorithms.fieldmle import FieldMLELocalizer
from repro.algorithms.geometric import GeometricLocalizer
from repro.algorithms.histogram import HistogramLocalizer
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.multilateration import MultilaterationLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.rank import RankLocalizer
from repro.algorithms.scene import SceneAnalysisLocalizer
from repro.algorithms.sector import SectorLocalizer
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
APS = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]
AP_POS = dict(zip(B, APS))


def _rssi_at(p: Point) -> np.ndarray:
    d = np.array([max(p.distance_to(a), 1.0) for a in APS])
    return -35.0 - 25.0 * np.log10(d)


def _grid_db(step=10.0, seed=0, noise=1.0) -> TrainingDatabase:
    rng = np.random.default_rng(seed)
    records = []
    for y in np.arange(0, 41, step):
        for x in np.arange(0, 51, step):
            p = Point(float(x), float(y))
            records.append(
                LocationRecord(
                    f"g{x:g}-{y:g}",
                    p,
                    rng.normal(_rssi_at(p), noise, (10, 4)).astype(np.float32),
                )
            )
    return TrainingDatabase(B, records)


DB = _grid_db()
LOCALIZERS = {
    "probabilistic": ProbabilisticLocalizer().fit(DB),
    "knn": KNNLocalizer(k=3).fit(DB),
    "fieldmle": FieldMLELocalizer(resolution_ft=5.0, refine=False).fit(DB),
    "histogram": HistogramLocalizer().fit(DB),
    "rank": RankLocalizer().fit(DB),
    "scene": SceneAnalysisLocalizer().fit(DB),
    "sector": SectorLocalizer().fit(DB),
    "geometric": GeometricLocalizer(AP_POS).fit(DB),
    "multilateration": MultilaterationLocalizer(AP_POS).fit(DB),
    "fallback": FallbackLocalizer(
        ap_positions=AP_POS, bounds=(0.0, 0.0, 50.0, 40.0)
    ).fit(DB),
}

# One observation: a handful of sweeps over 4 APs, RSSI in a realistic
# band, any entry possibly missing (None -> NaN).
_rssi_or_miss = st.one_of(
    st.none(), st.floats(min_value=-95.0, max_value=-30.0, allow_nan=False)
)
_sweep = st.lists(_rssi_or_miss, min_size=4, max_size=4)
_observation = st.lists(_sweep, min_size=1, max_size=4).map(
    lambda rows: Observation(
        np.array(
            [[np.nan if v is None else v for v in row] for row in rows], dtype=float
        ),
        bssids=B,
    )
)
_batch = st.lists(_observation, min_size=1, max_size=6)


def _assert_identical(single, batched, label):
    assert len(single) == len(batched)
    for i, (a, b) in enumerate(zip(single, batched)):
        ctx = f"{label}[{i}]"
        assert a.valid == b.valid, ctx
        assert a.location_name == b.location_name, ctx
        # bit-for-bit: no tolerance
        assert a.score == b.score, ctx
        if a.position is None or b.position is None:
            assert a.position is None and b.position is None, ctx
        else:
            assert a.position.x == b.position.x, ctx
            assert a.position.y == b.position.y, ctx
        assert a.details.get("runner_up") == b.details.get("runner_up"), ctx


class TestBatchSingleParity:
    @given(_batch)
    @settings(max_examples=40, deadline=None)
    def test_probabilistic(self, observations):
        loc = LOCALIZERS["probabilistic"]
        _assert_identical(
            [loc.locate(o) for o in observations],
            loc.locate_many(observations),
            "probabilistic",
        )

    @given(_batch)
    @settings(max_examples=40, deadline=None)
    def test_knn(self, observations):
        loc = LOCALIZERS["knn"]
        _assert_identical(
            [loc.locate(o) for o in observations],
            loc.locate_many(observations),
            "knn",
        )

    @given(_batch)
    @settings(max_examples=15, deadline=None)
    def test_fieldmle(self, observations):
        loc = LOCALIZERS["fieldmle"]
        _assert_identical(
            [loc.locate(o) for o in observations],
            loc.locate_many(observations),
            "fieldmle",
        )

    @pytest.mark.parametrize(
        "name",
        ["histogram", "rank", "scene", "sector", "geometric", "multilateration"],
    )
    @given(_batch)
    @settings(max_examples=15, deadline=None)
    def test_vectorized_localizer(self, name, observations):
        loc = LOCALIZERS[name]
        _assert_identical(
            [loc.locate(o) for o in observations],
            loc.locate_many(observations),
            name,
        )

    @given(_batch)
    @settings(max_examples=15, deadline=None)
    def test_fallback_chain(self, observations):
        """The tiered chain: answers AND diagnostics survive batching."""
        loc = LOCALIZERS["fallback"]
        single = [loc.locate(o) for o in observations]
        batched = loc.locate_many(observations)
        _assert_identical(single, batched, "fallback")
        for i, (a, b) in enumerate(zip(single, batched)):
            assert a.details.get("tier") == b.details.get("tier"), f"fallback[{i}]"
            assert a.details.get("declined") == b.details.get("declined"), f"fallback[{i}]"

    def test_every_registered_localizer_is_covered(self):
        """New localizers must join the parity table (or justify why not)."""
        from repro.algorithms.base import _REGISTRY

        # Only the toolkit's own localizers: other test modules register
        # throwaway algorithms into the (global) registry.
        toolkit = {
            name
            for name, factory in _REGISTRY.items()
            if getattr(factory, "__module__", "").startswith("repro.")
        }
        missing = toolkit - set(LOCALIZERS)
        assert not missing, f"localizers missing batch-parity coverage: {sorted(missing)}"

    def test_probabilistic_log_likelihood_paths_identical(self):
        """The (M, L) matrix rows equal the per-observation vectors exactly."""
        rng = np.random.default_rng(3)
        observations = [
            Observation(rng.normal(-60, 4, (3, 4)), bssids=B) for _ in range(8)
        ]
        # punch missing-AP holes to exercise the masking
        for i, o in enumerate(observations):
            o.samples[:, i % 4] = np.nan
        loc = LOCALIZERS["probabilistic"]
        matrix = loc.log_likelihood_matrix(observations)
        for m, o in enumerate(observations):
            np.testing.assert_array_equal(matrix[m], loc.log_likelihoods(o))

    def test_knn_distance_paths_identical(self):
        rng = np.random.default_rng(4)
        observations = [
            Observation(rng.normal(-60, 4, (3, 4)), bssids=B) for _ in range(8)
        ]
        for i, o in enumerate(observations):
            o.samples[:, i % 4] = np.nan
        loc = LOCALIZERS["knn"]
        matrix = loc.signal_distance_matrix(observations)
        for m, o in enumerate(observations):
            np.testing.assert_array_equal(matrix[m], loc.signal_distances(o))


class TestDetailsAliasing:
    """details arrays are copies: mutating one estimate leaves its siblings."""

    def _observations(self, n=4, seed=5):
        rng = np.random.default_rng(seed)
        return [Observation(rng.normal(-60, 4, (3, 4)), bssids=B) for _ in range(n)]

    def test_probabilistic_details_not_views(self):
        loc = LOCALIZERS["probabilistic"]
        estimates = loc.locate_many(self._observations())
        arrays = [e.details["log_likelihoods"] for e in estimates]
        before = [a.copy() for a in arrays]
        assert all(a.base is None for a in arrays), "row view leaked into details"
        arrays[0][:] = 12345.0
        for a, b in zip(arrays[1:], before[1:]):
            np.testing.assert_array_equal(a, b)

    def test_knn_details_not_views(self):
        loc = LOCALIZERS["knn"]
        estimates = loc.locate_many(self._observations())
        arrays = [e.details["signal_distances_db"] for e in estimates]
        before = [a.copy() for a in arrays]
        assert all(a.base is None for a in arrays), "row view leaked into details"
        arrays[0][:] = -1.0
        for a, b in zip(arrays[1:], before[1:]):
            np.testing.assert_array_equal(a, b)
