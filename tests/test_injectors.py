"""Fault injectors: each fault manufactures exactly its advertised damage."""

import numpy as np
import pytest

from repro.algorithms.base import Observation
from repro.radio.scanner import ScanReading, ScanSweep
from repro.robustness import (
    APDropout,
    FaultyScanner,
    FileTruncation,
    Injector,
    MagicCorruption,
    NoiseBurst,
    RecordCorruption,
    corrupt_survey_texts,
    inject_observation,
)
from repro.wiscan.capture import CaptureSession, SurveyPoint
from repro.wiscan.format import WiScanFormatError, parse_wiscan
from repro.core.geometry import Point

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]


def make_sweeps(n=5, bssids=B):
    sweeps = []
    for t in range(n):
        readings = tuple(
            ScanReading(
                timestamp_s=float(t),
                bssid=b,
                ssid=f"net{j}",
                channel=6,
                rssi_dbm=-50.0 - 5 * j,
            )
            for j, b in enumerate(bssids)
        )
        sweeps.append(ScanSweep(timestamp_s=float(t), readings=readings))
    return sweeps


def heard_bssids(sweeps):
    return {r.bssid for sw in sweeps for r in sw.readings}


class TestInjectorBase:
    def test_all_hooks_pass_through(self):
        inj = Injector()
        rng = np.random.default_rng(0)
        sweeps = make_sweeps()
        obs = Observation(np.full((3, 4), -50.0), bssids=B)
        assert inj.sweeps(sweeps, rng) is sweeps
        assert inj.observation(obs, rng) is obs
        assert inj.text("hello", rng) == "hello"


class TestAPDropout:
    def test_named_victim_removed_from_every_sweep(self):
        out = APDropout(bssids=[B[1]]).sweeps(make_sweeps(), np.random.default_rng(0))
        assert heard_bssids(out) == set(B) - {B[1]}
        assert all(len(sw.readings) == 3 for sw in out)

    def test_k_random_victims(self):
        out = APDropout(k=2).sweeps(make_sweeps(), np.random.default_rng(0))
        assert len(heard_bssids(out)) == 2

    def test_absent_bssid_is_a_noop(self):
        sweeps = make_sweeps()
        out = APDropout(bssids=["02:00:00:00:00:ff"]).sweeps(
            sweeps, np.random.default_rng(0)
        )
        assert out is sweeps

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            APDropout(k=-1)

    def test_observation_columns_go_nan(self):
        obs = Observation(np.full((6, 4), -50.0), bssids=B)
        out = APDropout(k=1).observation(obs, np.random.default_rng(0))
        nan_cols = np.isnan(out.samples).all(axis=0)
        assert nan_cols.sum() == 1
        # Original untouched.
        assert np.isfinite(obs.samples).all()

    def test_observation_named_victim(self):
        obs = Observation(np.full((6, 4), -50.0), bssids=B)
        out = APDropout(bssids=[B[2]]).observation(obs, np.random.default_rng(0))
        assert np.isnan(out.samples[:, 2]).all()
        assert np.isfinite(np.delete(out.samples, 2, axis=1)).all()

    def test_observation_without_bssids_needs_k(self):
        obs = Observation(np.full((6, 4), -50.0))
        with pytest.raises(ValueError, match="BSSID"):
            APDropout(bssids=[B[0]]).observation(obs, np.random.default_rng(0))
        out = APDropout(k=1).observation(obs, np.random.default_rng(0))
        assert np.isnan(out.samples).all(axis=0).sum() == 1

    def test_deterministic_under_seed(self):
        obs = Observation(np.full((6, 4), -50.0), bssids=B)
        a = inject_observation(obs, [APDropout(k=2)], rng=9)
        b = inject_observation(obs, [APDropout(k=2)], rng=9)
        np.testing.assert_array_equal(a.samples, b.samples)


class TestNoiseBurst:
    def test_rssi_stays_in_plausible_range(self):
        inj = NoiseBurst(sigma_db=40.0, prob=1.0)
        out = inj.sweeps(make_sweeps(), np.random.default_rng(0))
        for sw in out:
            for r in sw.readings:
                assert -120.0 <= r.rssi_dbm <= 0.0

    def test_prob_zero_is_identity(self):
        obs = Observation(np.full((5, 4), -50.0), bssids=B)
        out = NoiseBurst(prob=0.0).observation(obs, np.random.default_rng(0))
        np.testing.assert_array_equal(out.samples, obs.samples)

    def test_nan_misses_stay_nan(self):
        samples = np.full((5, 4), -50.0)
        samples[:, 3] = np.nan
        out = NoiseBurst(prob=1.0).observation(
            Observation(samples, bssids=B), np.random.default_rng(0)
        )
        assert np.isnan(out.samples[:, 3]).all()
        assert np.isfinite(out.samples[:, :3]).all()

    def test_param_validation(self):
        with pytest.raises(ValueError, match="sigma_db"):
            NoiseBurst(sigma_db=-1.0)
        with pytest.raises(ValueError, match="prob"):
            NoiseBurst(prob=1.5)


GOOD = (
    "# wi-scan v1\n"
    "# location: kitchen\n"
    "0.000\t02:00:00:00:00:01\tnet\t6\t-50.0\n"
    "1.000\t02:00:00:00:00:02\tnet\t11\t-60.0\n"
    "2.000\t02:00:00:00:00:03\tnet\t1\t-70.0\n"
)


class TestTextInjectors:
    def test_record_corruption_breaks_strict_not_lenient(self):
        inj = RecordCorruption(rate=1.0)
        text = inj.text(GOOD, np.random.default_rng(0))
        with pytest.raises(WiScanFormatError):
            parse_wiscan(text)
        session = parse_wiscan(text, recover=True)
        assert session.location == "kitchen"  # headers survive

    def test_record_corruption_rate_zero_identity(self):
        assert RecordCorruption(rate=0.0).text(GOOD, np.random.default_rng(0)) == GOOD

    def test_truncation_keeps_prefix(self):
        out = FileTruncation(keep_fraction=0.5).text(GOOD, np.random.default_rng(0))
        assert GOOD.startswith(out)
        assert 0 < len(out) < len(GOOD)

    def test_truncated_file_recovers_in_lenient_mode(self):
        out = FileTruncation(keep_fraction=0.8).text(GOOD, np.random.default_rng(0))
        session = parse_wiscan(out, recover=True)
        assert session.location == "kitchen"
        assert len(session.records) >= 1

    def test_magic_corruption_is_fatal_even_when_recovering(self):
        out = MagicCorruption().text(GOOD, np.random.default_rng(0))
        with pytest.raises(WiScanFormatError):
            parse_wiscan(out, recover=True)

    def test_param_validation(self):
        with pytest.raises(ValueError, match="rate"):
            RecordCorruption(rate=2.0)
        with pytest.raises(ValueError, match="keep_fraction"):
            FileTruncation(keep_fraction=0.0)


class TestCorruptSurveyTexts:
    def test_fraction_selects_ceil(self, house):
        survey = house.survey(rng=0)
        pairs, corrupted = corrupt_survey_texts(
            survey, [MagicCorruption()], fraction=0.2, rng=1
        )
        assert len(pairs) == len(survey)
        assert len(corrupted) == -(-len(survey) // 5)

    def test_fraction_zero_corrupts_nothing(self, house):
        survey = house.survey(rng=0)
        _, corrupted = corrupt_survey_texts(survey, [MagicCorruption()], fraction=0.0)
        assert corrupted == []

    def test_bad_fraction_rejected(self, house):
        survey = house.survey(rng=0)
        with pytest.raises(ValueError, match="fraction"):
            corrupt_survey_texts(survey, [], fraction=1.5)


class TestFaultyScanner:
    def test_dropout_silences_ap_in_capture(self, house):
        faulty = FaultyScanner(
            house.scanner, [APDropout(bssids=[house.aps[0].bssid])], rng=0
        )
        sweeps = faulty.scan_session(Point(25, 20), duration_s=10.0, rng=1)
        assert house.aps[0].bssid not in heard_bssids(sweeps)

    def test_clean_radio_identical_to_unwrapped(self, house):
        """Fault RNG is separate: no injectors ⇒ bit-identical sweeps."""
        faulty = FaultyScanner(house.scanner, [], rng=0)
        a = faulty.scan_session(Point(25, 20), duration_s=5.0, rng=1)
        b = house.scanner.scan_session(Point(25, 20), duration_s=5.0, rng=1)
        assert a == b

    def test_properties_delegate(self, house):
        faulty = FaultyScanner(house.scanner)
        assert faulty.interval_s == house.scanner.interval_s
        assert faulty.environment is house.scanner.environment

    def test_capture_session_accepts_faulty_scanner(self, house):
        victim = house.aps[1].bssid
        session = CaptureSession(
            FaultyScanner(house.scanner, [APDropout(bssids=[victim])], rng=0),
            dwell_s=5.0,
        )
        wf = session.capture_point(SurveyPoint("mid", Point(25, 20)), rng=2)
        assert victim not in {r.bssid for r in wf.records}
        assert len(wf.records) > 0

    def test_walk_session_injects(self, house):
        victim = house.aps[2].bssid
        faulty = FaultyScanner(house.scanner, [APDropout(bssids=[victim])], rng=0)
        out = faulty.walk_session([Point(5, 5), Point(30, 20)], rng=3)
        assert out, "walk produced no sweeps"
        assert victim not in {r.bssid for _, sw in out for r in sw.readings}


class TestScanReadingValidation:
    """Satellite: simulator output dies at the source, like WiScanRecord."""

    def ok(self, **kw):
        base = dict(
            timestamp_s=0.0, bssid=B[0], ssid="net", channel=6, rssi_dbm=-50.0
        )
        base.update(kw)
        return ScanReading(**base)

    def test_bssid_lowercased(self):
        assert self.ok(bssid=B[0].upper()).bssid == B[0]

    def test_bad_bssid_rejected(self):
        for bad in ("", "nonsense", "02:00:00:00:00", "0g:00:00:00:00:01"):
            with pytest.raises(ValueError, match="BSSID"):
                self.ok(bssid=bad)

    def test_bad_channel_rejected(self):
        for bad in (0, -3, 197):
            with pytest.raises(ValueError, match="channel"):
                self.ok(channel=bad)

    def test_bad_rssi_rejected(self):
        with pytest.raises(ValueError, match="RSSI"):
            self.ok(rssi_dbm=5.0)
