"""Tests for the Cramér–Rao bound module."""

import numpy as np
import pytest

from repro.analysis.crlb import (
    crlb_field,
    crlb_position_rmse,
    effective_samples,
    fisher_information,
    ranging_crlb_ft,
)
from repro.core.geometry import Point

CORNERS = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]


class TestRangingCRLB:
    def test_proportional_to_distance(self):
        b10 = float(ranging_crlb_ft(10.0, sigma_db=4.0, exponent=3.0))
        b100 = float(ranging_crlb_ft(100.0, sigma_db=4.0, exponent=3.0))
        assert b100 == pytest.approx(10 * b10)

    def test_known_value(self):
        # (ln10 / (10·n)) · σ · d with n=2, σ=6, d=50: 0.1151·6·50 ≈ 34.5
        b = float(ranging_crlb_ft(50.0, sigma_db=6.0, exponent=2.0))
        assert b == pytest.approx(np.log(10) / 20 * 6 * 50, rel=1e-9)

    def test_samples_shrink_bound(self):
        one = float(ranging_crlb_ft(30.0, 4.0, 3.0, n_samples=1))
        hundred = float(ranging_crlb_ft(30.0, 4.0, 3.0, n_samples=100))
        assert hundred == pytest.approx(one / 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            ranging_crlb_ft(10.0, sigma_db=0, exponent=3.0)
        with pytest.raises(ValueError):
            ranging_crlb_ft(10.0, 4.0, 3.0, n_samples=0)


class TestFisherInformation:
    def test_symmetric_psd(self):
        J = fisher_information(Point(20, 15), CORNERS, 4.0, 3.0)
        assert np.allclose(J, J.T)
        eigs = np.linalg.eigvalsh(J)
        assert (eigs >= -1e-12).all()

    def test_more_aps_more_information(self):
        J3 = fisher_information(Point(25, 20), CORNERS[:3], 4.0, 3.0)
        J4 = fisher_information(Point(25, 20), CORNERS, 4.0, 3.0)
        assert np.trace(J4) > np.trace(J3)

    def test_single_ap_rank_deficient(self):
        bound = crlb_position_rmse(Point(10, 10), CORNERS[:1], 4.0, 3.0)
        assert bound == float("inf")

    def test_collinear_aps_degenerate_on_axis(self):
        # Two APs on the x-axis, client on the same axis: gradients are
        # collinear → no information across the axis.
        aps = [Point(0, 0), Point(50, 0)]
        assert crlb_position_rmse(Point(25, 0), aps, 4.0, 3.0) == float("inf")
        # Off-axis the geometry is fine.
        assert np.isfinite(crlb_position_rmse(Point(25, 10), aps, 4.0, 3.0))

    def test_standing_on_ap_skips_it(self):
        J = fisher_information(Point(0, 0), CORNERS, 4.0, 3.0)
        assert np.isfinite(J).all()


class TestPositionCRLB:
    def test_lower_with_more_samples(self):
        b1 = crlb_position_rmse(Point(25, 20), CORNERS, 4.0, 3.0, n_samples=1)
        b9 = crlb_position_rmse(Point(25, 20), CORNERS, 4.0, 3.0, n_samples=9)
        assert b9 == pytest.approx(b1 / 3)

    def test_lower_with_less_noise(self):
        loud = crlb_position_rmse(Point(25, 20), CORNERS, 8.0, 3.0)
        quiet = crlb_position_rmse(Point(25, 20), CORNERS, 2.0, 3.0)
        assert quiet == pytest.approx(loud / 4)

    def test_center_better_than_corner_vicinity(self):
        center = crlb_position_rmse(Point(25, 20), CORNERS, 4.0, 3.0)
        edge = crlb_position_rmse(Point(48, 38), CORNERS, 4.0, 3.0)
        assert np.isfinite(center) and np.isfinite(edge)

    def test_field_shape(self):
        pts = np.array([[10.0, 10.0], [25.0, 20.0], [40.0, 30.0]])
        field = crlb_field(pts, CORNERS, 4.0, 3.0)
        assert field.shape == (3,)
        assert (field > 0).all()

    def test_monte_carlo_ml_estimator_respects_bound(self):
        """An ML grid estimator on exactly-modelled data must sit at or
        above the CRLB (sanity of the bound itself)."""
        rng = np.random.default_rng(0)
        true = Point(22.0, 17.0)
        sigma, n_exp = 3.0, 3.0
        ap_xy = np.array([[p.x, p.y] for p in CORNERS])

        def mu(x):
            d = np.maximum(np.hypot(*(x[:, None, :] - ap_xy[None, :, :]).transpose(2, 0, 1)), 1.0)
            return -35.0 - 10 * n_exp * np.log10(d)

        gx, gy = np.meshgrid(np.linspace(0, 50, 101), np.linspace(0, 40, 81))
        lattice = np.column_stack([gx.ravel(), gy.ravel()])
        expected = mu(lattice)
        truth_mu = mu(np.array([[true.x, true.y]]))[0]

        errs = []
        for _ in range(150):
            obs = truth_mu + rng.normal(0, sigma, 4)
            ll = -((obs[None, :] - expected) ** 2).sum(axis=1)
            best = lattice[int(np.argmax(ll))]
            errs.append(np.hypot(best[0] - true.x, best[1] - true.y))
        rmse = float(np.sqrt(np.mean(np.square(errs))))
        bound = crlb_position_rmse(true, CORNERS, sigma, n_exp)
        assert rmse >= bound * 0.85  # ML ~efficient here; never far below

    def test_effective_samples(self):
        # Uncorrelated limit: K_eff → K.
        assert effective_samples(100, 10.0, 0.1) == pytest.approx(100, rel=0.01)
        # Strong correlation shrinks it hard.
        assert effective_samples(90, 1.0, 6.0) < 20
        with pytest.raises(ValueError):
            effective_samples(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            effective_samples(10, 0.0, 1.0)
