"""Failure-injection tests: corrupted inputs must fail *predictably*.

A toolkit that ships file formats must survive hostile bytes: every
decoder here is attacked with truncations, random byte flips and pure
noise, and must either succeed or raise its own documented error type —
never an IndexError/struct.error leak, never a hang.
"""

import io
import string
import tempfile
import zipfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.floorplan import FloorPlan
from repro.core.geometry import Point
from repro.core.locationmap import LocationMap, LocationMapError
from repro.core.trainingdb import LocationRecord, TrainingDatabase, TrainingDBError
from repro.imaging.gif import GifError, decode_gif, encode_gif
from repro.imaging.lzw import LZWError, decompress
from repro.imaging.pnm import PnmError, decode_pnm
from repro.imaging.raster import RED, Raster
from repro.wiscan.collection import WiScanCollection
from repro.wiscan.format import (
    WiScanFile,
    WiScanFormatError,
    WiScanRecord,
    parse_wiscan,
    render_wiscan,
)


def sample_gif() -> bytes:
    r = Raster(24, 18)
    r.draw_line(0, 0, 23, 17, RED, 2)
    return encode_gif(r, comments=["prov"])


def sample_tdb() -> bytes:
    samples = np.array([[-50.0, -70.0]] * 5, dtype=np.float32)
    db = TrainingDatabase(
        ["02:00:00:00:00:01", "02:00:00:00:00:02"],
        [LocationRecord("p", Point(1, 2), samples)],
    )
    return db.to_bytes()


class TestGifRobustness:
    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_leaks(self, cut):
        blob = sample_gif()
        cut = min(cut, len(blob) - 1)
        try:
            decode_gif(blob[:cut])
        except (GifError, LZWError):
            pass  # the documented failure modes

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_byte_flip_never_leaks(self, pos, value):
        blob = bytearray(sample_gif())
        pos = pos % len(blob)
        blob[pos] = value
        try:
            decode_gif(bytes(blob))
        except (GifError, LZWError):
            pass

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_random_noise_never_leaks(self, noise):
        try:
            decode_gif(noise)
        except (GifError, LZWError):
            pass


class TestTdbRobustness:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_leaks(self, cut):
        blob = sample_tdb()
        cut = min(cut, len(blob) - 1)
        try:
            TrainingDatabase.from_bytes(blob[:cut])
        except TrainingDBError:
            pass

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_byte_flip_never_leaks(self, pos, value):
        blob = bytearray(sample_tdb())
        pos = pos % len(blob)
        blob[pos] = value
        try:
            TrainingDatabase.from_bytes(bytes(blob))
        except TrainingDBError:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_random_noise_never_leaks(self, noise):
        try:
            TrainingDatabase.from_bytes(noise)
        except TrainingDBError:
            pass


class TestTextFormatRobustness:
    @given(st.text(max_size=400))
    @settings(max_examples=100, deadline=None)
    def test_wiscan_parser_never_leaks(self, text):
        try:
            parse_wiscan(text)
        except WiScanFormatError:
            pass

    @given(st.text(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_locationmap_parser_never_leaks(self, text):
        try:
            LocationMap.parse(text)
        except LocationMapError:
            pass

    @given(st.binary(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_pnm_decoder_never_leaks(self, noise):
        try:
            decode_pnm(noise)
        except PnmError:
            pass


class TestLzwRobustness:
    @given(st.binary(max_size=400), st.integers(min_value=2, max_value=8))
    @settings(max_examples=120, deadline=None)
    def test_random_streams_never_leak(self, payload, mcs):
        try:
            out = decompress(payload, mcs, expected_length=4096)
            assert len(out) <= 4096
        except LZWError:
            pass


# ----------------------------------------------------------------------
# Zip-archive ingestion (tentpole satellite): hostile archives must
# surface only WiScanFormatError or zipfile.BadZipFile — in both modes.
# ----------------------------------------------------------------------

ZIP_ERRORS = (WiScanFormatError, zipfile.BadZipFile)


def sample_survey_zip() -> bytes:
    """A small valid two-session survey archive, as bytes."""
    buf = io.BytesIO()
    text = (
        "# wi-scan v1\n# location: {loc}\n# position: {x} 5\n"
        "0.000\t02:00:00:00:00:01\tnet\t6\t-50.0\n"
        "1.000\t02:00:00:00:00:02\tnet\t11\t-60.0\n"
    )
    with zipfile.ZipFile(buf, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        zf.writestr("kitchen.wi-scan", text.format(loc="kitchen", x=1))
        zf.writestr("hall.wi-scan", text.format(loc="hall", x=9))
    return buf.getvalue()


# Values chosen to survive render's %.3f / %.1f / %g formatting exactly.
_bssid = st.tuples(*[st.integers(0, 255)] * 6).map(
    lambda t: ":".join(f"{b:02x}" for b in t)
)
_record = st.builds(
    WiScanRecord,
    time_s=st.integers(0, 10_000_000).map(lambda i: i / 1000.0),
    bssid=_bssid,
    ssid=st.text(alphabet=string.ascii_letters + string.digits + " _-", max_size=12),
    channel=st.integers(1, 196),
    rssi_dbm=st.integers(-1200, 0).map(lambda i: i / 10.0),
)
_session = st.builds(
    WiScanFile,
    location=st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12),
    records=st.lists(_record, max_size=8),
    position=st.one_of(
        st.none(), st.tuples(st.integers(0, 500), st.integers(0, 500)).map(
            lambda t: (float(t[0]), float(t[1]))
        )
    ),
    interval_s=st.one_of(st.none(), st.integers(1, 30).map(float)),
)


class TestCollectionZipRobustness:
    @given(st.binary(max_size=400))
    @settings(max_examples=80, deadline=None)
    def test_random_noise_never_leaks(self, noise):
        try:
            WiScanCollection.from_zip(io.BytesIO(noise))
        except ZIP_ERRORS:
            pass

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=255))
    @settings(max_examples=120, deadline=None)
    def test_byte_flip_never_leaks(self, pos, value):
        blob = bytearray(sample_survey_zip())
        blob[pos % len(blob)] = value
        for lenient in (False, True):
            try:
                WiScanCollection.from_zip(io.BytesIO(bytes(blob)), lenient=lenient)
            except ZIP_ERRORS:
                pass

    @given(st.integers(min_value=0, max_value=600))
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_leaks(self, cut):
        blob = sample_survey_zip()
        cut = min(cut, len(blob) - 1)
        for lenient in (False, True):
            try:
                WiScanCollection.from_zip(io.BytesIO(blob[:cut]), lenient=lenient)
            except ZIP_ERRORS:
                pass

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_member_bytes_never_leak(self, payload):
        """A zip whose member is hostile bytes (often non-UTF-8)."""
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as zf:
            zf.writestr("evil.wi-scan", payload)
        for lenient in (False, True):
            try:
                coll = WiScanCollection.from_zip(io.BytesIO(buf.getvalue()), lenient=lenient)
                assert len(coll) == 1  # payload happened to be a valid session
            except ZIP_ERRORS:
                pass

    @given(st.lists(_session, min_size=1, max_size=4, unique_by=lambda s: s.location))
    @settings(max_examples=40, deadline=None)
    def test_save_zip_load_round_trip(self, sessions):
        coll = WiScanCollection({s.location: s for s in sessions})
        with tempfile.TemporaryDirectory() as tmp:
            archive = Path(tmp) / "survey.zip"
            coll.save_zip(archive)
            loaded = WiScanCollection.from_zip(archive)
        assert sorted(loaded.locations()) == sorted(coll.locations())
        for s in sessions:
            back = loaded.session(s.location)
            assert back.records == s.records
            assert back.position == s.position
            assert back.interval_s == s.interval_s


class TestFloorPlanRobustness:
    def test_corrupt_annotation_comment_ignored(self, tmp_path):
        """A plan whose annotation JSON was mangled loads as plain image."""
        import json

        from repro.core.floorplan import ANNOTATION_MAGIC

        r = Raster(20, 20)
        # A structurally valid JSON comment with wrong inner types.
        bad = json.dumps({"magic": ANNOTATION_MAGIC, "origin": "not-a-pair"})
        blob = encode_gif(r, comments=[bad])
        path = tmp_path / "bad.gif"
        path.write_bytes(blob)
        try:
            plan = FloorPlan.load(path)
            # Either loaded without the broken field...
            assert plan.image == r
        except (TypeError, ValueError):
            pytest.fail("corrupt annotations must not raise on load")
