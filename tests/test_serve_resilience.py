"""The resilience layer: breakers, admission, Retry-After, chaos, drain.

The state-machine and admission tests are pure logic on a
:class:`ManualClock` (tier1, no sockets, no sleeps); the drain /
deadline-header / chaos-transport and client tests bind localhost
sockets (``service`` tier).  The hypothesis property drives the
breaker through arbitrary call/outcome/time sequences and asserts the
two liveness invariants: an open breaker can never wedge open forever,
and there is no open → closed edge that skips half-open probing.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms.fallback import FallbackLocalizer
from repro.serve import (
    AdmissionController,
    ChaosError,
    ChaosPolicy,
    CircuitBreaker,
    DEADLINE_HEADER,
    LocalizationHTTPServer,
    LocalizationService,
    ManualClock,
    MicroBatcher,
    Priority,
    RetryBudget,
    ServiceClient,
    TierBreakerBoard,
    compute_retry_after_s,
)
from repro.serve.client import classify_status, fold_reports
from repro.serve.resilience import CLOSED, HALF_OPEN, OPEN, ChaosTier


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


def make_breaker(clock, **overrides):
    kwargs = dict(window=6, failure_threshold=0.5, min_calls=3,
                  cooldown_s=5.0, half_open_probes=1, clock=clock)
    kwargs.update(overrides)
    return CircuitBreaker("tier", **kwargs)


# ----------------------------------------------------------------------
# circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_stays_closed_below_min_calls(self):
        breaker = make_breaker(ManualClock())
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == CLOSED and breaker.allow()

    def test_opens_at_failure_threshold_and_short_circuits(self):
        breaker = make_breaker(ManualClock())
        for ok in (True, False, False, False):
            breaker.record(ok)
        assert breaker.state == OPEN
        assert not breaker.allow()
        counters = obs.snapshot()["counters"]
        assert counters["serve.breaker.transitions{breaker=tier,to=open}"] == 1
        assert counters["serve.breaker.short_circuits{breaker=tier}"] == 1

    def test_successes_keep_it_closed(self):
        breaker = make_breaker(ManualClock())
        for _ in range(20):
            breaker.record(True)
        breaker.record(False)  # 1/6 of the window: under threshold
        assert breaker.state == CLOSED

    def test_cooldown_admits_one_probe_then_refuses(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record(False)
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        assert breaker.cooldown_remaining_s() == pytest.approx(0.1)
        clock.advance(0.2)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # probe slot taken

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record(False)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record(False)  # probe verdict: still broken
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown re-armed in full
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record(True)  # probe verdict: recovered
        assert breaker.state == CLOSED
        # The window was reset on close: old failures don't linger.
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == CLOSED  # only 2 of min_calls 3 recorded

    def test_late_outcomes_while_open_are_ignored(self):
        breaker = make_breaker(ManualClock())
        for _ in range(3):
            breaker.record(False)
        breaker.record(True)  # a call admitted before the trip, landing late
        assert breaker.state == OPEN

    def test_snapshot_shape(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record(False)
        clock.advance(1.0)
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["opened_count"] == 1
        assert snap["cooldown_remaining_s"] == pytest.approx(4.0)

    def test_parameter_validation(self):
        for bad in (dict(window=0), dict(failure_threshold=0.0),
                    dict(failure_threshold=1.5), dict(min_calls=0),
                    dict(cooldown_s=0.0), dict(half_open_probes=0)):
            with pytest.raises(ValueError):
                make_breaker(ManualClock(), **bad)

    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("call"), st.booleans()),
                st.tuples(st.just("tick"), st.floats(min_value=0.1, max_value=20.0)),
            ),
            max_size=60,
        )
    )
    def test_property_never_wedges_and_never_skips_probing(self, ops):
        """Arbitrary call/outcome/time sequences keep the two invariants.

        1. No open → closed edge without an intervening half-open state
           (observable because each op performs at most one transition).
        2. After any history, a full cooldown's wait re-admits a call:
           the breaker cannot be wedged shut forever.
        """
        clock = ManualClock()
        breaker = make_breaker(clock)
        states = [breaker.state]
        for op, value in ops:
            if op == "call":
                if breaker.allow():
                    states.append(breaker.state)  # transition from allow()
                    breaker.record(value)
            else:
                clock.advance(value)
            states.append(breaker.state)
        for before, after in zip(states, states[1:]):
            assert not (before == OPEN and after == CLOSED), states
        # Liveness: once the cooldown has passed, allow() re-admits
        # (either closed, or claiming the half-open probe slot).  The
        # epsilon steps strictly past the boundary: opened_at is a sum
        # of drawn floats, so advancing exactly cooldown_s can leave
        # elapsed a rounding error short of it.
        clock.advance(breaker.cooldown_s + 1e-6)
        assert breaker.allow()


class TestTierBreakerBoard:
    def test_check_and_record_drive_the_tier_breaker(self):
        clock = ManualClock()
        board = TierBreakerBoard(min_calls=3, window=6, cooldown_s=5.0, clock=clock)
        assert board.check("geometric") is None
        for _ in range(3):
            board.record("geometric", False)
        reason = board.check("geometric")
        assert reason is not None and "circuit open" in reason
        assert "cooldown remaining" in reason
        assert board.check("nearest") is None  # other tiers unaffected

    def test_health_degrades_only_when_all_tiers_open(self):
        board = TierBreakerBoard(min_calls=1, window=2)
        ok, detail = board.health()
        assert ok and detail == {"breakers": "no calls yet"}
        board.record("a", False)
        board.record("b", True)
        ok, detail = board.health()
        assert ok and detail["a"]["state"] == OPEN  # one open: degraded, not dead
        board.record("b", False)
        ok, _ = board.health()
        assert not ok  # every tier open: the chain cannot answer at all

    def test_board_state_survives_a_model_reload(self, training_db):
        board = TierBreakerBoard(min_calls=1, window=2)
        board.record("probabilistic", False)
        service = LocalizationService(training_db, breakers=board)
        assert service.breaker_board is board
        service.reload(training_db)
        assert board.breaker("probabilistic").state == OPEN  # quarantine kept


# ----------------------------------------------------------------------
# Retry-After and admission control
# ----------------------------------------------------------------------
class TestComputeRetryAfter:
    def test_uses_measured_drain_rate(self):
        assert compute_retry_after_s(100, drain_rate=50.0) == 2
        assert compute_retry_after_s(500, drain_rate=50.0) == 10

    def test_structural_fallback_before_any_dispatch(self):
        # 10 queued / 5 per batch = 2 windows of 0.5s -> 1s.
        assert compute_retry_after_s(10, drain_rate=None, max_batch=5, max_wait_s=0.5) == 1
        assert compute_retry_after_s(100, drain_rate=None, max_batch=5, max_wait_s=0.5) == 10

    def test_floor_and_cap(self):
        assert compute_retry_after_s(0, drain_rate=1000.0) == 1
        assert compute_retry_after_s(0, drain_rate=1000.0, floor_s=3) == 3
        assert compute_retry_after_s(10_000_000, drain_rate=1.0) == 60
        assert compute_retry_after_s(10_000_000, drain_rate=1.0, cap_s=30) == 30


class TestAdmissionController:
    def test_critical_is_never_shed(self):
        admission = AdmissionController(max_queue=10, p99_limit_ms=1.0)
        for _ in range(16):
            admission.note_latency_ms(10_000.0)
        assert admission.admit(Priority.CRITICAL, queue_depth=10_000) is None

    def test_bulk_sheds_at_the_watermark_normal_does_not(self):
        admission = AdmissionController(max_queue=100)
        assert admission.admit(Priority.BULK, queue_depth=74) is None
        reason = admission.admit(Priority.BULK, queue_depth=75)
        assert reason is not None and "queue pressure" in reason
        # Normal traffic's shed point is the hard queue bound (the
        # batcher's QueueFullError), not an early watermark.
        assert admission.admit(Priority.NORMAL, queue_depth=99) is None
        counters = obs.snapshot()["counters"]
        assert counters["serve.admission.shed{class=bulk,reason=queue_pressure}"] == 1

    def test_latency_brake_trips_bulk_first(self):
        admission = AdmissionController(max_queue=100, p99_limit_ms=100.0)
        assert admission.p99_ms() is None  # no verdict before 8 samples
        for _ in range(16):
            admission.note_latency_ms(150.0)
        assert admission.admit(Priority.BULK, queue_depth=0) is not None
        assert admission.admit(Priority.NORMAL, queue_depth=0) is None  # < 2x limit
        for _ in range(16):
            admission.note_latency_ms(250.0)
        assert admission.admit(Priority.NORMAL, queue_depth=0) is not None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=10, latency_window=4)


# ----------------------------------------------------------------------
# chaos policy
# ----------------------------------------------------------------------
class TestChaosPolicy:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosPolicy(tier_error_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy(latency_ms=-1.0)

    def test_inactive_by_default(self):
        assert not ChaosPolicy().active
        assert ChaosPolicy(tier_error_rate=0.1).active

    def test_seeded_draws_are_reproducible(self):
        a = ChaosPolicy(latency_ms=10.0, latency_rate=0.5, latency_jitter_ms=5.0, seed=7)
        b = ChaosPolicy(latency_ms=10.0, latency_rate=0.5, latency_jitter_ms=5.0, seed=7)
        assert [a.dispatch_latency_s() for _ in range(32)] == [
            b.dispatch_latency_s() for _ in range(32)
        ]

    def test_tier_filter(self):
        policy = ChaosPolicy(tier_error_rate=1.0, tiers=("geometric",))
        assert policy.tier_fails("geometric")
        assert not policy.tier_fails("nearest")

    def test_chaos_tier_raises_chaos_error_and_passes_through(self, training_db):
        chain = FallbackLocalizer(tiers=("probabilistic",)).fit(training_db)
        tier = chain._fitted[0]
        wrapped = ChaosTier(tier, ChaosPolicy(tier_error_rate=1.0))
        assert wrapped.name == "probabilistic"
        with pytest.raises(ChaosError):
            wrapped.locate(object())
        with pytest.raises(ChaosError):
            wrapped.locate_many([object()])
        # ChaosError is a RuntimeError: the chain's error isolation
        # treats an injected fault exactly like a real tier error.
        assert isinstance(ChaosError("x"), RuntimeError)


# ----------------------------------------------------------------------
# breakers in the fallback chain (no sockets, manual time)
# ----------------------------------------------------------------------
class TestBreakerInChain:
    @pytest.fixture()
    def harness(self, training_db):
        clock = ManualClock()
        board = TierBreakerBoard(min_calls=3, window=6, failure_threshold=0.5,
                                 cooldown_s=5.0, clock=clock)
        chaos = ChaosPolicy(tier_error_rate=1.0, tiers=("probabilistic",), seed=3)
        service = LocalizationService(training_db, breakers=board, chaos=chaos)
        return service, board, chaos, clock

    def test_failing_tier_trips_its_breaker_and_chain_degrades(self, harness, observations):
        service, board, chaos, clock = harness
        batch = list(observations[:4])
        estimates = service.locate_many(batch)
        # Injected faults: every answer fell through to the last tier.
        assert all(e.valid and e.details["tier"] == "nearest" for e in estimates)
        assert board.breaker("probabilistic").state == OPEN
        # Second wave: the tier is skipped (short-circuit), not re-paid.
        estimates = service.locate_many(batch)
        declined = estimates[0].details["declined"]
        reasons = {d["tier"]: d["reason"] for d in declined}
        assert "circuit open" in reasons["probabilistic"]
        assert all(e.valid for e in estimates)

    def test_probe_failure_reopens_probe_success_recovers(self, harness, observations):
        service, board, chaos, clock = harness
        batch = list(observations[:4])
        service.locate_many(batch)
        assert board.breaker("probabilistic").state == OPEN
        clock.advance(5.0)  # cooldown over: next wave is the probe
        service.locate_many(batch)
        assert board.breaker("probabilistic").state == OPEN  # probe failed
        chaos.tier_error_rate = 0.0  # the dependency recovers
        clock.advance(5.0)
        estimates = service.locate_many(batch)
        assert board.breaker("probabilistic").state == CLOSED
        assert all(e.details["tier"] == "probabilistic" for e in estimates)

    def test_wire_parity_with_breakers_closed(self, training_db, observations):
        """Breakers at rest change nothing: answers are byte-identical."""
        from repro.serve.wire import canonical_json, estimate_to_json

        plain = LocalizationService(training_db, breakers=False)
        guarded = LocalizationService(training_db, breakers=True)
        batch = list(observations[:6])
        plain_bytes = [canonical_json(estimate_to_json(e))
                       for e in plain.locate_many(batch)]
        guarded_bytes = [canonical_json(estimate_to_json(e))
                         for e in guarded.locate_many(batch)]
        assert plain_bytes == guarded_bytes


# ----------------------------------------------------------------------
# sleep-free chaos soak: exactly-once resolution under injected faults
# ----------------------------------------------------------------------
class TestChaosSoak:
    def test_every_future_resolves_exactly_once_under_tier_chaos(self, training_db, observations):
        """ManualClock soak: chaos tier faults + deadlines, no sleeps.

        Every submitted request must end in exactly one of: a valid
        estimate (possibly degraded), a DeadlineExceededError, or a
        queue-full rejection at submit.  Nothing may hang, and the
        dispatcher thread must survive every injected fault.
        """
        from concurrent.futures import Future

        clock = ManualClock()
        board = TierBreakerBoard(min_calls=3, cooldown_s=1.0, clock=clock)
        chaos = ChaosPolicy(tier_error_rate=0.5, seed=11)
        service = LocalizationService(training_db, breakers=board, chaos=chaos)
        futures: list = []
        rejected = 0
        with MicroBatcher(service.locate_many, max_batch=4, max_wait_ms=0.0,
                          max_queue=64, clock=clock, name="soak") as batcher:
            for round_no in range(12):
                for i, o in enumerate(observations[:8]):
                    deadline = clock.monotonic() + (0.5 if i % 3 == 0 else 60.0)
                    try:
                        futures.append(batcher.submit(o, deadline=deadline))
                    except Exception:
                        rejected += 1
                clock.advance(0.25 * (round_no % 3))
        assert futures and all(isinstance(f, Future) for f in futures)
        answered = valid = errored = 0
        for f in futures:
            assert f.done()  # stop() drains everything accepted
            if f.exception() is None:
                answered += 1
                if f.result().valid:
                    valid += 1
            else:
                errored += 1
        # Exactly-once bookkeeping: every accepted request has exactly
        # one terminal state, and the population adds up.
        assert answered + errored == len(futures)
        assert valid > 0  # chaos at 50% cannot kill the whole chain


# ----------------------------------------------------------------------
# HTTP surface: deadline header, drain, chaos transport (service tier)
# ----------------------------------------------------------------------
def _post(url, doc=None, headers=None, method="POST", timeout=60):
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=dict(headers or {}))
    try:
        with urllib.request.urlopen(req, timeout=timeout) as r:
            return r.status, dict(r.headers), r.read()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read()


def _observation_doc(observation, **extra):
    doc = {
        "samples": [[None if v != v else v for v in row]
                    for row in observation.samples.tolist()],
        "bssids": list(observation.bssids),
    }
    doc.update(extra)
    return doc


@pytest.fixture()
def http_service(training_db, house):
    cfg = house.config
    return LocalizationService(
        training_db,
        ap_positions=house.ap_positions_by_bssid(),
        bounds=(0.0, 0.0, cfg.width_ft, cfg.height_ft),
    )


@pytest.mark.service
class TestDeadlineHeader:
    def test_spent_header_budget_is_504_before_enqueue(self, http_service, observations):
        with LocalizationHTTPServer(http_service) as server:
            status, _, body = _post(
                server.url + "/v1/locate", _observation_doc(observations[0]),
                headers={DEADLINE_HEADER: "0"},
            )
            assert status == 504
            assert json.loads(body)["error"] == "deadline_exceeded"
            status, _, _ = _post(
                server.url + "/v1/locate/batch",
                {"observations": [_observation_doc(observations[0])]},
                headers={DEADLINE_HEADER: "-5"},
            )
            assert status == 504

    def test_unparseable_header_is_400(self, http_service, observations):
        with LocalizationHTTPServer(http_service) as server:
            status, _, body = _post(
                server.url + "/v1/locate", _observation_doc(observations[0]),
                headers={DEADLINE_HEADER: "soon"},
            )
        assert status == 400
        assert json.loads(body)["error"] == "bad_deadline"

    def test_tightest_deadline_wins(self, http_service, observations):
        """Header 50ms beats body 1h: the queued request expires at 50ms.

        Same parked/doomed pattern as the body-deadline test: the
        dispatcher is held on a first request, the doomed one queues
        behind it carrying a generous *body* deadline but a tight
        header budget, and one virtual second passes.  A body-only
        deadline would survive; the header must not.
        """
        clock = ManualClock()
        entered = threading.Event()
        release = threading.Event()
        server = LocalizationHTTPServer(
            http_service, max_batch=1, max_wait_ms=0.0, max_queue=8, clock=clock
        )

        def held_dispatch(batch):
            entered.set()
            release.wait(timeout=30.0)
            return http_service.locate_many(batch)

        server.batcher._dispatch = held_dispatch
        with server:
            results = {}

            def post(name, doc, headers=None):
                results[name] = _post(server.url + "/v1/locate", doc, headers=headers)

            parked = threading.Thread(
                target=post, args=("parked", _observation_doc(observations[0]))
            )
            parked.start()
            assert entered.wait(timeout=30.0)
            doomed = threading.Thread(
                target=post,
                args=("doomed",
                      _observation_doc(observations[1], deadline_ms=3_600_000),
                      {DEADLINE_HEADER: "50"}),
            )
            doomed.start()
            while server.batcher.queue_depth() < 1:
                if not parked.is_alive() and not doomed.is_alive():
                    break
            clock.advance(1.0)
            release.set()
            parked.join(timeout=30.0)
            doomed.join(timeout=30.0)
        assert results["parked"][0] == 200
        status, _, body = results["doomed"]
        assert status == 504
        assert json.loads(body)["error"] == "deadline_exceeded"


@pytest.mark.service
class TestGracefulDrain:
    def test_drain_finishes_in_flight_then_rejects_new_work(self, http_service, observations):
        release = threading.Event()
        entered = threading.Event()
        server = LocalizationHTTPServer(http_service, max_wait_ms=0.0)

        def held_dispatch(batch):
            entered.set()
            release.wait(timeout=30.0)
            return http_service.locate_many(batch)

        server.batcher._dispatch = held_dispatch
        with server:
            results = {}

            def post():
                results["parked"] = _post(
                    server.url + "/v1/locate", _observation_doc(observations[0])
                )

            t = threading.Thread(target=post)
            t.start()
            assert entered.wait(timeout=30.0)
            status, _, body = _post(server.url + "/admin/drain", {"deadline_s": 30.0})
            assert status == 200
            doc = json.loads(body)
            assert doc["draining"] is True and doc["already_draining"] is False
            # New data-plane work: refused with a Retry-After hint.
            status, headers, body = _post(
                server.url + "/v1/locate", _observation_doc(observations[1])
            )
            assert status == 503
            assert json.loads(body)["error"] == "draining"
            assert int(headers["Retry-After"]) >= 1
            # Control plane still answers; /healthz flips unhealthy.
            status, _, body = _post(server.url + "/healthz", method="GET")
            report = json.loads(body)
            assert status == 503
            assert report["checks"]["lifecycle"]["ok"] is False
            # The parked request is in-flight work: it must complete.
            release.set()
            t.join(timeout=30.0)
            assert results["parked"][0] == 200
            # Drain converges: unfinished == 0 lands in the lifecycle report.
            deadline = threading.Event()
            for _ in range(400):
                _, _, body = _post(server.url + "/healthz", method="GET")
                detail = json.loads(body)["checks"]["lifecycle"]["detail"]
                if detail.get("report"):
                    assert detail["report"]["unfinished"] == 0
                    assert detail["report"]["drained"] is True
                    break
                deadline.wait(0.01)
            else:
                pytest.fail("drain never reported completion")
            # Second drain: idempotent.
            status, _, body = _post(server.url + "/admin/drain")
            assert status == 200
            assert json.loads(body)["already_draining"] is True

    def test_direct_drain_call_reports_clean(self, http_service):
        with LocalizationHTTPServer(http_service) as server:
            report = server.drain(deadline_s=5.0)
        assert report["drained"] is True and report["unfinished"] == 0
        counters = obs.snapshot()["counters"]
        assert counters["serve.drain.completed{result=clean}"] == 1

    def test_early_rejection_keeps_keepalive_framing(self, http_service, observations):
        """Back-to-back rejected POSTs on ONE connection stay well-formed.

        The draining 503 answers before any handler reads the request
        body; unless the server drains those bytes, the next request
        line on this persistent connection is parsed starting inside
        the previous JSON payload (a framing desync surfacing as 501s).
        """
        with LocalizationHTTPServer(http_service) as server:
            server.drain(deadline_s=5.0)
            client = ServiceClient.from_url(server.url, max_retries=0)
            try:
                reports = [
                    client.locate(_observation_doc(observations[i])) for i in range(3)
                ]
                # Control plane still parses fine on the same connection.
                health = client.healthz()
            finally:
                client.close()
        assert [r.category for r in reports] == ["draining_503"] * 3
        assert all(r.doc["error"] == "draining" for r in reports)
        assert health.status == 503  # draining instance: unhealthy, not garbled


@pytest.mark.service
class TestChaosTransport:
    def test_connection_reset_surfaces_as_transport_error(self, http_service, observations):
        chaos = ChaosPolicy(reset_rate=1.0, seed=1)
        with LocalizationHTTPServer(http_service, chaos=chaos) as server:
            client = ServiceClient.from_url(server.url, max_retries=2,
                                            backoff_base_s=0.001, seed=0)
            report = client.locate(_observation_doc(observations[0]))
            # Control plane is never chaos'd: health still answers.
            health = client.healthz()
            client.close()
        assert report.category == "transport_error"
        assert report.attempts == 3  # initial + 2 retries, then gave up
        assert not report.clean
        assert health.status in (200, 503)

    def test_slowloris_is_survivable_with_a_read_timeout(self, http_service, observations):
        chaos = ChaosPolicy(slowloris_rate=1.0, slowloris_delay_s=0.005, seed=1)
        with LocalizationHTTPServer(http_service, chaos=chaos) as server:
            client = ServiceClient.from_url(server.url, timeout_s=30.0, seed=0)
            report = client.locate(_observation_doc(observations[0]))
            client.close()
        assert report.category == "ok"
        assert report.doc["valid"] is True

    def test_tier_chaos_end_to_end_keeps_availability(self, training_db, observations):
        chaos = ChaosPolicy(tier_error_rate=0.6, seed=5)
        service = LocalizationService(training_db, chaos=chaos)
        with LocalizationHTTPServer(service, max_wait_ms=0.0) as server:
            client = ServiceClient.from_url(server.url, seed=0)
            reports = [client.locate(_observation_doc(o)) for o in observations[:10]]
            client.close()
        folded = fold_reports(reports)
        assert folded["availability"] == 1.0  # every request cleanly answered
        assert folded["answered_ok"] == 10  # the chain degraded, never died
        # The injected faults really happened (not a vacuous pass).
        counters = obs.snapshot()["counters"]
        injected = sum(v for k, v in counters.items()
                       if k.startswith("serve.chaos.injected"))
        assert injected > 0


# ----------------------------------------------------------------------
# the retrying client (stub-level, service tier for real sockets)
# ----------------------------------------------------------------------
@pytest.mark.service
class TestServiceClient:
    @pytest.fixture()
    def stub(self):
        """A tiny HTTP server answering from a scripted response queue."""
        import http.server

        script = []
        seen = []

        class Handler(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                length = int(self.headers.get("Content-Length") or 0)
                self.rfile.read(length)
                seen.append(dict(self.headers))
                status, headers, body = (
                    script.pop(0) if script else (200, {}, b"{}")
                )
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for k, v in headers.items():
                    self.send_header(k, v)
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):
                pass

        httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd.server_address[1], script, seen
        httpd.shutdown()
        httpd.server_close()

    def test_retries_through_429_to_success(self, stub):
        port, script, seen = stub
        script += [(429, {"Retry-After": "0"}, b'{"error": "queue_full"}')] * 2
        script += [(200, {}, b'{"valid": true}')]
        sleeps = []
        client = ServiceClient(port=port, max_retries=3, seed=0, sleep=sleeps.append)
        report = client.request("POST", "/v1/locate", {"x": 1})
        client.close()
        assert report.category == "ok" and report.attempts == 3
        assert sleeps == []  # Retry-After 0 replaced the backoff entirely

    def test_retry_after_hint_overrides_backoff(self, stub):
        port, script, seen = stub
        script += [(429, {"Retry-After": "2"}, b"{}"), (200, {}, b"{}")]
        sleeps = []
        client = ServiceClient(port=port, max_retries=1, seed=0, sleep=sleeps.append)
        report = client.request("POST", "/v1/locate", {"x": 1})
        client.close()
        assert report.ok and sleeps == [2.0]

    def test_non_retryable_statuses_are_final(self, stub):
        port, script, seen = stub
        for status, category in ((400, "client_4xx"), (504, "deadline_504"),
                                 (500, "server_5xx")):
            script.append((status, {}, b"{}"))
            client = ServiceClient(port=port, max_retries=3, seed=0,
                                   sleep=lambda s: None)
            report = client.request("POST", "/v1/locate", {"x": 1})
            client.close()
            assert report.category == category and report.attempts == 1

    def test_retry_budget_bounds_retries(self, stub):
        port, script, seen = stub
        script += [(429, {"Retry-After": "0"}, b"{}")] * 10
        budget = RetryBudget(capacity=1.0, refill_per_success=0.0)
        client = ServiceClient(port=port, max_retries=5, budget=budget, seed=0,
                               sleep=lambda s: None)
        report = client.request("POST", "/v1/locate", {"x": 1})
        client.close()
        assert report.category == "rejected_429"
        assert report.attempts == 2  # first try + the single budgeted retry
        assert budget.tokens == 0.0

    def test_deadline_header_is_restamped_per_attempt(self, stub):
        port, script, seen = stub
        script += [(429, {"Retry-After": "0.05"}, b"{}"), (200, {}, b"{}")]
        client = ServiceClient(port=port, max_retries=2, seed=0)
        report = client.request("POST", "/v1/locate", {"x": 1}, deadline_ms=5_000)
        client.close()
        assert report.ok and len(seen) == 2
        budgets = [float(h["X-Deadline-Ms"]) for h in seen]
        assert budgets[0] <= 5_000
        assert budgets[1] < budgets[0]  # the remaining budget shrank

    def test_spent_deadline_ends_the_call_client_side(self, stub):
        port, script, seen = stub
        client = ServiceClient(port=port, max_retries=3, seed=0)
        report = client.request("POST", "/v1/locate", {"x": 1}, deadline_ms=0.0001)
        client.close()
        assert report.category == "deadline_504"
        assert report.status is None  # never reached the server

    def test_classify_status_covers_the_vocabulary(self):
        assert classify_status(200) == "ok"
        assert classify_status(429) == "rejected_429"
        assert classify_status(503) == "draining_503"
        assert classify_status(504) == "deadline_504"
        assert classify_status(404) == "client_4xx"
        assert classify_status(500) == "server_5xx"

    def test_fold_reports_schema(self):
        reports = [
            ClientReportStub("ok"), ClientReportStub("ok"),
            ClientReportStub("rejected_429"), ClientReportStub("transport_error"),
        ]
        folded = fold_reports(reports)  # type: ignore[arg-type]
        assert folded["total"] == 4
        assert folded["availability"] == 0.75
        assert folded["error_budget"]["rejected_429"] == 1
        assert folded["ok_fraction"] == 0.5


class ClientReportStub:
    def __init__(self, category):
        self.category = category

    @property
    def clean(self):
        return self.category != "transport_error"
