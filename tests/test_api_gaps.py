"""Direct tests for public API surface not exercised elsewhere."""

import numpy as np
import pytest

from repro.algorithms.base import Localizer, Observation, make_localizer, register_algorithm
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.rank import RankLocalizer
from repro.algorithms.scene import SceneAnalysisLocalizer
from repro.algorithms.sector import SectorLocalizer
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase
from repro.radio.environment import AccessPoint, RadioEnvironment, Wall

B = [f"02:00:00:00:00:{i:02x}" for i in range(3)]


def tiny_db():
    rng = np.random.default_rng(0)
    return TrainingDatabase(
        B,
        [
            LocationRecord("a", Point(0, 0), rng.normal((-40, -60, -80), 1, (20, 3)).astype(np.float32)),
            LocationRecord("b", Point(20, 0), rng.normal((-80, -60, -40), 1, (20, 3)).astype(np.float32)),
        ],
    )


class TestRegisterAlgorithm:
    def test_custom_registration_and_construction(self):
        @register_algorithm("always-here")
        class AlwaysHere(Localizer):
            def fit(self, db):
                self._fitted = True
                return self

            def locate(self, observation):
                from repro.algorithms.base import LocationEstimate

                return LocationEstimate(position=Point(1.0, 2.0))

        loc = make_localizer("always-here").fit(tiny_db())
        assert loc.name == "always-here"
        est = loc.locate(Observation(np.zeros((1, 3)) - 50))
        assert est.position == Point(1, 2)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("probabilistic")(ProbabilisticLocalizer)

    def test_default_locate_many(self):
        loc = SceneAnalysisLocalizer(min_common_aps=2).fit(tiny_db())
        obs = [Observation(np.zeros((1, 3)) - 50)] * 3
        assert len(loc.locate_many(obs)) == 3


class TestDiagnosticAccessors:
    def test_scene_correlations(self):
        loc = SceneAnalysisLocalizer(min_common_aps=2).fit(tiny_db())
        corr = loc.correlations(Observation(np.array([[-40.0, -60.0, -80.0]])))
        assert corr.shape == (2,)
        assert corr[0] > corr[1]

    def test_rank_distances(self):
        loc = RankLocalizer(min_common_aps=2).fit(tiny_db())
        d = loc.rank_distances(Observation(np.array([[-40.0, -60.0, -80.0]])))
        assert d.shape == (2,)
        assert d[0] < d[1]

    def test_sector_observation_code(self):
        loc = SectorLocalizer().fit(tiny_db())
        code = loc.observation_code(
            Observation(np.array([[-50.0, np.nan, -60.0]] * 4))
        )
        assert code == frozenset({B[0], B[2]})

    def test_environment_ap_names_and_wall_loss(self):
        env = RadioEnvironment(
            [AccessPoint("A", Point(0, 0)), AccessPoint("B", Point(20, 0)), AccessPoint("C", Point(10, 20))],
            walls=[Wall.of(10, -5, 10, 25, "concrete")],
        )
        assert env.ap_names == ["A", "B", "C"]
        loss = env.wall_loss_db(np.array([[19.0, 0.0]]))
        assert loss.shape == (1, 3)
        assert loss[0, 0] == pytest.approx(12.0)  # A behind the wall
        assert loss[0, 1] == 0.0  # B same side

    def test_histogram_n_bins(self):
        from repro.algorithms.histogram import HistogramLocalizer

        h = HistogramLocalizer(bin_width_db=4.0, rssi_range=(-100.0, -20.0))
        assert h.n_bins == 20

    def test_blueprint_image_size(self):
        from repro.imaging.blueprint import BlueprintSpec

        spec = BlueprintSpec(width_ft=10, height_ft=10, pixels_per_foot=10, margin_px=5)
        w, h = spec.image_size
        assert w == 100 + 10
        assert h == 100 + 10 + 24

    def test_house_blueprint_spec(self, house):
        spec = house.blueprint_spec()
        assert spec.width_ft == house.config.width_ft
        assert len(spec.interior_walls) == 5
