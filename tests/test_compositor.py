"""Tests for the Floor Plan Compositor."""

import pytest

from repro.core.compositor import EstimatePair, FloorPlanCompositor, Mark
from repro.core.floorplan import FloorPlan, FloorPlanError, PixelPoint
from repro.core.geometry import Point
from repro.imaging.raster import BLUE, Raster


def make_plan():
    plan = FloorPlan(Raster(200, 160))
    plan.set_scale_direct(0.25)
    plan.set_origin(PixelPoint(0, 159))
    plan.add_access_point("A", PixelPoint(0, 159))
    plan.add_location("hall", PixelPoint(100, 80))
    return plan


class TestCompositor:
    def test_requires_scale_and_origin(self):
        bare = FloorPlan(Raster(10, 10))
        with pytest.raises(FloorPlanError):
            FloorPlanCompositor(bare)

    def test_render_plain_is_copy_plus_annotations(self):
        plan = make_plan()
        comp = FloorPlanCompositor(plan)
        out = comp.render(show_access_points=False, show_locations=False, show_origin=False, scale_bar=False)
        assert out == plan.image
        assert out is not plan.image  # never mutates the plan

    def test_annotation_layers_draw(self):
        comp = FloorPlanCompositor(make_plan())
        base = comp.render(show_access_points=False, show_locations=False, show_origin=False, scale_bar=False)
        with_aps = comp.render(show_locations=False, show_origin=False, scale_bar=False)
        assert with_aps != base

    def test_marks_drawn_at_floor_coordinates(self):
        comp = FloorPlanCompositor(make_plan())
        mark = Mark(Point(10, 10), style="dot", color=BLUE, size_px=4)
        out = comp.render(marks=[mark], show_access_points=False, show_locations=False,
                          show_origin=False, legend=False, scale_bar=False)
        # Floor (10,10) ft → pixel (40, 119).
        assert out.get(40, 119) == BLUE

    def test_all_mark_styles_render(self):
        comp = FloorPlanCompositor(make_plan())
        marks = [Mark(Point(5 + 8 * i, 20), style=s) for i, s in enumerate(("cross", "x", "circle", "dot", "diamond"))]
        out = comp.render(marks=marks)
        assert out != comp.render()

    def test_invalid_mark_style(self):
        with pytest.raises(ValueError):
            Mark(Point(0, 0), style="star")
        with pytest.raises(ValueError):
            Mark(Point(0, 0), size_px=0)

    def test_pairs_draw_error_lines(self):
        comp = FloorPlanCompositor(make_plan())
        pair = EstimatePair(Point(10, 10), Point(30, 25), label="T1")
        out = comp.render(pairs=[pair])
        assert out != comp.render()
        assert pair.error_ft == pytest.approx(25.0)

    def test_render_coordinates_cli_contract(self):
        comp = FloorPlanCompositor(make_plan())
        out = comp.render_coordinates([(5, 5), (20, 30)], style="x")
        assert out != comp.render()

    def test_mark_labels(self):
        comp = FloorPlanCompositor(make_plan())
        out_labeled = comp.render(marks=[Mark(Point(10, 20), label="HERE")])
        out_plain = comp.render(marks=[Mark(Point(10, 20))])
        assert out_labeled != out_plain

    def test_legend_toggle(self):
        comp = FloorPlanCompositor(make_plan())
        mark = [Mark(Point(10, 10))]
        with_legend = comp.render(marks=mark, legend=True)
        without = comp.render(marks=mark, legend=False)
        assert with_legend != without
