"""Tests for path-loss models and SS-unit conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.pathloss import (
    FEET_PER_METER,
    FreeSpaceModel,
    InverseSquareModel,
    LogDistanceModel,
    dbm_to_ss_units,
    free_space_path_loss_db,
    ss_units_to_dbm,
)


class TestSSUnits:
    def test_conversion_roundtrip(self):
        rssi = np.array([-30.0, -60.0, -90.0])
        assert np.allclose(ss_units_to_dbm(dbm_to_ss_units(rssi)), rssi)

    def test_floor_at_zero(self):
        assert dbm_to_ss_units(-120.0) == 0.0

    def test_known_value(self):
        assert dbm_to_ss_units(-40.0) == 60.0


class TestFreeSpace:
    def test_known_reference(self):
        # FSPL at 1 m, 2437 MHz ≈ 40.2 dB.
        loss = free_space_path_loss_db(FEET_PER_METER)
        assert loss == pytest.approx(40.2, abs=0.3)

    def test_doubling_distance_costs_6db(self):
        l1 = free_space_path_loss_db(50.0)
        l2 = free_space_path_loss_db(100.0)
        assert l2 - l1 == pytest.approx(6.02, abs=0.01)

    def test_model_rssi_decreases(self):
        m = FreeSpaceModel()
        assert m.rssi(10.0) > m.rssi(100.0)


class TestLogDistance:
    def test_reference_loss_defaults_to_free_space(self):
        m = LogDistanceModel()
        assert m.ref_loss_db == pytest.approx(
            free_space_path_loss_db(m.ref_distance_ft), abs=1e-9
        )

    def test_exponent_slope(self):
        m = LogDistanceModel(exponent=3.0)
        # 10x distance costs 30 dB.
        assert float(m.path_loss_db(100.0) - m.path_loss_db(10.0)) == pytest.approx(30.0)

    def test_invert_is_inverse(self):
        m = LogDistanceModel(exponent=2.7)
        d = np.array([5.0, 20.0, 80.0])
        assert np.allclose(m.invert(m.rssi(d)), d)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogDistanceModel(exponent=0)
        with pytest.raises(ValueError):
            LogDistanceModel(ref_distance_ft=-1)

    def test_near_field_clamped(self):
        m = LogDistanceModel()
        assert np.isfinite(m.rssi(0.0))

    @given(st.floats(min_value=1.0, max_value=500.0), st.floats(min_value=1.5, max_value=5.0))
    @settings(max_examples=50)
    def test_monotone_decreasing(self, d, n):
        m = LogDistanceModel(exponent=n)
        assert float(m.rssi(d)) > float(m.rssi(d * 1.5))


class TestInverseSquare:
    def well_behaved(self):
        return InverseSquareModel(3000.0, 200.0, 5.0, min_distance_ft=2.0, max_distance_ft=100.0)

    def test_ss_formula(self):
        m = InverseSquareModel(100.0, 10.0, 1.0)
        assert float(m.ss(10.0)) == pytest.approx(100 / 100 + 10 / 10 + 1)

    def test_invert_roundtrip_on_branch(self):
        m = self.well_behaved()
        for d in (3.0, 10.0, 50.0, 90.0):
            assert float(m.invert(m.ss(d))) == pytest.approx(d, rel=1e-4)

    def test_invert_clamps_hot_signal(self):
        m = self.well_behaved()
        assert float(m.invert(1e6)) == pytest.approx(m.min_distance_ft)

    def test_invert_clamps_weak_signal(self):
        m = self.well_behaved()
        assert float(m.invert(-1e6)) == pytest.approx(m.max_distance_ft)

    def test_invert_vector_shape(self):
        m = self.well_behaved()
        out = m.invert(np.array([50.0, 20.0, 10.0]))
        assert out.shape == (3,)
        assert (np.diff(out) > 0).all()  # weaker SS → farther

    def test_negative_a_fit_uses_decreasing_branch(self):
        # The shape the real fits produce: a < 0, peak at d* = -2a/b.
        m = InverseSquareModel(-3000.0, 700.0, 20.0, min_distance_ft=1.0, max_distance_ft=80.0)
        lo, hi = m.monotone_branch()
        assert lo == pytest.approx(-2 * m.a / m.b)  # 8.57 ft
        # On the branch, inversion must round-trip.
        for d in (10.0, 30.0, 70.0):
            assert float(m.invert(m.ss(d))) == pytest.approx(d, rel=1e-4)

    def test_monotone_branch_full_when_positive(self):
        m = self.well_behaved()
        assert m.monotone_branch() == (2.0, 100.0)

    @given(
        st.floats(min_value=-5000, max_value=5000),
        st.floats(min_value=-1000, max_value=1000),
        st.floats(min_value=-50, max_value=80),
        st.floats(min_value=0, max_value=120),
    )
    @settings(max_examples=150)
    def test_invert_always_in_bounds(self, a, b, c, ss):
        m = InverseSquareModel(a, b, c, min_distance_ft=1.0, max_distance_ft=200.0)
        d = float(m.invert(ss))
        assert 1.0 <= d <= 200.0
        assert np.isfinite(d)

    def test_coefficients_property(self):
        assert InverseSquareModel(1, 2, 3).coefficients == (1, 2, 3)
