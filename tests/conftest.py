"""Shared fixtures: a fast (short-dwell) experiment house and its data.

The full §5 protocol uses 90 s dwells (90 sweeps/point × 30 points);
tests run a 10 s-dwell variant, which keeps every statistical property
intact while making the whole suite fast.  Session-scoped fixtures are
safe because nothing mutates them — all toolkit objects treat fitted
state as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import Observation
from repro.core.geometry import Point
from repro.experiments.house import ExperimentHouse, HouseConfig


def pytest_collection_modifyitems(config, items):
    """Tier marking: everything not slow/service is tier1 by definition.

    Keeps the fast lane selectable positively (``-m tier1``) without
    hand-marking hundreds of tests; a test opting into ``slow`` or
    ``service`` drops out of tier1 automatically.
    """
    for item in items:
        if "slow" not in item.keywords and "service" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(scope="session")
def fast_config() -> HouseConfig:
    return HouseConfig(dwell_s=10.0)


@pytest.fixture(scope="session")
def house(fast_config) -> ExperimentHouse:
    return ExperimentHouse(fast_config)


@pytest.fixture(scope="session")
def training_db(house):
    return house.training_database(rng=0)


@pytest.fixture(scope="session")
def test_points(house):
    return house.test_points()


@pytest.fixture(scope="session")
def observations(house, test_points):
    return house.observe_all(test_points, rng=1)


@pytest.fixture(scope="session")
def site_fleet(tmp_path_factory, house, training_db):
    """Deterministic two-site fleet on disk, cached for the session.

    ``site-a`` is the shared ``training_db`` saved as a heap ``.tdb``
    pack (the fleet default); ``site-b`` is a second survey of the
    same house frozen to a ``.tdbx`` pack.  Same house, same bssids —
    every house observation fixture is a valid request at either site,
    which lets the parity / HTTP / worker suites share one fleet
    instead of each building its own model pack.
    """
    from types import SimpleNamespace

    from repro.serve.registry import SiteDefinition, write_fleet_manifest

    root = tmp_path_factory.mktemp("site-fleet")
    ap_positions = house.ap_positions_by_bssid()
    bounds = house.bounds()
    path_a = root / "site-a.tdb"
    training_db.save(str(path_a))
    path_b = root / "site-b.tdbx"
    house.training_database(rng=7).freeze(str(path_b), ap_positions=ap_positions)
    sites = {
        "site-a": SiteDefinition(
            "site-a", str(path_a), ap_positions=ap_positions, bounds=bounds
        ),
        "site-b": SiteDefinition(
            "site-b", str(path_b), ap_positions=ap_positions, bounds=bounds
        ),
    }
    manifest = write_fleet_manifest(root, sites, default="site-a")
    return SimpleNamespace(
        root=root,
        manifest=manifest,
        sites=sites,
        default="site-a",
        packs={"site-a": str(path_a), "site-b": str(path_b)},
        ap_positions=ap_positions,
        bounds=bounds,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def make_observation(rssi_rows, bssids=()):
    """Helper for hand-built observations in algorithm tests."""
    return Observation(np.asarray(rssi_rows, dtype=float), bssids=bssids)
