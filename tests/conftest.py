"""Shared fixtures: a fast (short-dwell) experiment house and its data.

The full §5 protocol uses 90 s dwells (90 sweeps/point × 30 points);
tests run a 10 s-dwell variant, which keeps every statistical property
intact while making the whole suite fast.  Session-scoped fixtures are
safe because nothing mutates them — all toolkit objects treat fitted
state as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.base import Observation
from repro.core.geometry import Point
from repro.experiments.house import ExperimentHouse, HouseConfig


def pytest_collection_modifyitems(config, items):
    """Tier marking: everything not slow/service is tier1 by definition.

    Keeps the fast lane selectable positively (``-m tier1``) without
    hand-marking hundreds of tests; a test opting into ``slow`` or
    ``service`` drops out of tier1 automatically.
    """
    for item in items:
        if "slow" not in item.keywords and "service" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(scope="session")
def fast_config() -> HouseConfig:
    return HouseConfig(dwell_s=10.0)


@pytest.fixture(scope="session")
def house(fast_config) -> ExperimentHouse:
    return ExperimentHouse(fast_config)


@pytest.fixture(scope="session")
def training_db(house):
    return house.training_database(rng=0)


@pytest.fixture(scope="session")
def test_points(house):
    return house.test_points()


@pytest.fixture(scope="session")
def observations(house, test_points):
    return house.observe_all(test_points, rng=1)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def make_observation(rssi_rows, bssids=()):
    """Helper for hand-built observations in algorithm tests."""
    return Observation(np.asarray(rssi_rows, dtype=float), bssids=bssids)
