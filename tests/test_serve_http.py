"""The HTTP front door: endpoints, admission control, deadlines, reload.

Everything here binds a localhost socket (``service`` tier).  The
admission-control and deadline tests hold the dispatcher open with
events and drive time with :class:`ManualClock` — deterministic, no
sleeps, no load-dependent timing.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.serve import (
    LocalizationHTTPServer,
    LocalizationService,
    ManualClock,
)

pytestmark = pytest.mark.service


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(scope="module")
def db_path(site_fleet):
    # The shared fleet's default site is the house's training database.
    return site_fleet.packs["site-a"]


@pytest.fixture()
def service(db_path, site_fleet):
    return LocalizationService(
        db_path,
        ap_positions=site_fleet.ap_positions,
        bounds=site_fleet.bounds,
    )


def observation_doc(observation, **extra):
    doc = {
        "samples": [
            [None if v != v else v for v in row]
            for row in observation.samples.tolist()
        ],
        "bssids": list(observation.bssids),
    }
    doc.update(extra)
    return doc


def request(url, method="GET", doc=None):
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=60) as r:
            return r.status, dict(r.headers), r.read()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read()


class TestEndpoints:
    def test_index_serves_model_card(self, service):
        with LocalizationHTTPServer(service) as server:
            status, _, body = request(server.url + "/")
        doc = json.loads(body)
        assert status == 200
        assert doc["model"]["algorithm"] == "fallback"
        assert doc["model"]["tiers"] == ["geometric", "probabilistic", "nearest"]
        assert "POST /v1/locate" in doc["endpoints"]

    def test_locate_answers_with_diagnostics(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            status, headers, body = request(
                server.url + "/v1/locate", "POST", observation_doc(observations[0])
            )
        doc = json.loads(body)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert doc["valid"] is True
        assert {"x", "y"} == set(doc["position"])
        assert doc["diagnostics"]["tier"] in ("geometric", "probabilistic", "nearest")

    def test_locate_batch(self, service, observations):
        docs = [observation_doc(o) for o in observations[:5]]
        with LocalizationHTTPServer(service) as server:
            status, _, body = request(
                server.url + "/v1/locate/batch", "POST", {"observations": docs}
            )
        estimates = json.loads(body)["estimates"]
        assert status == 200
        assert len(estimates) == 5
        assert all(e["valid"] for e in estimates)

    def test_healthz_reports_model_dispatcher_queue(self, service):
        with LocalizationHTTPServer(service) as server:
            status, _, body = request(server.url + "/healthz")
        report = json.loads(body)
        assert status == 200 and report["status"] == "ok"
        assert set(report["checks"]) == {
            "model", "dispatcher", "queue", "breakers", "sessions", "lifecycle",
        }
        assert report["checks"]["sessions"]["detail"]["active"] == 0
        assert report["checks"]["model"]["detail"]["algorithm"] == "fallback"

    def test_metrics_exposition_carries_serve_series(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            request(server.url + "/v1/locate", "POST", observation_doc(observations[0]))
            status, headers, body = request(server.url + "/metrics")
            status_json, _, body_json = request(server.url + "/metrics.json")
        assert status == 200 and headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert "repro_serve_http_requests_total" in text
        assert "repro_serve_batch_size" in text
        assert "repro_serve_queue_depth" in text
        payload = json.loads(body_json)
        assert status_json == 200 and payload["schema"] == "repro.obs/2"

    def test_unknown_path_404_lists_routes(self, service):
        with LocalizationHTTPServer(service) as server:
            status, _, body = request(server.url + "/nope")
        assert status == 404
        assert "/v1/locate" in json.loads(body)["paths"]

    def test_per_endpoint_counters(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            request(server.url + "/v1/locate", "POST", observation_doc(observations[0]))
            request(server.url + "/healthz")
        counters = obs.snapshot()["counters"]
        assert counters["serve.http_requests{code=200,endpoint=locate}"] == 1
        assert counters["serve.http_requests{code=200,endpoint=healthz}"] == 1


class TestBadRequests:
    @pytest.mark.parametrize(
        "doc, error",
        [
            (None, "empty_body"),
            ({"nope": 1}, "bad_observation"),
            ({"samples": []}, "bad_observation"),
            ({"samples": [[1.0], [1.0, 2.0]]}, "bad_observation"),
            ({"samples": [["x"]]}, "bad_observation"),
            ({"samples": [[-60.0]], "bssids": ["a", "b"]}, "bad_observation"),
            ({"samples": [[-60.0]], "deadline_ms": -5}, "bad_deadline"),
        ],
    )
    def test_locate_rejects_malformed_with_400(self, service, doc, error):
        with LocalizationHTTPServer(service) as server:
            status, _, body = request(server.url + "/v1/locate", "POST", doc)
        assert status == 400
        assert json.loads(body)["error"] == error

    def test_bad_json_is_400_not_500(self, service):
        with LocalizationHTTPServer(service) as server:
            req = urllib.request.Request(
                server.url + "/v1/locate", data=b"{not json", method="POST"
            )
            try:
                with urllib.request.urlopen(req, timeout=60) as r:
                    status, body = r.status, r.read()
            except urllib.error.HTTPError as e:
                status, body = e.code, e.read()
        assert status == 400
        assert json.loads(body)["error"] == "bad_json"

    def test_batch_rejects_empty_and_malformed(self, service):
        with LocalizationHTTPServer(service) as server:
            status_empty, _, _ = request(
                server.url + "/v1/locate/batch", "POST", {"observations": []}
            )
            status_shape, _, _ = request(
                server.url + "/v1/locate/batch", "POST", {"rows": [1]}
            )
        assert status_empty == 400
        assert status_shape == 400


class _Gate:
    """Holds the service's locate_many open until released."""

    def __init__(self, inner):
        self.inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()
        self.armed = True

    def __call__(self, observations):
        if self.armed:
            self.armed = False
            self.entered.set()
            assert self.release.wait(timeout=30.0)
        return self.inner(observations)


class TestAdmissionAndDeadlines:
    def test_queue_overflow_is_429_with_retry_after(self, service, observations):
        gate = _Gate(service.locate_many)
        server = LocalizationHTTPServer(
            service, max_batch=1, max_wait_ms=0.0, max_queue=1, retry_after_s=2
        )
        server.batcher._dispatch = gate
        with server:
            results = {}

            def post_parked():
                results["parked"] = request(
                    server.url + "/v1/locate", "POST", observation_doc(observations[0])
                )

            t = threading.Thread(target=post_parked)
            t.start()
            assert gate.entered.wait(timeout=30.0)  # dispatcher is busy
            # Fill the bounded queue directly (no timing involved), then
            # the next HTTP request must be turned away at the door.
            queued = server.batcher.submit(observations[1])
            status, headers, body = request(
                server.url + "/v1/locate", "POST", observation_doc(observations[2])
            )
            assert status == 429
            assert headers["Retry-After"] == "2"
            assert json.loads(body)["error"] == "queue_full"
            gate.release.set()
            t.join(timeout=30.0)
            assert results["parked"][0] == 200
            assert queued.result(timeout=30).valid
        counters = obs.snapshot()["counters"]
        assert counters["serve.http_requests{code=429,endpoint=locate}"] == 1
        assert counters["serve.rejected{batcher=http,reason=queue_full}"] == 1

    def test_expired_deadline_is_504(self, service, observations):
        clock = ManualClock()
        gate = _Gate(service.locate_many)
        server = LocalizationHTTPServer(
            service, max_batch=1, max_wait_ms=0.0, max_queue=8, clock=clock
        )
        server.batcher._dispatch = gate
        with server:
            results = {}

            def post(name, doc):
                results[name] = request(server.url + "/v1/locate", "POST", doc)

            parked = threading.Thread(
                target=post, args=("parked", observation_doc(observations[0]))
            )
            parked.start()
            assert gate.entered.wait(timeout=30.0)
            doomed = threading.Thread(
                target=post,
                args=("doomed", observation_doc(observations[1], deadline_ms=500)),
            )
            doomed.start()
            # The doomed request is queued behind the parked dispatch;
            # a full virtual second passes before the dispatcher frees up.
            while server.batcher.queue_depth() < 1:
                if not parked.is_alive() and not doomed.is_alive():
                    break
            clock.advance(1.0)
            gate.release.set()
            parked.join(timeout=30.0)
            doomed.join(timeout=30.0)
        assert results["parked"][0] == 200
        status, _, body = results["doomed"]
        assert status == 504
        assert json.loads(body)["error"] == "deadline_exceeded"
        counters = obs.snapshot()["counters"]
        assert counters["serve.deadline_expired{batcher=http}"] == 1


class TestReload:
    def test_reload_swaps_generation_atomically(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            _, _, before = request(server.url + "/")
            status, _, body = request(server.url + "/admin/reload", "POST", {})
            doc = json.loads(body)
            assert status == 200 and doc["reloaded"] is True
            assert doc["model"]["generation"] == json.loads(before)["model"]["generation"] + 1
            # still serving, same answers available
            status, _, _ = request(
                server.url + "/v1/locate", "POST", observation_doc(observations[0])
            )
            assert status == 200
        counters = obs.snapshot()["counters"]
        assert counters["serve.reloads{result=ok}"] >= 1

    def test_failed_reload_keeps_previous_model(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            gen_before = json.loads(request(server.url + "/")[2])["model"]["generation"]
            status, _, body = request(
                server.url + "/admin/reload", "POST", {"database": "/nonexistent.tdb"}
            )
            assert status == 500
            assert json.loads(body)["error"] == "reload_failed"
            # old model still serving
            assert json.loads(request(server.url + "/")[2])["model"]["generation"] == gen_before
            status, _, body = request(
                server.url + "/v1/locate", "POST", observation_doc(observations[0])
            )
            assert status == 200
        counters = obs.snapshot()["counters"]
        assert counters["serve.reloads{result=failed}"] == 1


class TestLifecycle:
    def test_port_url_and_restart_guard(self, service):
        server = LocalizationHTTPServer(service)
        with pytest.raises(RuntimeError):
            server.port
        with server:
            assert server.url == f"http://127.0.0.1:{server.port}"
            with pytest.raises(RuntimeError):
                server.start()
        # stop() is idempotent
        server.stop()

    def test_degraded_healthz_when_dispatcher_dies(self, service):
        with LocalizationHTTPServer(service) as server:
            server.batcher.stop()
            status, _, body = request(server.url + "/healthz")
        report = json.loads(body)
        assert status == 503
        assert report["status"] == "degraded"
        assert report["checks"]["dispatcher"]["ok"] is False


class TestTrackingSessionsHTTP:
    def test_post_creates_steps_and_reports_sequence(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            url = server.url + "/v1/track/dev-1"
            status, headers, body = request(url, "POST", observation_doc(observations[0]))
            first = json.loads(body)
            status2, _, body2 = request(url, "POST", observation_doc(observations[1]))
            second = json.loads(body2)
        assert status == 200 and status2 == 200
        assert headers["Content-Type"] == "application/json"
        assert first["session"] == {"id": "dev-1", "seq": 1, "created": True}
        assert second["session"] == {"id": "dev-1", "seq": 2, "created": False}
        assert first["valid"] is True and {"x", "y"} == set(first["position"])
        assert "raw" in first["tracking"]  # kalman details ride along
        counters = obs.snapshot()["counters"]
        assert counters["serve.http_requests{code=200,endpoint=track}"] == 2
        assert counters["serve.sessions.created"] == 1
        assert counters["serve.track.steps"] == 2

    def test_get_before_and_after_steps(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            url = server.url + "/v1/track/dev-1"
            request(url, "POST", observation_doc(observations[0]))  # create
            status, _, body = request(url)
            stepped = json.loads(body)
            status_new, _, body_new = request(server.url + "/v1/track/never-stepped")
        assert status == 200
        assert stepped["session"]["seq"] == 1 and stepped["valid"] is True
        # GET never creates: an unknown id is 404, not an empty session.
        assert status_new == 404
        assert json.loads(body_new)["error"] == "unknown_session"

    def test_delete_closes_exactly_once(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            url = server.url + "/v1/track/dev-1"
            request(url, "POST", observation_doc(observations[0]))
            status, _, body = request(url, "DELETE")
            doc = json.loads(body)
            again, _, again_body = request(url, "DELETE")
            after, _, _ = request(url)
        assert status == 200
        assert doc == {"closed": True, "session": {"id": "dev-1", "seq": 1}}
        assert again == 404  # idempotent-delete contract
        assert json.loads(again_body)["error"] == "unknown_session"
        assert after == 404  # and it is gone for reads too

    def test_bad_session_id_and_bad_dt_are_400(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            status_id, _, body_id = request(
                server.url + "/v1/track/bad!id", "POST", observation_doc(observations[0])
            )
            status_dt, _, body_dt = request(
                server.url + "/v1/track/dev-1", "POST",
                observation_doc(observations[0], dt_s=-1.0),
            )
        assert status_id == 400
        assert json.loads(body_id)["error"] == "bad_session_id"
        assert status_dt == 400
        assert json.loads(body_dt)["error"] == "bad_dt"

    def test_ts_field_drives_dt_and_rejects_rewinds(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            url = server.url + "/v1/track/dev-1"
            status1, _, body1 = request(
                url, "POST", observation_doc(observations[0], ts=1000.0)
            )
            status2, _, body2 = request(
                url, "POST", observation_doc(observations[1], ts=1002.5)
            )
            # 90 seconds behind the high-water mark: the clock is lying.
            status3, _, body3 = request(
                url, "POST", observation_doc(observations[0], ts=910.0)
            )
            status4, _, body4 = request(
                url, "POST", observation_doc(observations[0], ts=1003.0)
            )
        assert status1 == 200 and status2 == 200
        assert json.loads(body2)["session"]["seq"] == 2
        assert status3 == 400
        assert json.loads(body3)["error"] == "bad_timestamp"
        assert "rewinds" in json.loads(body3)["detail"]
        # the rejected scan left the session usable
        assert status4 == 200
        assert json.loads(body4)["session"]["seq"] == 3
        counters = obs.snapshot()["counters"]
        assert counters["tracking.bad_timestamps{kind=rejected}"] == 1

    def test_non_numeric_ts_is_400(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            for bad in ("noon", float("nan")):
                status, _, body = request(
                    server.url + "/v1/track/dev-1",
                    "POST",
                    observation_doc(observations[0], ts=bad),
                )
                assert status == 400
                assert json.loads(body)["error"] == "bad_ts"

    def test_healthz_and_index_surface_session_occupancy(self, service, observations):
        with LocalizationHTTPServer(service, session_capacity=77) as server:
            request(server.url + "/v1/track/dev-1", "POST", observation_doc(observations[0]))
            _, _, health = request(server.url + "/healthz")
            _, _, index = request(server.url + "/")
        detail = json.loads(health)["checks"]["sessions"]["detail"]
        assert detail["active"] == 1 and detail["capacity"] == 77
        assert detail["filter"] == "kalman"
        card = json.loads(index)
        assert card["tracking"]["session_capacity"] == 77
        assert "POST /v1/track/{session}" in card["endpoints"]

    def test_ttl_expiry_over_http(self, service, observations):
        from repro.serve import TrackingSessions

        clock = ManualClock()
        sessions = TrackingSessions(service, ttl_s=30.0, clock=clock)
        with LocalizationHTTPServer(service, sessions=sessions) as server:
            url = server.url + "/v1/track/dev-1"
            status, _, _ = request(url, "POST", observation_doc(observations[0]))
            assert status == 200
            clock.advance(30.0)
            gone, _, body = request(url)
            _, _, health = request(server.url + "/healthz")
        assert gone == 404
        assert json.loads(body)["error"] == "unknown_session"
        assert json.loads(health)["checks"]["sessions"]["detail"]["active"] == 0
        assert obs.snapshot()["counters"]["serve.sessions.expired"] == 1

    def test_reload_rebinds_live_sessions(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            url = server.url + "/v1/track/dev-1"
            request(url, "POST", observation_doc(observations[0]))
            status, _, body = request(server.url + "/admin/reload", "POST", {})
            doc = json.loads(body)
            # The session survived the generation swap and keeps counting.
            status_step, _, body_step = request(
                url, "POST", observation_doc(observations[1])
            )
        assert status == 200 and doc["reloaded"] is True
        assert doc["sessions"] == {"sessions": 1, "kept": 1, "reset": 0}
        assert status_step == 200
        assert json.loads(body_step)["session"]["seq"] == 2

    def test_track_deadline_already_expired_is_504(self, service, observations):
        """A dead-on-arrival ``X-Deadline-Ms`` budget 504s before any
        tracker time is spent, same contract as ``/v1/locate``."""
        with LocalizationHTTPServer(service) as server:
            data = json.dumps(observation_doc(observations[0])).encode("utf-8")
            req = urllib.request.Request(
                server.url + "/v1/track/dev-1", data=data, method="POST",
                headers={"X-Deadline-Ms": "0"},
            )
            try:
                with urllib.request.urlopen(req, timeout=60) as r:
                    status, body = r.status, r.read()
            except urllib.error.HTTPError as e:
                status, body = e.code, e.read()
        assert status == 504
        assert json.loads(body)["error"] == "deadline_exceeded"
