"""Tests for location maps, the floor-plan model, and the Processor."""

import numpy as np
import pytest

from repro.core.floorplan import FloorPlan, FloorPlanError, PixelPoint
from repro.core.geometry import Point
from repro.core.locationmap import LocationMap, LocationMapError
from repro.core.processor import FloorPlanProcessor, ProcessorError
from repro.imaging.gif import write_gif
from repro.imaging.raster import RED, Raster


class TestLocationMap:
    def test_add_and_lookup(self):
        lm = LocationMap()
        lm.add("kitchen", Point(10, 20))
        assert lm.position("kitchen") == Point(10, 20)
        assert "kitchen" in lm
        assert len(lm) == 1

    def test_names_preserve_order(self):
        lm = LocationMap()
        for n in ("c", "a", "b"):
            lm.add(n, Point(0, 0))
        assert lm.names() == ["c", "a", "b"]

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            LocationMap().position("nope")

    def test_remove(self):
        lm = LocationMap({"x": Point(0, 0)})
        lm.remove("x")
        assert len(lm) == 0
        with pytest.raises(KeyError):
            lm.remove("x")

    def test_empty_name_rejected(self):
        with pytest.raises(LocationMapError):
            LocationMap().add("  ", Point(0, 0))

    def test_nearest(self):
        lm = LocationMap({"a": Point(0, 0), "b": Point(10, 0)})
        name, dist = lm.nearest(Point(7, 0))
        assert name == "b"
        assert dist == pytest.approx(3.0)

    def test_nearest_empty(self):
        with pytest.raises(LocationMapError):
            LocationMap().nearest(Point(0, 0))

    def test_file_roundtrip(self, tmp_path):
        lm = LocationMap({"room D22": Point(10.5, 30), "Center of Hallway": Point(27, 18)})
        path = tmp_path / "map.txt"
        lm.save(path)
        assert LocationMap.load(path) == lm

    def test_parse_tabs_and_spaces(self):
        lm = LocationMap.parse("a\t1\t2\nroom D22   10.5   30\n")
        assert lm.position("room D22") == Point(10.5, 30)

    def test_parse_comments_and_blanks(self):
        lm = LocationMap.parse("# header\n\na\t1\t2\n")
        assert len(lm) == 1

    def test_parse_errors(self):
        with pytest.raises(LocationMapError, match="expected"):
            LocationMap.parse("only two\t1\n")
        with pytest.raises(LocationMapError, match="non-numeric"):
            LocationMap.parse("a\tx\ty\n")
        with pytest.raises(LocationMapError, match="duplicate"):
            LocationMap.parse("a\t1\t2\na\t3\t4\n")


def annotated_plan():
    plan = FloorPlan(Raster(200, 160))
    plan.set_scale_direct(0.25)  # 4 px per foot
    plan.set_origin(PixelPoint(0, 159))
    plan.add_access_point("A", PixelPoint(0, 159))
    plan.add_access_point("B", PixelPoint(199, 159))
    plan.add_location("room D22", PixelPoint(40, 40))
    return plan


class TestFloorPlan:
    def test_scale_from_two_points(self):
        plan = FloorPlan(Raster(100, 100))
        fpp = plan.set_scale(PixelPoint(0, 0), PixelPoint(100, 0), 50.0)
        assert fpp == pytest.approx(0.5)
        assert plan.feet_per_pixel == pytest.approx(0.5)

    def test_scale_validation(self):
        plan = FloorPlan(Raster(10, 10))
        with pytest.raises(FloorPlanError):
            plan.set_scale(PixelPoint(1, 1), PixelPoint(1, 1), 10.0)
        with pytest.raises(FloorPlanError):
            plan.set_scale(PixelPoint(0, 0), PixelPoint(5, 0), -1.0)
        with pytest.raises(FloorPlanError):
            plan.set_scale_direct(0)

    def test_scale_required(self):
        plan = FloorPlan(Raster(10, 10))
        with pytest.raises(FloorPlanError, match="scale not set"):
            _ = plan.feet_per_pixel

    def test_origin_bounds(self):
        plan = FloorPlan(Raster(10, 10))
        with pytest.raises(FloorPlanError):
            plan.set_origin(PixelPoint(20, 0))

    def test_transform_roundtrip(self):
        plan = annotated_plan()
        p = Point(12.5, 30.0)
        back = plan.to_floor(plan.to_pixel(p))
        assert back.x == pytest.approx(p.x)
        assert back.y == pytest.approx(p.y)

    def test_y_axis_flips(self):
        plan = annotated_plan()
        # Floor origin is bottom-left pixel (0, 159); floor +y is pixel -y.
        assert plan.to_pixel(Point(0, 10)).py == pytest.approx(159 - 40)

    def test_transform_requires_origin(self):
        plan = FloorPlan(Raster(10, 10))
        plan.set_scale_direct(1.0)
        with pytest.raises(FloorPlanError, match="origin"):
            plan.to_floor(PixelPoint(1, 1))

    def test_ap_floor_positions(self):
        plan = annotated_plan()
        pos = plan.ap_floor_positions()
        assert pos["A"].x == pytest.approx(0.0)
        assert pos["B"].x == pytest.approx(199 * 0.25)

    def test_location_map_export(self):
        lm = annotated_plan().location_map()
        assert "room D22" in lm
        assert lm.position("room D22").y == pytest.approx((159 - 40) * 0.25)

    def test_save_load_roundtrip(self, tmp_path):
        plan = annotated_plan()
        path = tmp_path / "plan.gif"
        plan.save(path)
        loaded = FloorPlan.load(path)
        assert loaded.image == plan.image
        assert loaded.feet_per_pixel == pytest.approx(plan.feet_per_pixel)
        assert loaded.origin == plan.origin
        assert loaded.access_points == plan.access_points
        assert loaded.locations == plan.locations

    def test_load_plain_gif_unannotated(self, tmp_path):
        path = tmp_path / "plain.gif"
        write_gif(path, Raster(20, 20))
        plan = FloorPlan.load(path)
        assert not plan.has_scale
        assert not plan.has_origin
        assert plan.access_points == {}

    def test_load_ignores_foreign_comments(self, tmp_path):
        path = tmp_path / "c.gif"
        write_gif(path, Raster(10, 10), comments=["just a note", '{"magic": "other"}'])
        plan = FloorPlan.load(path)
        assert not plan.has_scale

    def test_summary_states(self):
        plan = FloorPlan(Raster(10, 10))
        assert "UNSET" in plan.summary()
        plan2 = annotated_plan()
        assert "2 access point(s)" in plan2.summary()

    def test_empty_names_rejected(self):
        plan = FloorPlan(Raster(10, 10))
        with pytest.raises(FloorPlanError):
            plan.add_access_point("", PixelPoint(1, 1))
        with pytest.raises(FloorPlanError):
            plan.add_location("  ", PixelPoint(1, 1))


class TestProcessor:
    def plan_file(self, tmp_path):
        path = tmp_path / "base.gif"
        write_gif(path, Raster(200, 160))
        return path

    def test_six_operations(self, tmp_path):
        src = self.plan_file(tmp_path)
        out = tmp_path / "annotated.gif"
        proc = FloorPlanProcessor()
        proc.load(src)                                  # op 1
        proc.add_access_point("A", 0, 159)              # op 2
        proc.set_scale(0, 0, 200, 0, 50.0)              # op 3
        proc.set_origin(0, 159)                         # op 4
        proc.add_location("room D22", 40, 40)           # op 5
        proc.save(out)                                  # op 6
        loaded = FloorPlan.load(out)
        assert loaded.access_points["A"] == proc.plan.access_points["A"]
        assert "room D22" in loaded.locations

    def test_script_interface(self, tmp_path):
        src = self.plan_file(tmp_path)
        out = tmp_path / "out.gif"
        proc = FloorPlanProcessor()
        outputs = proc.run_script(
            [
                f"load {src}",
                "add-ap A 0 159",
                "set-scale 0 0 200 0 50",
                "set-origin 0 159",
                'add-location "room D22" 40 40',
                "info",
                f"save {out}",
            ]
        )
        assert any("scale set" in o for o in outputs)
        assert out.exists()

    def test_script_error_carries_line(self, tmp_path):
        proc = FloorPlanProcessor()
        with pytest.raises(ProcessorError, match="script line 1"):
            proc.run_script(["add-ap A 0 0"])  # no plan loaded

    def test_only_gif_accepted(self, tmp_path):
        proc = FloorPlanProcessor()
        with pytest.raises(ProcessorError, match="GIF"):
            proc.load(tmp_path / "plan.png")

    def test_save_requires_gif_suffix(self, tmp_path):
        proc = FloorPlanProcessor()
        proc.new_plan(Raster(10, 10))
        with pytest.raises(ProcessorError, match="GIF"):
            proc.save(tmp_path / "x.png")

    def test_undo(self):
        proc = FloorPlanProcessor()
        proc.new_plan(Raster(10, 10))
        proc.add_access_point("A", 1, 1)
        proc.add_access_point("B", 2, 2)
        proc.undo()
        assert list(proc.plan.access_points) == ["A"]
        proc.undo()
        assert proc.plan.access_points == {}
        with pytest.raises(ProcessorError):
            proc.undo()

    def test_unknown_command(self):
        proc = FloorPlanProcessor()
        with pytest.raises(ProcessorError, match="unknown command"):
            proc.execute("frobnicate 1 2")

    def test_bad_arity(self):
        proc = FloorPlanProcessor()
        proc.new_plan(Raster(10, 10))
        with pytest.raises(ProcessorError, match="usage"):
            proc.execute("add-ap A 1")

    def test_non_numeric_argument(self):
        proc = FloorPlanProcessor()
        proc.new_plan(Raster(10, 10))
        with pytest.raises(ProcessorError, match="number"):
            proc.execute("set-origin x y")

    def test_pixel_bounds_checked(self):
        proc = FloorPlanProcessor()
        proc.new_plan(Raster(10, 10))
        with pytest.raises(ProcessorError, match="outside"):
            proc.add_access_point("A", 50, 50)

    def test_comments_and_blank_commands(self):
        proc = FloorPlanProcessor()
        assert proc.execute("") is None
        assert proc.execute("# a comment") is None

    def test_export_locations(self, tmp_path):
        proc = FloorPlanProcessor()
        proc.new_plan(Raster(100, 100))
        proc.set_scale(0, 0, 100, 0, 50.0)
        proc.set_origin(0, 99)
        proc.add_location("spot", 50, 50)
        out = tmp_path / "locs.txt"
        proc.export_locations(out)
        lm = LocationMap.load(out)
        assert "spot" in lm

    def test_log_records_operations(self):
        proc = FloorPlanProcessor()
        proc.new_plan(Raster(10, 10))
        proc.add_access_point("A", 1, 1)
        assert any("add-ap A" in entry for entry in proc.log)
