"""Request tracing: TraceContext, FlightRecorder, exemplars, OpenMetrics.

Pure in-process tests (tier 1): context propagation and parsing, the
thread-safety of tracer activation (the regression the serving fleet
hit), flight-recorder retention policy, span ride-back from shard
workers, and histogram exemplars through the OpenMetrics exposition.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.export import render_openmetrics
from repro.obs.trace import SNAPSHOT_SCHEMA, FlightRecorder, TraceContext


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture()
def recorder():
    rec = FlightRecorder()
    previous = obs.set_recorder(rec)
    yield rec
    obs.set_recorder(previous)


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = TraceContext.mint()
        header = ctx.to_traceparent()
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.sampled is True

    def test_mint_ids_are_unique_and_well_formed(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32
        assert int(a.trace_id, 16)  # hex, non-zero

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-zzzz-1234567890abcdef-01",           # non-hex trace id
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # version ff is reserved
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
    ])
    def test_malformed_traceparent_is_treated_as_absent(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_unsampled_flag_parses(self):
        ctx = TraceContext.from_traceparent("00-" + "a" * 32 + "-" + "b" * 16 + "-00")
        assert ctx is not None and ctx.sampled is False

    def test_child_keeps_trace_id_fresh_span_id(self):
        ctx = TraceContext.mint()
        kids = {ctx.child().span_id for _ in range(5)}
        assert len(kids) == 5
        assert all(c.trace_id == ctx.trace_id for c in (ctx.child(),))

    def test_bind_and_current_context(self):
        assert obs.current_context() is None
        ctx = TraceContext.mint()
        with obs.bind(ctx):
            assert obs.current_context() is ctx
            with obs.bind(None):  # explicit unbind nests
                assert obs.current_context() is None
            assert obs.current_context() is ctx
        assert obs.current_context() is None


class TestSpanUnderContext:
    def test_spans_nest_with_parent_chain(self, recorder):
        ctx = TraceContext.mint()
        recorder.begin(ctx)
        with obs.bind(ctx):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        recorder.finish(ctx.trace_id)
        trace = recorder.get(ctx.trace_id)
        spans = {s["name"]: s for s in trace["spans"]}
        assert spans["inner"]["parent_span"] == spans["outer"]["span"]
        assert spans["outer"]["trace_id"] == ctx.trace_id
        # inner closed first (spans arrive in completion order)
        assert [s["name"] for s in trace["spans"]] == ["inner", "outer"]

    def test_annotate_lands_on_innermost_open_span(self, recorder):
        ctx = TraceContext.mint()
        recorder.begin(ctx)
        with obs.bind(ctx):
            with obs.span("edge"):
                obs.annotate(decision="shed", http_status=429)
        recorder.finish(ctx.trace_id, status="http_429")
        trace = recorder.get(ctx.trace_id)
        assert trace["spans"][0]["attrs"] == {"decision": "shed", "http_status": 429}
        assert trace["pinned"] is True

    def test_annotate_outside_any_span_is_noop(self):
        obs.annotate(decision="nobody-home")  # must not raise

    def test_span_without_context_or_tracer_is_free(self, recorder):
        with obs.span("untraced"):
            pass
        assert recorder.stats()["open"] == 0

    def test_unsampled_context_records_nothing(self, recorder):
        ctx = TraceContext(TraceContext.mint().trace_id, None, sampled=False)
        recorder.begin(ctx)
        with obs.bind(ctx):
            with obs.span("quiet"):
                pass
        assert recorder.stats()["open"] == 0
        assert recorder.traces() == []


class TestTracerActivationThreadSafety:
    def test_overlapping_activations_do_not_clobber(self):
        """Regression: `_active` was a lone unsynchronized global.

        Two threads' overlapping activate() blocks used to race on
        teardown: whichever exited last reset the global to None even
        while the other tracer was still active.  The stack-based
        activation keeps each thread's tracer installed until *its*
        exit, and the final state is clean.
        """
        errors = []
        barrier = threading.Barrier(4)

        def hammer():
            try:
                for _ in range(200):
                    tracer = obs.Tracer()
                    with tracer.activate():
                        with obs.span("work"):
                            pass
                        # some tracer must be active mid-block
                        assert obs.current_tracer() is not None
                    barrier.reset  # no-op attr access keeps the loop tight
            except BaseException as exc:  # noqa: BLE001 - collect, don't die
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors
        assert obs.current_tracer() is None

    def test_nested_activation_restores_outer(self):
        outer, inner = obs.Tracer(), obs.Tracer()
        with outer.activate():
            with inner.activate():
                assert obs.current_tracer() is inner
            assert obs.current_tracer() is outer
        assert obs.current_tracer() is None


class TestFlightRecorder:
    def test_error_trace_is_pinned_ok_trace_rides_the_ring(self, recorder):
        for i, status in enumerate(["ok", "http_500"]):
            ctx = TraceContext.mint()
            recorder.begin(ctx, endpoint="locate")
            recorder.finish(ctx.trace_id, status=status)
        traces = recorder.traces()
        by_status = {t["status"]: t for t in traces}
        assert by_status["http_500"]["pinned"] is True
        assert by_status["ok"]["pinned"] is False

    def test_explicit_pin_keeps_reason(self, recorder):
        ctx = TraceContext.mint()
        recorder.begin(ctx)
        recorder.finish(ctx.trace_id, status="ok", pin=True, reason="deadline_miss")
        assert recorder.get(ctx.trace_id)["reason"] == "deadline_miss"

    def test_ok_ring_is_bounded_pinned_survive(self):
        rec = FlightRecorder(keep_ok=4, keep_pinned=4)
        pinned_ctx = TraceContext.mint()
        rec.begin(pinned_ctx)
        rec.finish(pinned_ctx.trace_id, status="boom")
        for _ in range(20):
            ctx = TraceContext.mint()
            rec.begin(ctx)
            rec.finish(ctx.trace_id)
        traces = rec.traces()
        assert len([t for t in traces if not t["pinned"]]) == 4
        assert rec.get(pinned_ctx.trace_id) is not None  # healthy burst can't evict it

    def test_sampling_keeps_one_in_n(self):
        rec = FlightRecorder(sample_every=5, keep_ok=100)
        for _ in range(20):
            ctx = TraceContext.mint()
            rec.begin(ctx)
            rec.finish(ctx.trace_id)
        assert len(rec.traces()) == 4
        assert rec.stats()["sampled_out"] == 16

    def test_open_traces_bounded_oldest_evicted(self):
        rec = FlightRecorder(max_open=3)
        ctxs = [TraceContext.mint() for _ in range(5)]
        for ctx in ctxs:
            rec.begin(ctx)
        assert rec.stats()["open"] == 3
        assert rec.stats()["dropped_open"] == 2
        assert rec.finish(ctxs[0].trace_id) is None  # evicted

    def test_spans_per_trace_truncate(self):
        rec = FlightRecorder(max_spans=2)
        ctx = TraceContext.mint()
        rec.begin(ctx)
        for i in range(5):
            rec.record({"name": f"s{i}", "trace_id": ctx.trace_id})
        rec.finish(ctx.trace_id)
        assert len(rec.get(ctx.trace_id)["spans"]) == 2
        assert rec.stats()["truncated_spans"] == 3

    def test_linked_span_copied_into_every_linked_trace(self, recorder):
        a, b = TraceContext.mint(), TraceContext.mint()
        recorder.begin(a)
        recorder.begin(b)
        dispatch = {
            "name": "serve.dispatch",
            "trace_id": a.trace_id,
            "attrs": {"links": [
                {"trace_id": a.trace_id, "span_id": "1" * 16},
                {"trace_id": b.trace_id, "span_id": "2" * 16},
            ]},
        }
        recorder.record(dispatch)
        recorder.finish(a.trace_id)
        recorder.finish(b.trace_id)
        for ctx in (a, b):
            names = [s["name"] for s in recorder.get(ctx.trace_id)["spans"]]
            assert names == ["serve.dispatch"]

    def test_snapshot_and_merge_docs_dedupe_by_span_count(self):
        rec_a, rec_b = FlightRecorder(), FlightRecorder()
        ctx = TraceContext.mint()
        # Worker A saw the trace; worker B holds a richer copy.
        for rec, n_spans in ((rec_a, 1), (rec_b, 3)):
            rec.begin(ctx, endpoint="locate")
            for i in range(n_spans):
                rec.record({"name": f"s{i}", "trace_id": ctx.trace_id})
            rec.finish(ctx.trace_id)
        merged = FlightRecorder.merge_docs([rec_a.snapshot(), rec_b.snapshot()])
        assert merged["schema"] == SNAPSHOT_SCHEMA
        assert merged["workers"] == 2
        assert len(merged["traces"]) == 1
        assert len(merged["traces"][0]["spans"]) == 3
        assert merged["stats"]["finished"] == 2

    def test_merge_docs_ignores_garbage(self):
        merged = FlightRecorder.merge_docs([{}, {"traces": "nope"}, None])
        assert merged["traces"] == []

    def test_dump_jsonl(self, recorder, tmp_path):
        ctx = TraceContext.mint()
        recorder.begin(ctx)
        recorder.finish(ctx.trace_id)
        path = tmp_path / "traces.jsonl"
        assert recorder.dump_jsonl(path) == 1
        doc = json.loads(path.read_text().splitlines()[0])
        assert doc["trace_id"] == ctx.trace_id


def _double_chunk(chunk):
    """Module-level so the process pool can pickle it."""
    return [x * 2 for x in chunk]


class TestCaptureAndDeliver:
    def test_capture_diverts_then_deliver_feeds_recorder(self, recorder):
        ctx = TraceContext.mint()
        recorder.begin(ctx)
        with obs.bind(ctx):
            with obs.capture_spans() as events:
                with obs.span("shard.work"):
                    pass
        assert recorder.get(ctx.trace_id) is None or not recorder.traces()
        assert [e["name"] for e in events] == ["shard.work"]
        obs.deliver_spans(events)
        recorder.finish(ctx.trace_id)
        assert [s["name"] for s in recorder.get(ctx.trace_id)["spans"]] == ["shard.work"]

    def test_sharded_run_batched_stitches_worker_spans(self, recorder):
        from repro.algorithms.engine import BatchConfig, run_batched
        from repro.parallel.pool import ParallelConfig

        ctx = TraceContext.mint()
        recorder.begin(ctx, endpoint="locate_batch")
        cfg = BatchConfig(
            chunk_size=8, shard_threshold=16,
            parallel=ParallelConfig(max_workers=2),
        )
        with obs.bind(ctx):
            out = run_batched(_double_chunk, list(range(32)), label="t", config=cfg)
        recorder.finish(ctx.trace_id)
        assert out == [x * 2 for x in range(32)]
        trace = recorder.get(ctx.trace_id)
        names = [s["name"] for s in trace["spans"]]
        assert names.count("batch.shard_chunk") == 4
        assert "batch.shard" in names
        assert all(s["trace_id"] == ctx.trace_id for s in trace["spans"])


class TestExemplarsAndOpenMetrics:
    def test_histogram_stores_exemplar_per_bucket(self):
        h = obs.histogram("serve.http_latency_ms", endpoint="locate")
        h.observe(5.0, trace_id="a" * 32)
        h.observe(5.0, trace_id="b" * 32)  # same bucket: last write wins
        h.observe(50.0)  # no trace: no exemplar
        state = obs.get_registry().dump_state()
        ((_, hstate),) = [
            (k, v) for k, v in state["histograms"].items()
        ]
        exemplars = hstate["exemplars"]
        assert len(exemplars) == 1
        ((_, (value, trace_id, ts)),) = exemplars.items()
        assert value == 5.0 and trace_id == "b" * 32 and ts > 0

    def test_render_openmetrics_exposes_exemplars_and_eof(self):
        obs.counter("batch.requests", algorithm="t").inc(3)
        obs.gauge("serve.queue_depth").set(2)
        h = obs.histogram("serve.http_latency_ms", endpoint="locate")
        h.observe(12.5, trace_id="c" * 32)
        text = render_openmetrics()
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert "repro_batch_requests_total{algorithm=\"t\"} 3" in text
        assert any(
            "_bucket{" in line and '# {trace_id="' + "c" * 32 + '"}' in line
            for line in lines
        )
        # cumulative histogram rows end with +Inf and _sum/_count
        assert any('le="+Inf"' in line for line in lines)
        assert any("_count{" in line for line in lines)

    def test_exemplars_survive_merge_state(self):
        h = obs.histogram("serve.http_latency_ms", endpoint="locate")
        h.observe(10.0, trace_id="d" * 32)
        state = obs.get_registry().dump_state()
        merged = obs.MetricsRegistry()
        merged.merge(state)
        merged.merge(state)
        out = merged.dump_state()
        ((_, hstate),) = list(out["histograms"].items())
        assert list(hstate["exemplars"].values())[0][1] == "d" * 32

    def test_bucket_groups_capped(self):
        h = obs.histogram("wide")
        for i in range(200):
            h.observe(1.001 ** (i * 40) * (i + 1))
        text = render_openmetrics(max_buckets=8)
        buckets = [l for l in text.splitlines()
                   if "_bucket{" in l and '+Inf' not in l]
        assert 0 < len(buckets) <= 8
