"""Cross-cutting property tests: invariances the system must satisfy.

Each property here spans modules — transforms that must round-trip,
symmetries the estimators must respect — and is exercised with
hypothesis-generated inputs rather than fixtures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import Observation
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.multilateration import solve_multilateration
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.core.floorplan import FloorPlan, PixelPoint
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase
from repro.imaging.raster import Raster

B = [f"02:00:00:00:00:{i:02x}" for i in range(3)]

coord = st.floats(min_value=-500, max_value=500, allow_nan=False)


class TestFloorPlanTransform:
    @given(
        st.floats(min_value=0.05, max_value=5.0),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=79),
        coord,
        coord,
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_frame(self, fpp, ox, oy, x, y):
        plan = FloorPlan(Raster(100, 80))
        plan.set_scale_direct(fpp)
        plan.set_origin(PixelPoint(ox, oy))
        p = Point(x, y)
        back = plan.to_floor(plan.to_pixel(p))
        assert back.distance_to(p) < 1e-6 * max(1.0, abs(x), abs(y))

    @given(st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_unit_vectors_scale(self, fpp):
        plan = FloorPlan(Raster(10, 10))
        plan.set_scale_direct(fpp)
        plan.set_origin(PixelPoint(5, 5))
        px0 = plan.to_pixel(Point(0, 0))
        px1 = plan.to_pixel(Point(1, 0))
        assert abs((px1.px - px0.px) - 1.0 / fpp) < 1e-9
        # +y in floor is -y in image.
        py1 = plan.to_pixel(Point(0, 1))
        assert py1.py < px0.py


class TestTrainingDbProperties:
    def db(self, seed):
        rng = np.random.default_rng(seed)
        records = [
            LocationRecord(
                f"p{i}", Point(float(i), 0.0),
                rng.uniform(-90, -30, (6, 3)).astype(np.float32),
            )
            for i in range(4)
        ]
        return TrainingDatabase(B, records)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_subset_aps_preserves_columns(self, seed):
        db = self.db(seed)
        sub = db.subset_aps([B[2], B[0]])
        for name in db.locations():
            orig = db.record(name).samples
            small = sub.record(name).samples
            assert np.array_equal(small[:, 0], orig[:, 2], equal_nan=True)
            assert np.array_equal(small[:, 1], orig[:, 0], equal_nan=True)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_serialization_identity(self, seed):
        db = self.db(seed)
        again = TrainingDatabase.from_bytes(db.to_bytes())
        assert again.to_bytes() == db.to_bytes()  # stable fixpoint


class TestEstimatorSymmetries:
    def db(self):
        rng = np.random.default_rng(0)
        profiles = {
            "a": ((-40.0, -60.0, -80.0), (0.0, 0.0)),
            "b": ((-60.0, -40.0, -60.0), (20.0, 0.0)),
            "c": ((-80.0, -60.0, -40.0), (40.0, 0.0)),
        }
        return TrainingDatabase(B, [
            LocationRecord(n, Point(*pos), rng.normal(m, 1.5, (30, 3)).astype(np.float32))
            for n, (m, pos) in profiles.items()
        ])

    @given(st.permutations(list(range(6))))
    @settings(max_examples=30, deadline=None)
    def test_sweep_order_irrelevant(self, perm):
        """Shuffling the observation's sweeps must not change the answer
        (all implemented matchers are exchangeable over sweeps)."""
        rng = np.random.default_rng(1)
        samples = rng.normal((-40, -60, -80), 2.0, (6, 3))
        db = self.db()
        for loc in (ProbabilisticLocalizer().fit(db), KNNLocalizer(k=2).fit(db)):
            a = loc.locate(Observation(samples))
            b = loc.locate(Observation(samples[list(perm)]))
            assert a.position == b.position
            assert a.score == pytest.approx(b.score)

    @given(
        st.floats(min_value=2, max_value=48),
        st.floats(min_value=2, max_value=38),
        st.floats(min_value=-np.pi, max_value=np.pi),
    )
    @settings(max_examples=60, deadline=None)
    def test_multilateration_rotation_equivariance(self, x, y, theta):
        """Rotating anchors and ranges together rotates the answer."""
        anchors = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]
        true = Point(x, y)
        ranges = [true.distance_to(a) for a in anchors]
        est = solve_multilateration(anchors, ranges)
        rot_anchors = [a.rotated(theta) for a in anchors]
        rot_est = solve_multilateration(rot_anchors, ranges)
        assert rot_est.distance_to(est.rotated(theta)) < 1e-5

    @given(st.floats(min_value=0.1, max_value=30.0))
    @settings(max_examples=30, deadline=None)
    def test_probabilistic_score_monotone_in_mismatch(self, delta):
        """Moving the observation away from a fingerprint (same direction,
        growing magnitude) must not raise that fingerprint's likelihood."""
        db = self.db()
        loc = ProbabilisticLocalizer().fit(db)
        base = np.array([-40.0, -60.0, -80.0])
        near = loc.log_likelihoods(Observation(base[None, :]))[0]
        far = loc.log_likelihoods(Observation((base - delta)[None, :]))[0]
        assert far <= near + 1e-9


class TestObservationAlgebra:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_truncate_then_mean_consistent(self, n, k):
        rng = np.random.default_rng(n * 10 + k)
        samples = rng.uniform(-90, -30, (max(n, k), 3))
        obs = Observation(samples)
        take = min(k, obs.n_sweeps)
        truncated = obs.truncated(take)
        assert np.allclose(truncated.mean_rssi(), samples[:take].mean(axis=0))

    @given(st.permutations([0, 1, 2]))
    @settings(max_examples=20, deadline=None)
    def test_reorder_is_involution_on_permutations(self, perm):
        rng = np.random.default_rng(0)
        samples = rng.uniform(-90, -30, (4, 3))
        obs = Observation(samples, bssids=B)
        permuted_order = [B[i] for i in perm]
        there = obs.reordered(permuted_order)
        back = there.reordered(B)
        assert np.allclose(back.samples, samples)
        assert list(back.bssids) == B
