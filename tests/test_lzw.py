"""Tests for the GIF-variant LZW codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.lzw import LZWError, _BitReader, _BitWriter, compress, decompress


class TestBitIO:
    def test_roundtrip_mixed_widths(self):
        w = _BitWriter()
        codes = [(5, 3), (200, 9), (1, 1), (4095, 12), (0, 2)]
        for code, width in codes:
            w.write(code, width)
        data = w.finish()
        r = _BitReader(data)
        for code, width in codes:
            assert r.read(width) == code

    def test_lsb_first_packing(self):
        w = _BitWriter()
        w.write(0b1, 1)
        w.write(0b11, 2)
        w.write(0b10101, 5)
        assert w.finish() == bytes([0b10101111])

    def test_reader_truncation(self):
        r = _BitReader(b"\x01")
        r.read(8)
        with pytest.raises(LZWError):
            r.read(1)

    def test_exhausted(self):
        r = _BitReader(b"\xff")
        assert not r.exhausted(8)
        r.read(5)
        assert not r.exhausted(3)
        assert r.exhausted(4)


class TestCompress:
    def test_empty_input(self):
        blob = compress([], 2)
        assert len(blob) >= 1
        assert decompress(blob, 2).size == 0

    def test_single_symbol(self):
        blob = compress([3], 2)
        out = decompress(blob, 2)
        assert out.tolist() == [3]

    def test_repetitive_input_compresses(self):
        data = np.zeros(10_000, dtype=np.uint8)
        blob = compress(data, 8)
        assert len(blob) < 500  # massive redundancy → tiny stream

    def test_bad_min_code_size(self):
        with pytest.raises(LZWError):
            compress([0], 1)
        with pytest.raises(LZWError):
            compress([0], 9)

    def test_out_of_range_symbol(self):
        with pytest.raises(LZWError):
            compress([4], 2)
        with pytest.raises(LZWError):
            compress([-1], 2)

    def test_table_reset_path(self):
        # Enough distinct patterns to overflow the 4096-entry table and
        # force a mid-stream CLEAR.
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=60_000).astype(np.uint8)
        blob = compress(data, 8)
        out = decompress(blob, 8)
        assert np.array_equal(out, data)


class TestDecompress:
    def test_rejects_bad_min_code_size(self):
        with pytest.raises(LZWError):
            decompress(b"\x00", 12)

    def test_rejects_code_beyond_table(self):
        # Craft: clear(4), then code 9 (beyond next_code) at width 3.
        w = _BitWriter()
        w.write(4, 3)  # clear
        w.write(2, 3)  # literal
        w.write(7, 3)  # next_code is 6; 7 > 6 → invalid
        with pytest.raises(LZWError):
            decompress(w.finish(), 2)

    def test_first_code_must_be_literal(self):
        w = _BitWriter()
        w.write(4, 3)  # clear
        w.write(6, 3)  # non-literal immediately
        with pytest.raises(LZWError):
            decompress(w.finish(), 2)

    def test_kwkwk_special_case(self):
        # The code==next_code ("KwKwK") construction must decode.
        data = np.array([1, 1, 1, 1, 1], dtype=np.uint8)
        blob = compress(data, 2)
        assert np.array_equal(decompress(blob, 2), data)

    def test_expected_length_truncates(self):
        data = np.arange(16, dtype=np.uint8) % 4
        blob = compress(data, 2)
        out = decompress(blob, 2, expected_length=5)
        assert np.array_equal(out, data[:5])

    def test_stops_at_eoi(self):
        data = np.array([0, 1, 2, 3], dtype=np.uint8)
        blob = compress(data, 2) + b"\xff\xff\xff"  # trailing garbage
        assert np.array_equal(decompress(blob, 2, expected_length=4), data)


class TestRoundTrip:
    @pytest.mark.parametrize("mcs", [2, 3, 4, 5, 6, 7, 8])
    def test_roundtrip_random(self, mcs):
        rng = np.random.default_rng(mcs)
        data = rng.integers(0, 1 << mcs, size=4096).astype(np.uint8)
        assert np.array_equal(decompress(compress(data, mcs), mcs), data)

    @pytest.mark.parametrize("mcs", [2, 8])
    def test_roundtrip_runs(self, mcs):
        data = np.repeat(np.arange(1 << mcs, dtype=np.int64) % (1 << mcs), 37).astype(np.uint8)
        assert np.array_equal(decompress(compress(data, mcs), mcs), data)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), max_size=2000),
    )
    @settings(max_examples=80)
    def test_roundtrip_property_mcs2(self, data):
        arr = np.array(data, dtype=np.uint8)
        assert np.array_equal(decompress(compress(arr, 2), 2), arr)

    @given(
        st.lists(st.integers(min_value=0, max_value=255), max_size=3000),
    )
    @settings(max_examples=40)
    def test_roundtrip_property_mcs8(self, data):
        arr = np.array(data, dtype=np.uint8)
        assert np.array_equal(decompress(compress(arr, 8), 8), arr)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=30000))
    @settings(max_examples=20)
    def test_roundtrip_long_constant_runs(self, value, length):
        arr = np.full(length, value, dtype=np.uint8)
        assert np.array_equal(decompress(compress(arr, 8), 8), arr)
