"""ModelRegistry: the multi-site LRU, model-checked.

Tier-1 throughout — no sockets.  The centerpiece mirrors the
``SessionStore`` property suite: hypothesis drives scripted operation
sequences (lease / pin / release / reload) against a real registry
over a fleet of tiny on-disk grid sites, and every step is compared
against a reference shadow model (a plain ``OrderedDict`` recency
list).  The concurrency tests hammer single-flight loading with real
threads, synchronizing on events rather than sleeps.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms.base import Observation
from repro.core.geometry import Point
from repro.serve.registry import (
    ModelRegistry,
    SiteDefinition,
    UnknownSiteError,
    load_fleet,
    write_fleet_manifest,
)
from tests.siteutils import make_grid_db, rssi_at, write_grid_fleet

SITE_IDS = ("g00", "g01", "g02", "g03", "g04")


@pytest.fixture(autouse=True)
def fresh_metrics():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(scope="module")
def fleet_manifest(tmp_path_factory):
    """Five tiny grid sites (one frozen) — millisecond model builds."""
    root = tmp_path_factory.mktemp("grid-fleet")
    sites, manifest = write_grid_fleet(root, len(SITE_IDS), freeze=(1,))
    assert tuple(sorted(sites)) == SITE_IDS
    return manifest


def fresh_registry(fleet_manifest, capacity=3, **kwargs):
    return ModelRegistry(fleet_manifest, capacity=capacity, **kwargs)


def probe_observation(seed=0):
    rng = np.random.default_rng(seed)
    return Observation(rng.normal(rssi_at(Point(12.0, 18.0)), 1.0, size=(3, 4)))


# ----------------------------------------------------------------------
# manifest round-trip
# ----------------------------------------------------------------------
class TestFleetManifest:
    def test_round_trip_preserves_sites_and_default(self, tmp_path):
        db = make_grid_db(step=25.0, n_samples=4)
        path = tmp_path / "one.tdb"
        db.save(str(path))
        sites = {
            "one": SiteDefinition(
                "one",
                str(path),
                algorithm="knn",
                ap_positions={"ap0": Point(1.0, 2.0)},
                bounds=(0.0, 0.0, 50.0, 40.0),
                meta={"floor": 3},
            )
        }
        write_fleet_manifest(tmp_path, sites, default="one")
        loaded, default = load_fleet(tmp_path)
        assert default == "one"
        d = loaded["one"]
        assert d.algorithm == "knn"
        assert d.ap_positions["ap0"] == Point(1.0, 2.0)
        assert d.bounds == (0.0, 0.0, 50.0, 40.0)
        assert d.meta == {"floor": 3}

    def test_bare_directory_discovery_prefers_frozen_twin(self, tmp_path):
        db = make_grid_db(step=25.0, n_samples=4)
        db.save(str(tmp_path / "a.tdb"))
        db.freeze(str(tmp_path / "a.tdbx"))
        db.save(str(tmp_path / "b.tdb"))
        sites, default = load_fleet(tmp_path)
        assert sorted(sites) == ["a", "b"]
        assert default == "a"
        assert sites["a"].database.endswith("a.tdbx")  # frozen shadows heap
        assert sites["b"].database.endswith("b.tdb")

    def test_unknown_site_raises_with_known_ids(self, fleet_manifest):
        with fresh_registry(fleet_manifest) as registry:
            with pytest.raises(UnknownSiteError) as err:
                registry.acquire("nowhere")
            assert err.value.site_id == "nowhere"
            assert err.value.known == SITE_IDS


# ----------------------------------------------------------------------
# the reference model
# ----------------------------------------------------------------------
class _ShadowRegistry:
    """Reference model: recency OrderedDict + pin counts + generations."""

    def __init__(self, capacity, default):
        self.capacity = capacity
        self.default = default
        self.resident = OrderedDict()  # sid -> pins, order = LRU -> MRU
        self.generations = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0  # never in single-threaded sequences
        self.loads = 0
        self.evictions = 0

    def _evict(self):
        for sid in list(self.resident):  # oldest first
            if len(self.resident) <= self.capacity:
                break
            if self.resident[sid] > 0:
                continue  # pinned: never unload
            del self.resident[sid]
            self.evictions += 1

    def acquire(self, sid):
        sid = self.default if sid is None else sid
        if sid in self.resident:
            self.resident.move_to_end(sid)
            self.resident[sid] += 1
            self.hits += 1
            return sid
        self.misses += 1
        self.loads += 1
        self.generations[sid] = self.generations.get(sid, 0) + 1
        self.resident[sid] = 1
        self.resident.move_to_end(sid)
        self._evict()
        return sid

    def release(self, sid):
        assert self.resident[sid] > 0
        self.resident[sid] -= 1
        self._evict()

    def reload(self, sid):
        sid = self.acquire(sid)
        self.generations[sid] += 1
        self.release(sid)

    def status(self):
        return {
            "resident": [
                {"site": sid, "generation": self.generations[sid], "pins": pins}
                for sid, pins in self.resident.items()
            ],
            "generations": dict(self.generations),
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "loads": self.loads,
            "evictions": self.evictions,
        }


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), st.sampled_from(SITE_IDS)),
        st.tuples(st.just("pin"), st.sampled_from(SITE_IDS)),
        st.tuples(st.just("unpin"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("reload"), st.sampled_from(SITE_IDS)),
        st.tuples(st.just("lease_default"), st.none()),
    ),
    max_size=40,
)


class TestRegistryProperties:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_registry_matches_reference_model(self, fleet_manifest, ops):
        registry = fresh_registry(fleet_manifest, capacity=3)
        shadow = _ShadowRegistry(capacity=3, default=registry.default_site)
        held = []  # runtimes with an outstanding pin, acquisition order
        try:
            for op, arg in ops:
                if op in ("lease", "lease_default"):
                    with registry.lease(arg):
                        pass
                    sid = shadow.acquire(arg)
                    shadow.release(sid)
                elif op == "pin":
                    held.append(registry.acquire(arg))
                    shadow.acquire(arg)
                elif op == "unpin":
                    if held:
                        runtime = held.pop(arg % len(held))
                        registry.release(runtime)
                        shadow.release(runtime.site_id)
                elif op == "reload":
                    registry.reload(arg)
                    shadow.reload(arg)
                # The whole card must agree after every operation:
                # residency set AND order, pins, generations, counters.
                real = registry.status()
                expect = shadow.status()
                assert real["resident"] == expect["resident"]
                assert real["generations"] == expect["generations"]
                for key in ("hits", "misses", "coalesced", "loads", "evictions"):
                    assert real[key] == expect[key], key
                # Residency never exceeds capacity except for pinned
                # sites blocking eviction.
                pinned = sum(1 for e in real["resident"] if e["pins"] > 0)
                assert len(real["resident"]) <= registry.capacity + pinned
        finally:
            for runtime in held:
                registry.release(runtime)
            registry.close()

    def test_evicted_site_reloads_transparently(self, fleet_manifest):
        """Eviction is invisible to callers: same site, same answers,
        strictly newer generation."""
        obs_doc = probe_observation()
        with fresh_registry(fleet_manifest, capacity=2) as registry:
            with registry.lease("g00") as runtime:
                first = runtime.service.locate_many([obs_doc])[0]
                gen_first = runtime.generation
            for sid in ("g01", "g02", "g03"):  # flood: g00 must fall out
                with registry.lease(sid):
                    pass
            assert "g00" not in [
                e["site"] for e in registry.status()["resident"]
            ]
            with registry.lease("g00") as runtime:
                again = runtime.service.locate_many([obs_doc])[0]
                assert runtime.generation > gen_first
            assert again.location_name == first.location_name
            assert again.position == first.position

    def test_generations_monotonic_across_evict_reload_cycles(
        self, fleet_manifest
    ):
        with fresh_registry(fleet_manifest, capacity=1) as registry:
            seen = []
            for _ in range(4):
                with registry.lease("g00") as runtime:
                    seen.append(runtime.generation)
                with registry.lease("g01"):  # capacity 1: evicts g00
                    pass
            assert seen == sorted(seen)
            assert len(set(seen)) == len(seen)  # strictly increasing
            registry.reload("g00")
            assert registry.generation_of("g00") > seen[-1]

    def test_pinned_site_survives_a_flood(self, fleet_manifest):
        with fresh_registry(fleet_manifest, capacity=2) as registry:
            pinned = registry.acquire("g00")
            for sid in ("g01", "g02", "g03", "g04"):
                with registry.lease(sid):
                    pass
            resident = [e["site"] for e in registry.status()["resident"]]
            assert "g00" in resident
            registry.release(pinned)
            # Unpinned now: the very next load may evict it.
            with registry.lease("g01"):
                pass
            assert len(registry) <= registry.capacity

    def test_release_without_acquire_is_an_error(self, fleet_manifest):
        with fresh_registry(fleet_manifest) as registry:
            runtime = registry.acquire("g00")
            registry.release(runtime)
            with pytest.raises(RuntimeError):
                registry.release(runtime)

    def test_closed_registry_refuses_acquires(self, fleet_manifest):
        registry = fresh_registry(fleet_manifest)
        registry.close()
        with pytest.raises(RuntimeError):
            registry.acquire("g00")


# ----------------------------------------------------------------------
# single-flight under a thundering herd
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_cold_herd_pays_one_build(self, fleet_manifest, monkeypatch):
        registry = fresh_registry(fleet_manifest, capacity=3)
        builds = []
        herd_ready = threading.Event()
        original = ModelRegistry._build_runtime

        def counted(self, sid):
            builds.append(sid)
            herd_ready.wait(timeout=10.0)  # hold the load open
            return original(self, sid)

        monkeypatch.setattr(ModelRegistry, "_build_runtime", counted)
        results = []
        errors = []

        def worker():
            try:
                with registry.lease("g02") as runtime:
                    results.append(runtime)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while not builds:  # leader reached the build
            assert time.monotonic() < deadline, "no leader entered the build"
            time.sleep(0.001)
        herd_ready.set()
        for t in threads:
            t.join(timeout=30.0)
        registry.close()
        assert not errors
        assert builds == ["g02"]  # one build for the whole herd
        assert len(results) == 8
        assert len({id(r) for r in results}) == 1  # everyone got the same one
        snap = obs.snapshot()["counters"]
        assert snap["serve.site.requests{cache=miss,site=g02}"] == 1
        hits = snap.get("serve.site.requests{cache=hit,site=g02}", 0)
        coalesced = snap.get("serve.site.requests{cache=coalesced,site=g02}", 0)
        assert hits + coalesced == 7

    def test_failed_load_propagates_then_recovers(
        self, fleet_manifest, monkeypatch
    ):
        registry = fresh_registry(fleet_manifest)
        original = ModelRegistry._build_runtime
        blow_up = {"g03": True}

        def flaky(self, sid):
            if blow_up.pop(sid, False):
                raise OSError("pack store briefly unreachable")
            return original(self, sid)

        monkeypatch.setattr(ModelRegistry, "_build_runtime", flaky)
        with pytest.raises(OSError):
            registry.acquire("g03")
        # The flight is gone: the next acquire retries and succeeds.
        with registry.lease("g03") as runtime:
            assert runtime.site_id == "g03"
        registry.close()
        snap = obs.snapshot()["counters"]
        assert snap["serve.site.loads{result=failed,site=g03}"] == 1
        assert snap["serve.site.loads{result=ok,site=g03}"] == 1


# ----------------------------------------------------------------------
# metric-label cardinality: a big fleet must not blow up /metrics
# ----------------------------------------------------------------------
class TestMetricCardinality:
    N_SITES = 50
    DRIFT_CAP = 2

    def test_fifty_resident_sites_keep_metrics_bounded(self, tmp_path):
        from repro.obs.export import render_prometheus

        sites, manifest = write_grid_fleet(
            tmp_path, self.N_SITES, step=50.0, n_samples=3
        )
        rng = np.random.default_rng(0)
        with ModelRegistry(manifest, capacity=self.N_SITES) as registry:
            for sid in sorted(sites):
                with registry.lease(sid) as runtime:
                    runtime.service.locate_many([probe_observation()])
                    monitor = runtime.drift_monitor(
                        min_samples=5, max_ap_series=self.DRIFT_CAP
                    )
                    live = rng.normal(-55.0, 3.0, size=(20, 4))
                    monitor.observe(live)
                    monitor.status()
            assert len(registry) == self.N_SITES

        snap = obs.snapshot()
        series = [
            name
            for group in ("counters", "gauges", "histograms")
            for name in snap.get(group, {})
        ]
        # Per-AP drift series are capped per site: even with 4 APs per
        # site, at most DRIFT_CAP ap-labelled series of each kind.
        for sid in sorted(sites):
            ap_series = [
                s for s in series if "ap=" in s and f"site={sid}" in s
            ]
            kinds = {s.split("{", 1)[0] for s in ap_series}
            for kind in kinds:
                per_kind = [s for s in ap_series if s.startswith(kind + "{")]
                assert len(per_kind) <= self.DRIFT_CAP, (sid, kind, per_kind)
        # Whole-registry bound: series growth is O(sites), small factor.
        site_labelled = [s for s in series if "site=" in s]
        assert len(site_labelled) <= self.N_SITES * 12
        # And the exposition still renders + parses end to end.
        text = render_prometheus(snap)
        assert text.count("# TYPE") >= 3
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
