"""Tests for device profiles and the rank localizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import Observation
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.rank import RankLocalizer, _rank_vector
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase
from repro.radio.device import (
    DEVICE_CATALOGUE,
    OPTIMISTIC_CARD,
    PESSIMISTIC_CARD,
    REFERENCE_DBM,
    DeviceProfile,
)

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]


class TestDeviceProfile:
    def test_identity_device(self):
        dev = DeviceProfile(quantize_db=0.0)
        x = np.array([[-40.0, -60.0], [np.nan, -70.0]])
        out = dev.apply(x, rng=0)
        assert np.allclose(out[np.isfinite(x)], x[np.isfinite(x)])
        assert np.isnan(out[1, 0])

    def test_offset(self):
        dev = DeviceProfile(offset_db=8.0, quantize_db=0.0)
        out = dev.apply(np.array([-50.0]), rng=0)
        assert out[0] == pytest.approx(-42.0)

    def test_gain_pivots_at_reference(self):
        dev = DeviceProfile(gain=0.5, quantize_db=0.0)
        assert dev.apply(np.array([REFERENCE_DBM]), rng=0)[0] == pytest.approx(REFERENCE_DBM)
        # 20 dB below pivot compresses to 10 dB below.
        assert dev.apply(np.array([REFERENCE_DBM - 20.0]), rng=0)[0] == pytest.approx(
            REFERENCE_DBM - 10.0
        )

    def test_sensitivity_cutoff(self):
        dev = DeviceProfile(sensitivity_dbm=-60.0, quantize_db=0.0)
        out = dev.apply(np.array([-55.0, -65.0]), rng=0)
        assert out[0] == -55.0
        assert np.isnan(out[1])

    def test_quantization(self):
        dev = DeviceProfile(quantize_db=2.0)
        out = dev.apply(np.array([-55.3]), rng=0)
        assert out[0] % 2.0 == 0.0

    def test_noise_reproducible(self):
        dev = DeviceProfile(extra_noise_db=2.0, quantize_db=0.0)
        x = np.full(100, -50.0)
        assert np.allclose(dev.apply(x, rng=3), dev.apply(x, rng=3))
        assert not np.allclose(dev.apply(x, rng=3), dev.apply(x, rng=4))

    def test_nan_preserved(self):
        dev = DeviceProfile(offset_db=5.0)
        out = dev.apply(np.array([np.nan, -50.0]), rng=0)
        assert np.isnan(out[0]) and np.isfinite(out[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(gain=0)
        with pytest.raises(ValueError):
            DeviceProfile(extra_noise_db=-1)

    def test_catalogue(self):
        assert "reference" in DEVICE_CATALOGUE
        assert OPTIMISTIC_CARD.offset_db > 0 > PESSIMISTIC_CARD.offset_db


class TestRankVector:
    def test_simple_ranks(self):
        r = _rank_vector(np.array([-70.0, -40.0, -60.0]))
        assert r.tolist() == [1.0, 3.0, 2.0]

    def test_ties_averaged(self):
        r = _rank_vector(np.array([-50.0, -50.0, -60.0]))
        assert r.tolist() == [2.5, 2.5, 1.0]

    def test_nan_passthrough(self):
        r = _rank_vector(np.array([-50.0, np.nan, -60.0]))
        assert np.isnan(r[1])
        assert r[0] == 2.0 and r[2] == 1.0

    def test_all_nan(self):
        assert np.isnan(_rank_vector(np.array([np.nan, np.nan]))).all()

    @given(
        st.lists(
            # Half-dB grid: every value, and its image under the affine
            # map below, is exactly representable, so the map is
            # *strictly* monotone in float arithmetic.  Raw float inputs
            # would be wrong-by-construction: two adjacent doubles can
            # round to the same product, silently creating a tie on one
            # side only (hypothesis found values=[-1.0, -1.0000000000000002]).
            st.integers(min_value=-200, max_value=-2).map(lambda n: n * 0.5),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50)
    def test_monotone_transform_invariance(self, values):
        arr = np.array(values)
        a = _rank_vector(arr)
        b = _rank_vector(0.5 * arr + 7.0)  # positive-gain affine map
        assert np.allclose(a, b, equal_nan=True)


def synthetic_db(seed=0):
    rng = np.random.default_rng(seed)
    profiles = {
        "sw": ((-40.0, -62.0, -80.0, -62.0), (0.0, 0.0)),
        "se": ((-62.0, -40.0, -62.0, -80.0), (50.0, 0.0)),
        "ne": ((-80.0, -62.0, -40.0, -62.0), (50.0, 40.0)),
        "nw": ((-62.0, -80.0, -62.0, -40.0), (0.0, 40.0)),
    }
    records = [
        LocationRecord(name, Point(*pos), rng.normal(m, 1.5, (40, 4)).astype(np.float32))
        for name, (m, pos) in profiles.items()
    ]
    return TrainingDatabase(B, records)


class TestRankLocalizer:
    def test_locates_clean_observation(self):
        loc = RankLocalizer().fit(synthetic_db())
        o = Observation(np.random.default_rng(1).normal((-40, -62, -80, -62), 1, (10, 4)))
        assert loc.locate(o).location_name == "sw"

    def test_invariant_to_device_offset_and_gain(self):
        loc = RankLocalizer().fit(synthetic_db())
        rng = np.random.default_rng(2)
        base = rng.normal((-80, -62, -40, -62), 0.5, (10, 4))
        o_ref = Observation(base)
        o_warp = Observation(0.6 * (base + 50.0) - 50.0 - 12.0)  # gain+offset
        assert loc.locate(o_ref).location_name == "ne"
        assert loc.locate(o_warp).location_name == "ne"

    def test_db_matchers_break_under_offset_rank_does_not(self):
        db = synthetic_db()
        rank = RankLocalizer().fit(db)
        prob = ProbabilisticLocalizer().fit(db)
        rng = np.random.default_rng(3)
        base = rng.normal((-40, -62, -80, -62), 0.5, (10, 4))
        shifted = Observation(base - 15.0)
        true = Point(0, 0)
        assert rank.locate(shifted).error_to(true) <= prob.locate(shifted).error_to(true)

    def test_tie_averaging(self):
        # An observation equidistant in rank space from two candidates.
        db = synthetic_db()
        loc = RankLocalizer().fit(db)
        est = loc.locate(Observation(np.array([[-50.0, -50.0, -50.0, -50.0]])))
        assert est.position is not None  # average of tied points, no crash

    def test_min_common_aps(self):
        loc = RankLocalizer(min_common_aps=3).fit(synthetic_db())
        o = Observation(np.array([[-40.0, -60.0, np.nan, np.nan]]))
        assert not loc.locate(o).valid

    def test_validation(self):
        with pytest.raises(ValueError):
            RankLocalizer(mismatch_penalty=-1)
        with pytest.raises(ValueError):
            RankLocalizer(min_common_aps=1)
        with pytest.raises(ValueError):
            RankLocalizer().fit(TrainingDatabase(B, []))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            RankLocalizer().locate(Observation(np.zeros((1, 4)) - 50))


class TestHouseDeviceIntegration:
    def test_observe_with_device(self, house):
        from repro.radio.device import PESSIMISTIC_CARD

        p = Point(25, 20)
        plain = house.observe(p, rng=5)
        warped = house.observe(p, rng=5, device=PESSIMISTIC_CARD)
        both = np.isfinite(plain.samples) & np.isfinite(warped.samples)
        # Same channel draw, shifted reporting.
        delta = (warped.samples - plain.samples)[both]
        assert np.abs(delta.mean() + 9.0) < 1.5
