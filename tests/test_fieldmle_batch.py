"""Tests for the field-MLE localizer and the vectorized batch paths."""

import numpy as np
import pytest

from repro.algorithms.base import Observation, make_localizer
from repro.algorithms.fieldmle import FieldMLELocalizer
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
APS = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]


def rssi_at(p: Point) -> np.ndarray:
    d = np.array([max(p.distance_to(a), 1.0) for a in APS])
    return -35.0 - 25.0 * np.log10(d)


def grid_db(step=10.0, seed=0, noise=1.0):
    rng = np.random.default_rng(seed)
    records = []
    for y in np.arange(0, 41, step):
        for x in np.arange(0, 51, step):
            p = Point(float(x), float(y))
            records.append(
                LocationRecord(
                    f"g{x:g}-{y:g}", p, rng.normal(rssi_at(p), noise, (10, 4)).astype(np.float32)
                )
            )
    return TrainingDatabase(B, records)


def obs_at(p: Point, seed=1, noise=1.0, n=5):
    rng = np.random.default_rng(seed)
    return Observation(rng.normal(rssi_at(p), noise, (n, 4)), bssids=B)


class TestFieldMLE:
    def test_registered(self):
        assert isinstance(make_localizer("fieldmle"), FieldMLELocalizer)

    def test_answers_off_grid(self):
        """Unlike §5.1, the estimate can land between training points."""
        loc = FieldMLELocalizer(resolution_ft=1.0).fit(grid_db())
        true = Point(23.0, 17.0)  # off the 10-ft grid
        est = loc.locate(obs_at(true, noise=0.5))
        assert est.valid
        assert est.position.distance_to(true) < 6.0
        # ...and genuinely off-grid (not snapped to a multiple of 10).
        assert est.position.x % 10.0 > 0.01 or est.position.y % 10.0 > 0.01

    def test_beats_grid_argmax_on_clean_channel(self):
        db = grid_db(noise=0.5)
        field = FieldMLELocalizer(resolution_ft=1.0).fit(db)
        prob = ProbabilisticLocalizer().fit(db)
        rng = np.random.default_rng(5)
        errs_f, errs_p = [], []
        for i in range(20):
            true = Point(rng.uniform(5, 45), rng.uniform(5, 35))
            o = obs_at(true, seed=100 + i, noise=0.5)
            errs_f.append(field.locate(o).error_to(true))
            errs_p.append(prob.locate(o).error_to(true))
        assert np.mean(errs_f) < np.mean(errs_p)

    def test_log_likelihood_grid_shape(self):
        loc = FieldMLELocalizer(resolution_ft=5.0, margin_ft=0.0).fit(grid_db())
        ll = loc.log_likelihood_grid(obs_at(Point(25, 20)))
        assert ll.shape == (len(loc._ys), len(loc._xs))
        assert np.isfinite(ll).all()

    def test_silent_observation_invalid(self):
        loc = FieldMLELocalizer().fit(grid_db())
        est = loc.locate(Observation(np.full((2, 4), np.nan), bssids=B))
        assert not est.valid and est.position is None

    def test_refinement_subcell(self):
        coarse = FieldMLELocalizer(resolution_ft=4.0, refine=False).fit(grid_db(noise=0.5))
        refined = FieldMLELocalizer(resolution_ft=4.0, refine=True).fit(grid_db(noise=0.5))
        true = Point(26.0, 21.0)
        o = obs_at(true, noise=0.3)
        e_coarse = coarse.locate(o).error_to(true)
        e_refined = refined.locate(o).error_to(true)
        assert e_refined <= e_coarse + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            FieldMLELocalizer(resolution_ft=0)
        with pytest.raises(ValueError):
            FieldMLELocalizer(margin_ft=-1)
        with pytest.raises(RuntimeError):
            FieldMLELocalizer().locate(obs_at(Point(0, 0)))

    def test_column_mismatch(self):
        loc = FieldMLELocalizer().fit(grid_db())
        with pytest.raises(ValueError):
            loc.log_likelihood_grid(Observation(np.zeros((1, 2)) - 50))


class TestBatchEquality:
    @pytest.fixture(scope="class")
    def db(self):
        return grid_db()

    @pytest.fixture(scope="class")
    def batch_obs(self):
        rng = np.random.default_rng(9)
        out = []
        for i in range(25):
            p = Point(rng.uniform(0, 50), rng.uniform(0, 40))
            samples = rng.normal(rssi_at(p), 3.0, (4, 4))
            # Inject some misses, including a fully silent sweep.
            samples[rng.random(samples.shape) < 0.1] = np.nan
            out.append(Observation(samples, bssids=B))
        return out

    @pytest.mark.parametrize("cls", [ProbabilisticLocalizer, KNNLocalizer])
    def test_locate_many_matches_loop(self, cls, db, batch_obs):
        loc = cls().fit(db)
        loop = [loc.locate(o) for o in batch_obs]
        batch = loc.locate_many(batch_obs)
        assert len(batch) == len(loop)
        for a, b in zip(loop, batch):
            assert a.position == b.position
            assert a.location_name == b.location_name
            assert a.valid == b.valid
            assert a.score == pytest.approx(b.score)

    @pytest.mark.parametrize("cls", [ProbabilisticLocalizer, KNNLocalizer])
    def test_empty_batch(self, cls, db):
        assert cls().fit(db).locate_many([]) == []

    def test_permuted_columns_in_batch(self, db):
        """Batch path honors per-observation BSSID alignment too."""
        loc = ProbabilisticLocalizer().fit(db)
        rng = np.random.default_rng(3)
        base = rng.normal(rssi_at(Point(10, 10)), 1.0, (5, 4))
        straight = Observation(base, bssids=B)
        perm = [2, 0, 3, 1]
        shuffled = Observation(base[:, perm], bssids=[B[i] for i in perm])
        a, b = loc.locate_many([straight, shuffled])
        assert a.location_name == b.location_name

    def test_knn_weighted_batch(self, db, batch_obs):
        loc = KNNLocalizer(k=3, weighted=True).fit(db)
        loop = [loc.locate(o) for o in batch_obs]
        batch = loc.locate_many(batch_obs)
        for a, b in zip(loop, batch):
            assert a.position.distance_to(b.position) < 1e-9
