"""Exporters, snapshot diffing and the live ObsServer endpoint."""

import json
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.obs.export import JSON_SCHEMA, json_payload, render_json, render_prometheus
from repro.obs.compare import diff_snapshots, render_diff
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObsServer


@pytest.fixture()
def registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield obs.get_registry()
    obs.set_registry(previous)


# One exposition sample line: name{labels} value — the grammar every
# Prometheus scraper parses (we allow NaN/±Inf as the spec does).
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (NaN|[+-]Inf|[+-]?[0-9.eE+-]+)$"
)
_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")


def _assert_valid_exposition(text):
    assert text.endswith("\n")
    typed = set()
    for line in text.splitlines():
        if line.startswith("#"):
            m = _TYPE.match(line)
            assert m, f"bad comment line: {line!r}"
            metric = line.split()[2]
            assert metric not in typed, f"duplicate TYPE for {metric}"
            typed.add(metric)
        else:
            assert _SAMPLE.match(line), f"bad sample line: {line!r}"


def _populate():
    obs.counter("batch.requests", algorithm="knn").inc(12)
    obs.counter("batch.requests", algorithm="fallback").inc(3)
    obs.counter("plain").inc()
    obs.gauge("pool.workers").set(4)
    obs.gauge("weird name-with/chars", label_x="a\"b\\c").set(1.5)
    h = obs.histogram("locate.latency_ms", algorithm="knn")
    h.observe_many([1.0, 2.0, 4.0, 8.0, 100.0])


class TestPrometheusExposition:
    def test_every_line_parses(self, registry):
        _populate()
        _assert_valid_exposition(render_prometheus())

    def test_counter_total_suffix_and_grouping(self, registry):
        _populate()
        text = render_prometheus()
        assert "# TYPE repro_batch_requests_total counter" in text
        assert 'repro_batch_requests_total{algorithm="knn"} 12' in text
        assert 'repro_batch_requests_total{algorithm="fallback"} 3' in text
        # one TYPE line covers both labeled series
        assert text.count("# TYPE repro_batch_requests_total") == 1

    def test_histogram_exports_as_summary(self, registry):
        _populate()
        text = render_prometheus()
        assert "# TYPE repro_locate_latency_ms summary" in text
        assert 'repro_locate_latency_ms{algorithm="knn",quantile="0.5"}' in text
        assert 'repro_locate_latency_ms_sum{algorithm="knn"} 115' in text
        assert 'repro_locate_latency_ms_count{algorithm="knn"} 5' in text

    def test_empty_histogram_skips_quantiles(self, registry):
        obs.histogram("empty.h")  # series exists, nothing observed
        text = render_prometheus()
        assert "quantile" not in text
        assert "repro_empty_h_count 0" in text

    def test_names_and_label_values_sanitized(self, registry):
        _populate()
        text = render_prometheus()
        # "weird name-with/chars" → metric charset, value escaped
        assert 'repro_weird_name_with_chars{label_x="a\\"b\\\\c"} 1.5' in text
        _assert_valid_exposition(text)

    def test_gauge_nan_renders_spec_style(self, registry):
        obs.gauge("g").set(float("nan"))
        text = render_prometheus()
        assert "repro_g NaN" in text
        _assert_valid_exposition(text)

    def test_empty_snapshot(self, registry):
        assert render_prometheus() == "\n"

    def test_custom_prefix(self, registry):
        obs.counter("c").inc()
        assert "site_c_total 1" in render_prometheus(prefix="site_")


class TestJsonPayload:
    def test_schema_and_label_split(self, registry):
        _populate()
        payload = json_payload()
        assert payload["schema"] == JSON_SCHEMA
        entry = next(
            e for e in payload["counters"] if e["labels"].get("algorithm") == "knn"
        )
        assert entry["name"] == "batch.requests"
        assert entry["series"] == "batch.requests{algorithm=knn}"
        assert entry["value"] == 12

    def test_histogram_entry_carries_summary_stats(self, registry):
        _populate()
        (entry,) = json_payload()["histograms"]
        assert entry["count"] == 5
        assert entry["sum"] == 115.0
        assert entry["min"] == 1.0 and entry["max"] == 100.0
        assert entry["p50"] > 0

    def test_non_finite_becomes_null_and_json_is_strict(self, registry):
        obs.gauge("g").set(float("inf"))
        text = render_json()
        payload = json.loads(text)  # would raise on bare Infinity
        assert payload["gauges"][0]["value"] is None

    def test_render_json_round_trips_a_file_snapshot(self, registry, tmp_path):
        _populate()
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(obs.snapshot()))
        payload = json.loads(render_json(json.loads(path.read_text())))
        assert payload == json_payload(obs.snapshot())


class TestDiff:
    def test_counter_deltas_and_new_series(self, registry):
        obs.counter("c").inc(2)
        before = obs.snapshot()
        obs.counter("c").inc(5)
        obs.counter("new").inc(1)
        d = diff_snapshots(before, obs.snapshot())
        assert d["counters"] == {"c": 5, "new": 1}
        assert d["resets"] == []

    def test_counter_reset_reported_absolute(self, registry):
        obs.counter("c").inc(10)
        before = obs.snapshot()
        obs.reset()
        obs.counter("c").inc(3)
        d = diff_snapshots(before, obs.snapshot())
        assert d["counters"] == {"c": 3}
        assert d["resets"] == ["c"]

    def test_vanished_series_is_a_reset(self, registry):
        obs.counter("gone").inc()
        before = obs.snapshot()
        obs.reset()
        d = diff_snapshots(before, obs.snapshot())
        assert d["resets"] == ["gone"]
        assert "gone" in render_diff(before, obs.snapshot())

    def test_gauge_and_histogram_moves(self, registry):
        obs.gauge("g").set(1.0)
        obs.histogram("h").observe(2.0)
        before = obs.snapshot()
        obs.gauge("g").set(4.0)
        obs.histogram("h").observe(3.0)
        d = diff_snapshots(before, obs.snapshot())
        assert d["gauges"]["g"] == (1.0, 4.0)
        assert d["histograms"]["h"] == {"count": 1, "sum": 3.0}

    def test_no_change(self, registry):
        obs.counter("c").inc()
        snap = obs.snapshot()
        assert render_diff(snap, snap) == "no change between snapshots"

    def test_render_diff_is_deterministic(self, registry):
        obs.counter("b").inc()
        obs.counter("a").inc(2)
        before = {"counters": {}, "gauges": {}, "histograms": {}}
        text = render_diff(before, obs.snapshot())
        assert text.index("  a ") < text.index("  b ")


def _get(url):
    try:
        with urllib.request.urlopen(url) as r:
            return r.status, dict(r.headers), r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read().decode()


@pytest.mark.service
class TestObsServer:
    def test_start_is_ready_immediately(self, registry):
        """start() returns only once serve_forever is polling.

        The readiness handshake is event-based (``service_actions``),
        so the very first request after ``start()`` must succeed — no
        connection-refused window, no sleep-and-retry.
        """
        for _ in range(5):  # a startup race would flake across restarts
            server = ObsServer()
            server.start()
            try:
                status, _, _ = _get(server.url + "/healthz")
                assert status == 200
            finally:
                server.stop()

    def test_metrics_endpoint_serves_valid_exposition(self, registry):
        _populate()
        with ObsServer() as server:
            status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        _assert_valid_exposition(body)
        assert "repro_batch_requests_total" in body
        assert "repro_pool_workers 4" in body
        assert "repro_locate_latency_ms_count" in body

    def test_metrics_json_endpoint(self, registry):
        _populate()
        with ObsServer() as server:
            status, headers, body = _get(server.url + "/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body)["schema"] == JSON_SCHEMA

    def test_healthz_ok_then_degraded(self, registry):
        healthy = [True]
        server = ObsServer().add_health_check(
            "toggle", lambda: (healthy[0], "state")
        )
        with server:
            status, _, body = _get(server.url + "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"
            healthy[0] = False
            status, _, body = _get(server.url + "/healthz")
            report = json.loads(body)
            assert status == 503
            assert report["status"] == "degraded"
            assert report["checks"]["toggle"]["ok"] is False

    def test_raising_check_degrades_not_crashes(self, registry):
        def bad_check():
            raise RuntimeError("monitor bug")

        with ObsServer().add_health_check("bad", bad_check) as server:
            status, _, body = _get(server.url + "/healthz")
        assert status == 503
        assert "RuntimeError" in json.loads(body)["checks"]["bad"]["detail"]

    def test_unknown_path_404(self, registry):
        with ObsServer() as server:
            status, _, _ = _get(server.url + "/nope")
        assert status == 404

    def test_custom_snapshot_fn(self, registry):
        snap = {"counters": {"frozen": 7}, "gauges": {}, "histograms": {}}
        with ObsServer(lambda: snap) as server:
            _, _, body = _get(server.url + "/metrics")
        assert "repro_frozen_total 7" in body

    def test_port_is_real_and_url_matches(self, registry):
        with ObsServer() as server:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        with pytest.raises(RuntimeError):
            server.port


class _FakeDb:
    """Duck-typed TrainingDatabase: two APs at known Gaussian levels."""

    bssids = ["ap-one", "ap-two"]

    def mean_matrix(self):
        return np.array([[-50.0, -70.0], [-52.0, -72.0]])

    def std_matrix(self, min_std=0.5):
        return np.full((2, 2), 3.0)


@pytest.mark.service
class TestHealthzDriftFlip:
    """Acceptance: /healthz flips degraded when live RSSI drifts."""

    def test_injected_ap_offset_degrades_healthz(self, registry):
        from repro.obs.quality import APDriftMonitor

        rng = np.random.default_rng(0)
        monitor = APDriftMonitor(_FakeDb(), min_samples=50)
        with ObsServer().add_health_check("rssi_drift", monitor.health) as server:
            # Live traffic matching training: healthy.
            matched = np.stack(
                [rng.normal(-51.0, 3.0, 200), rng.normal(-71.0, 3.0, 200)], axis=1
            )
            monitor.observe(matched)
            status, _, body = _get(server.url + "/healthz")
            assert status == 200, body
            assert json.loads(body)["status"] == "ok"

            # The first AP moves 15 dB (power change / relocation).
            shifted = matched.copy()
            shifted[:, 0] += 15.0
            monitor.observe(shifted)
            status, _, body = _get(server.url + "/healthz")
            report = json.loads(body)
            assert status == 503
            assert report["status"] == "degraded"
            assert "ap-one" in report["checks"]["rssi_drift"]["detail"]["drifted"]
            assert "ap-two" not in report["checks"]["rssi_drift"]["detail"]["drifted"]

        # The incident is on the alert counters too.
        counters = obs.snapshot()["counters"]
        assert counters["quality.drift_alerts{ap=ap-one}"] == 1
        assert counters["quality.alert{kind=rssi_drift}"] == 1
