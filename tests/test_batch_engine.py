"""The batched scoring engine: chunking, sharding, config plumbing.

``run_batched`` is the one place every vectorized ``locate_many`` goes
through, so its contract is pinned directly: results in order and
complete across chunk boundaries, chunk sizes bounded (including the
kernel-specific cap), chunk/shard counters emitted, and the process
default config swappable and restorable.
"""

import numpy as np
import pytest

from repro import obs
from repro.algorithms.engine import (
    BatchConfig,
    get_batch_config,
    run_batched,
    set_batch_config,
)
from repro.parallel import ParallelConfig


def _double_all(items):
    """Module-level kernel: picklable, so the shard path can ship it."""
    return [2 * x for x in items]


_SEEN_CHUNK_SIZES = []


def _recording_kernel(items):
    _SEEN_CHUNK_SIZES.append(len(items))
    return list(items)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    obs.reset()
    yield
    obs.reset()


class TestRunBatched:
    def test_empty_batch(self):
        assert run_batched(_double_all, []) == []

    def test_small_batch_single_kernel_call(self):
        _SEEN_CHUNK_SIZES.clear()
        out = run_batched(
            _recording_kernel, list(range(10)), config=BatchConfig(chunk_size=256)
        )
        assert out == list(range(10))
        assert _SEEN_CHUNK_SIZES == [10]  # no chunk splitting below chunk_size

    def test_chunking_preserves_order_and_counts(self):
        config = BatchConfig(chunk_size=7, shard_threshold=None)
        items = list(range(100))
        assert run_batched(_double_all, items, label="t", config=config) == [
            2 * x for x in items
        ]
        snap = obs.snapshot()
        # 100 items in chunks of 7 -> 15 chunks
        assert snap["counters"]["batch.chunks{algorithm=t}"] == 15

    def test_max_chunk_caps_config(self):
        _SEEN_CHUNK_SIZES.clear()
        config = BatchConfig(chunk_size=64, shard_threshold=None)
        run_batched(
            _recording_kernel, list(range(40)), config=config, max_chunk=16
        )
        assert max(_SEEN_CHUNK_SIZES) <= 16

    def test_shard_path_matches_serial(self):
        config = BatchConfig(
            chunk_size=8,
            shard_threshold=16,
            parallel=ParallelConfig(max_workers=2),
        )
        items = list(range(64))
        out = run_batched(_double_all, items, label="s", config=config)
        assert out == [2 * x for x in items]
        snap = obs.snapshot()
        assert snap["counters"]["batch.sharded_requests{algorithm=s}"] == 64
        assert snap["counters"]["batch.shard{algorithm=s}"] == 1

    def test_below_threshold_never_shards(self):
        config = BatchConfig(
            chunk_size=8,
            shard_threshold=1000,
            parallel=ParallelConfig(max_workers=2),
        )
        run_batched(_double_all, list(range(64)), label="ns", config=config)
        assert "batch.shard{algorithm=ns}" not in obs.snapshot()["counters"]


class TestBatchConfig:
    def test_default_roundtrip(self):
        original = get_batch_config()
        override = BatchConfig(chunk_size=13)
        previous = set_batch_config(override)
        try:
            assert previous is original
            assert get_batch_config() is override
        finally:
            set_batch_config(original)
        assert get_batch_config() is original

    def test_localizer_instance_override(self):
        """A per-instance batch_config reroutes that localizer only."""
        from repro.algorithms.base import Observation
        from repro.algorithms.knn import KNNLocalizer
        from repro.core.geometry import Point
        from repro.core.trainingdb import LocationRecord, TrainingDatabase

        bssids = ["02:00:00:00:00:00", "02:00:00:00:00:01"]
        rng = np.random.default_rng(0)
        db = TrainingDatabase(
            bssids,
            [
                LocationRecord(f"p{i}", Point(float(i), 0.0), rng.normal(-60, 3, (5, 2)))
                for i in range(4)
            ],
        )
        loc = KNNLocalizer(k=1).fit(db)
        loc.batch_config = BatchConfig(chunk_size=2, shard_threshold=None)
        observations = [
            Observation(rng.normal(-60, 3, (3, 2)), bssids=bssids) for _ in range(9)
        ]
        estimates = loc.locate_many(observations)
        assert len(estimates) == 9
        snap = obs.snapshot()
        # 9 observations at chunk_size=2 -> 5 chunks
        assert snap["counters"]["batch.chunks{algorithm=knn}"] == 5
