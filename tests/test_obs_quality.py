"""Quality telemetry: RSSI drift monitors, health checks, confidence."""

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import APDriftMonitor, fallback_exhaustion_check


@pytest.fixture()
def registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield obs.get_registry()
    obs.set_registry(previous)


class _Db:
    """Duck-typed training database with controllable per-AP levels."""

    def __init__(self, means, std=3.0):
        self._means = np.asarray(means, dtype=float)  # (L, A)
        self._std = std
        self.bssids = [f"ap{i}" for i in range(self._means.shape[1])]

    def mean_matrix(self):
        return self._means.copy()

    def std_matrix(self, min_std=0.5):
        return np.full(self._means.shape, max(self._std, min_std))


def _db2():
    return _Db([[-50.0, -70.0], [-52.0, -72.0]])


def _live(rng, mean_a, mean_b, n=300, std=3.0):
    return np.stack(
        [rng.normal(mean_a, std, n), rng.normal(mean_b, std, n)], axis=1
    )


class TestAPDriftMonitor:
    def test_matched_traffic_is_healthy(self, registry):
        m = APDriftMonitor(_db2())
        m.observe(_live(np.random.default_rng(0), -51.0, -71.0))
        status = m.status()
        assert all(e["judged"] for e in status.values())
        assert m.drifted_aps() == []
        ok, detail = m.health()
        assert ok and detail["aps_judged"] == 2

    def test_mean_shift_trips_one_ap(self, registry):
        m = APDriftMonitor(_db2())
        m.observe(_live(np.random.default_rng(1), -51.0 + 12.0, -71.0))
        status = m.status()
        assert status["ap0"]["drifted"] and not status["ap1"]["drifted"]
        assert status["ap0"]["mean_shift_db"] == pytest.approx(12.0, abs=1.5)
        ok, detail = m.health()
        assert not ok and detail["drifted"] == ["ap0"]

    def test_ks_trips_even_when_means_agree(self, registry):
        # Bimodal live RSSI centered on the training mean: the mean test
        # sees nothing, the distribution distance must.
        rng = np.random.default_rng(2)
        n = 400
        bimodal = np.concatenate(
            [rng.normal(-41.0, 1.0, n // 2), rng.normal(-61.0, 1.0, n // 2)]
        )
        live = np.stack([bimodal, rng.normal(-71.0, 3.0, n)], axis=1)
        m = APDriftMonitor(_db2())
        m.observe(live)
        status = m.status()
        assert abs(status["ap0"]["mean_shift_db"]) < 2.0  # mean looks fine
        assert status["ap0"]["ks_distance"] > m.ks_threshold
        assert status["ap0"]["drifted"]

    def test_min_samples_gates_judgement(self, registry):
        m = APDriftMonitor(_db2(), min_samples=100)
        m.observe(_live(np.random.default_rng(3), -20.0, -20.0, n=30))
        status = m.status()
        assert not any(e["judged"] for e in status.values())
        assert not any(e["drifted"] for e in status.values())
        ok, _ = m.health()
        assert ok  # wildly off, but not enough data to say so

    def test_observation_bssid_alignment(self, registry):
        from repro.algorithms.base import Observation

        rng = np.random.default_rng(4)
        m = APDriftMonitor(_db2(), min_samples=10)
        # Columns arrive swapped; BSSIDs say so; monitor must realign.
        swapped = Observation(
            _live(rng, -71.0, -51.0, n=50), bssids=["ap1", "ap0"]
        )
        m.observe_many([swapped])
        assert m.drifted_aps() == []

    def test_column_mismatch_rejected(self, registry):
        with pytest.raises(ValueError, match="AP columns"):
            APDriftMonitor(_db2()).observe(np.zeros((5, 3)))

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            APDriftMonitor(_db2(), mean_shift_db=0.0)
        with pytest.raises(ValueError):
            APDriftMonitor(_db2(), ks_threshold=1.5)
        with pytest.raises(ValueError):
            APDriftMonitor(_db2(), bin_width_db=-1.0)

    def test_alerts_fire_on_transition_not_per_scrape(self, registry):
        rng = np.random.default_rng(5)
        m = APDriftMonitor(_db2())
        m.observe(_live(rng, -51.0 + 15.0, -71.0))
        m.status()
        m.status()  # second scrape of the same incident
        counters = obs.snapshot()["counters"]
        assert counters["quality.drift_alerts{ap=ap0}"] == 1
        assert counters["quality.alert{kind=rssi_drift}"] == 1
        # Recover, then drift again: a new incident, a new alert.
        m.reset()
        m.observe(_live(rng, -51.0, -71.0))
        m.status()
        m.reset()
        m.observe(_live(rng, -51.0 + 15.0, -71.0))
        m.status()
        assert obs.snapshot()["counters"]["quality.drift_alerts{ap=ap0}"] == 2

    def test_gauges_track_latest_values(self, registry):
        m = APDriftMonitor(_db2())
        m.observe(_live(np.random.default_rng(6), -51.0 + 8.0, -71.0))
        m.status()
        gauges = obs.snapshot()["gauges"]
        assert gauges["quality.ap_mean_shift_db{ap=ap0}"] == pytest.approx(8.0, abs=1.5)
        assert 0.0 <= gauges["quality.ap_ks_distance{ap=ap1}"] <= 1.0

    def test_reset_forgets_live_window(self, registry):
        m = APDriftMonitor(_db2())
        m.observe(_live(np.random.default_rng(7), -30.0, -71.0))
        assert m.drifted_aps() == ["ap0"]
        m.reset()
        assert not any(e["judged"] for e in m.status().values())

    def test_real_training_database_works(self, registry, training_db, house):
        # The duck typing holds against the real thing end-to-end.
        m = APDriftMonitor(training_db, min_samples=20)
        positions = [sp.position for sp in house.training_points()]
        m.observe_many(house.observe_all(positions, rng=9, dwell_s=5.0))
        assert m.drifted_aps() == []


class TestFallbackExhaustionCheck:
    def test_insufficient_traffic_passes(self, registry):
        obs.counter("fallback.exhausted").inc(5)
        ok, detail = fallback_exhaustion_check(min_requests=20)()
        assert ok and "insufficient" in detail["note"]

    def test_healthy_ratio_passes(self, registry):
        obs.counter("fallback.answered", tier="nearest").inc(90)
        obs.counter("fallback.exhausted").inc(10)
        ok, detail = fallback_exhaustion_check(max_ratio=0.25)()
        assert ok and detail["ratio"] == 0.1

    def test_exhaustion_ratio_fails(self, registry):
        obs.counter("fallback.answered", tier="nearest").inc(10)
        obs.counter("fallback.exhausted").inc(15)
        ok, detail = fallback_exhaustion_check(max_ratio=0.25)()
        assert not ok and detail["ratio"] == 0.6

    def test_explicit_registry(self):
        reg = MetricsRegistry()
        reg.counter("fallback.answered", tier="t").inc(5)
        reg.counter("fallback.exhausted").inc(95)
        ok, _ = fallback_exhaustion_check(registry=reg)()
        assert not ok

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            fallback_exhaustion_check(max_ratio=1.5)


class TestConfidenceAndDegradedTelemetry:
    """The quality.* emissions wired into the hot paths."""

    def _db(self):
        from repro.core.geometry import Point
        from repro.core.trainingdb import LocationRecord, TrainingDatabase

        B = ["a", "b", "c"]
        rng = np.random.default_rng(10)
        return B, TrainingDatabase(
            B,
            [
                LocationRecord(
                    f"p{i}",
                    Point(10.0 * i, 0.0),
                    rng.normal(-60, 2, (5, 3)).astype(np.float32),
                )
                for i in range(4)
            ],
        )

    def test_confidence_histogram_single_and_batch(self, registry):
        from repro.algorithms.base import Observation
        from repro.algorithms.knn import KNNLocalizer

        B, db = self._db()
        rng = np.random.default_rng(11)
        loc = KNNLocalizer().fit(db)
        o = Observation(rng.normal(-60, 2, (3, 3)), bssids=B)
        loc.locate(o)
        loc.locate_many([o, o])
        h = obs.snapshot()["histograms"]["quality.confidence{algorithm=knn}"]
        assert h["count"] == 3  # 1 single + 2 batched, no double count

    def test_degraded_answers_counted_per_tier(self, registry):
        from repro.algorithms.base import Observation
        from repro.algorithms.fallback import FallbackLocalizer

        B, db = self._db()
        chain = FallbackLocalizer().fit(db)
        samples = np.full((3, 3), np.nan)
        samples[:, 0] = -58.0  # probabilistic declines, nearest answers
        chain.locate(Observation(samples, bssids=B))
        counters = obs.snapshot()["counters"]
        assert counters["quality.degraded_answers{tier=nearest}"] == 1

    def test_quarantine_raises_quality_alert(self, registry):
        from repro.robustness.report import IngestReport

        IngestReport(lenient=True).quarantine("bad.wi-scan", "not utf-8")
        counters = obs.snapshot()["counters"]
        assert counters["quality.alert{kind=ingest_quarantine}"] == 1
