"""Tests for the GP/IDW radio maps and the confusion-analysis module."""

import numpy as np
import pytest

from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.radiomap import GPRadioMap, IDWRadioMap
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase
from repro.experiments.confusion import (
    ConfusionResult,
    discrimination_auc,
    measure_confusion,
)
from repro.experiments.house import ExperimentHouse, HouseConfig

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
APS = {B[i]: p for i, p in enumerate(
    [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]
)}


def rssi_at(p: Point) -> np.ndarray:
    d = np.array([max(p.distance_to(a), 1.0) for a in APS.values()])
    return -35.0 - 25.0 * np.log10(d)


def grid_db(step=10.0, seed=0, noise=0.5):
    rng = np.random.default_rng(seed)
    records = []
    for y in np.arange(0, 41, step):
        for x in np.arange(0, 51, step):
            p = Point(float(x), float(y))
            records.append(
                LocationRecord(
                    f"g{x:g}-{y:g}", p,
                    rng.normal(rssi_at(p), noise, (10, 4)).astype(np.float32),
                )
            )
    return TrainingDatabase(B, records)


class TestGPRadioMap:
    def test_interpolates_training_points(self):
        db = grid_db()
        gp = GPRadioMap(db, ap_positions=APS, noise_sigma_db=0.3)
        pred = gp.expected_rssi(db.positions())
        true = np.where(np.isfinite(db.mean_matrix()), db.mean_matrix(), -95.0)
        assert np.abs(pred - true).max() < 1.5

    def test_between_points_close_to_physics(self):
        db = grid_db()
        gp = GPRadioMap(db, ap_positions=APS)
        q = np.array([[25.0, 15.0], [12.0, 33.0]])
        pred = gp.expected_rssi(q)
        for i, (x, y) in enumerate(q):
            assert np.abs(pred[i] - rssi_at(Point(x, y))).max() < 4.0

    def test_trend_extrapolates_with_distance_decay(self):
        """Outside the survey hull, the log-distance trend takes over."""
        db = grid_db()
        gp = GPRadioMap(db, ap_positions=APS)
        far = gp.expected_rssi(np.array([[200.0, 200.0]]))[0]
        near = gp.expected_rssi(np.array([[25.0, 20.0]]))[0]
        assert (far < near).all()  # decays away, doesn't plateau at a mean

    def test_posterior_std_grows_off_grid(self):
        db = grid_db()
        gp = GPRadioMap(db, ap_positions=APS)
        on = gp.posterior_std(db.positions()[:1])[0, 0]
        off = gp.posterior_std(np.array([[25.0, 15.0]]))[0, 0]
        far = gp.posterior_std(np.array([[300.0, 300.0]]))[0, 0]
        assert on < off < far
        assert far == pytest.approx(gp.signal_sigma_db, rel=0.05)

    def test_hyperparameter_tuning_improves_lml(self):
        db = grid_db()
        gp = GPRadioMap(db, ap_positions=APS, length_scale_ft=50.0)
        before = gp.log_marginal_likelihood()
        gp.fit_hyperparameters()
        assert gp.log_marginal_likelihood() >= before

    def test_without_ap_positions_constant_trend(self):
        db = grid_db()
        gp = GPRadioMap(db)  # no trend info
        pred = gp.expected_rssi(np.array([[25.0, 20.0]]))
        assert np.isfinite(pred).all()

    def test_validation(self):
        db = grid_db()
        with pytest.raises(ValueError):
            GPRadioMap(TrainingDatabase(B, []))
        with pytest.raises(ValueError):
            GPRadioMap(db, length_scale_ft=0)
        with pytest.raises(ValueError):
            GPRadioMap(db, noise_sigma_db=-1)

    def test_idw_wrapper_matches_rssifield(self):
        from repro.algorithms.tracking.particle import RSSIField

        db = grid_db()
        idw = IDWRadioMap(db, k=4)
        field = RSSIField(db, k=4)
        q = np.array([[25.0, 15.0]])
        assert np.allclose(idw.expected_rssi(q), field.expected_rssi(q))
        assert np.allclose(idw.sigma_db, field.sigma_db)


class TestConfusion:
    @pytest.fixture(scope="class")
    def setup(self):
        house = ExperimentHouse(HouseConfig(dwell_s=10.0))
        db = house.training_database(rng=0)
        localizer = ProbabilisticLocalizer().fit(db)
        confusion = measure_confusion(localizer, house, db, n_trials=4, dwell_s=5.0, rng=1)
        return house, db, confusion

    def test_rows_are_distributions(self, setup):
        _, _, confusion = setup
        sums = confusion.matrix.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)

    def test_accuracy_reasonable(self, setup):
        _, _, confusion = setup
        assert 0.3 < confusion.accuracy() <= 1.0

    def test_confusion_of_named_point(self, setup):
        _, db, confusion = setup
        dist = confusion.confusion_of(db.locations()[0])
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_most_confused_pairs_sorted(self, setup):
        _, _, confusion = setup
        pairs = confusion.most_confused_pairs(top=10)
        probs = [p for _, _, p in pairs]
        assert probs == sorted(probs, reverse=True)
        for a, b, _ in pairs:
            assert a != b

    def test_entropy_nonnegative(self, setup):
        _, _, confusion = setup
        assert confusion.entropy_bits() >= 0.0

    def test_reproducible(self, setup):
        house, db, confusion = setup
        localizer = ProbabilisticLocalizer().fit(db)
        again = measure_confusion(localizer, house, db, n_trials=4, dwell_s=5.0, rng=1)
        assert np.allclose(confusion.matrix, again.matrix)

    def test_trials_validation(self, setup):
        house, db, _ = setup
        localizer = ProbabilisticLocalizer().fit(db)
        with pytest.raises(ValueError):
            measure_confusion(localizer, house, db, n_trials=0)

    def test_discrimination_auc_bounds(self, setup):
        house, db, confusion = setup
        from repro.planning.quality import expected_confusion, fingerprint_separability

        predicted = expected_confusion(
            fingerprint_separability(house.environment, db.positions())
        )
        auc, n = discrimination_auc(confusion, predicted)
        assert 0.0 <= auc <= 1.0
        assert n >= 0

    def test_discrimination_auc_shape_check(self, setup):
        _, _, confusion = setup
        with pytest.raises(ValueError):
            discrimination_auc(confusion, np.zeros((2, 2)))

    def test_perfect_predictor_auc_one(self):
        # Hand-built: confused pairs exactly where prediction is high.
        names = ["a", "b", "c"]
        matrix = np.array([[0.5, 0.5, 0.0], [0.5, 0.5, 0.0], [0.0, 0.0, 1.0]])
        conf = ConfusionResult(locations=names, matrix=matrix, n_trials=2)
        predicted = np.array([[0.0, 0.9, 0.1], [0.9, 0.0, 0.1], [0.1, 0.1, 0.0]])
        auc, n = discrimination_auc(conf, predicted)
        assert auc == 1.0 and n == 2
