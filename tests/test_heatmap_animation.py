"""Tests for heatmap rendering, animated GIFs, and the RTS smoother."""

import numpy as np
import pytest

from repro.core.floorplan import FloorPlan, PixelPoint
from repro.core.heatmap import colorize, render_heatmap
from repro.imaging.gif import GifError, decode_gif, encode_animation, write_animation
from repro.imaging.raster import BLUE, RED, Raster


def annotated_plan(w=120, h=100, fpp=0.5):
    plan = FloorPlan(Raster(w, h))
    plan.set_scale_direct(fpp)
    plan.set_origin(PixelPoint(0, h - 1))
    return plan


class TestColorize:
    def test_shape_and_dtype(self):
        out = colorize(np.random.default_rng(0).random((4, 6)))
        assert out.shape == (4, 6, 3)
        assert out.dtype == np.uint8

    def test_endpoints_hit_ramp_ends(self):
        out = colorize(np.array([[0.0, 1.0]]))
        assert tuple(out[0, 0]) == (38, 70, 160)  # ramp low
        assert tuple(out[0, 1]) == (200, 45, 40)  # ramp high

    def test_nan_is_gray(self):
        out = colorize(np.array([[np.nan, 1.0]]))
        assert tuple(out[0, 0]) == (128, 128, 128)

    def test_constant_field(self):
        out = colorize(np.full((3, 3), 7.0))
        assert (out == out[0, 0]).all()

    def test_explicit_range_clamps(self):
        out = colorize(np.array([[-10.0, 100.0]]), vmin=0.0, vmax=1.0)
        assert tuple(out[0, 0]) == (38, 70, 160)
        assert tuple(out[0, 1]) == (200, 45, 40)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            colorize(np.zeros(5))


class TestRenderHeatmap:
    def grid(self):
        xs = np.arange(0.0, 60.0, 10.0)
        ys = np.arange(0.0, 50.0, 10.0)
        values = np.add.outer(ys, xs)  # simple ramp
        return xs, ys, values

    def test_renders_and_differs_from_plain(self):
        plan = annotated_plan()
        xs, ys, values = self.grid()
        out = render_heatmap(plan, xs, ys, values, title="TEST FIELD")
        assert out.size == plan.image.size
        assert out != plan.image

    def test_alpha_validation(self):
        plan = annotated_plan()
        xs, ys, values = self.grid()
        with pytest.raises(ValueError):
            render_heatmap(plan, xs, ys, values, alpha=0.0)

    def test_shape_validation(self):
        plan = annotated_plan()
        xs, ys, values = self.grid()
        with pytest.raises(ValueError):
            render_heatmap(plan, xs, ys, values.T)

    def test_gradient_visible_in_output(self):
        plan = annotated_plan()
        xs, ys, _ = self.grid()
        hot_left = np.tile(np.linspace(100.0, 0.0, len(xs)), (len(ys), 1))
        out = render_heatmap(plan, xs, ys, hot_left, alpha=1.0, show_access_points=False)
        left = out.pixels[40, 5].astype(int)
        right = out.pixels[40, 110].astype(int)
        assert left[0] > right[0]  # red (hot) on the left
        assert right[2] > left[2]  # blue (cold) on the right


class TestAnimation:
    def frames(self, n=3, w=30, h=20):
        out = []
        for i in range(n):
            r = Raster(w, h)
            r.fill_circle(5 + i * 8, 10, 4, RED)
            out.append(r)
        return out

    def test_roundtrip_all_frames(self):
        frames = self.frames(4)
        img = decode_gif(encode_animation(frames, delay_cs=5))
        assert len(img.frames) == 4
        for i, f in enumerate(img.frames):
            assert np.array_equal(f.to_rgb(), frames[i].pixels)

    def test_netscape_loop_block_present(self):
        blob = encode_animation(self.frames(2), loop=True)
        assert b"NETSCAPE2.0" in blob
        assert b"NETSCAPE2.0" not in encode_animation(self.frames(2), loop=False)

    def test_empty_rejected(self):
        with pytest.raises(GifError):
            encode_animation([])

    def test_size_mismatch_rejected(self):
        with pytest.raises(GifError):
            encode_animation([Raster(10, 10), Raster(11, 10)])

    def test_negative_delay_rejected(self):
        with pytest.raises(GifError):
            encode_animation(self.frames(1), delay_cs=-1)

    def test_file_write(self, tmp_path):
        path = tmp_path / "anim.gif"
        write_animation(path, self.frames(2))
        assert decode_gif(path.read_bytes()).frames


class TestRTSSmoother:
    def setup_track(self):
        from repro.algorithms.base import Observation
        from repro.algorithms.knn import KNNLocalizer
        from repro.algorithms.tracking import KalmanTracker
        from repro.core.geometry import Point
        from repro.core.trainingdb import LocationRecord, TrainingDatabase

        B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
        aps = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]

        def rssi_at(p):
            d = np.array([max(p.distance_to(a), 1.0) for a in aps])
            return -35.0 - 25.0 * np.log10(d)

        rng = np.random.default_rng(0)
        records = []
        for y in range(0, 41, 10):
            for x in range(0, 51, 10):
                records.append(
                    LocationRecord(
                        f"g{x}-{y}",
                        Point(x, y),
                        rng.normal(rssi_at(Point(x, y)), 1, (10, 4)).astype(np.float32),
                    )
                )
        db = TrainingDatabase(B, records)
        path = [Point(5 + 40 * i / 24, 5 + 30 * i / 24) for i in range(25)]
        obs = [Observation(rng.normal(rssi_at(p), 3, (3, 4))) for p in path]
        tracker = KalmanTracker(KNNLocalizer(k=3).fit(db), measurement_std_ft=8.0)
        return tracker, path, obs

    def test_smoother_beats_filter(self):
        tracker, path, obs = self.setup_track()
        filt = tracker.track(obs)
        smooth = tracker.smooth(obs)
        f_err = np.mean([e.position.distance_to(p) for e, p in zip(filt, path)][3:])
        s_err = np.mean([e.position.distance_to(p) for e, p in zip(smooth, path)][3:])
        assert s_err <= f_err

    def test_smoother_output_aligned(self):
        tracker, path, obs = self.setup_track()
        smooth = tracker.smooth(obs)
        assert len(smooth) == len(obs)
        assert all(e.valid for e in smooth)
        assert all(e.details.get("smoothed") for e in smooth)

    def test_all_silent_track(self):
        from repro.algorithms.base import Observation

        tracker, _, _ = self.setup_track()
        silent = [Observation(np.full((2, 4), np.nan))] * 5
        out = tracker.smooth(silent)
        assert len(out) == 5
        assert not any(e.valid for e in out)

    def test_dt_validation(self):
        tracker, _, obs = self.setup_track()
        with pytest.raises(ValueError):
            tracker.smooth(obs, dt_s=0)
