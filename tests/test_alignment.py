"""Regression tests for BSSID column alignment.

A real scan tool lists APs in *discovery* order, which depends on which
beacon happened to be heard first — so a training database's column
order can differ from an observation's.  Localizers must align by
BSSID whenever the observation carries identities (this was a live bug:
a permuted training database silently doubled every tracker's error).
"""

import numpy as np
import pytest

from repro.algorithms.base import Observation, make_localizer
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase

B = [f"02:00:00:00:00:{i:02x}" for i in range(3)]


_PROFILES = {
    "west": ((-40.0, -70.0, -80.0), (0.0, 0.0)),
    "mid": ((-60.0, -50.0, -60.0), (25.0, 20.0)),
    "east": ((-80.0, -70.0, -40.0), (50.0, 40.0)),
}

_rng = np.random.default_rng(0)
_CANONICAL_SAMPLES = {
    name: _rng.normal(means, 2.0, size=(40, 3)).astype(np.float32)
    for name, (means, _) in _PROFILES.items()
}


def db_with_order(bssids):
    """The same physical survey, with columns stored in ``bssids`` order."""
    canonical = {b: i for i, b in enumerate(B)}
    cols = [canonical[b] for b in bssids]
    records = [
        LocationRecord(name, Point(*pos), _CANONICAL_SAMPLES[name][:, cols])
        for name, (_, pos) in _PROFILES.items()
    ]
    return TrainingDatabase(list(bssids), records)


class TestObservationReordered:
    def test_permutation(self):
        o = Observation(np.array([[-40.0, -50.0, -60.0]]), bssids=B)
        r = o.reordered([B[2], B[0], B[1]])
        assert r.samples[0].tolist() == [-60.0, -40.0, -50.0]
        assert list(r.bssids) == [B[2], B[0], B[1]]

    def test_missing_target_becomes_nan(self):
        o = Observation(np.array([[-40.0, -50.0, -60.0]]), bssids=B)
        r = o.reordered([B[0], "ff:ff:ff:ff:ff:ff"])
        assert r.samples[0, 0] == -40.0
        assert np.isnan(r.samples[0, 1])

    def test_extra_columns_dropped(self):
        o = Observation(np.array([[-40.0, -50.0, -60.0]]), bssids=B)
        r = o.reordered([B[1]])
        assert r.samples.shape == (1, 1)
        assert r.samples[0, 0] == -50.0

    def test_requires_bssids(self):
        with pytest.raises(ValueError, match="no BSSIDs"):
            Observation(np.zeros((1, 2)) - 50).reordered(B[:2])


@pytest.mark.parametrize(
    "algorithm,kwargs",
    [
        ("probabilistic", {}),
        ("knn", {}),
        ("histogram", {}),
        ("scene", {}),
        ("sector", {}),
        (
            "geometric",
            {"ap_positions": {B[0]: Point(-5, -5), B[1]: Point(55, -5), B[2]: Point(25, 45)}},
        ),
        (
            "multilateration",
            {"ap_positions": {B[0]: Point(-5, -5), B[1]: Point(55, -5), B[2]: Point(25, 45)}},
        ),
    ],
)
def test_permuted_training_columns_give_same_answer(algorithm, kwargs):
    """Fitting on a column-permuted database must not change locate()."""
    rng = np.random.default_rng(1)
    observation = Observation(
        rng.normal((-40.0, -70.0, -80.0), 1.0, size=(8, 3)), bssids=B
    )
    straight = make_localizer(algorithm, **kwargs).fit(db_with_order(B))
    permuted_order = [B[2], B[0], B[1]]
    permuted = make_localizer(algorithm, **kwargs).fit(db_with_order(permuted_order))

    est_a = straight.locate(observation)
    est_b = permuted.locate(observation)
    assert est_a.valid == est_b.valid
    if est_a.position is not None and est_b.position is not None:
        assert est_a.position.distance_to(est_b.position) < 1e-6
    assert est_a.location_name == est_b.location_name
