"""End-to-end request tracing through the HTTP front door.

Satellite coverage rides along: ``X-Request-Id`` on every reply
(including 4xx/5xx and early-reject paths), admission decisions as
span attributes on one-span traces, and trace continuity across
hot-reload and drain.  Everything binds a localhost socket
(``service`` tier).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core.trainingdb import generate_training_db
from repro.obs.trace import FlightRecorder
from repro.serve import LocalizationHTTPServer, LocalizationService
from repro.serve.client import ServiceClient

pytestmark = pytest.mark.service

TRACE_A = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


@pytest.fixture(autouse=True)
def recorder():
    rec = FlightRecorder()
    previous = obs.set_recorder(rec)
    yield rec
    obs.set_recorder(previous)


@pytest.fixture(scope="module")
def db_path(tmp_path_factory, house):
    path = tmp_path_factory.mktemp("serve-tracing") / "training.tdb"
    generate_training_db(house.survey(rng=0), house.location_map(), output=path)
    return str(path)


@pytest.fixture()
def service(db_path, house):
    cfg = house.config
    return LocalizationService(
        db_path,
        ap_positions=house.ap_positions_by_bssid(),
        bounds=(0.0, 0.0, cfg.width_ft, cfg.height_ft),
    )


def observation_doc(observation, **extra):
    doc = {
        "samples": [
            [None if v != v else v for v in row]
            for row in observation.samples.tolist()
        ],
        "bssids": list(observation.bssids),
    }
    doc.update(extra)
    return doc


def request(url, method="GET", doc=None, headers=None):
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=dict(headers or {}))
    try:
        with urllib.request.urlopen(req, timeout=60) as r:
            return r.status, dict(r.headers), r.read()
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), e.read()


class TestRequestIdEverywhere:
    def test_ok_reply_carries_request_and_trace_ids(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            status, headers, _ = request(
                server.url + "/v1/locate", "POST", observation_doc(observations[0])
            )
        assert status == 200
        assert len(headers["X-Trace-Id"]) == 32
        assert headers["X-Request-Id"] == headers["X-Trace-Id"]

    def test_client_request_id_is_echoed(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            _, headers, _ = request(
                server.url + "/v1/locate", "POST", observation_doc(observations[0]),
                headers={"X-Request-Id": "my-req-42"},
            )
        assert headers["X-Request-Id"] == "my-req-42"

    def test_hostile_request_id_is_reassigned(self, service):
        with LocalizationHTTPServer(service) as server:
            _, headers, _ = request(
                server.url + "/healthz",
                headers={"X-Request-Id": "bad id with spaces " + "x" * 200},
            )
        assert headers["X-Request-Id"] == headers["X-Trace-Id"]

    def test_404_and_400_bodies_carry_request_id(self, service):
        with LocalizationHTTPServer(service) as server:
            s404, h404, b404 = request(server.url + "/nope")
            s400, h400, b400 = request(
                server.url + "/v1/locate", "POST", {"rows": [1]}
            )
        assert s404 == 404
        assert json.loads(b404)["request_id"] == h404["X-Request-Id"]
        assert s400 == 400
        assert json.loads(b400)["request_id"] == h400["X-Request-Id"]

    def test_draining_503_carries_request_id(self, service):
        with LocalizationHTTPServer(service) as server:
            server._draining = True
            status, headers, body = request(
                server.url + "/v1/locate", "POST", {"samples": [], "bssids": []}
            )
        assert status == 503
        assert json.loads(body)["request_id"] == headers["X-Request-Id"]


class TestTraceparentAdoption:
    def test_client_trace_id_is_adopted(self, service, observations):
        with LocalizationHTTPServer(service) as server:
            _, headers, _ = request(
                server.url + "/v1/locate", "POST", observation_doc(observations[0]),
                headers={"traceparent": TRACE_A},
            )
        assert headers["X-Trace-Id"] == "ab" * 16

    def test_malformed_traceparent_mints_fresh(self, service):
        with LocalizationHTTPServer(service) as server:
            _, headers, _ = request(
                server.url + "/healthz", headers={"traceparent": "00-zzz-yyy-01"}
            )
        assert len(headers["X-Trace-Id"]) == 32
        assert headers["X-Trace-Id"] != "zzz"


class TestDebugTraces:
    def test_locate_leaves_a_stitched_trace(self, service, observations, recorder):
        with LocalizationHTTPServer(service) as server:
            request(
                server.url + "/v1/locate", "POST", observation_doc(observations[0]),
                headers={"traceparent": TRACE_A},
            )
            status, headers, body = request(
                server.url + "/debug/traces?trace_id=" + "ab" * 16
            )
        assert status == 200
        doc = json.loads(body)
        assert len(doc["traces"]) == 1
        trace = doc["traces"][0]
        assert trace["endpoint"] == "locate" and trace["status"] == "ok"
        names = [s["name"] for s in trace["spans"]]
        assert "serve.request" in names and "serve.dispatch" in names
        dispatch = next(s for s in trace["spans"] if s["name"] == "serve.dispatch")
        links = dispatch["attrs"]["links"]
        assert any(link["trace_id"] == "ab" * 16 for link in links)
        # every span shares the request's trace id
        assert {s["trace_id"] for s in trace["spans"]} == {"ab" * 16}

    def test_monitoring_scrapes_stay_untraced(self, service, recorder):
        with LocalizationHTTPServer(service) as server:
            request(server.url + "/healthz")
            request(server.url + "/metrics")
            _, _, body = request(server.url + "/debug/traces")
        assert json.loads(body)["traces"] == []

    def test_unknown_trace_id_filters_to_empty(self, service):
        with LocalizationHTTPServer(service) as server:
            _, _, body = request(server.url + "/debug/traces?trace_id=" + "9" * 32)
        assert json.loads(body)["traces"] == []

    def test_index_advertises_debug_traces(self, service):
        with LocalizationHTTPServer(service) as server:
            _, _, body = request(server.url + "/")
        assert "GET /debug/traces" in json.loads(body)["endpoints"]


class TestRejectionTraces:
    def test_bad_request_leaves_one_span_trace_with_decision(self, service, recorder):
        with LocalizationHTTPServer(service) as server:
            status, headers, _ = request(
                server.url + "/v1/locate", "POST", {"rows": [1]}
            )
        assert status == 400
        trace = recorder.get(headers["X-Trace-Id"])
        assert trace is not None and trace["pinned"] is True
        assert trace["status"] == "http_400"
        (span,) = trace["spans"]
        assert span["name"] == "serve.request"
        assert span["attrs"]["decision"] == "bad_observation"
        assert span["attrs"]["http_status"] == 400

    def test_drained_request_leaves_pinned_draining_trace(self, service, recorder):
        with LocalizationHTTPServer(service) as server:
            server._draining = True
            _, headers, _ = request(
                server.url + "/v1/locate", "POST", {"samples": [], "bssids": []}
            )
        trace = recorder.get(headers["X-Trace-Id"])
        assert trace is not None
        assert trace["status"] == "draining" and trace["reason"] == "draining"
        (span,) = trace["spans"]
        assert span["attrs"]["decision"] == "draining"


class _Gate:
    """Holds the service's locate_many open until released."""

    def __init__(self, inner):
        self.inner = inner
        self.entered = threading.Event()
        self.release = threading.Event()
        self.armed = True

    def __call__(self, observations):
        if self.armed:
            self.armed = False
            self.entered.set()
            assert self.release.wait(timeout=30.0)
        return self.inner(observations)


class TestContinuity:
    def test_session_keeps_lineage_across_reload(self, service, observations, recorder):
        """Satellite: one trace lineage across a hot-reload.

        The session records the trace that created it; a step after
        ``/admin/reload`` (which rebinds every live session to the new
        model generation) still stamps that lineage on its
        ``track.step`` span — the operator can follow one device's
        session across a model swap.
        """
        trace_b = "00-" + "ef" * 16 + "-" + "12" * 8 + "-01"
        with LocalizationHTTPServer(service) as server:
            url = server.url + "/v1/track/dev-1"
            status, _, _ = request(
                url, "POST", observation_doc(observations[0]),
                headers={"traceparent": TRACE_A},
            )
            assert status == 200
            status_reload, _, _ = request(server.url + "/admin/reload", "POST", {})
            assert status_reload == 200
            status2, _, body2 = request(
                url, "POST", observation_doc(observations[1]),
                headers={"traceparent": trace_b},
            )
            assert status2 == 200
            assert json.loads(body2)["session"]["seq"] == 2
        trace = recorder.get("ef" * 16)
        step = next(s for s in trace["spans"] if s["name"] == "track.step")
        assert step["attrs"]["session"] == "dev-1"
        assert step["attrs"]["lineage"] == "ab" * 16  # created under trace A

    def test_request_accepted_before_drain_completes_its_trace(
        self, service, observations, recorder
    ):
        """Satellite: drain waits for in-flight work, trace included."""
        gate = _Gate(service.locate_many)
        server = LocalizationHTTPServer(service, max_batch=1, max_wait_ms=0.0)
        server.batcher._dispatch = gate
        with server:
            results = {}

            def post_parked():
                results["parked"] = request(
                    server.url + "/v1/locate", "POST",
                    observation_doc(observations[0]),
                    headers={"traceparent": TRACE_A},
                )

            t = threading.Thread(target=post_parked)
            t.start()
            assert gate.entered.wait(timeout=30.0)  # request is in dispatch
            done = threading.Event()

            def drain():
                server.drain(10.0)
                done.set()

            threading.Thread(target=drain, daemon=True).start()
            gate.release.set()
            assert done.wait(timeout=30.0)
            t.join(timeout=30.0)
        assert results["parked"][0] == 200
        trace = recorder.get("ab" * 16)
        assert trace is not None and trace["status"] == "ok"
        assert "serve.request" in [s["name"] for s in trace["spans"]]


class TestClientJoin:
    def test_client_report_joins_server_trace(self, service, observations, recorder):
        with LocalizationHTTPServer(service) as server:
            with ServiceClient(port=server.port) as client:
                report = client.locate(observation_doc(observations[0]))
        assert report.ok
        assert report.request_id == report.trace_id
        trace = recorder.get(report.trace_id)
        assert trace is not None
        assert trace["request_id"] == report.request_id

    def test_each_logical_call_gets_its_own_trace(self, service, observations, recorder):
        with LocalizationHTTPServer(service) as server:
            with ServiceClient(port=server.port, max_retries=2) as client:
                r1 = client.locate(observation_doc(observations[0]))
                r2 = client.locate(observation_doc(observations[1]))
        assert r1.trace_id != r2.trace_id  # one trace per logical call
        assert recorder.get(r1.trace_id) is not None
        assert recorder.get(r2.trace_id) is not None

    def test_retry_attempts_restamp_fresh_span_ids(self):
        """Every attempt's traceparent: same trace id, new span id."""
        sent = []

        class _Client(ServiceClient):
            def _attempt(self, method, path, body, headers):
                sent.append(headers["traceparent"])
                return 429, {"retry-after": "0"}, {"error": "queue_full"}

        client = _Client(max_retries=2, sleep=lambda s: None)
        report = client.request("POST", "/v1/locate", {"x": 1})
        assert report.category == "rejected_429" and report.attempts == 3
        trace_ids = {h.split("-")[1] for h in sent}
        span_ids = {h.split("-")[2] for h in sent}
        assert len(trace_ids) == 1
        assert len(span_ids) == 3
        assert report.trace_id == trace_ids.pop()
