"""Tests for the GIF codec."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.imaging.gif import (
    GifError,
    GifFrame,
    GifImage,
    _deinterlace,
    _interlace,
    _palette_block_size,
    decode_gif,
    encode_gif,
    read_gif,
    write_gif,
)
from repro.imaging.raster import BLACK, BLUE, RED, WHITE, Raster


def drawing(w=60, h=40):
    r = Raster(w, h)
    r.draw_line(0, 0, w - 1, h - 1, RED, 2)
    r.fill_circle(w // 2, h // 2, min(w, h) // 4, BLUE)
    r.draw_rect(1, 1, w - 2, h - 2, BLACK)
    return r


class TestRoundTrip:
    def test_basic(self):
        r = drawing()
        assert decode_gif(encode_gif(r)).composite() == r

    def test_interlaced(self):
        r = drawing()
        blob = encode_gif(r, interlaced=True)
        img = decode_gif(blob)
        assert img.frames[0].interlaced
        assert img.composite() == r

    def test_comments_roundtrip(self):
        r = drawing(10, 10)
        blob = encode_gif(r, comments=["first", "second with é unicode"])
        img = decode_gif(blob)
        assert img.comments == ["first", "second with é unicode"]

    def test_long_comment_multiblock(self):
        text = "x" * 1000  # forces multiple 255-byte sub-blocks
        img = decode_gif(encode_gif(drawing(8, 8), comments=[text]))
        assert img.comments == [text]

    def test_single_color_image(self):
        r = Raster(5, 7, background=(12, 34, 56))
        assert decode_gif(encode_gif(r)).composite() == r

    def test_file_roundtrip(self, tmp_path):
        r = drawing()
        path = tmp_path / "plan.gif"
        write_gif(path, r, comments=["prov"])
        assert read_gif(path) == r

    def test_256_color_image_lossless(self):
        # Exactly 256 distinct colors: exact palettization must hold.
        arr = np.zeros((16, 16, 3), dtype=np.uint8)
        vals = np.arange(256, dtype=np.uint8).reshape(16, 16)
        arr[..., 0] = vals
        arr[..., 1] = vals[::-1]
        r = Raster.from_array(arr)
        assert decode_gif(encode_gif(r)).composite() == r

    def test_many_colors_quantized_close(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 256, size=(32, 32, 3)).astype(np.uint8)
        r = Raster.from_array(arr)
        out = decode_gif(encode_gif(r)).composite()
        err = np.abs(out.pixels.astype(int) - arr.astype(int)).mean()
        assert err < 24  # quantization, not corruption

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_small_size(self, w, h):
        rng = np.random.default_rng(w * 100 + h)
        arr = rng.integers(0, 4, size=(h, w, 3)).astype(np.uint8) * 80
        r = Raster.from_array(arr)
        assert decode_gif(encode_gif(r)).composite() == r


class TestHeaders:
    def test_signature(self):
        blob = encode_gif(drawing(8, 8))
        assert blob[:6] == b"GIF89a"
        assert blob[-1:] == b"\x3b"

    def test_dimensions_in_screen_descriptor(self):
        blob = encode_gif(drawing(33, 21))
        w, h = struct.unpack("<HH", blob[6:10])
        assert (w, h) == (33, 21)

    def test_rejects_non_gif(self):
        with pytest.raises(GifError):
            decode_gif(b"PNG....not a gif at all.....")

    def test_rejects_truncated(self):
        blob = encode_gif(drawing(8, 8))
        with pytest.raises(GifError):
            decode_gif(blob[: len(blob) // 2])

    def test_rejects_no_frames(self):
        # Header + trailer only.
        blob = b"GIF89a" + struct.pack("<HH", 4, 4) + bytes([0x00, 0, 0]) + b"\x3b"
        with pytest.raises(GifError):
            decode_gif(blob)

    def test_unknown_block_type(self):
        blob = bytearray(encode_gif(drawing(8, 8)))
        blob[-1] = 0x99  # replace trailer with junk block type
        with pytest.raises(GifError):
            decode_gif(bytes(blob))

    def test_gif87a_accepted(self):
        blob = bytearray(encode_gif(drawing(8, 8)))
        blob[:6] = b"GIF87a"
        img = decode_gif(bytes(blob))
        assert img.version == b"GIF87a"


class TestInterlace:
    @pytest.mark.parametrize("height", [1, 2, 3, 4, 7, 8, 9, 16, 37])
    def test_interlace_roundtrip(self, height):
        rows = np.arange(height * 3, dtype=np.uint8).reshape(height, 3)
        assert np.array_equal(_deinterlace(_interlace(rows)), rows)

    def test_interlace_pass_order(self):
        rows = np.arange(8, dtype=np.uint8).reshape(8, 1)
        stored = _interlace(rows).ravel().tolist()
        assert stored == [0, 4, 2, 6, 1, 3, 5, 7]


class TestPaletteBlockSize:
    @pytest.mark.parametrize(
        "n,expected", [(1, 2), (2, 2), (3, 4), (4, 4), (5, 8), (17, 32), (255, 256), (256, 256)]
    )
    def test_power_of_two(self, n, expected):
        size, field = _palette_block_size(n)
        assert size == expected
        assert size == 2 << field

    def test_too_many(self):
        with pytest.raises(GifError):
            _palette_block_size(300)


class TestFrames:
    def test_frame_to_rgb_bounds_check(self):
        frame = GifFrame(
            indices=np.array([[0, 5]], dtype=np.uint8),
            palette=np.zeros((2, 3), dtype=np.uint8),
        )
        with pytest.raises(GifError):
            frame.to_rgb()

    def test_composite_respects_offsets(self):
        palette = np.array([[0, 0, 0], [255, 0, 0]], dtype=np.uint8)
        frame = GifFrame(
            indices=np.ones((2, 2), dtype=np.uint8), palette=palette, left=3, top=1
        )
        img = GifImage(width=6, height=4, frames=[frame])
        out = img.composite()
        assert out.get(3, 1) == (255, 0, 0)
        assert out.get(0, 0) == (255, 255, 255)  # default background

    def test_composite_transparency(self):
        palette = np.array([[0, 0, 0], [255, 0, 0]], dtype=np.uint8)
        base = GifFrame(indices=np.zeros((2, 2), dtype=np.uint8), palette=palette)
        overlay = GifFrame(
            indices=np.array([[1, 0], [0, 1]], dtype=np.uint8),
            palette=palette,
            transparent_index=0,
        )
        img = GifImage(width=2, height=2, frames=[base, overlay])
        out = img.composite()
        assert out.get(0, 0) == (255, 0, 0)
        assert out.get(1, 0) == (0, 0, 0)  # transparent: base shows through

    def test_graphic_control_extension_parsed(self):
        # Hand-build: GCE marking index 0 transparent before the image.
        r = Raster(2, 2, background=(10, 20, 30))
        blob = bytearray(encode_gif(r))
        # Insert a GCE right after the global color table.
        gce = bytes([0x21, 0xF9, 4, 0x01, 0, 0, 0, 0x00])
        # Find the image separator (0x2C) and insert before it.
        pos = blob.index(0x2C, 13)
        patched = bytes(blob[:pos]) + gce + bytes(blob[pos:])
        img = decode_gif(patched)
        assert img.frames[0].transparent_index == 0
