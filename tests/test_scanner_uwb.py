"""Tests for the simulated scanner and UWB ranging."""

import numpy as np
import pytest

from repro.core.geometry import Point
from repro.radio.environment import AccessPoint, RadioEnvironment, Wall
from repro.radio.scanner import ScanReading, ScanSweep, SimulatedScanner
from repro.radio.uwb import RangeMeasurement, UWBAnchor, UWBRangingSimulator


@pytest.fixture(scope="module")
def env():
    aps = [
        AccessPoint("A", Point(0, 0)),
        AccessPoint("B", Point(50, 0)),
        AccessPoint("C", Point(50, 40)),
        AccessPoint("D", Point(0, 40)),
    ]
    return RadioEnvironment(aps, seed=0)


class TestScanReading:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScanReading(-1.0, "02:00:00:00:00:01", "x", 6, -50.0)
        with pytest.raises(ValueError):
            ScanReading(0.0, "02:00:00:00:00:01", "x", 6, 10.0)

    def test_sweep_rssi_of(self):
        r = ScanReading(0.0, "02:00:00:00:00:01", "x", 6, -42.0)
        sweep = ScanSweep(0.0, (r,))
        assert sweep.rssi_of("02:00:00:00:00:01") == -42.0
        assert sweep.rssi_of("ff:ff:ff:ff:ff:ff") is None


class TestSimulatedScanner:
    def test_session_count(self, env):
        sc = SimulatedScanner(env, interval_s=1.0)
        sweeps = sc.scan_session(Point(25, 20), 10.0, rng=0)
        assert len(sweeps) == 10
        assert sweeps[3].timestamp_s == 3.0

    def test_start_time_offsets(self, env):
        sc = SimulatedScanner(env)
        sweeps = sc.scan_session(Point(25, 20), 3.0, rng=0, start_time_s=100.0)
        assert sweeps[0].timestamp_s == 100.0

    def test_readings_have_ap_identity(self, env):
        sc = SimulatedScanner(env)
        sweeps = sc.scan_session(Point(25, 20), 5.0, rng=1)
        bssids = {r.bssid for s in sweeps for r in s.readings}
        assert bssids <= {ap.bssid for ap in env.aps}
        assert len(bssids) >= 3  # most APs audible mid-room

    def test_reproducible(self, env):
        sc = SimulatedScanner(env)
        a = sc.scan_session(Point(10, 10), 5.0, rng=3)
        b = sc.scan_session(Point(10, 10), 5.0, rng=3)
        assert a == b

    def test_interval_validation(self, env):
        with pytest.raises(ValueError):
            SimulatedScanner(env, interval_s=0)
        sc = SimulatedScanner(env)
        with pytest.raises(ValueError):
            sc.scan_session(Point(0, 0), -1.0)

    def test_walk_session(self, env):
        sc = SimulatedScanner(env)
        path = [Point(5, 5), Point(45, 5), Point(45, 35)]
        out = sc.walk_session(path, speed_ft_s=4.0, rng=0)
        assert len(out) >= 15  # ~70 ft at 4 ft/s, 1 Hz
        positions = [p for p, _ in out]
        # Walk starts at the first waypoint and stays in the hull.
        assert positions[0].distance_to(path[0]) < 1e-9
        for p in positions:
            assert 0 <= p.x <= 50 and 0 <= p.y <= 40
        # Timestamps strictly increase.
        times = [s.timestamp_s for _, s in out]
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))

    def test_walk_validation(self, env):
        sc = SimulatedScanner(env)
        with pytest.raises(ValueError):
            sc.walk_session([Point(0, 0)], rng=0)
        with pytest.raises(ValueError):
            sc.walk_session([Point(0, 0), Point(1, 1)], speed_ft_s=0)


class TestUWB:
    def anchors(self):
        return [
            UWBAnchor("A", Point(0, 0)),
            UWBAnchor("B", Point(50, 0)),
            UWBAnchor("C", Point(50, 40)),
            UWBAnchor("D", Point(0, 40)),
        ]

    def test_los_ranging_accurate(self):
        sim = UWBRangingSimulator(self.anchors(), jitter_ns=0.3)
        true = Point(20, 15)
        ms = sim.range_averaged(true, rounds=20, rng=0)
        assert len(ms) == 4
        for m in ms:
            anchor = next(a for a in self.anchors() if a.name == m.anchor)
            err = abs(m.distance_ft - anchor.position.distance_to(true))
            assert err < 0.5  # sub-foot: the whole point of UWB
            assert m.line_of_sight

    def test_nlos_bias_positive(self):
        wall = [Wall.of(25, -5, 25, 45, "concrete")]
        sim = UWBRangingSimulator(
            self.anchors(), walls=wall, jitter_ns=0.0, nlos_excess_ns_per_wall=3.0, outage_per_wall=0.0
        )
        true = Point(40, 20)
        ms = {m.anchor: m for m in sim.range_averaged(true, rounds=50, rng=1)}
        # A and D are across the wall: biased long, flagged NLOS.
        assert not ms["A"].line_of_sight
        assert ms["A"].distance_ft > Point(0, 0).distance_to(true)
        assert ms["B"].line_of_sight
        assert ms["B"].distance_ft == pytest.approx(Point(50, 0).distance_to(true), abs=0.2)

    def test_outage_drops_anchors(self):
        wall = [Wall.of(25, -5, 25, 45, "concrete")]
        sim = UWBRangingSimulator(self.anchors(), walls=wall, outage_per_wall=1.0 - 1e-9)
        ms = sim.range_once(Point(40, 20), rng=2)
        names = {m.anchor for m in ms}
        assert "A" not in names and "D" not in names

    def test_colocated_with_environment(self):
        aps = [AccessPoint("A", Point(0, 0)), AccessPoint("B", Point(10, 0)), AccessPoint("C", Point(5, 8))]
        env = RadioEnvironment(aps)
        sim = UWBRangingSimulator.colocated_with(env)
        assert [a.name for a in sim.anchors] == ["A", "B", "C"]

    def test_validation(self):
        with pytest.raises(ValueError):
            UWBRangingSimulator([])
        with pytest.raises(ValueError):
            UWBRangingSimulator(self.anchors(), jitter_ns=-1)
        with pytest.raises(ValueError):
            UWBRangingSimulator(self.anchors(), outage_per_wall=1.5)
        with pytest.raises(ValueError):
            RangeMeasurement("A", -1.0, True)
        sim = UWBRangingSimulator(self.anchors())
        with pytest.raises(ValueError):
            sim.range_averaged(Point(0, 0), rounds=0)
