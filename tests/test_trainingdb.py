"""Tests for the Training Database Generator and the .tdb format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point
from repro.core.locationmap import LocationMap
from repro.core.trainingdb import (
    LocationRecord,
    TrainingDatabase,
    TrainingDBError,
    generate_training_db,
)
from repro.wiscan.collection import WiScanCollection
from repro.wiscan.format import WiScanFile, WiScanRecord

B1 = "02:00:5e:00:00:01"
B2 = "02:00:5e:00:00:02"


def record(name="p1", pos=(1.0, 2.0), samples=None):
    if samples is None:
        samples = np.array([[-50.0, -70.0], [-52.0, np.nan], [-48.0, -72.0]], dtype=np.float32)
    return LocationRecord(name, Point(*pos), np.asarray(samples, dtype=np.float32))


def small_db():
    return TrainingDatabase([B1, B2], [record("p1"), record("p2", pos=(10.0, 0.0))])


class TestLocationRecord:
    def test_mean_ignores_nan(self):
        r = record()
        means = r.mean_rssi()
        assert means[0] == pytest.approx(-50.0)
        assert means[1] == pytest.approx(-71.0)

    def test_std_floored(self):
        constant = np.full((5, 1), -40.0, dtype=np.float32)
        r = LocationRecord("x", Point(0, 0), constant)
        assert r.std_rssi(min_std=0.5)[0] == 0.5

    def test_never_heard_is_nan(self):
        r = LocationRecord("x", Point(0, 0), np.full((3, 1), np.nan, dtype=np.float32))
        assert np.isnan(r.mean_rssi()[0])
        assert np.isnan(r.std_rssi()[0])

    def test_detection_rate(self):
        r = record()
        assert r.detection_rate()[0] == 1.0
        assert r.detection_rate()[1] == pytest.approx(2 / 3)

    def test_empty_samples(self):
        r = LocationRecord("x", Point(0, 0), np.zeros((0, 2), dtype=np.float32))
        assert r.detection_rate().tolist() == [0.0, 0.0]

    def test_requires_2d(self):
        with pytest.raises(TrainingDBError):
            LocationRecord("x", Point(0, 0), np.zeros(5, dtype=np.float32))


class TestTrainingDatabase:
    def test_access(self):
        db = small_db()
        assert len(db) == 2
        assert db.locations() == ["p1", "p2"]
        assert "p1" in db
        assert db.record("p1").position == Point(1, 2)
        with pytest.raises(KeyError):
            db.record("zzz")

    def test_duplicate_locations_rejected(self):
        with pytest.raises(TrainingDBError):
            TrainingDatabase([B1, B2], [record("p"), record("p")])

    def test_duplicate_bssids_rejected(self):
        with pytest.raises(TrainingDBError):
            TrainingDatabase([B1, B1], [record()])

    def test_column_mismatch_rejected(self):
        with pytest.raises(TrainingDBError):
            TrainingDatabase([B1], [record()])  # record has 2 columns

    def test_matrices(self):
        db = small_db()
        assert db.mean_matrix().shape == (2, 2)
        assert db.std_matrix().shape == (2, 2)
        assert db.positions().shape == (2, 2)
        assert db.total_samples() == 6

    def test_matrices_memoized(self):
        """Repeated calls return the same cached (read-only) array object.

        The localizers' fit-time precompute leans on this: mean/std/
        position matrices are built once per database, not once per
        localizer, and handing out one shared array is only safe because
        it is frozen.
        """
        db = small_db()
        assert db.mean_matrix() is db.mean_matrix()
        assert db.positions() is db.positions()
        assert db.std_matrix() is db.std_matrix()
        # per-floor memoization: distinct floors are distinct arrays
        assert db.std_matrix(min_std=2.0) is db.std_matrix(min_std=2.0)
        assert db.std_matrix(min_std=2.0) is not db.std_matrix()
        for arr in (db.mean_matrix(), db.positions(), db.std_matrix()):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0, 0] = 0.0

    def test_subset_aps(self):
        db = small_db()
        sub = db.subset_aps([B2])
        assert sub.bssids == [B2]
        assert sub.record("p1").samples.shape == (3, 1)
        assert sub.record("p1").samples[0, 0] == pytest.approx(-70.0)

    def test_bytes_roundtrip(self):
        db = small_db()
        back = TrainingDatabase.from_bytes(db.to_bytes())
        assert back.bssids == db.bssids
        assert back.locations() == db.locations()
        for name in db.locations():
            assert np.array_equal(
                back.record(name).samples, db.record(name).samples, equal_nan=True
            )
            assert back.record(name).position == db.record(name).position

    def test_file_roundtrip(self, tmp_path):
        db = small_db()
        path = tmp_path / "t.tdb"
        size = db.save(path)
        assert path.stat().st_size == size
        loaded = TrainingDatabase.load(path)
        assert loaded.locations() == db.locations()

    def test_rejects_bad_magic(self):
        with pytest.raises(TrainingDBError, match="magic"):
            TrainingDatabase.from_bytes(b"NOPE!!" + b"\x00" * 10)

    def test_rejects_corrupt_body(self):
        blob = small_db().to_bytes()
        corrupted = blob[:8] + bytes([blob[8] ^ 0xFF]) + blob[9:]
        with pytest.raises(TrainingDBError):
            TrainingDatabase.from_bytes(corrupted)

    def test_rejects_truncated(self):
        blob = small_db().to_bytes()
        with pytest.raises(TrainingDBError):
            TrainingDatabase.from_bytes(blob[: len(blob) - 4])

    def test_unicode_names_roundtrip(self):
        db = TrainingDatabase([B1, B2], [record("café-croissant ☕")])
        assert TrainingDatabase.from_bytes(db.to_bytes()).locations() == ["café-croissant ☕"]

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, n_locs, n_samples, n_aps):
        rng = np.random.default_rng(n_locs * 100 + n_samples * 10 + n_aps)
        bssids = [f"02:00:00:00:00:{i:02x}" for i in range(n_aps)]
        records = []
        for i in range(n_locs):
            samples = rng.uniform(-90, -30, size=(n_samples, n_aps)).astype(np.float32)
            mask = rng.random((n_samples, n_aps)) < 0.2
            samples[mask] = np.nan
            records.append(LocationRecord(f"loc{i}", Point(float(i), 0.0), samples))
        db = TrainingDatabase(bssids, records)
        back = TrainingDatabase.from_bytes(db.to_bytes())
        for name in db.locations():
            assert np.array_equal(back.record(name).samples, db.record(name).samples, equal_nan=True)


def make_collection():
    sessions = {}
    for name, pos in (("p1", (0.0, 0.0)), ("p2", (10.0, 0.0))):
        records = [
            WiScanRecord(float(t), b, "s", 6, -50.0 - t - 10 * j)
            for t in range(3)
            for j, b in enumerate([B1, B2])
        ]
        sessions[name] = WiScanFile(location=name, records=records, position=pos)
    return WiScanCollection(sessions)


class TestGenerator:
    def test_generate_from_collection_and_map(self):
        lm = LocationMap({"p1": Point(0, 0), "p2": Point(10, 0)})
        db = generate_training_db(make_collection(), lm)
        assert sorted(db.locations()) == ["p1", "p2"]
        assert db.bssids == [B1, B2]
        assert db.record("p2").position == Point(10, 0)
        assert db.record("p1").samples.shape == (3, 2)

    def test_strict_requires_map_entry(self):
        lm = LocationMap({"p1": Point(0, 0)})
        with pytest.raises(TrainingDBError, match="not in the location map"):
            generate_training_db(make_collection(), lm)

    def test_lenient_falls_back_to_header_position(self):
        lm = LocationMap({"p1": Point(0, 0)})
        db = generate_training_db(make_collection(), lm, strict=False)
        assert db.record("p2").position == Point(10, 0)  # from wi-scan header

    def test_map_position_overrides_header(self):
        lm = LocationMap({"p1": Point(5, 5), "p2": Point(10, 0)})
        db = generate_training_db(make_collection(), lm)
        assert db.record("p1").position == Point(5, 5)

    def test_writes_output_file(self, tmp_path):
        lm = LocationMap({"p1": Point(0, 0), "p2": Point(10, 0)})
        out = tmp_path / "db.tdb"
        generate_training_db(make_collection(), lm, output=out)
        assert TrainingDatabase.load(out).locations()

    def test_from_directory_path(self, tmp_path):
        coll_dir = tmp_path / "survey"
        make_collection().save_directory(coll_dir)
        lm_path = tmp_path / "map.txt"
        LocationMap({"p1": Point(0, 0), "p2": Point(10, 0)}).save(lm_path)
        db = generate_training_db(coll_dir, lm_path)
        assert len(db) == 2

    def test_from_zip_path(self, tmp_path):
        zpath = make_collection().save_zip(tmp_path / "survey.zip")
        lm = LocationMap({"p1": Point(0, 0), "p2": Point(10, 0)})
        db = generate_training_db(zpath, lm)
        assert len(db) == 2

    def test_compression_beats_raw_text(self, tmp_path):
        # The paper's §4.3 claim: the database is smaller than the files.
        coll_dir = tmp_path / "survey"
        coll = make_collection()
        coll.save_directory(coll_dir)
        raw = sum(p.stat().st_size for p in coll_dir.glob("*.wi-scan"))
        out = tmp_path / "db.tdb"
        lm = LocationMap({"p1": Point(0, 0), "p2": Point(10, 0)})
        db = generate_training_db(coll, lm)
        size = db.save(out)
        assert size < raw
