"""Tests for the simulate-survey dataset generator CLI."""

import numpy as np
import pytest

from repro.cli import locate_main, simulate_main
from repro.core.floorplan import FloorPlan
from repro.core.locationmap import LocationMap
from repro.core.trainingdb import TrainingDatabase
from repro.wiscan.collection import WiScanCollection


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("site")
    rc = simulate_main(
        [str(out), "--seed", "3", "--dwell", "10", "--tests", "4", "--zip"]
    )
    assert rc == 0
    return out


class TestSimulateSurvey:
    def test_all_artifacts_present(self, dataset):
        assert (dataset / "plan.gif").is_file()
        assert (dataset / "survey").is_dir()
        assert (dataset / "survey.zip").is_file()
        assert (dataset / "locations.txt").is_file()
        assert (dataset / "training.tdb").is_file()
        assert (dataset / "ground_truth.txt").is_file()
        assert len(list((dataset / "observations").glob("*.wi-scan"))) == 4

    def test_artifacts_are_consistent(self, dataset):
        plan = FloorPlan.load(dataset / "plan.gif")
        assert plan.has_scale and len(plan.access_points) == 4
        lm = LocationMap.load(dataset / "locations.txt")
        db = TrainingDatabase.load(dataset / "training.tdb")
        assert sorted(db.locations()) == sorted(lm.names())
        coll = WiScanCollection.load(dataset / "survey")
        assert sorted(coll.locations()) == sorted(db.locations())
        zcoll = WiScanCollection.load(dataset / "survey.zip")
        assert sorted(zcoll.locations()) == sorted(db.locations())

    def test_locate_works_on_generated_observation(self, dataset, capsys):
        obs = sorted((dataset / "observations").glob("*.wi-scan"))[0]
        rc = locate_main([str(dataset / "training.tdb"), str(obs)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "estimated position" in out

    def test_ground_truth_parses_and_matches(self, dataset):
        lines = [
            l.split("\t")
            for l in (dataset / "ground_truth.txt").read_text().splitlines()
            if not l.startswith("#")
        ]
        assert len(lines) == 4
        for fname, x, y in lines:
            assert (dataset / fname).is_file()
            assert 0 <= float(x) <= 50 and 0 <= float(y) <= 40

    def test_reproducible_given_seed(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        simulate_main([str(a), "--seed", "7", "--dwell", "5", "--tests", "2"])
        simulate_main([str(b), "--seed", "7", "--dwell", "5", "--tests", "2"])
        assert (a / "training.tdb").read_bytes() == (b / "training.tdb").read_bytes()
        assert (a / "ground_truth.txt").read_text() == (b / "ground_truth.txt").read_text()

    def test_custom_geometry(self, tmp_path):
        out = tmp_path / "big"
        rc = simulate_main(
            [str(out), "--width", "80", "--height", "60", "--grid-step", "20",
             "--aps", "6", "--dwell", "5", "--tests", "2"]
        )
        assert rc == 0
        db = TrainingDatabase.load(out / "training.tdb")
        assert len(db.bssids) == 6
        assert len(db) == 5 * 4  # 80/20+1 x 60/20+1

    def test_invalid_config_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            simulate_main([str(tmp_path / "x"), "--aps", "1"])
