"""Multi-process serving: fleet metrics, control fan-out, supervision.

The unit half exercises the rundir protocols in-process (no sockets,
tier1): :class:`FleetMetrics` merges must be exactly the sum of the
per-worker dumps even after a JSON round-trip, :class:`ControlChannel`
must deliver each admin command to every sibling exactly once while the
originator skips its own broadcast, and :class:`WorkerSpec` must
survive pickling (it crosses the fork/spawn boundary).

The ``service`` half boots a real two-worker fleet through the CLI in a
subprocess and checks the acceptance contract end to end: the banner,
per-worker readiness files, ``/metrics.json`` totals equal to the sum
of the per-worker dumps, crash-restart by the supervisor, and a clean
``drain complete: unfinished=0`` exit on SIGTERM.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import zlib

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import FlightRecorder, TraceContext
from repro.serve import LocalizationHTTPServer, LocalizationService
from repro.serve.workers import (
    ControlChannel,
    FleetMetrics,
    FleetTraces,
    Supervisor,
    WorkerSpec,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


# ----------------------------------------------------------------------
# FleetMetrics: the merge is exactly a sum
# ----------------------------------------------------------------------
def test_fleet_metrics_merge_is_exact_sum(tmp_path):
    # This process plays worker 0; worker 1's dump arrives the way it
    # does in production — a registry state through a JSON file.
    obs.counter("x.requests", code="200").inc(3)
    for v in (1.0, 2.0, 4.0):
        obs.histogram("x.lat").observe(v)
    sibling = MetricsRegistry()
    sibling.counter("x.requests", code="200").inc(4)
    sibling.counter("x.requests", code="429").inc(2)
    for v in (8.0, 16.0):
        sibling.histogram("x.lat").observe(v)
    (tmp_path / "metrics-1.json").write_text(json.dumps(sibling.dump_state()))

    snap = FleetMetrics(tmp_path, 0).merged_snapshot()
    assert snap["counters"]["x.requests{code=200}"] == 7
    assert snap["counters"]["x.requests{code=429}"] == 2
    hist = snap["histograms"]["x.lat"]
    assert hist["count"] == 5
    assert hist["sum"] == pytest.approx(31.0)
    assert hist["min"] == 1.0 and hist["max"] == 16.0


def test_fleet_metrics_histogram_merge_matches_single_stream(tmp_path):
    # Bucket-exact through the stringified-key JSON round-trip: merging
    # two worker dumps answers what one histogram fed both streams does.
    a, b, both = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for i, v in enumerate([0.5, 1.0, 3.0, 9.0, 27.0, 81.0, 0.0, -1.0]):
        (a if i % 2 else b).histogram("h").observe(v)
        both.histogram("h").observe(v)
    for index, reg in enumerate((a, b)):
        (tmp_path / f"metrics-{index}.json").write_text(
            json.dumps(reg.dump_state())
        )
    merged = MetricsRegistry()
    for index in (0, 1):
        merged.merge(json.loads((tmp_path / f"metrics-{index}.json").read_text()))
    assert merged.snapshot()["histograms"]["h"] == both.snapshot()["histograms"]["h"]


def test_fleet_metrics_ignores_torn_or_missing_files(tmp_path):
    obs.counter("x.only").inc()
    (tmp_path / "metrics-1.json").write_text("{ torn wri")
    snap = FleetMetrics(tmp_path, 0).merged_snapshot()
    assert snap["counters"]["x.only"] == 1


def test_fleet_metrics_merged_state_keeps_buckets_and_exemplars(tmp_path):
    obs.histogram("x.lat").observe(3.0, trace_id="a" * 32)
    sibling = MetricsRegistry()
    sibling.histogram("x.lat").observe(3.0, trace_id="b" * 32)
    (tmp_path / "metrics-1.json").write_text(json.dumps(sibling.dump_state()))
    state = FleetMetrics(tmp_path, 0).merged_state()
    ((_, hstate),) = list(state["histograms"].items())
    assert sum(hstate["buckets"].values()) == 2  # dump form, not quantiles
    assert len(hstate["exemplars"]) == 1  # same bucket: one survives


# ----------------------------------------------------------------------
# FleetTraces: any worker answers for a sibling's trace
# ----------------------------------------------------------------------
def test_fleet_traces_merges_sibling_dumps(tmp_path):
    # Worker 1's recorder state arrives the production way: a snapshot
    # through a rundir JSON file.  This process plays worker 0.
    recorder = FlightRecorder()
    previous = obs.set_recorder(recorder)
    try:
        local_ctx = TraceContext.mint()
        recorder.begin(local_ctx, endpoint="locate")
        recorder.record({"name": "serve.request", "trace_id": local_ctx.trace_id})
        recorder.finish(local_ctx.trace_id)

        sibling = FlightRecorder()
        remote_ctx = TraceContext.mint()
        sibling.begin(remote_ctx, endpoint="locate")
        sibling.record({"name": "serve.request", "trace_id": remote_ctx.trace_id})
        sibling.finish(remote_ctx.trace_id, status="http_500")
        (tmp_path / "traces-1.json").write_text(json.dumps(sibling.snapshot()))

        merged = FleetTraces(tmp_path, 0).merged()
        ids = {t["trace_id"] for t in merged["traces"]}
        assert ids == {local_ctx.trace_id, remote_ctx.trace_id}
        assert merged["workers"] == 2
        assert merged["stats"]["finished"] == 2
    finally:
        obs.set_recorder(previous)


def test_fleet_traces_flush_is_noop_without_recorder(tmp_path):
    previous = obs.set_recorder(None)
    try:
        traces = FleetTraces(tmp_path, 0)
        traces.flush()
        assert not traces.path.exists()
        assert traces.merged()["traces"] == []
    finally:
        obs.set_recorder(previous)


# ----------------------------------------------------------------------
# ControlChannel: exactly-once fan-out, originator excluded
# ----------------------------------------------------------------------
def test_control_channel_fanout_once(tmp_path):
    a = ControlChannel(tmp_path, 0)
    b = ControlChannel(tmp_path, 1)
    seq = a.originate({"cmd": "drain", "deadline_s": 2.0})
    assert seq == 1
    assert a.poll() is None  # the originator already acted locally
    event = b.poll()
    assert event["cmd"] == "drain"
    assert event["origin"] == 0
    assert event["deadline_s"] == 2.0
    assert b.poll() is None  # exactly once

    assert b.originate({"cmd": "reload", "database": None}) == 2
    event = a.poll()
    assert event["cmd"] == "reload"
    assert "database" not in event  # None payloads are dropped
    assert a.poll() is None


def test_control_channel_restart_ignores_history(tmp_path):
    a = ControlChannel(tmp_path, 0)
    a.originate({"cmd": "drain"})
    # A restarted worker adopts the current seq at construction — it
    # must not replay commands issued before it existed.
    late = ControlChannel(tmp_path, 1)
    assert late.poll() is None
    a.originate({"cmd": "reload"})
    assert late.poll()["cmd"] == "reload"


def test_worker_spec_pickles(house):
    spec = WorkerSpec(
        database="/tmp/m.tdbx",
        ap_positions=house.ap_positions_by_bssid(),
        bounds=(0.0, 0.0, 40.0, 30.0),
        chaos_kwargs={"seed": 7, "latency_ms": 5.0},
    )
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_supervisor_rejects_zero_workers(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        Supervisor(WorkerSpec(database="x"), 0, rundir=str(tmp_path))


# ----------------------------------------------------------------------
# hot reload on the pack path never touches zlib
# ----------------------------------------------------------------------
def observation_doc(observation):
    return {
        "samples": [
            [None if v != v else v for v in row]
            for row in observation.samples.tolist()
        ],
        "bssids": list(observation.bssids),
    }


def request(url, method="GET", doc=None):
    data = None if doc is None else json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=60) as r:
            return r.status, r.read()
    except urllib.error.HTTPError as e:
        return e.code, e.read()


@pytest.mark.service
def test_reload_on_pack_path_never_decompresses(
    tmp_path, training_db, house, observations, monkeypatch
):
    """The PR 6 hot-reload regression, fixed by pack swap.

    Reloading a ``.tdb`` re-runs ``zlib.decompress`` over the whole
    body while requests wait; a ``.tdbx`` reload is an mmap + atomic
    swap.  Serve traffic *during* the reload and count decompress
    calls: the serving path must never reach zlib.
    """
    pack = tmp_path / "m.tdbx"
    training_db.freeze(pack, ap_positions=house.ap_positions_by_bssid())
    cfg = house.config
    service = LocalizationService(
        str(pack),
        ap_positions=house.ap_positions_by_bssid(),
        bounds=(0.0, 0.0, cfg.width_ft, cfg.height_ft),
    )
    assert service.describe()["frozen"] is True

    calls = []
    real = zlib.decompress
    monkeypatch.setattr(
        zlib, "decompress", lambda *a, **kw: (calls.append(1), real(*a, **kw))[1]
    )
    doc = observation_doc(observations[0])
    codes = []
    stop = threading.Event()

    with LocalizationHTTPServer(service) as server:
        def hammer():
            while not stop.is_set():
                status, _ = request(server.url + "/v1/locate", "POST", doc)
                codes.append(status)

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        try:
            for _ in range(3):
                status, body = request(server.url + "/admin/reload", "POST", {})
                assert status == 200, body
        finally:
            stop.set()
            thread.join(timeout=30)

    assert codes and set(codes) == {200}
    assert not calls, "reload on the frozen-pack path must not hit zlib"
    assert service.describe()["generation"] >= 3


# ----------------------------------------------------------------------
# the real fleet: two workers through the CLI
# ----------------------------------------------------------------------
_LAUNCHER = [
    sys.executable,
    "-c",
    "import sys; from repro.cli import repro_main; sys.exit(repro_main(sys.argv[1:]))",
]


class _Fleet:
    def __init__(self, proc, url, rundir, banner):
        self.proc = proc
        self.url = url
        self.rundir = rundir
        self.banner = banner
        self.output = None  # filled by the drain test / teardown

    def finish(self, timeout=90):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        tail, _ = self.proc.communicate(timeout=timeout)
        self.output = "\n".join(self.banner) + "\n" + tail
        return self.output


@pytest.fixture(scope="module")
def fleet(tmp_path_factory, site_fleet):
    root = tmp_path_factory.mktemp("fleet")
    # The shared site fleet's frozen pack: the same mmap-shareable
    # .tdbx every suite uses, rather than freezing another copy here.
    pack = site_fleet.packs["site-b"]
    rundir = root / "run"
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        _LAUNCHER
        + [
            "serve",
            str(pack),
            "--port",
            "0",
            "--workers",
            "2",
            "--rundir",
            str(rundir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner, url = [], None
    try:
        for line in proc.stdout:
            banner.append(line.rstrip("\n"))
            if line.startswith("serving "):
                url = line.split()[1]
            if "Ctrl-C to stop" in line:
                break
        assert url, f"no serving banner in: {banner}"
    except BaseException:
        proc.kill()
        proc.communicate(timeout=10)
        raise
    handle = _Fleet(proc, url, rundir, banner)
    yield handle
    if handle.proc.poll() is None:
        handle.finish()


@pytest.mark.service
class TestFleet:
    # NOTE: these tests share one fleet and run top to bottom; the last
    # one consumes it (SIGTERM + exit-code assertions).

    def test_banner_and_ready_files(self, fleet):
        banner = "\n".join(fleet.banner)
        assert "workers: 2" in banner
        assert "model: fallback" in banner
        infos = [
            json.loads((fleet.rundir / f"worker-{i}.json").read_text())
            for i in (0, 1)
        ]
        port = int(fleet.url.rsplit(":", 1)[1])
        assert {info["port"] for info in infos} == {port}
        assert infos[0]["pid"] != infos[1]["pid"]
        assert all(info["model"]["frozen"] for info in infos)
        status, body = request(fleet.url + "/")
        assert status == 200
        assert json.loads(body)["model"]["frozen"] is True

    def test_metrics_totals_equal_sum_of_worker_dumps(self, fleet, observations):
        doc = observation_doc(observations[0])
        for _ in range(8):
            status, body = request(fleet.url + "/v1/locate", "POST", doc)
            assert status == 200, body
        time.sleep(2.2)  # > flush_interval_s: both workers have flushed

        series = "serve.http_requests{code=200,endpoint=locate}"
        per_worker = []
        for path in sorted(fleet.rundir.glob("metrics-*.json")):
            state = json.loads(path.read_text())
            per_worker.append(int(state["counters"].get(series, 0)))
        assert sum(per_worker) == 8

        status, body = request(fleet.url + "/metrics.json")
        assert status == 200
        counters = json.loads(body)["counters"]
        fleet_total = sum(
            c["value"] for c in counters if c["series"] == series
        )
        assert fleet_total == sum(per_worker)

    def test_debug_traces_stitches_across_workers(self, fleet, observations):
        """The acceptance check: a trace is retrievable from any worker.

        The kernel load-balances each connection, so the worker that
        served the traced request and the worker answering the
        ``/debug/traces`` read are often different processes — the
        rundir merge is what joins them.
        """
        doc = observation_doc(observations[0])
        trace_id = "ab" * 16
        req = urllib.request.Request(
            fleet.url + "/v1/locate",
            data=json.dumps(doc).encode("utf-8"),
            method="POST",
            headers={"traceparent": f"00-{trace_id}-{'cd' * 8}-01"},
        )
        with urllib.request.urlopen(req, timeout=60) as r:
            assert r.status == 200
            assert r.headers["X-Trace-Id"] == trace_id
        time.sleep(2.2)  # > flush_interval_s: the serving worker flushed
        # Ask repeatedly so both workers answer at least once each way.
        for _ in range(6):
            status, body = request(
                fleet.url + f"/debug/traces?trace_id={trace_id}"
            )
            assert status == 200
            traces = json.loads(body)["traces"]
            assert len(traces) == 1, body
            names = [s["name"] for s in traces[0]["spans"]]
            assert "serve.request" in names and "serve.dispatch" in names

    def test_supervisor_restarts_killed_worker(self, fleet, observations):
        info = json.loads((fleet.rundir / "worker-0.json").read_text())
        os.kill(info["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            fresh = json.loads((fleet.rundir / "worker-0.json").read_text())
            if fresh["pid"] != info["pid"]:
                break
            time.sleep(0.1)
        else:
            pytest.fail("worker 0 was not restarted within 30s")
        assert fresh["port"] == info["port"]  # SO_REUSEPORT rebind, same port
        doc = observation_doc(observations[0])
        for _ in range(4):
            status, body = request(fleet.url + "/v1/locate", "POST", doc)
            assert status == 200, body

    def test_sigterm_drains_cleanly(self, fleet):
        output = fleet.finish()
        assert fleet.proc.returncode == 0, output
        assert "drain complete: unfinished=0" in output
        assert "restarting" in output  # the SIGKILL from the prior test
        for i in (0, 1):
            report = json.loads((fleet.rundir / f"drain-{i}.json").read_text())
            assert report["unfinished"] == 0
