"""Lenient ingestion: recovery, quarantine, and the IngestReport.

The tentpole contract (ISSUE 1): a survey with corrupt files ingests in
lenient mode with a report listing every quarantined source, while
strict mode still raises ``WiScanFormatError`` — regression-tested both
ways — plus the satellite fixes (UTF-8 wrapping, merge-conflict
recording).
"""

import zipfile

import pytest

from repro.robustness import (
    IngestReport,
    MagicCorruption,
    RecordCorruption,
    write_corrupted_survey,
)
from repro.wiscan.collection import WiScanCollection
from repro.wiscan.format import WiScanFormatError, parse_wiscan

GOOD = (
    "# wi-scan v1\n"
    "# location: kitchen\n"
    "# position: 35 12.5\n"
    "0.000\t02:00:00:00:00:01\tnet\t6\t-50.0\n"
    "1.000\t02:00:00:00:00:02\tnet\t11\t-60.0\n"
)


def write(path, name, text):
    p = path / name
    p.write_text(text, encoding="utf-8")
    return p


class TestRecoveringParser:
    def test_bad_data_line_skipped_and_reported(self):
        text = GOOD + "not-a-record\n2.000\t02:00:00:00:00:01\tnet\t6\t-52.0\n"
        with pytest.raises(WiScanFormatError):
            parse_wiscan(text)
        report = IngestReport(lenient=True)
        session = parse_wiscan(text, recover=True, report=report)
        assert len(session.records) == 3
        assert len(report.skipped_lines) == 1
        assert report.skipped_lines[0].line_no == 6
        assert "5 tab-separated fields" in report.skipped_lines[0].reason

    def test_bad_record_values_skipped(self):
        text = GOOD + "2.000\tnot-a-mac\tnet\t6\t-52.0\n3.000\t02:00:00:00:00:01\tnet\t999\t-52.0\n"
        report = IngestReport()
        session = parse_wiscan(text, recover=True, report=report)
        assert len(session.records) == 2
        reasons = [s.reason for s in report.skipped_lines]
        assert any("BSSID" in r for r in reasons)
        assert any("channel" in r for r in reasons)

    def test_bad_headers_skipped_in_recover_mode(self):
        text = (
            "# wi-scan v1\n# location: hall\n# position: one two\n"
            "# interval: fast\n0.000\t02:00:00:00:00:01\tnet\t6\t-50.0\n"
        )
        with pytest.raises(WiScanFormatError):
            parse_wiscan(text)
        report = IngestReport()
        session = parse_wiscan(text, recover=True, report=report)
        assert session.position is None and session.interval_s is None
        assert len(report.skipped_lines) == 2

    def test_file_level_damage_still_raises(self):
        # No magic and no location are fatal even when recovering.
        with pytest.raises(WiScanFormatError):
            parse_wiscan("garbage\n", recover=True)
        with pytest.raises(WiScanFormatError):
            parse_wiscan("# wi-scan v1\n0.0\t02:00:00:00:00:01\tx\t6\t-50.0\n", recover=True)


class TestQuarantine:
    def test_corrupt_files_quarantined_with_report(self, tmp_path):
        write(tmp_path, "a.wi-scan", GOOD)
        write(tmp_path, "b.wi-scan", GOOD.replace("kitchen", "hall"))
        bad = write(tmp_path, "c.wi-scan", "\x00GARBAGE\n")

        with pytest.raises(WiScanFormatError):
            WiScanCollection.load(tmp_path)

        coll = WiScanCollection.load(tmp_path, lenient=True)
        assert sorted(coll.locations()) == ["hall", "kitchen"]
        report = coll.ingest_report
        assert report.lenient
        assert report.quarantined_sources() == [str(bad)]
        assert report.files_read == 3
        assert report.records_kept == 4

    def test_twenty_percent_corrupt_survey_acceptance(self, house, tmp_path):
        """The ISSUE 1 acceptance scenario, end to end."""
        survey = house.survey(rng=0)
        corrupted = write_corrupted_survey(
            survey, tmp_path, [MagicCorruption()], fraction=0.2, rng=3
        )
        assert len(corrupted) == -(-len(survey) // 5)  # ceil(20 %)

        with pytest.raises(WiScanFormatError):
            WiScanCollection.load(tmp_path)

        coll = WiScanCollection.load(tmp_path, lenient=True)
        report = coll.ingest_report
        assert len(coll) == len(survey) - len(corrupted)
        assert sorted(report.quarantined_sources()) == sorted(
            str(tmp_path / name) for name in corrupted
        )
        # Every quarantine carries a reason naming the damage.
        assert all(q.reason for q in report.quarantined)

    def test_line_corruption_recovers_without_quarantine(self, house, tmp_path):
        survey = house.survey(rng=0)
        write_corrupted_survey(
            survey, tmp_path, [RecordCorruption(rate=0.3)], fraction=0.5, rng=5
        )
        coll = WiScanCollection.load(tmp_path, lenient=True)
        report = coll.ingest_report
        assert len(coll) == len(survey)  # every file salvaged
        assert not report.quarantined
        assert report.skipped_lines  # but the damage is on the record

    def test_all_corrupt_still_raises(self, tmp_path):
        write(tmp_path, "a.wi-scan", "junk\n")
        write(tmp_path, "b.wi-scan", "more junk\n")
        with pytest.raises(WiScanFormatError, match="quarantined"):
            WiScanCollection.load(tmp_path, lenient=True)

    def test_empty_collection_still_raises(self, tmp_path):
        with pytest.raises(WiScanFormatError, match="no \\*\\.wi-scan files"):
            WiScanCollection.from_directory(tmp_path, lenient=True)


class TestUtf8Contract:
    """Satellite: non-UTF-8 bytes must surface as WiScanFormatError."""

    def test_directory_wraps_decode_error(self, tmp_path):
        bad = tmp_path / "bad.wi-scan"
        bad.write_bytes(b"# wi-scan v1\n# location: x\n\xff\xfe\x80\n")
        with pytest.raises(WiScanFormatError, match="bad.wi-scan.*UTF-8"):
            WiScanCollection.from_directory(tmp_path)
        # lenient: quarantined, not fatal — needs a good file alongside
        (tmp_path / "ok.wi-scan").write_text(GOOD, encoding="utf-8")
        coll = WiScanCollection.from_directory(tmp_path, lenient=True)
        assert coll.ingest_report.quarantined_sources() == [str(bad)]

    def test_zip_wraps_decode_error(self, tmp_path):
        archive = tmp_path / "survey.zip"
        with zipfile.ZipFile(archive, "w") as zf:
            zf.writestr("ok.wi-scan", GOOD)
            zf.writestr("bad.wi-scan", b"# wi-scan v1\n\xff\xfe\x80\n")
        with pytest.raises(WiScanFormatError, match="bad.wi-scan.*UTF-8"):
            WiScanCollection.from_zip(archive)
        coll = WiScanCollection.from_zip(archive, lenient=True)
        assert len(coll) == 1
        assert coll.ingest_report.quarantined_sources() == [f"{archive}!bad.wi-scan"]


class TestMergeConflicts:
    """Satellite: header conflicts keep the first value and are recorded."""

    def two_files(self, tmp_path, second_headers):
        write(
            tmp_path,
            "a.wi-scan",
            "# wi-scan v1\n# location: desk\n# interval: 1\n# tool: alpha\n"
            "0.000\t02:00:00:00:00:01\tnet\t6\t-50.0\n",
        )
        write(
            tmp_path,
            "b.wi-scan",
            "# wi-scan v1\n# location: desk\n" + second_headers +
            "0.000\t02:00:00:00:00:01\tnet\t6\t-55.0\n",
        )

    def test_extra_header_conflict_keeps_first(self, tmp_path):
        self.two_files(tmp_path, "# interval: 1\n# tool: beta\n")
        coll = WiScanCollection.load(tmp_path)
        session = coll.session("desk")
        assert session.extra_headers["tool"] == "alpha"
        report = coll.ingest_report
        assert len(report.conflicts) == 1
        c = report.conflicts[0]
        assert (c.key, c.kept, c.dropped) == ("tool", "alpha", "beta")
        assert c.source.endswith("b.wi-scan")

    def test_interval_conflict_keeps_first_and_records(self, tmp_path):
        self.two_files(tmp_path, "# interval: 2\n# tool: alpha\n")
        coll = WiScanCollection.load(tmp_path)
        assert coll.session("desk").interval_s == 1.0
        assert [c.key for c in coll.ingest_report.conflicts] == ["interval"]

    def test_position_conflict_strict_raises_lenient_records(self, tmp_path):
        write(
            tmp_path,
            "a.wi-scan",
            "# wi-scan v1\n# location: desk\n# position: 1 2\n"
            "0.000\t02:00:00:00:00:01\tnet\t6\t-50.0\n",
        )
        write(
            tmp_path,
            "b.wi-scan",
            "# wi-scan v1\n# location: desk\n# position: 9 9\n"
            "0.000\t02:00:00:00:00:01\tnet\t6\t-55.0\n",
        )
        with pytest.raises(WiScanFormatError, match="conflicting positions"):
            WiScanCollection.load(tmp_path)
        coll = WiScanCollection.load(tmp_path, lenient=True)
        assert coll.session("desk").position == (1.0, 2.0)
        assert [c.key for c in coll.ingest_report.conflicts] == ["position"]

    def test_merge_still_combines_records(self, tmp_path):
        self.two_files(tmp_path, "# interval: 1\n# tool: alpha\n")
        coll = WiScanCollection.load(tmp_path)
        assert len(coll.session("desk").records) == 2
        assert coll.ingest_report.clean


class TestReportSummary:
    def test_summary_mentions_everything(self, tmp_path):
        write(tmp_path, "ok.wi-scan", GOOD + "broken line\n")
        (tmp_path / "bad.wi-scan").write_bytes(b"\xff\xfe")
        coll = WiScanCollection.load(tmp_path, lenient=True)
        text = coll.ingest_report.summary()
        assert "1 file(s) quarantined" in text
        assert "1 line(s) skipped" in text
        assert "bad.wi-scan" in text and "ok.wi-scan" in text
