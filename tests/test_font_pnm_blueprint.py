"""Tests for the bitmap font, netpbm codecs, and blueprint renderer."""

import numpy as np
import pytest

from repro.imaging import font
from repro.imaging.blueprint import (
    BlueprintSpec,
    experiment_house_blueprint,
    render_blueprint,
)
from repro.imaging.pnm import (
    PnmError,
    decode_pnm,
    encode_pgm,
    encode_ppm,
    read_pnm,
    write_ppm,
)
from repro.imaging.raster import BLACK, RED, WHITE, Raster


class TestFont:
    def test_glyph_shape(self):
        bmp = font.glyph_bitmap("A")
        assert bmp.shape == (7, 5)
        assert bmp.dtype == bool
        assert bmp.any()

    def test_lowercase_maps_to_uppercase(self):
        assert np.array_equal(font.glyph_bitmap("a"), font.glyph_bitmap("A"))

    def test_unknown_char_fallback_box(self):
        bmp = font.glyph_bitmap("€")
        assert bmp[0].all() and bmp[-1].all()  # hollow box top/bottom

    def test_glyph_single_char_only(self):
        with pytest.raises(ValueError):
            font.glyph_bitmap("ab")

    def test_measure_text(self):
        assert font.measure_text("") == (0, 7)
        assert font.measure_text("A") == (5, 7)
        assert font.measure_text("AB") == (11, 7)
        assert font.measure_text("AB", scale=2) == (22, 14)

    def test_draw_text_marks_pixels(self):
        r = Raster(60, 12)
        w, h = font.draw_text(r, 2, 2, "HELLO", BLACK)
        assert (w, h) == font.measure_text("HELLO")
        assert r.count_color(BLACK) > 20

    def test_draw_text_scale(self):
        r1, r2 = Raster(30, 12), Raster(60, 24)
        font.draw_text(r1, 0, 0, "AB", BLACK)
        font.draw_text(r2, 0, 0, "AB", BLACK, scale=2)
        assert r2.count_color(BLACK) == 4 * r1.count_color(BLACK)

    def test_draw_text_background(self):
        r = Raster(40, 12, background=RED)
        font.draw_text(r, 4, 2, "HI", BLACK, background=WHITE)
        assert r.count_color(WHITE) > 0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            font.draw_text(Raster(10, 10), 0, 0, "A", BLACK, scale=0)

    def test_distinct_glyphs(self):
        # Each printable glyph must be distinguishable from the others.
        import string

        glyphs = {}
        for ch in string.ascii_uppercase + string.digits:
            glyphs[ch] = font.glyph_bitmap(ch).tobytes()
        assert len(set(glyphs.values())) == len(glyphs)


class TestPnm:
    def test_ppm_binary_roundtrip(self, tmp_path):
        r = Raster(7, 5, background=(1, 2, 3))
        r.set(0, 0, RED)
        path = tmp_path / "x.ppm"
        write_ppm(path, r)
        assert read_pnm(path) == r

    def test_ppm_ascii_roundtrip(self):
        r = Raster(4, 3, background=(9, 8, 7))
        assert decode_pnm(encode_ppm(r, binary=False)) == r

    def test_pgm_binary_and_ascii(self):
        gray = np.arange(12, dtype=np.uint8).reshape(3, 4) * 20
        for binary in (True, False):
            out = decode_pnm(encode_pgm(gray, binary=binary))
            assert np.array_equal(out.pixels[..., 0], gray)
            assert np.array_equal(out.pixels[..., 1], gray)

    def test_comment_in_header(self):
        r = Raster(2, 2, background=(5, 5, 5))
        blob = encode_ppm(r, binary=False)
        patched = blob.replace(b"P3\n", b"P3\n# a comment line\n")
        assert decode_pnm(patched) == r

    def test_maxval_scaling(self):
        blob = b"P2\n2 1\n15\n0 15\n"
        out = decode_pnm(blob)
        assert out.get(0, 0) == (0, 0, 0)
        assert out.get(1, 0) == (255, 255, 255)

    def test_rejects_bad_magic(self):
        with pytest.raises(PnmError):
            decode_pnm(b"P9\n1 1\n255\n\x00")

    def test_rejects_truncated_binary(self):
        with pytest.raises(PnmError):
            decode_pnm(b"P5\n4 4\n255\n\x00\x00")

    def test_rejects_value_over_maxval(self):
        with pytest.raises(PnmError):
            decode_pnm(b"P2\n1 1\n10\n99\n")

    def test_rejects_big_maxval(self):
        with pytest.raises(PnmError):
            decode_pnm(b"P5\n1 1\n65535\n\x00\x00")

    def test_pgm_requires_2d(self):
        with pytest.raises(PnmError):
            encode_pgm(np.zeros((2, 2, 3), dtype=np.uint8))


class TestBlueprint:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BlueprintSpec(width_ft=0, height_ft=10)
        with pytest.raises(ValueError):
            BlueprintSpec(width_ft=10, height_ft=10, pixels_per_foot=0)

    def test_to_pixel_y_flip(self):
        spec = BlueprintSpec(width_ft=10, height_ft=10, pixels_per_foot=10, margin_px=0)
        # Floor origin (0,0) is the bottom-left: pixel y = height.
        assert spec.to_pixel(0, 0) == (0, 100)
        assert spec.to_pixel(0, 10) == (0, 0)
        assert spec.to_pixel(10, 0) == (100, 100)

    def test_render_deterministic_given_seed(self):
        a = render_blueprint(BlueprintSpec(20, 20), scan_noise=0.3, rng=5)
        b = render_blueprint(BlueprintSpec(20, 20), scan_noise=0.3, rng=5)
        assert a == b

    def test_scan_noise_changes_image(self):
        clean = render_blueprint(BlueprintSpec(20, 20), scan_noise=0.0)
        noisy = render_blueprint(BlueprintSpec(20, 20), scan_noise=0.5, rng=1)
        assert clean != noisy

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            render_blueprint(BlueprintSpec(10, 10), scan_noise=1.5)

    def test_walls_and_labels_drawn(self):
        spec = BlueprintSpec(
            width_ft=20,
            height_ft=20,
            interior_walls=[(10, 0, 10, 20)],
            labels=[(5, 5, "ROOM")],
        )
        img = render_blueprint(spec)
        blank = render_blueprint(BlueprintSpec(width_ft=20, height_ft=20))
        assert img != blank

    def test_experiment_house_blueprint(self):
        bp = experiment_house_blueprint(pixels_per_foot=4.0, scan_noise=0.0)
        # 50x40 ft at 4 px/ft plus margins.
        assert bp.width == 50 * 4 + 80
        assert bp.height == 40 * 4 + 80 + 24
        # Ink must be present (walls drawn).
        assert bp.count_color((40, 40, 48)) > 100
