"""Statistical-fidelity tests of the radio simulator.

The substitution argument in DESIGN.md §2 rests on the simulator
producing the *statistical structure* the paper's algorithms exploit.
These tests verify that structure quantitatively: the generative model
parameters must be recoverable from the simulator's own output, the way
a measurement campaign would recover them from a real site.
"""

import numpy as np
import pytest

from repro.algorithms.regression import fit_log_distance
from repro.core.geometry import Point
from repro.radio.environment import AccessPoint, RadioEnvironment
from repro.radio.fading import TemporalFading
from repro.radio.pathloss import LogDistanceModel


class TestPathLossRecovery:
    def test_exponent_recoverable_from_clean_channel(self):
        """Fitting simulated RSSI vs distance must recover the exponent."""
        env = RadioEnvironment(
            [AccessPoint("A", Point(0, 0))],
            pathloss=LogDistanceModel(exponent=3.2),
            shadowing_sigma_db=0.0,
        )
        rng = np.random.default_rng(0)
        d = rng.uniform(5, 150, 400)
        angles = rng.uniform(0, 2 * np.pi, 400)
        positions = np.column_stack([d * np.cos(angles), d * np.sin(angles)])
        rssi = env.mean_rssi(positions)[:, 0]
        fit = fit_log_distance(np.hypot(positions[:, 0], positions[:, 1]), rssi)
        assert fit.exponent == pytest.approx(3.2, abs=0.02)
        assert fit.r_squared > 0.999

    def test_exponent_recoverable_through_shadowing(self):
        """With σ=6 dB shadowing the fit is noisy but unbiased."""
        exponents = []
        for seed in range(8):
            env = RadioEnvironment(
                [AccessPoint("A", Point(0, 0))],
                pathloss=LogDistanceModel(exponent=3.0),
                shadowing_sigma_db=6.0,
                seed=seed,
            )
            rng = np.random.default_rng(seed)
            d = rng.uniform(5, 200, 500)
            angles = rng.uniform(0, 2 * np.pi, 500)
            positions = np.column_stack([d * np.cos(angles), d * np.sin(angles)])
            rssi = env.mean_rssi(positions)[:, 0]
            exponents.append(fit_log_distance(np.hypot(*positions.T), rssi).exponent)
        assert np.mean(exponents) == pytest.approx(3.0, abs=0.15)


class TestTemporalStructure:
    def test_ar1_time_constant_recoverable(self):
        """lag-1 autocorrelation must match exp(−Δt/τ)."""
        tau = 8.0
        f = TemporalFading(sigma_db=3.0, timescale_s=tau, noise_db=0.0, quantize_db=0.0)
        x = f.sample_series(0.0, 60_000, 1.0, rng=0)
        r1 = float(np.corrcoef(x[:-1], x[1:])[0, 1])
        tau_hat = -1.0 / np.log(r1)
        assert tau_hat == pytest.approx(tau, rel=0.15)

    def test_faster_sampling_higher_correlation(self):
        f = TemporalFading(sigma_db=3.0, timescale_s=5.0, noise_db=0.0, quantize_db=0.0)
        x_fast = f.sample_series(0.0, 30_000, 0.5, rng=1)
        x_slow = f.sample_series(0.0, 30_000, 4.0, rng=1)
        r_fast = np.corrcoef(x_fast[:-1], x_fast[1:])[0, 1]
        r_slow = np.corrcoef(x_slow[:-1], x_slow[1:])[0, 1]
        assert r_fast > r_slow

    def test_marginal_std_matches_components(self):
        f = TemporalFading(sigma_db=3.0, timescale_s=5.0, noise_db=2.0, quantize_db=0.0)
        x = f.sample_series(0.0, 60_000, 1.0, rng=2)
        assert x.std() == pytest.approx(np.hypot(3.0, 2.0), rel=0.1)


class TestObservableRates:
    def four_ap_env(self, **kw):
        return RadioEnvironment(
            [
                AccessPoint("A", Point(0, 0)),
                AccessPoint("B", Point(50, 0)),
                AccessPoint("C", Point(50, 40)),
                AccessPoint("D", Point(0, 40)),
            ],
            **kw,
        )

    def test_miss_rate_matches_configuration(self):
        env = self.four_ap_env(
            miss_probability=0.1,
            shadowing_sigma_db=0.0,
            detection_threshold_dbm=-120.0,  # nothing drops below it here
        )
        s = env.sample_rssi(Point(25, 20), 4000, rng=0)
        assert np.isnan(s).mean() == pytest.approx(0.1, abs=0.02)

    def test_quantization_grid(self):
        env = self.four_ap_env(miss_probability=0.0)
        s = env.sample_rssi(Point(25, 20), 200, rng=1)
        finite = s[np.isfinite(s)]
        assert np.allclose(finite, np.round(finite))

    def test_long_average_converges_to_frozen_mean(self):
        """The training-survey premise: dwell averaging recovers the mean."""
        env = self.four_ap_env(miss_probability=0.0)
        p = Point(17.0, 23.0)
        target = env.mean_rssi(np.array([[p.x, p.y]]))[0]
        s = env.sample_rssi(p, 5000, rng=2)
        est = np.nanmean(s, axis=0)
        # Quantization adds ≤0.5 dB bias; AR(1) slows convergence.
        assert np.abs(est - target).max() < 0.6

    def test_shadowing_repeatable_across_visits(self):
        """Re-surveying the same point reproduces the same frozen bias."""
        env = self.four_ap_env(miss_probability=0.0)
        p = Point(31.0, 12.0)
        visit1 = np.nanmean(env.sample_rssi(p, 2000, rng=10), axis=0)
        visit2 = np.nanmean(env.sample_rssi(p, 2000, rng=99), axis=0)
        # AR(1) correlation shrinks the effective sample size to
        # ~n/(2τ) ≈ 167, so the visit-mean SE is ~0.3 dB per AP.
        assert np.abs(visit1 - visit2).max() < 1.0

    def test_fingerprint_information_exists(self):
        """Distinct spots must differ by more than the temporal noise —
        the necessary condition for fingerprinting to work at all."""
        env = self.four_ap_env()
        grid = np.array([[x, y] for x in range(0, 51, 10) for y in range(0, 41, 10)])
        fps = env.mean_rssi(grid)
        diffs = np.sqrt(((fps[:, None, :] - fps[None, :, :]) ** 2).sum(axis=2))
        off_diag = diffs[~np.eye(len(grid), dtype=bool)]
        assert np.median(off_diag) > 2.0 * env.fading.stationary_std()
