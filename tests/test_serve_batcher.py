"""The micro-batcher: exactly-once, in-order, deadline and admission laws.

All synchronization in here is event- or future-based; the wait-timeout
behaviours run on :class:`ManualClock` so nothing in this module ever
really sleeps — a batch window of ten *seconds* tests in microseconds.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.serve.batcher import DeadlineExceededError, MicroBatcher, QueueFullError
from repro.serve.clock import ManualClock


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(obs.MetricsRegistry())
    yield
    obs.set_registry(previous)


def echo_dispatch(items):
    # Fresh result object per request: aliasing between answers would be
    # visible as shared ids downstream.
    return [{"answer": item} for item in items]


class _GatedDispatch:
    """Dispatch that parks inside the kernel until the test releases it.

    The deterministic way to hold the dispatcher busy (or a batch open)
    without sleeping: the test waits on ``entered``, the dispatcher
    waits on ``release``.
    """

    def __init__(self, gate_first_only: bool = True):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = []
        self._gated = [gate_first_only]
        self._first_done = False

    def __call__(self, items):
        self.calls.append(list(items))
        if not self._first_done:
            self._first_done = True
            self.entered.set()
            assert self.release.wait(timeout=30.0), "test never released the gate"
        return [{"answer": item} for item in items]


class TestBatching:
    def test_single_request_round_trip(self):
        with MicroBatcher(echo_dispatch, max_batch=4, max_wait_ms=0.0) as batcher:
            assert batcher.submit_wait("obs-1", timeout=30) == {"answer": "obs-1"}

    def test_full_batch_dispatches_together(self):
        """max_batch queued requests coalesce into one dispatch call."""
        gate = _GatedDispatch()
        with MicroBatcher(gate, max_batch=3, max_wait_ms=10_000.0, max_queue=64) as b:
            probe = b.submit("probe")
            assert gate.entered.wait(timeout=30.0)
            # Dispatcher is parked in the kernel: these three are queued
            # together, no timing involved.
            futures = [b.submit(f"r{i}") for i in range(3)]
            gate.release.set()
            assert probe.result(timeout=30) == {"answer": "probe"}
            assert [f.result(timeout=30) for f in futures] == [
                {"answer": "r0"}, {"answer": "r1"}, {"answer": "r2"}
            ]
        assert gate.calls[0] == ["probe"]
        assert gate.calls[1] == ["r0", "r1", "r2"]  # one micro-batch, max_batch hit

    def test_window_expiry_needs_no_real_sleep(self):
        """A 10 s batch window closes instantly on the manual clock.

        The future resolving (with a 5 s *real* timeout) is itself the
        proof that the dispatcher did not really sleep 10 s.
        """
        clock = ManualClock()
        with MicroBatcher(
            echo_dispatch, max_batch=100, max_wait_ms=10_000.0, clock=clock
        ) as batcher:
            assert batcher.submit("lonely").result(timeout=5) == {"answer": "lonely"}
        assert clock.monotonic() >= 10.0  # the window elapsed -- virtually

    def test_batch_metrics_emitted(self):
        with MicroBatcher(echo_dispatch, max_batch=2, max_wait_ms=0.0, name="t") as b:
            b.submit_wait("x", timeout=30)
        snap = obs.snapshot()
        assert snap["counters"]["serve.batches{batcher=t}"] >= 1
        assert snap["histograms"]["serve.batch_size{batcher=t}"]["count"] >= 1
        assert snap["histograms"]["serve.batch_wait_ms{batcher=t}"]["count"] >= 1
        assert "serve.queue_depth{batcher=t}" in snap["gauges"]


class TestAdmissionControl:
    def test_queue_full_rejects_without_blocking(self):
        gate = _GatedDispatch()
        with MicroBatcher(gate, max_batch=1, max_wait_ms=0.0, max_queue=2) as b:
            parked = b.submit("parked")  # occupies the dispatcher
            assert gate.entered.wait(timeout=30.0)
            q1, q2 = b.submit("q1"), b.submit("q2")  # fills the bounded queue
            with pytest.raises(QueueFullError):
                b.submit("overflow")
            gate.release.set()
            for f, payload in ((parked, "parked"), (q1, "q1"), (q2, "q2")):
                assert f.result(timeout=30) == {"answer": payload}
        snap = obs.snapshot()
        assert snap["counters"]["serve.rejected{batcher=serve,reason=queue_full}"] == 1

    def test_expired_deadline_fails_before_dispatch(self):
        clock = ManualClock()
        gate = _GatedDispatch()
        with MicroBatcher(gate, max_batch=1, max_wait_ms=0.0, clock=clock, max_queue=8) as b:
            parked = b.submit("parked")
            assert gate.entered.wait(timeout=30.0)
            doomed = b.submit("doomed", deadline=clock.monotonic() + 0.5)
            clock.advance(1.0)  # its deadline passes while queued
            gate.release.set()
            assert parked.result(timeout=30) == {"answer": "parked"}
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30)
        assert "doomed" not in [i for call in gate.calls for i in call]
        snap = obs.snapshot()
        assert snap["counters"]["serve.deadline_expired{batcher=serve}"] == 1

    def test_unexpired_deadline_is_served(self):
        clock = ManualClock()
        with MicroBatcher(echo_dispatch, max_batch=4, max_wait_ms=0.0, clock=clock) as b:
            future = b.submit("timely", deadline=clock.monotonic() + 60.0)
            assert future.result(timeout=30) == {"answer": "timely"}

    def test_already_expired_deadline_is_refused_at_enqueue(self):
        """Dead-on-arrival work must not occupy a bounded-queue slot."""
        clock = ManualClock()
        clock.advance(10.0)
        with MicroBatcher(echo_dispatch, max_batch=4, max_wait_ms=0.0, clock=clock) as b:
            with pytest.raises(DeadlineExceededError):
                b.submit("doa", deadline=clock.monotonic() - 0.001)
            with pytest.raises(DeadlineExceededError):
                b.submit("exactly-now", deadline=clock.monotonic())
            assert b.queue_depth() == 0  # nothing was accepted
            # A live request right after is unaffected.
            assert b.submit("alive").result(timeout=30) == {"answer": "alive"}
        snap = obs.snapshot()
        # Distinct from dispatch-time expiry: a dedicated rejection
        # counter, and the dispatch-time one untouched.
        assert snap["counters"]["serve.rejected{batcher=serve,reason=deadline_expired}"] == 2
        assert "serve.deadline_expired{batcher=serve}" not in snap["counters"]

    def test_drain_rate_ewma_tracks_dispatches(self):
        clock = ManualClock()
        with MicroBatcher(echo_dispatch, max_batch=2, max_wait_ms=0.0, clock=clock) as b:
            assert b.drain_rate() is None  # no inter-dispatch interval yet
            b.submit("a").result(timeout=30)
            b._note_drained(10)  # fold a synthetic dispatch in directly
            clock.advance(1.0)
            b._note_drained(10)
        rate = b.drain_rate()
        assert rate is not None and rate > 0


class TestLifecycleAndErrors:
    def test_submit_before_start_and_after_stop_raises(self):
        batcher = MicroBatcher(echo_dispatch)
        with pytest.raises(RuntimeError):
            batcher.submit("too-early")
        batcher.start()
        batcher.stop()
        with pytest.raises(RuntimeError):
            batcher.submit("too-late")

    def test_stop_drains_accepted_requests(self):
        gate = _GatedDispatch()
        with MicroBatcher(gate, max_batch=1, max_wait_ms=0.0, max_queue=64) as b:
            parked = b.submit("parked")
            assert gate.entered.wait(timeout=30.0)
            queued = [b.submit(f"q{i}") for i in range(5)]
            gate.release.set()
        # __exit__ ran stop(): every accepted request still got answered.
        assert parked.result(timeout=0) == {"answer": "parked"}
        assert [f.result(timeout=0) for f in queued] == [
            {"answer": f"q{i}"} for i in range(5)
        ]

    def test_dispatch_exception_reaches_every_future_and_batcher_survives(self):
        fail = [True]

        def flaky(items):
            if fail[0]:
                raise ValueError("kernel poisoned")
            return [{"answer": i} for i in items]

        gate_free = MicroBatcher(flaky, max_batch=8, max_wait_ms=0.0)
        with gate_free as b:
            f1 = b.submit("a")
            with pytest.raises(ValueError, match="kernel poisoned"):
                f1.result(timeout=30)
            fail[0] = False
            assert b.submit_wait("b", timeout=30) == {"answer": "b"}
        snap = obs.snapshot()
        assert snap["counters"]["serve.dispatch_errors{batcher=serve}"] == 1

    def test_result_count_mismatch_is_an_error(self):
        with MicroBatcher(lambda items: [], max_batch=4, max_wait_ms=0.0) as b:
            future = b.submit("x")
            with pytest.raises(RuntimeError, match="0 results for 1"):
                future.result(timeout=30)

    def test_constructor_validation(self):
        for kwargs in ({"max_batch": 0}, {"max_wait_ms": -1.0}, {"max_queue": 0}):
            with pytest.raises(ValueError):
                MicroBatcher(echo_dispatch, **kwargs)


class TestConcurrencyProperty:
    """The acceptance property: N concurrent producers, every request
    answered exactly once, in submission order per producer, with no
    cross-request result aliasing — for any batching-knob draw."""

    @settings(
        deadline=None,
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        max_batch=st.integers(min_value=1, max_value=8),
        max_wait_ms=st.floats(min_value=0.0, max_value=3.0),
        n_threads=st.integers(min_value=1, max_value=4),
        per_thread=st.integers(min_value=1, max_value=6),
    )
    def test_exactly_once_in_order_no_aliasing(
        self, max_batch, max_wait_ms, n_threads, per_thread
    ):
        processed = []
        processed_lock = threading.Lock()

        def dispatch(items):
            with processed_lock:
                processed.extend(items)
            return [{"answer": item} for item in items]

        results = {}
        errors = []

        def producer(tid):
            # Closed loop per producer, like one HTTP connection: submit,
            # wait for the answer, submit the next.
            try:
                out = []
                for i in range(per_thread):
                    out.append(
                        (lambda f: f.result(timeout=30))(
                            batcher.submit((tid, i))
                        )
                    )
                results[tid] = out
            except Exception as exc:  # noqa: BLE001 - surface in the main thread
                errors.append(exc)

        with MicroBatcher(
            dispatch,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=10_000,
        ) as batcher:
            threads = [
                threading.Thread(target=producer, args=(tid,))
                for tid in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert not any(t.is_alive() for t in threads), "producer hung"
        assert not errors, errors

        expected = [(tid, i) for tid in range(n_threads) for i in range(per_thread)]
        # exactly once: the dispatch kernel saw every request precisely once
        assert sorted(processed) == sorted(expected)
        # in order per producer, each answer matching its own request
        for tid in range(n_threads):
            assert [r["answer"] for r in results[tid]] == [
                (tid, i) for i in range(per_thread)
            ]
        # no aliasing: every producer got a distinct result object
        ids = [id(r) for out in results.values() for r in out]
        assert len(set(ids)) == len(ids)
