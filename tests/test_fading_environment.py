"""Tests for shadowing fields, temporal fading, and the radio environment."""

import numpy as np
import pytest

from repro.core.geometry import Point
from repro.radio.environment import (
    AccessPoint,
    EnvironmentalFactors,
    RadioEnvironment,
    Wall,
    _wall_crossing_matrix,
)
from repro.radio.fading import ShadowingField, TemporalFading
from repro.radio.materials import CONCRETE, get_material, known_materials, register_material, Material


def four_corner_env(**kwargs):
    aps = [
        AccessPoint("A", Point(0, 0)),
        AccessPoint("B", Point(50, 0)),
        AccessPoint("C", Point(50, 40)),
        AccessPoint("D", Point(0, 40)),
    ]
    return RadioEnvironment(aps, **kwargs)


class TestShadowingField:
    def test_deterministic_per_seed(self):
        pos = np.array([[1.0, 2.0], [10.0, 20.0]])
        f1 = ShadowingField(rng=42)
        f2 = ShadowingField(rng=42)
        assert np.allclose(f1(pos), f2(pos))
        assert not np.allclose(f1(pos), ShadowingField(rng=43)(pos))

    def test_repeatable_at_same_spot(self):
        f = ShadowingField(rng=0)
        p = np.array([3.0, 4.0])
        assert f(p) == f(p)

    def test_marginal_std_close_to_sigma(self):
        f = ShadowingField(sigma_db=5.0, correlation_ft=3.0, n_features=256, rng=0)
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 500, size=(20000, 2))
        vals = f(pos)
        assert abs(vals.std() - 5.0) < 0.6

    def test_spatial_correlation_decays(self):
        f = ShadowingField(sigma_db=4.0, correlation_ft=10.0, n_features=256, rng=2)
        rng = np.random.default_rng(3)
        base = rng.uniform(0, 1000, size=(4000, 2))
        near = base + np.array([1.0, 0.0])
        far = base + np.array([300.0, 0.0])
        v0, vn, vf = f(base), f(near), f(far)
        corr_near = np.corrcoef(v0, vn)[0, 1]
        corr_far = np.corrcoef(v0, vf)[0, 1]
        assert corr_near > 0.9
        assert abs(corr_far) < 0.2

    def test_zero_sigma_is_zero(self):
        f = ShadowingField(sigma_db=0.0, rng=0)
        assert np.allclose(f(np.array([[1.0, 1.0]])), 0.0)

    def test_shape_validation(self):
        f = ShadowingField(rng=0)
        with pytest.raises(ValueError):
            f(np.zeros((3, 3)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ShadowingField(sigma_db=-1)
        with pytest.raises(ValueError):
            ShadowingField(correlation_ft=0)
        with pytest.raises(ValueError):
            ShadowingField(n_features=0)


class TestTemporalFading:
    def test_shapes(self):
        f = TemporalFading()
        assert f.sample_series(-50.0, 5, 1.0, rng=0).shape == (5,)
        assert f.sample_series(np.array([-50.0, -60.0]), 7, 1.0, rng=0).shape == (7, 2)
        assert f.sample_series(-50.0, 0, 1.0, rng=0).shape == (0,)

    def test_mean_reversion(self):
        f = TemporalFading(sigma_db=3.0, timescale_s=5.0, noise_db=0.0, quantize_db=0.0)
        series = f.sample_series(-60.0, 20000, 1.0, rng=0)
        assert abs(series.mean() + 60.0) < 0.3

    def test_autocorrelation_positive_at_short_lag(self):
        f = TemporalFading(sigma_db=3.0, timescale_s=10.0, noise_db=0.0, quantize_db=0.0)
        x = f.sample_series(0.0, 20000, 1.0, rng=1)
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r1 > 0.8  # rho = exp(-1/10) ≈ 0.90

    def test_quantization(self):
        f = TemporalFading(quantize_db=1.0)
        x = f.sample_series(-55.3, 50, 1.0, rng=2)
        assert np.allclose(x, np.round(x))

    def test_stationary_std(self):
        f = TemporalFading(sigma_db=3.0, noise_db=4.0)
        assert f.stationary_std() == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalFading(sigma_db=-1)
        with pytest.raises(ValueError):
            TemporalFading(timescale_s=0)
        f = TemporalFading()
        with pytest.raises(ValueError):
            f.sample_series(0.0, -1, 1.0)
        with pytest.raises(ValueError):
            f.sample_series(0.0, 1, 0.0)


class TestMaterials:
    def test_lookup(self):
        assert get_material("concrete") is CONCRETE
        with pytest.raises(KeyError):
            get_material("vibranium")

    def test_register(self):
        register_material(Material("testium", 7.5))
        assert get_material("testium").attenuation_db == 7.5

    def test_negative_attenuation_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", -1.0)

    def test_registry_copy(self):
        mats = known_materials()
        mats.clear()
        assert len(known_materials()) > 0


class TestWallCrossing:
    def test_crossing_matrix(self):
        ap = np.array([0.0, 0.0])
        pos = np.array([[10.0, 0.0], [0.0, 10.0]])
        wa = np.array([[5.0, -5.0]])
        wb = np.array([[5.0, 5.0]])
        m = _wall_crossing_matrix(ap, pos, wa, wb)
        assert m.shape == (2, 1)
        assert m[0, 0] and not m[1, 0]

    def test_no_walls(self):
        m = _wall_crossing_matrix(np.zeros(2), np.ones((3, 2)), np.zeros((0, 2)), np.zeros((0, 2)))
        assert m.shape == (3, 0)


class TestEnvironmentalFactors:
    def test_reference_conditions_cost_nothing(self):
        assert EnvironmentalFactors().static_loss_db() == 0.0

    def test_deviation_costs(self):
        f = EnvironmentalFactors(temperature_c=31.0, humidity_pct=85.0)
        assert f.static_loss_db() == pytest.approx(10 * 0.02 + 40 * 0.03)

    def test_people_block_probability(self):
        assert EnvironmentalFactors(people=0).body_block_probability() == 0.0
        assert EnvironmentalFactors(people=2).body_block_probability() == pytest.approx(0.08)
        assert EnvironmentalFactors(people=100).body_block_probability() == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvironmentalFactors(people=-1)
        with pytest.raises(ValueError):
            EnvironmentalFactors(humidity_pct=120)


class TestRadioEnvironment:
    def test_requires_aps(self):
        with pytest.raises(ValueError):
            RadioEnvironment([])

    def test_duplicate_names_rejected(self):
        aps = [AccessPoint("A", Point(0, 0)), AccessPoint("A", Point(1, 1))]
        with pytest.raises(ValueError):
            RadioEnvironment(aps)

    def test_mean_rssi_monotone_without_shadowing(self):
        env = four_corner_env(shadowing_sigma_db=0.0)
        near = env.mean_rssi(np.array([[5.0, 5.0]]))[0][0]
        far = env.mean_rssi(np.array([[45.0, 35.0]]))[0][0]
        assert near > far  # AP A is at (0, 0)

    def test_mean_rssi_deterministic(self):
        env = four_corner_env(seed=5)
        p = np.array([[20.0, 20.0]])
        assert np.allclose(env.mean_rssi(p), env.mean_rssi(p))

    def test_site_seed_changes_field(self):
        p = np.array([[20.0, 20.0]])
        a = four_corner_env(seed=1).mean_rssi(p)
        b = four_corner_env(seed=2).mean_rssi(p)
        assert not np.allclose(a, b)

    def test_walls_attenuate(self):
        wall = [Wall.of(25, -5, 25, 45, "concrete")]
        env_open = four_corner_env(shadowing_sigma_db=0.0)
        env_wall = four_corner_env(walls=wall, shadowing_sigma_db=0.0)
        p = np.array([[40.0, 20.0]])  # AP A at (0,0) is behind the wall
        delta = env_open.mean_rssi(p)[0][0] - env_wall.mean_rssi(p)[0][0]
        assert delta == pytest.approx(CONCRETE.attenuation_db)
        # AP B at (50, 0): same side, no attenuation.
        assert env_open.mean_rssi(p)[0][1] == pytest.approx(env_wall.mean_rssi(p)[0][1])

    def test_sample_rssi_shape_and_nan(self):
        env = four_corner_env(miss_probability=0.5, seed=0)
        s = env.sample_rssi(Point(25, 20), 200, rng=0)
        assert s.shape == (200, 4)
        miss_rate = np.isnan(s).mean()
        assert 0.3 < miss_rate < 0.7

    def test_sample_rssi_reproducible(self):
        env = four_corner_env(seed=0)
        a = env.sample_rssi(Point(10, 10), 20, rng=7)
        b = env.sample_rssi(Point(10, 10), 20, rng=7)
        assert np.array_equal(a, b, equal_nan=True)

    def test_detection_threshold(self):
        env = four_corner_env(detection_threshold_dbm=-10.0, shadowing_sigma_db=0.0)
        s = env.sample_rssi(Point(25, 20), 50, rng=1)
        assert np.isnan(s).all()  # nothing is that loud mid-room

    def test_audible_aps(self):
        env = four_corner_env(shadowing_sigma_db=0.0)
        assert env.audible_aps(Point(25, 20)) == ["A", "B", "C", "D"]

    def test_ap_index(self):
        env = four_corner_env()
        assert env.ap_index("C") == 2
        with pytest.raises(KeyError):
            env.ap_index("Z")

    def test_distances(self):
        env = four_corner_env()
        d = env.distances(np.array([[0.0, 0.0]]))
        assert d[0][0] == 0.0
        assert d[0][2] == pytest.approx(np.hypot(50, 40))

    def test_invalid_miss_probability(self):
        with pytest.raises(ValueError):
            four_corner_env(miss_probability=1.0)

    def test_ap_validation(self):
        with pytest.raises(ValueError):
            AccessPoint("", Point(0, 0))
        with pytest.raises(ValueError):
            AccessPoint("X", Point(0, 0), channel=15)

    def test_auto_bssid_unique(self):
        a = AccessPoint("P", Point(0, 0))
        b = AccessPoint("Q", Point(1, 1))
        assert a.bssid != b.bssid
        assert len(a.bssid.split(":")) == 6
