"""Tests for regression fits, the geometric approach, and multilateration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import Observation
from repro.algorithms.geometric import GeometricLocalizer
from repro.algorithms.multilateration import (
    MultilaterationLocalizer,
    residual_rms,
    solve_multilateration,
)
from repro.algorithms.regression import (
    fit_inverse_square,
    fit_log_distance,
    fit_per_ap,
)
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase
from repro.radio.pathloss import dbm_to_ss_units

B = [f"02:00:00:00:00:{i:02x}" for i in range(4)]
AP_POS = {
    B[0]: Point(0, 0),
    B[1]: Point(50, 0),
    B[2]: Point(50, 40),
    B[3]: Point(0, 40),
}


def ideal_db(noise=0.0, seed=0, grid_step=10.0):
    """Training db generated from a known inverse-square law (SS units)."""
    rng = np.random.default_rng(seed)
    records = []
    y = 0.0
    while y <= 40.0:
        x = 0.0
        while x <= 50.0:
            row = []
            for b in B:
                ap = AP_POS[b]
                d = max(Point(x, y).distance_to(ap), 1.0)
                ss = 2000.0 / d**2 + 300.0 / d + 10.0
                rssi = ss - 100.0  # invert dbm_to_ss_units
                row.append(rssi)
            samples = np.tile(row, (5, 1)) + rng.normal(0, noise, (5, 4))
            records.append(
                LocationRecord(f"g{x:g}-{y:g}", Point(x, y), samples.astype(np.float32))
            )
            x += grid_step
        y += grid_step
    return TrainingDatabase(B, records)


def ideal_observation(x, y):
    row = []
    for b in B:
        d = max(Point(x, y).distance_to(AP_POS[b]), 1.0)
        ss = 2000.0 / d**2 + 300.0 / d + 10.0
        row.append(ss - 100.0)
    return Observation(np.array([row]))


class TestFitInverseSquare:
    def test_recovers_exact_coefficients(self):
        d = np.linspace(2, 80, 40)
        ss = 1234.0 / d**2 + 56.0 / d + 7.8
        fit = fit_inverse_square(d, ss)
        assert fit.model.a == pytest.approx(1234.0, rel=1e-6)
        assert fit.model.b == pytest.approx(56.0, rel=1e-6)
        assert fit.model.c == pytest.approx(7.8, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)

    def test_r_squared_drops_with_noise(self):
        rng = np.random.default_rng(0)
        d = np.linspace(2, 80, 60)
        clean = 1000.0 / d**2 + 100.0 / d + 20.0
        noisy = clean + rng.normal(0, 5.0, d.shape)
        fit = fit_inverse_square(d, noisy)
        assert 0.3 < fit.r_squared < 1.0
        assert fit.rmse > 1.0

    def test_nan_pairs_dropped(self):
        d = np.array([2.0, 5.0, np.nan, 10.0, 20.0])
        ss = np.array([100.0, 40.0, 30.0, np.nan, 10.0])
        fit = fit_inverse_square(d, ss)
        assert fit.n_points == 3

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            fit_inverse_square(np.array([1.0, 2.0]), np.array([5.0, 3.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_inverse_square(np.zeros(3), np.zeros(4))

    def test_formula_string(self):
        fit = fit_inverse_square(np.linspace(2, 50, 10), 100 / np.linspace(2, 50, 10))
        assert fit.formula().startswith("SS = ")


class TestFitLogDistance:
    def test_recovers_parameters(self):
        d = np.linspace(3, 100, 30)
        rssi = -30.0 - 10 * 2.8 * np.log10(d)
        fit = fit_log_distance(d, rssi)
        assert fit.p0_dbm == pytest.approx(-30.0, abs=1e-6)
        assert fit.exponent == pytest.approx(2.8, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_invert_roundtrip(self):
        fit = fit_log_distance(np.linspace(3, 100, 20), -30 - 28 * np.log10(np.linspace(3, 100, 20)))
        assert float(fit.invert(fit.rssi(np.array([42.0])))[0]) == pytest.approx(42.0)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_log_distance(np.array([5.0]), np.array([-50.0]))


class TestFitPerAp:
    def test_fits_every_known_ap(self):
        db = ideal_db()
        fits = fit_per_ap(db, AP_POS)
        assert set(fits) == set(B)
        for fit in fits.values():
            assert fit.r_squared > 0.999

    def test_unknown_aps_skipped(self):
        db = ideal_db()
        fits = fit_per_ap(db, {B[0]: AP_POS[B[0]]})
        assert set(fits) == {B[0]}

    def test_bounds_follow_survey_range(self):
        db = ideal_db()
        fit = fit_per_ap(db, AP_POS)[B[0]]
        # Max training distance from (0,0) is the far corner ≈ 64 ft.
        assert fit.model.max_distance_ft == pytest.approx(1.5 * np.hypot(50, 40), rel=1e-6)


class TestGeometricLocalizer:
    def test_near_perfect_on_clean_channel(self):
        loc = GeometricLocalizer(AP_POS).fit(ideal_db())
        for x, y in ((25.0, 20.0), (12.0, 8.0), (40.0, 30.0)):
            est = loc.locate(ideal_observation(x, y))
            assert est.valid
            assert est.position.distance_to(Point(x, y)) < 1.5

    def test_distance_estimates_accurate_clean(self):
        loc = GeometricLocalizer(AP_POS).fit(ideal_db())
        d = loc.estimate_distances(ideal_observation(25, 20))
        true = Point(25, 20)
        for b, dist in d.items():
            assert dist == pytest.approx(true.distance_to(AP_POS[b]), rel=0.05)

    def test_ring_pairing_four_intersections(self):
        loc = GeometricLocalizer(AP_POS).fit(ideal_db())
        est = loc.locate(ideal_observation(25, 20))
        assert len(est.details["intersections"]) == 4  # paper's P1..P4

    def test_insufficient_aps_invalid(self):
        loc = GeometricLocalizer(AP_POS).fit(ideal_db())
        o = Observation(np.array([[-50.0, -55.0, np.nan, np.nan]]))
        est = loc.locate(o)
        assert not est.valid
        assert "2 ranged" in est.details["reason"]

    def test_aggregator_variants(self):
        db = ideal_db(noise=2.0)
        for agg in ("median", "geometric_median", "centroid"):
            loc = GeometricLocalizer(AP_POS, aggregator=agg).fit(db)
            est = loc.locate(ideal_observation(25, 20))
            assert est.valid
            assert est.position.distance_to(Point(25, 20)) < 15

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricLocalizer({})
        with pytest.raises(ValueError):
            GeometricLocalizer(AP_POS, aggregator="mode")
        with pytest.raises(ValueError):
            GeometricLocalizer(AP_POS, min_aps=2)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            GeometricLocalizer(AP_POS).locate(ideal_observation(0, 0))

    def test_fits_property(self):
        loc = GeometricLocalizer(AP_POS).fit(ideal_db())
        assert set(loc.fits) == set(B)

    def test_column_mismatch(self):
        loc = GeometricLocalizer(AP_POS).fit(ideal_db())
        with pytest.raises(ValueError):
            loc.estimate_distances(Observation(np.zeros((1, 2)) - 50))


class TestSolveMultilateration:
    ANCHORS = [Point(0, 0), Point(50, 0), Point(50, 40), Point(0, 40)]

    def test_exact_with_true_ranges(self):
        true = Point(17.0, 23.0)
        ranges = [true.distance_to(a) for a in self.ANCHORS]
        est = solve_multilateration(self.ANCHORS, ranges)
        assert est.distance_to(true) < 1e-6

    def test_three_anchors_minimum(self):
        true = Point(10, 10)
        anchors = self.ANCHORS[:3]
        est = solve_multilateration(anchors, [true.distance_to(a) for a in anchors])
        assert est.distance_to(true) < 1e-6
        with pytest.raises(ValueError):
            solve_multilateration(self.ANCHORS[:2], [1.0, 2.0])

    def test_noisy_ranges_bounded_error(self):
        rng = np.random.default_rng(0)
        true = Point(30, 15)
        errs = []
        for _ in range(50):
            ranges = [true.distance_to(a) + rng.normal(0, 1.0) for a in self.ANCHORS]
            ranges = [max(0.1, r) for r in ranges]
            est = solve_multilateration(self.ANCHORS, ranges)
            errs.append(est.distance_to(true))
        assert np.mean(errs) < 2.5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            solve_multilateration(self.ANCHORS, [1.0, 2.0, 3.0])

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            solve_multilateration(self.ANCHORS, [1.0, -2.0, 3.0, 4.0])
        with pytest.raises(ValueError):
            solve_multilateration(self.ANCHORS, [1.0, np.nan, 3.0, 4.0])

    def test_residual_rms(self):
        true = Point(10, 10)
        ranges = [true.distance_to(a) for a in self.ANCHORS]
        assert residual_rms(self.ANCHORS, ranges, true) < 1e-9
        assert residual_rms(self.ANCHORS, ranges, Point(0, 0)) > 1.0

    @given(
        st.floats(min_value=2, max_value=48),
        st.floats(min_value=2, max_value=38),
    )
    @settings(max_examples=50)
    def test_exact_recovery_property(self, x, y):
        true = Point(x, y)
        ranges = [true.distance_to(a) for a in self.ANCHORS]
        est = solve_multilateration(self.ANCHORS, ranges)
        assert est.distance_to(true) < 1e-5


class TestMultilaterationLocalizer:
    def test_clean_channel_accurate(self):
        loc = MultilaterationLocalizer(AP_POS).fit(ideal_db())
        est = loc.locate(ideal_observation(30, 25))
        assert est.valid
        assert est.position.distance_to(Point(30, 25)) < 1.5

    def test_too_few_heard_invalid(self):
        loc = MultilaterationLocalizer(AP_POS).fit(ideal_db())
        o = Observation(np.array([[-50.0, np.nan, np.nan, np.nan]]))
        assert not loc.locate(o).valid

    def test_details_carry_ranges(self):
        loc = MultilaterationLocalizer(AP_POS).fit(ideal_db())
        est = loc.locate(ideal_observation(25, 20))
        assert set(est.details["ranges_ft"]) == set(B)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultilaterationLocalizer({})
        with pytest.raises(ValueError):
            MultilaterationLocalizer(AP_POS, min_aps=2)
