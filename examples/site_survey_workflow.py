#!/usr/bin/env python3
"""The complete toolkit workflow, through files on disk.

This is the paper's Figure-1 process exactly as a deployment crew would
run it with the three §4 utility programs:

1. scan the architectural blueprint → GIF,
2. Floor Plan Processor: load, add APs, set scale, set origin, add
   location names, save (the six §4.1 operations),
3. walk the building collecting wi-scan files (the survey),
4. Training Database Generator: wi-scan collection + location map →
   compressed .tdb,
5. locate a few Phase-2 observations,
6. Floor Plan Compositor: render true vs estimated positions.

Artifacts land in ``examples/output/``; every one is a real file the
CLI tools (floorplan-processor, training-db-generator,
floorplan-compositor, locate) could have produced or can consume.

Run:  python examples/site_survey_workflow.py
"""

from pathlib import Path

from repro.algorithms.base import make_localizer
from repro.core.compositor import EstimatePair, FloorPlanCompositor
from repro.core.floorplan import FloorPlan
from repro.core.processor import FloorPlanProcessor
from repro.core.system import ap_positions_by_bssid
from repro.core.trainingdb import TrainingDatabase, generate_training_db
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.imaging.blueprint import experiment_house_blueprint
from repro.imaging.gif import write_gif

OUT = Path(__file__).parent / "output"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    house = ExperimentHouse(HouseConfig(dwell_s=30.0))
    margin, ppf = 40, 8.0

    def px(x_ft: float, y_ft: float):
        return (margin + x_ft * ppf, margin + (40 - y_ft) * ppf)

    # -- 1. the scanned blueprint ------------------------------------
    blueprint = OUT / "blueprint.gif"
    write_gif(blueprint, experiment_house_blueprint(pixels_per_foot=ppf))
    print(f"[1] scanned blueprint      -> {blueprint}")

    # -- 2. annotate with the Processor (six operations) --------------
    proc = FloorPlanProcessor()
    proc.load(blueprint)
    proc.set_scale(*px(0, 0), *px(50, 0), 50.0)
    proc.set_origin(*px(0, 0))
    for ap in house.aps:
        proc.add_access_point(ap.name, *px(ap.position.x, ap.position.y))
    for sp in house.training_points():
        proc.add_location(sp.name, *px(sp.position.x, sp.position.y))
    plan_path = OUT / "annotated_plan.gif"
    proc.save(plan_path)
    print(f"[2] annotated plan         -> {plan_path}  ({proc.info()})")

    # -- 3. the survey: one wi-scan file per training point -----------
    survey_dir = OUT / "survey"
    house.survey(rng=0).save_directory(survey_dir)
    map_path = OUT / "locations.txt"
    proc.export_locations(map_path)
    n_files = len(list(survey_dir.glob("*.wi-scan")))
    print(f"[3] survey                 -> {survey_dir}/ ({n_files} wi-scan files)")

    # -- 4. the Training Database Generator ----------------------------
    db_path = OUT / "training.tdb"
    db = generate_training_db(survey_dir, map_path, output=db_path)
    raw = sum(p.stat().st_size for p in survey_dir.glob("*.wi-scan"))
    print(f"[4] training database      -> {db_path} "
          f"({db_path.stat().st_size} bytes vs {raw} raw, "
          f"{raw / db_path.stat().st_size:.0f}x smaller)")

    # -- 5. Phase 2: locate test observations --------------------------
    plan = FloorPlan.load(plan_path)
    localizer = make_localizer(
        "geometric", ap_positions=ap_positions_by_bssid(plan, db)
    ).fit(TrainingDatabase.load(db_path))
    test_points = house.test_points()[:6]
    pairs = []
    print("[5] phase-2 localization:")
    for i, p in enumerate(test_points):
        est = localizer.locate(house.observe(p, rng=200 + i))
        err = est.error_to(p)
        pairs.append(EstimatePair(p, est.position, label=f"T{i + 1}"))
        print(f"      T{i + 1}: true ({p.x:5.1f},{p.y:5.1f})  "
              f"est ({est.position.x:5.1f},{est.position.y:5.1f})  err {err:5.1f} ft")

    # -- 6. the Compositor's test view ---------------------------------
    results_path = OUT / "results.gif"
    write_gif(results_path, FloorPlanCompositor(plan).render(pairs=pairs))
    print(f"[6] compositor test view   -> {results_path}")


if __name__ == "__main__":
    main()
