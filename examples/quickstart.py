#!/usr/bin/env python3
"""Quickstart: train a localization system and locate a client.

Runs the paper's §5 setup end to end in a few lines: the 50 ft × 40 ft
experiment house with four corner APs, a Phase-1 training survey over
the 10-ft grid, and Phase-2 localization of a few unknown positions
with both of the paper's algorithms.

Run:  python examples/quickstart.py
"""

from repro import ExperimentHouse, make_localizer
from repro.core.geometry import Point


def main() -> None:
    # The simulated site: 4 APs (A-D) at the corners, interior walls,
    # calibrated indoor channel.  Everything is seeded → reproducible.
    house = ExperimentHouse()
    print(f"site: {house.config.width_ft:g} x {house.config.height_ft:g} ft, "
          f"APs at {[tuple(ap.position) for ap in house.aps]}")

    # Phase 1 (training): survey the 30-point grid for 90 s per point,
    # then build the training database (§4.3).
    db = house.training_database(rng=0)
    print(f"training database: {len(db)} locations x {len(db.bssids)} APs, "
          f"{db.total_samples()} scan sweeps")

    # Fit both of the paper's algorithms.
    probabilistic = make_localizer("probabilistic").fit(db)
    geometric = make_localizer(
        "geometric", ap_positions=house.ap_positions_by_bssid()
    ).fit(db)

    # Phase 2 (working): stand somewhere, scan, locate.
    for i, true_pos in enumerate([Point(12.0, 8.0), Point(33.0, 27.0), Point(44.0, 11.0)]):
        observation = house.observe(true_pos, rng=100 + i)

        p_est = probabilistic.locate(observation)
        g_est = geometric.locate(observation)
        print(f"\ntrue position      ({true_pos.x:5.1f}, {true_pos.y:5.1f}) ft")
        print(f"  probabilistic -> {p_est.location_name!r} at "
              f"({p_est.position.x:5.1f}, {p_est.position.y:5.1f}), "
              f"error {p_est.error_to(true_pos):.1f} ft")
        print(f"  geometric     -> ({g_est.position.x:5.1f}, {g_est.position.y:5.1f}), "
              f"error {g_est.error_to(true_pos):.1f} ft")


if __name__ == "__main__":
    main()
