#!/usr/bin/env python3
"""Conference guide: the paper's motivating location-aware application.

From the introduction: "A conference attender can download the
corresponding material based on the meeting room he or she is located."
This example builds a conference floor (four meeting rooms + a foyer),
trains a localization system, and then follows an attendee through the
morning: at each stop the system resolves the room name and "serves"
that session's material — the location-name abstraction the paper
insists applications need, in action.

Run:  python examples/conference_guide.py
"""

from repro import LocalizationSystem
from repro.core.geometry import Point
from repro.core.locationmap import LocationMap
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.wiscan.capture import CaptureSession, SurveyPoint

SESSIONS = {
    "Salon A": "09:00  'Pervasive Computing Visions' — slides.pdf",
    "Salon B": "09:00  'RF Fingerprinting in Practice' — handout.pdf",
    "Salon C": "09:00  'Ultra-Wide Band Ranging' — demo kit",
    "Boardroom": "09:00  program committee meeting — agenda.txt",
    "Foyer": "coffee and registration — floor map",
}

ROOMS = {
    "Salon A": Point(10.0, 30.0),
    "Salon B": Point(40.0, 30.0),
    "Salon C": Point(10.0, 10.0),
    "Boardroom": Point(42.0, 8.0),
    "Foyer": Point(26.0, 19.0),
}


def main() -> None:
    # The venue: reuse the house geometry as a small conference floor.
    house = ExperimentHouse(HouseConfig(dwell_s=45.0))

    # Phase 1: survey *at the rooms themselves* — location names carry
    # application meaning (not grid labels), exactly the paper's point.
    survey_points = [SurveyPoint(name, pos) for name, pos in ROOMS.items()]
    capture = CaptureSession(house.scanner, dwell_s=45.0)
    collection = capture.capture_survey(survey_points, rng=0)

    room_map = LocationMap({name: pos for name, pos in ROOMS.items()})
    system = LocalizationSystem.train(collection, room_map, "probabilistic")
    print(f"trained on {len(ROOMS)} rooms, {len(system.training_db.bssids)} APs\n")

    # Phase 2: the attendee's morning walk.
    itinerary = [
        ("08:45", Point(25.0, 18.0)),   # arrives at the foyer
        ("09:02", Point(11.0, 29.0)),   # slips into Salon A
        ("09:40", Point(39.0, 31.0)),   # switches to Salon B
        ("10:15", Point(41.0, 9.0)),    # called into the boardroom
    ]
    for i, (clock, true_pos) in enumerate(itinerary):
        observation = house.observe(true_pos, rng=50 + i, dwell_s=20.0)
        resolved = system.locate(observation)
        room = resolved.name or "unknown"
        material = SESSIONS.get(room, "no material for this area")
        print(f"{clock}  badge hears {int(observation.detection_rate().sum() * observation.n_sweeps)} "
              f"beacons -> room: {room}")
        print(f"        serving: {material}")
        truth = min(ROOMS, key=lambda r: ROOMS[r].distance_to(true_pos))
        status = "OK" if truth == room else f"(actually in {truth})"
        print(f"        {status}\n")


if __name__ == "__main__":
    main()
