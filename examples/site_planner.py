#!/usr/bin/env python3
"""Site planner: design the deployment before anyone climbs a ladder.

Exercises the §6.4 toolkit expansion (`repro.planning`) end to end:

1. score the paper's four-corner layout: coverage, fingerprint
   separability, worst confusable pair;
2. optimize four AP positions with the alias-aware damage objective and
   compare;
3. render signal heatmaps of both layouts over the floor plan, plus an
   animated GIF sweeping through every AP's field.

Artifacts land in ``examples/output/``.

Run:  python examples/site_planner.py
"""

from pathlib import Path

import numpy as np

from repro.core.heatmap import render_heatmap
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.imaging.gif import write_animation, write_gif
from repro.planning import coverage_map, optimize_placement, site_quality
from repro.planning.placement import _objective_factory, corner_placement
from repro.radio.environment import AccessPoint, RadioEnvironment
from repro.radio.pathloss import LogDistanceModel

OUT = Path(__file__).parent / "output"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    house = ExperimentHouse(HouseConfig())
    bounds = house.bounds()
    grid = np.array([[p.position.x, p.position.y] for p in house.training_points()])
    walls = house.environment.walls

    # -- 1. score the corner layout -----------------------------------
    cm = coverage_map(house.environment, bounds, resolution_ft=2.0)
    quality = site_quality(house.environment, grid)
    print("corner layout (the paper's):")
    print(f"  coverage with >=3 APs audible: {100 * cm.fraction_covered(3):.0f}%")
    print(f"  fingerprint quality: {quality.summary()}")

    # -- 2. optimize and compare --------------------------------------
    result = optimize_placement(
        4, bounds, walls=walls, eval_points=grid, candidate_spacing_ft=10.0
    )
    damage = _objective_factory(walls, grid, LogDistanceModel(), 4.0, 15.0, kind="damage")
    print("\noptimized layout (alias-aware damage objective):")
    print("  positions:", ", ".join(f"({p.x:g},{p.y:g})" for p in result.positions))
    print(f"  worst expected damage: corners {-damage(corner_placement(bounds)):.2f} ft"
          f" -> optimized {-result.objective:.2f} ft")

    # -- 3. heatmaps + animation --------------------------------------
    plan = house.floor_plan()
    heat = render_heatmap(
        plan, cm.xs, cm.ys, cm.rssi_of_ap(0), title="AP A MEAN RSSI (DBM)"
    )
    write_gif(OUT / "heatmap_ap_a.gif", heat)
    print(f"\nheatmap of AP A's field -> {OUT / 'heatmap_ap_a.gif'}")

    frames = [
        render_heatmap(
            plan, cm.xs, cm.ys, cm.rssi_of_ap(i),
            title=f"AP {house.aps[i].name} MEAN RSSI (DBM)",
        )
        for i in range(len(house.aps))
    ]
    write_animation(OUT / "heatmap_sweep.gif", frames, delay_cs=80)
    print(f"animated per-AP sweep     -> {OUT / 'heatmap_sweep.gif'}")

    opt_env = RadioEnvironment(
        [AccessPoint(chr(65 + i), p) for i, p in enumerate(result.positions)],
        walls=walls,
        shadowing_sigma_db=0.0,
    )
    opt_cm = coverage_map(opt_env, bounds, resolution_ft=2.0)
    opt_heat = render_heatmap(
        plan, opt_cm.xs, opt_cm.ys, opt_cm.audible_count.astype(float),
        title="OPTIMIZED LAYOUT: AUDIBLE AP COUNT", vmin=0, vmax=4,
        show_access_points=False,
    )
    write_gif(OUT / "optimized_coverage.gif", opt_heat)
    print(f"optimized coverage map    -> {OUT / 'optimized_coverage.gif'}")


if __name__ == "__main__":
    main()
