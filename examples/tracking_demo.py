#!/usr/bin/env python3
"""Tracking demo: the paper's §6.2 future work, working.

A client walks a loop through the house while the NIC scans at 1 Hz.
Three trackers — discrete Bayes filter, Kalman over kNN, and a particle
filter on an interpolated radio map — chase it, against the single-shot
probabilistic baseline.  The rendered plan shows the true path and the
best tracker's path.

Run:  python examples/tracking_demo.py
"""

from pathlib import Path

import numpy as np

from repro.algorithms.base import Observation
from repro.algorithms.knn import KNNLocalizer
from repro.algorithms.probabilistic import ProbabilisticLocalizer
from repro.algorithms.tracking import (
    DiscreteBayesTracker,
    KalmanTracker,
    ParticleFilterTracker,
    RSSIField,
)
from repro.core.compositor import FloorPlanCompositor, Mark
from repro.core.geometry import Point
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.imaging.gif import write_gif
from repro.imaging.raster import BLUE, GREEN

OUT = Path(__file__).parent / "output"

WALK = [
    Point(5, 5), Point(45, 5), Point(45, 35),
    Point(25, 35), Point(25, 15), Point(5, 15), Point(5, 5),
]


def main() -> None:
    OUT.mkdir(exist_ok=True)
    house = ExperimentHouse(HouseConfig(dwell_s=60.0))
    db = house.training_database(rng=0)
    print(f"trained on {len(db)} grid points; walking "
          f"{sum(a.distance_to(b) for a, b in zip(WALK, WALK[1:])):.0f} ft at 3 ft/s")

    # The walk: true position + one scan sweep per second.
    bssids = [ap.bssid for ap in house.aps]
    walk = house.scanner.walk_session(WALK, speed_ft_s=3.0, rng=7)
    path = [p for p, _ in walk]
    stream = [
        Observation(np.array([[s.rssi_of(b) if s.rssi_of(b) is not None else np.nan
                               for b in bssids]]))
        for _, s in walk
    ]

    prob = ProbabilisticLocalizer().fit(db)
    knn = KNNLocalizer(k=3).fit(db)
    trackers = {
        "static probabilistic": None,
        "bayes filter": DiscreteBayesTracker(prob, db, speed_ft_s=4.0),
        "kalman over knn": KalmanTracker(knn, measurement_std_ft=8.0),
        "particle filter": ParticleFilterTracker(
            RSSIField(db), bounds=house.bounds(), n_particles=600, speed_ft_s=4.0, rng=1
        ),
    }

    tracks = {}
    print(f"\n{'estimator':<22s}{'mean err':>9s}{'p90 err':>9s}")
    for name, tracker in trackers.items():
        if tracker is None:
            estimates = [prob.locate(o) for o in stream]
        else:
            estimates = tracker.track(stream)
        errors = [e.position.distance_to(p) for p, e in zip(path, estimates)
                  if e.valid and e.position is not None][5:]
        tracks[name] = estimates
        print(f"{name:<22s}{np.mean(errors):>8.2f}ft{np.percentile(errors, 90):>8.2f}ft")

    # Render the truth (green dots) and the particle track (blue dots).
    plan = house.floor_plan()
    marks = [Mark(p, style="dot", color=GREEN, size_px=4) for p in path]
    marks += [
        Mark(e.position, style="dot", color=BLUE, size_px=4)
        for e in tracks["particle filter"]
        if e.valid and e.position is not None
    ]
    out_path = OUT / "tracking.gif"
    write_gif(out_path, FloorPlanCompositor(plan).render(marks=marks, legend=False))
    print(f"\ntrack rendering (green=truth, blue=particle filter) -> {out_path}")


if __name__ == "__main__":
    main()
