#!/usr/bin/env python3
"""Error-bounds map: where *can* RSSI localization work, and where can't it?

Renders the Cramér–Rao lower bound on position RMSE as a heatmap over
the floor plan — the theoretical error floor at every spot, before any
algorithm enters the picture — and compares the measured per-point
errors of a ranging method (which must respect the shadowing-inclusive
bound) and a fingerprinting method (which beats it, because Phase 1
turns shadowing into map).

Artifacts land in ``examples/output/``.

Run:  python examples/error_bounds_map.py
"""

from pathlib import Path

import numpy as np

from repro.algorithms.base import make_localizer
from repro.analysis.crlb import crlb_field, effective_samples
from repro.core.heatmap import render_heatmap
from repro.experiments.house import ExperimentHouse
from repro.imaging.gif import write_gif

OUT = Path(__file__).parent / "output"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    house = ExperimentHouse()
    cfg = house.config
    ap_pos = list(house.ap_positions_by_bssid().values())

    # Noise regimes: ranging sees shadowing as noise; fingerprinting
    # only fights the dwell-averaged temporal term.
    k_eff = effective_samples(
        int(cfg.dwell_s // cfg.scan_interval_s), cfg.scan_interval_s, cfg.temporal_timescale_s
    )
    sigma_temporal = float(np.hypot(cfg.temporal_sigma_db, cfg.noise_db))
    sigma_ranging = float(np.hypot(cfg.shadowing_sigma_db, sigma_temporal / np.sqrt(k_eff)))

    xs = np.arange(0.0, cfg.width_ft + 1, 2.0)
    ys = np.arange(0.0, cfg.height_ft + 1, 2.0)
    gx, gy = np.meshgrid(xs, ys)
    lattice = np.column_stack([gx.ravel(), gy.ravel()])
    bound = crlb_field(lattice, ap_pos, sigma_ranging, cfg.pathloss_exponent).reshape(gy.shape)

    plan = house.floor_plan()
    heat = render_heatmap(
        plan, xs, ys, np.clip(bound, 0, 40),
        title="RANGING CRLB (FT)", vmin=0.0, vmax=40.0,
    )
    path = OUT / "crlb_map.gif"
    write_gif(path, heat)
    finite = bound[np.isfinite(bound)]
    print(f"ranging CRLB over the floor: {finite.min():.1f}-{finite.max():.1f} ft "
          f"(sigma={sigma_ranging:.1f} dB as noise)")
    print(f"bound heatmap -> {path}")

    # Measured per-point errors against the bound.
    db = house.training_database(rng=0)
    test_points = house.test_points()
    observations = house.observe_all(test_points, rng=1)
    print(f"\n{'point':>5s} {'CRLB':>6s} {'geometric':>10s} {'knn':>7s}")
    geo = make_localizer("geometric", ap_positions=house.ap_positions_by_bssid()).fit(db)
    knn = make_localizer("knn", k=3).fit(db)
    pt_bounds = crlb_field(
        np.array([[p.x, p.y] for p in test_points]),
        ap_pos, sigma_ranging, cfg.pathloss_exponent,
    )
    wins = 0
    for i, (p, o) in enumerate(zip(test_points, observations)):
        ge = geo.locate(o).error_to(p)
        ke = knn.locate(o).error_to(p)
        if ke < pt_bounds[i]:
            wins += 1
        print(f"T{i + 1:>4d} {pt_bounds[i]:>6.1f} {ge:>9.1f}  {ke:>6.1f}")
    print(f"\nknn beats the ranging bound at {wins}/{len(test_points)} points — "
          "fingerprinting plays a different estimation game")


if __name__ == "__main__":
    main()
