"""The composed radio environment: APs + walls + fading → RSSI samples.

:class:`RadioEnvironment` is the simulator's façade.  Given access-point
placements and a wall layout it produces, for any client position, the
same observable a real scanning NIC gives the toolkit: per-AP RSSI time
series with site-specific bias, temporal jitter, quantization, detection
thresholding and occasional missed scans.

All heavy paths are vectorized over client positions and APs (the
fingerprint sweeps evaluate tens of thousands of positions), including
the wall-crossing count, which uses a broadcasted orientation test
rather than a per-position Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.geometry import Point
from repro.parallel.rng import RngLike, resolve_rng
from repro.radio.fading import ShadowingField, TemporalFading
from repro.radio.materials import EXTERIOR, Material, get_material
from repro.radio.pathloss import DEFAULT_TX_POWER_DBM, LogDistanceModel

def _auto_bssid(name: str) -> str:
    """Deterministic locally-administered MAC derived from the AP name.

    Name-derived (not a process-global counter) so the same deployment
    produces byte-identical artifacts in every run — the
    ``simulate-survey --seed`` reproducibility contract.
    """
    import hashlib

    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return "02:00:5e:%02x:%02x:%02x" % (digest[0], digest[1], digest[2])


@dataclass(frozen=True)
class AccessPoint:
    """One 802.11b access point: identity plus placement."""

    name: str
    position: Point
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    channel: int = 6
    bssid: str = ""
    ssid: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("access point needs a non-empty name")
        if not 1 <= self.channel <= 14:
            raise ValueError(f"802.11b channel must be in [1, 14], got {self.channel}")
        if not self.bssid:
            object.__setattr__(self, "bssid", _auto_bssid(self.name))
        if not self.ssid:
            object.__setattr__(self, "ssid", f"AP-{self.name}")


@dataclass(frozen=True)
class Wall:
    """A wall segment with a material (attenuates rays that cross it)."""

    a: Point
    b: Point
    material: Material = EXTERIOR

    @staticmethod
    def of(x0: float, y0: float, x1: float, y1: float, material: Union[str, Material] = EXTERIOR) -> "Wall":
        mat = get_material(material) if isinstance(material, str) else material
        return Wall(Point(x0, y0), Point(x1, y1), mat)


@dataclass(frozen=True)
class EnvironmentalFactors:
    """Secondary channel factors (paper §6.1's future-work list).

    Effects are small, deliberately: a few tenths of a dB per degree /
    percent away from reference conditions, plus per-person body loss
    applied as an expected fraction of scans blocked.
    """

    temperature_c: float = 21.0
    humidity_pct: float = 45.0
    people: int = 0

    REF_TEMPERATURE_C = 21.0
    REF_HUMIDITY_PCT = 45.0
    TEMP_DB_PER_C = 0.02
    HUMIDITY_DB_PER_PCT = 0.03
    BODY_LOSS_DB = 3.5
    BODY_BLOCK_PROBABILITY = 0.04  # per person, per scan

    def __post_init__(self):
        if self.people < 0:
            raise ValueError(f"people must be non-negative, got {self.people}")
        if not 0 <= self.humidity_pct <= 100:
            raise ValueError(f"humidity must be in [0, 100], got {self.humidity_pct}")

    def static_loss_db(self) -> float:
        return abs(self.temperature_c - self.REF_TEMPERATURE_C) * self.TEMP_DB_PER_C + abs(
            self.humidity_pct - self.REF_HUMIDITY_PCT
        ) * self.HUMIDITY_DB_PER_PCT

    def body_block_probability(self) -> float:
        return min(0.9, self.people * self.BODY_BLOCK_PROBABILITY)


def _wall_crossing_matrix(
    ap_xy: np.ndarray, positions: np.ndarray, walls_a: np.ndarray, walls_b: np.ndarray
) -> np.ndarray:
    """Boolean (n_positions, n_walls) matrix: does ray AP→position cross wall?

    Standard two-sided orientation test, broadcast over positions and
    walls.  Strict crossings only — grazing a wall endpoint does not
    count, which avoids double-charging rays that run along a wall line.
    """
    if walls_a.shape[0] == 0:
        return np.zeros((positions.shape[0], 0), dtype=bool)

    def orient(o, s, t):
        # (s-o) × (t-o); shapes broadcast to (n, m)
        return (s[..., 0] - o[..., 0]) * (t[..., 1] - o[..., 1]) - (
            s[..., 1] - o[..., 1]
        ) * (t[..., 0] - o[..., 0])

    # Broadcast: wall endpoints (1, m, 2); ray endpoints p (1, 1, 2), q (n, 1, 2)
    a3, b3 = walls_a[None, :, :], walls_b[None, :, :]
    p3 = ap_xy[None, None, :]
    q3 = positions[:, None, :]
    d1 = orient(a3, b3, p3)  # (1, m)
    d2 = orient(a3, b3, q3)  # (n, m)
    d3 = orient(p3, q3, a3)  # (n, m)
    d4 = orient(p3, q3, b3)  # (n, m)
    return ((d1 * d2) < 0) & ((d3 * d4) < 0)


class RadioEnvironment:
    """Simulated RF channel for a set of APs inside a walled floor.

    Parameters
    ----------
    aps:
        The access points.  Order defines the column order of every
        returned RSSI matrix.
    walls:
        Wall segments; each crossing of the direct ray costs the wall's
        material attenuation.
    pathloss:
        Generative distance model (default: log-distance, n = 3).
    shadowing_sigma_db / shadowing_correlation_ft:
        Marginal std and correlation length of each AP's frozen
        shadowing field.
    fading:
        Temporal model applied around the frozen mean on every scan.
    factors:
        Temperature / humidity / occupancy adjustments.
    detection_threshold_dbm:
        NIC sensitivity; samples below it are reported as missing (NaN).
    miss_probability:
        Chance a scan simply misses an audible AP (beacon collision).
    seed:
        Seeds the shadowing fields (site identity).  Per-scan randomness
        comes from the ``rng`` passed to the sampling methods instead, so
        one site can be sampled under many independent noise draws.
    """

    def __init__(
        self,
        aps: Sequence[AccessPoint],
        walls: Sequence[Wall] = (),
        pathloss: Optional[LogDistanceModel] = None,
        shadowing_sigma_db: float = 4.0,
        shadowing_correlation_ft: float = 8.0,
        fading: Optional[TemporalFading] = None,
        factors: Optional[EnvironmentalFactors] = None,
        detection_threshold_dbm: float = -92.0,
        miss_probability: float = 0.02,
        seed: RngLike = 0,
    ):
        if not aps:
            raise ValueError("RadioEnvironment needs at least one access point")
        names = [ap.name for ap in aps]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate AP names: {names}")
        if not 0.0 <= miss_probability < 1.0:
            raise ValueError(f"miss_probability must be in [0, 1), got {miss_probability}")
        self.aps = list(aps)
        self.walls = list(walls)
        self.pathloss = pathloss or LogDistanceModel()
        self.fading = fading or TemporalFading()
        self.factors = factors or EnvironmentalFactors()
        self.detection_threshold_dbm = float(detection_threshold_dbm)
        self.miss_probability = float(miss_probability)

        site_rng = resolve_rng(seed)
        self._shadowing = [
            ShadowingField(
                sigma_db=shadowing_sigma_db,
                correlation_ft=shadowing_correlation_ft,
                rng=site_rng,
            )
            for _ in self.aps
        ]
        self._ap_xy = np.array([[ap.position.x, ap.position.y] for ap in self.aps])
        self._walls_a = np.array([[w.a.x, w.a.y] for w in self.walls]).reshape(-1, 2)
        self._walls_b = np.array([[w.b.x, w.b.y] for w in self.walls]).reshape(-1, 2)
        self._wall_atten = np.array([w.material.attenuation_db for w in self.walls])

    # ------------------------------------------------------------------
    @property
    def ap_names(self) -> List[str]:
        return [ap.name for ap in self.aps]

    def ap_index(self, name: str) -> int:
        for i, ap in enumerate(self.aps):
            if ap.name == name:
                return i
        raise KeyError(f"no AP named {name!r}; have {self.ap_names}")

    # ------------------------------------------------------------------
    def distances(self, positions: np.ndarray) -> np.ndarray:
        """Distances (ft) from each position to each AP: (n, n_aps)."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        diff = pos[:, None, :] - self._ap_xy[None, :, :]
        return np.hypot(diff[..., 0], diff[..., 1])

    def wall_loss_db(self, positions: np.ndarray) -> np.ndarray:
        """Total wall attenuation (dB) per (position, AP): (n, n_aps)."""
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        out = np.zeros((pos.shape[0], len(self.aps)))
        if not self.walls:
            return out
        for j, ap_xy in enumerate(self._ap_xy):
            crosses = _wall_crossing_matrix(ap_xy, pos, self._walls_a, self._walls_b)
            out[:, j] = crosses @ self._wall_atten
        return out

    def mean_rssi(self, positions: np.ndarray) -> np.ndarray:
        """Frozen mean RSSI (dBm) per (position, AP): (n, n_aps).

        Includes path loss, wall losses, per-AP TX power, the static
        environmental factor and the frozen shadowing field — everything
        *except* per-scan randomness.  This is the quantity a training
        survey converges to with long averaging.
        """
        pos = np.atleast_2d(np.asarray(positions, dtype=float))
        d = self.distances(pos)
        tx = np.array([ap.tx_power_dbm for ap in self.aps])
        rssi = tx[None, :] - self.pathloss.path_loss_db(d)
        rssi -= self.wall_loss_db(pos)
        rssi -= self.factors.static_loss_db()
        for j, shadow in enumerate(self._shadowing):
            rssi[:, j] += shadow(pos)
        return rssi

    def sample_rssi(
        self,
        position,
        n_samples: int,
        interval_s: float = 1.0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Simulate a scan session at one position.

        Returns an ``(n_samples, n_aps)`` array of reported RSSI in dBm
        with ``NaN`` for misses (below sensitivity, beacon loss, or a
        body blocking the path).  ``position`` is a :class:`Point` or an
        (x, y) pair.
        """
        gen = resolve_rng(rng)
        xy = np.asarray(tuple(position), dtype=float).reshape(1, 2)
        mean = self.mean_rssi(xy)[0]  # (n_aps,)
        series = self.fading.sample_series(mean, n_samples, interval_s, rng=gen)
        if n_samples == 0:
            return series

        block_p = self.factors.body_block_probability()
        if block_p > 0.0:
            blocked = gen.random(series.shape) < block_p
            series = series - blocked * EnvironmentalFactors.BODY_LOSS_DB

        missed = gen.random(series.shape) < self.miss_probability
        below = series < self.detection_threshold_dbm
        series = series.astype(float)
        series[missed | below] = np.nan
        return series

    def audible_aps(self, position) -> List[str]:
        """AP names whose mean RSSI at ``position`` clears the threshold."""
        xy = np.asarray(tuple(position), dtype=float).reshape(1, 2)
        mean = self.mean_rssi(xy)[0]
        return [ap.name for ap, m in zip(self.aps, mean) if m >= self.detection_threshold_dbm]
