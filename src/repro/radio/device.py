"""Device heterogeneity: different NICs report different numbers.

A well-documented field problem the paper's single-laptop evaluation
never hits: the RSSI *scale* is vendor-defined.  Two cards at the same
spot report values offset by several dB, with different gains and noise
floors — so a system trained with one device and queried with another
silently degrades.  :class:`DeviceProfile` models the standard
first-order transformation

.. math::  reported = gain · (rssi − ref) + ref + offset (+ noise)

followed by the device's own quantization and sensitivity cut-off.
Profiles transform the RSSI matrices the rest of the toolkit already
uses, so heterogeneity can be injected at any observation site (see
``ExperimentHouse.observe(..., device=...)``) and studied in the
ABL-DEVICE bench — which is also the motivation for the rank-based
localizer in :mod:`repro.algorithms.rank`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.parallel.rng import RngLike, resolve_rng

#: Gain/offset pivot: the transformation leaves this level fixed when
#: offset is zero, which matches how vendors anchor their scales.
REFERENCE_DBM = -50.0


@dataclass(frozen=True)
class DeviceProfile:
    """One NIC model's reporting characteristics.

    Attributes
    ----------
    name:
        Label for reports.
    offset_db:
        Constant reporting bias (positive = optimistic card).
    gain:
        Scale slope around :data:`REFERENCE_DBM`; 1.0 = faithful.
    extra_noise_db:
        Additional per-sample measurement noise σ of this card.
    sensitivity_dbm:
        The card's own detection floor; reported values below it become
        missing (NaN).
    quantize_db:
        Reporting granularity (many drivers report whole dBm or 2-dB
        steps).
    """

    name: str = "reference"
    offset_db: float = 0.0
    gain: float = 1.0
    extra_noise_db: float = 0.0
    sensitivity_dbm: float = -95.0
    quantize_db: float = 1.0

    def __post_init__(self):
        if self.gain <= 0:
            raise ValueError(f"gain must be positive, got {self.gain}")
        if self.extra_noise_db < 0:
            raise ValueError(f"extra noise must be non-negative, got {self.extra_noise_db}")
        if self.quantize_db < 0:
            raise ValueError(f"quantize_db must be non-negative, got {self.quantize_db}")

    def apply(self, rssi_dbm: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Transform true RSSI samples into this device's reports.

        NaN inputs (AP missed at the air interface) stay NaN; values the
        device itself cannot hear become NaN too.
        """
        gen = resolve_rng(rng)
        x = np.asarray(rssi_dbm, dtype=float).copy()
        finite = np.isfinite(x)
        out = np.full_like(x, np.nan)
        vals = (
            self.gain * (x[finite] - REFERENCE_DBM)
            + REFERENCE_DBM
            + self.offset_db
        )
        if self.extra_noise_db > 0:
            vals = vals + gen.normal(0.0, self.extra_noise_db, size=vals.shape)
        if self.quantize_db > 0:
            vals = np.round(vals / self.quantize_db) * self.quantize_db
        vals = np.where(vals < self.sensitivity_dbm, np.nan, vals)
        out[finite] = vals
        return out


#: A small catalogue of plausible 2000s-era cards, for experiments.
REFERENCE_DEVICE = DeviceProfile()
OPTIMISTIC_CARD = DeviceProfile("optimistic", offset_db=8.0, extra_noise_db=0.5)
PESSIMISTIC_CARD = DeviceProfile("pessimistic", offset_db=-9.0, extra_noise_db=0.5)
COMPRESSED_CARD = DeviceProfile("compressed", gain=0.7, offset_db=-3.0, extra_noise_db=1.0)
NOISY_CARD = DeviceProfile("noisy", offset_db=2.0, extra_noise_db=3.0, quantize_db=2.0)
DEAF_CARD = DeviceProfile("deaf", offset_db=-4.0, sensitivity_dbm=-82.0)

DEVICE_CATALOGUE = {
    d.name: d
    for d in (
        REFERENCE_DEVICE,
        OPTIMISTIC_CARD,
        PESSIMISTIC_CARD,
        COMPRESSED_CARD,
        NOISY_CARD,
        DEAF_CARD,
    )
}
