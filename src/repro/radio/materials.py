"""Wall and obstacle materials with 2.4 GHz attenuation figures.

The paper's future work (§6.1) lists "the shape, size, layout of a room,
the construction material, the furniture and people inside the room" as
unmodelled factors.  The simulator models the dominant one — wall
attenuation — with per-material dB penalties taken from the indoor
propagation literature (values are typical 2.4 GHz one-pass losses).
Temperature/humidity enter as a small global scale factor in
:class:`~repro.radio.environment.EnvironmentalFactors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Material:
    """A construction material and its one-pass RF attenuation."""

    name: str
    attenuation_db: float
    description: str = ""

    def __post_init__(self):
        if self.attenuation_db < 0:
            raise ValueError(
                f"attenuation must be non-negative, got {self.attenuation_db} for {self.name}"
            )


DRYWALL = Material("drywall", 3.0, "interior stud wall, two gypsum sheets")
WOOD = Material("wood", 4.0, "solid wood door or panel")
GLASS = Material("glass", 2.0, "interior window / glass partition")
BRICK = Material("brick", 8.0, "single-wythe brick wall")
CONCRETE = Material("concrete", 12.0, "poured concrete, ~20 cm")
CONCRETE_BLOCK = Material("concrete_block", 10.0, "hollow CMU wall")
METAL = Material("metal", 26.0, "metal partition / elevator shaft")
EXTERIOR = Material("exterior", 9.0, "typical wood-frame exterior wall with sheathing")
HUMAN = Material("human", 3.5, "a person standing in the path")
FURNITURE = Material("furniture", 1.5, "bookshelf / cabinet clutter")

_REGISTRY: Dict[str, Material] = {
    m.name: m
    for m in (
        DRYWALL,
        WOOD,
        GLASS,
        BRICK,
        CONCRETE,
        CONCRETE_BLOCK,
        METAL,
        EXTERIOR,
        HUMAN,
        FURNITURE,
    )
}


def get_material(name: str) -> Material:
    """Look up a material by name; raises ``KeyError`` with suggestions."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown material {name!r}; known materials: {known}") from None


def register_material(material: Material) -> None:
    """Register a custom material (site surveys often need one-offs)."""
    _REGISTRY[material.name] = material


def known_materials() -> Dict[str, Material]:
    """A copy of the material registry."""
    return dict(_REGISTRY)
