"""Simulated 802.11b RF substrate.

The paper's measurements come from four physical access points in a
50 ft × 40 ft house plus a "third-party signal strength detecting
system".  This package is the drop-in substitute: an empirical indoor
radio channel with the same statistical structure the paper's algorithms
exploit (monotone distance decay) and fight (site-specific shadowing,
temporal instability, wall attenuation) — see DESIGN.md §2.

* :mod:`repro.radio.pathloss` — free-space, log-distance and the paper's
  inverse-square signal-strength↔distance models.
* :mod:`repro.radio.materials` — per-material wall attenuation.
* :mod:`repro.radio.fading` — spatially correlated log-normal shadowing
  (repeatable per site: what makes fingerprinting possible) and AR(1)
  temporal fading (what limits it).
* :mod:`repro.radio.environment` — :class:`RadioEnvironment` composing
  the above into vectorized RSSI sampling.
* :mod:`repro.radio.scanner` — a simulated NIC producing timed scans.
* :mod:`repro.radio.uwb` — UWB time-of-arrival ranging (paper §6.3).
"""

from repro.radio.environment import AccessPoint, RadioEnvironment, Wall
from repro.radio.pathloss import (
    FreeSpaceModel,
    InverseSquareModel,
    LogDistanceModel,
    dbm_to_ss_units,
    ss_units_to_dbm,
)
from repro.radio.scanner import ScanReading, SimulatedScanner

__all__ = [
    "AccessPoint",
    "RadioEnvironment",
    "Wall",
    "FreeSpaceModel",
    "InverseSquareModel",
    "LogDistanceModel",
    "dbm_to_ss_units",
    "ss_units_to_dbm",
    "ScanReading",
    "SimulatedScanner",
]
