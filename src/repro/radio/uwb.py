"""Ultra-wide-band time-of-arrival ranging (paper §6.3).

The paper's third future-work direction proposes UWB: nanosecond-scale
pulse bursts whose multipath copies arrive at *discrete, separable*
intervals, so the first-arrival time gives a nearly unbiased range even
indoors.  This module simulates that: per-anchor TOA measurements with

* Gaussian timing jitter (sub-nanosecond, per the UWB literature),
* a positive NLOS excess delay whenever walls block the direct path
  (through-wall propagation is slower and the first path may be a
  reflection), and
* an outage probability per blocked wall.

Ranges feed the standard multilateration solver, which is exactly the
comparison the paper wants: the same geometric machinery, with a ranging
channel whose error is centimeters instead of tens of feet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Point
from repro.parallel.rng import RngLike, resolve_rng
from repro.radio.environment import RadioEnvironment, _wall_crossing_matrix
from repro.radio.pathloss import SPEED_OF_LIGHT_FT_PER_NS


@dataclass(frozen=True)
class UWBAnchor:
    """A fixed UWB transceiver with a known position."""

    name: str
    position: Point

    def __post_init__(self):
        if not self.name:
            raise ValueError("UWB anchor needs a non-empty name")


@dataclass(frozen=True)
class RangeMeasurement:
    """One anchor→tag range estimate."""

    anchor: str
    distance_ft: float
    line_of_sight: bool

    def __post_init__(self):
        if self.distance_ft < 0:
            raise ValueError(f"range must be non-negative, got {self.distance_ft}")


class UWBRangingSimulator:
    """Simulates two-way-ranging sessions against a set of anchors.

    Parameters
    ----------
    anchors:
        The fixed UWB units.
    walls:
        Reuses the radio environment's wall layout for NLOS detection;
        pass ``environment.walls`` or a bespoke list.
    jitter_ns:
        1-σ timing jitter of a LOS first-path detection (~0.3 ns ≈ 0.3 ft).
    nlos_excess_ns_per_wall:
        Mean extra first-path delay per blocking wall.
    outage_per_wall:
        Probability a ranging exchange fails entirely, per blocking wall.
    """

    def __init__(
        self,
        anchors: Sequence[UWBAnchor],
        walls: Sequence = (),
        jitter_ns: float = 0.3,
        nlos_excess_ns_per_wall: float = 1.2,
        outage_per_wall: float = 0.05,
    ):
        if not anchors:
            raise ValueError("need at least one UWB anchor")
        if jitter_ns < 0 or nlos_excess_ns_per_wall < 0:
            raise ValueError("jitter and NLOS excess must be non-negative")
        if not 0.0 <= outage_per_wall < 1.0:
            raise ValueError(f"outage_per_wall must be in [0, 1), got {outage_per_wall}")
        self.anchors = list(anchors)
        self.walls = list(walls)
        self.jitter_ns = float(jitter_ns)
        self.nlos_excess_ns_per_wall = float(nlos_excess_ns_per_wall)
        self.outage_per_wall = float(outage_per_wall)
        self._anchor_xy = np.array([[a.position.x, a.position.y] for a in self.anchors])
        self._walls_a = np.array([[w.a.x, w.a.y] for w in self.walls]).reshape(-1, 2)
        self._walls_b = np.array([[w.b.x, w.b.y] for w in self.walls]).reshape(-1, 2)

    @classmethod
    def colocated_with(cls, environment: RadioEnvironment, **kwargs) -> "UWBRangingSimulator":
        """Anchors at the AP positions — the paper's drop-in upgrade story."""
        anchors = [UWBAnchor(ap.name, ap.position) for ap in environment.aps]
        return cls(anchors, walls=environment.walls, **kwargs)

    def _blocking_walls(self, tag_xy: np.ndarray) -> np.ndarray:
        """(n_anchors,) count of walls blocking each anchor→tag ray."""
        counts = np.zeros(len(self.anchors), dtype=np.int64)
        if self._walls_a.shape[0] == 0:
            return counts
        for j, axy in enumerate(self._anchor_xy):
            crosses = _wall_crossing_matrix(axy, tag_xy.reshape(1, 2), self._walls_a, self._walls_b)
            counts[j] = int(crosses.sum())
        return counts

    def range_once(self, position, rng: RngLike = None) -> List[RangeMeasurement]:
        """One ranging round: a measurement per anchor that responds."""
        gen = resolve_rng(rng)
        tag_xy = np.asarray(tuple(position), dtype=float)
        true_d = np.hypot(*(self._anchor_xy - tag_xy[None, :]).T)
        blocked = self._blocking_walls(tag_xy)

        out: List[RangeMeasurement] = []
        for j, anchor in enumerate(self.anchors):
            p_out = 1.0 - (1.0 - self.outage_per_wall) ** int(blocked[j])
            if gen.random() < p_out:
                continue
            toa_ns = true_d[j] / SPEED_OF_LIGHT_FT_PER_NS
            toa_ns += gen.normal(0.0, self.jitter_ns)
            if blocked[j] > 0:
                # NLOS excess delay is one-sided: exponential per wall.
                toa_ns += gen.exponential(self.nlos_excess_ns_per_wall * blocked[j])
            est = max(0.0, toa_ns * SPEED_OF_LIGHT_FT_PER_NS)
            out.append(
                RangeMeasurement(
                    anchor=anchor.name,
                    distance_ft=est,
                    line_of_sight=blocked[j] == 0,
                )
            )
        return out

    def range_averaged(self, position, rounds: int, rng: RngLike = None) -> List[RangeMeasurement]:
        """Average several ranging rounds per anchor (median, NLOS-robust)."""
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        gen = resolve_rng(rng)
        per_anchor: dict = {}
        los: dict = {}
        for _ in range(rounds):
            for m in self.range_once(position, rng=gen):
                per_anchor.setdefault(m.anchor, []).append(m.distance_ft)
                los[m.anchor] = m.line_of_sight
        return [
            RangeMeasurement(anchor=name, distance_ft=float(np.median(vals)), line_of_sight=los[name])
            for name, vals in per_anchor.items()
        ]
