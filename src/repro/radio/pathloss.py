"""Path-loss models: RSSI as a function of AP–client distance.

Three models, all vectorized over NumPy arrays of distances (in feet):

* :class:`FreeSpaceModel` — Friis free-space loss; the physics baseline.
* :class:`LogDistanceModel` — the standard empirical indoor model
  ``PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀)``; path-loss exponent ``n ≈ 2–4``
  indoors.  This is what the simulator uses to *generate* RSSI.
* :class:`InverseSquareModel` — the paper's §5.2 *fitted* form
  ``SS = a/d² + b/d + c`` in positive "signal-strength units"; the
  geometric localizer fits one per AP from training data and inverts it
  to turn observed signal strength back into a distance.

Signal-strength units: the paper's Figure 4 fit produces large positive
values, consistent with the Windows-NDIS style scale many 2000s-era
scanning tools reported.  :func:`dbm_to_ss_units` uses the common
``SS = dBm + 100`` convention (so −40 dBm → 60 SS units), clamped at 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

FEET_PER_METER = 3.280839895013123
SPEED_OF_LIGHT_FT_PER_NS = 0.9835710564304461  # ft travelled per nanosecond

#: Default 802.11b parameters used across the simulator.
DEFAULT_TX_POWER_DBM = 15.0  # typical consumer AP EIRP
DEFAULT_FREQ_MHZ = 2437.0  # channel 6
DEFAULT_REF_DISTANCE_FT = FEET_PER_METER  # 1 m reference


def dbm_to_ss_units(rssi_dbm: ArrayLike) -> np.ndarray:
    """dBm → positive signal-strength units (``dBm + 100``, floored at 0)."""
    return np.maximum(np.asarray(rssi_dbm, dtype=float) + 100.0, 0.0)


def ss_units_to_dbm(ss: ArrayLike) -> np.ndarray:
    """Positive signal-strength units → dBm."""
    return np.asarray(ss, dtype=float) - 100.0


def free_space_path_loss_db(distance_ft: ArrayLike, freq_mhz: float = DEFAULT_FREQ_MHZ) -> np.ndarray:
    """Friis free-space path loss in dB at ``distance_ft``.

    ``FSPL(dB) = 20·log₁₀(d_km) + 20·log₁₀(f_MHz) + 32.45`` with the
    distance converted from feet.  Distances below 0.1 ft are clamped to
    keep the near-field singularity out of the simulator.
    """
    d_km = np.maximum(np.asarray(distance_ft, dtype=float), 0.1) / FEET_PER_METER / 1000.0
    return 20.0 * np.log10(d_km) + 20.0 * np.log10(freq_mhz) + 32.45


@dataclass(frozen=True)
class FreeSpaceModel:
    """RSSI under Friis free-space propagation."""

    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    freq_mhz: float = DEFAULT_FREQ_MHZ

    def rssi(self, distance_ft: ArrayLike) -> np.ndarray:
        return self.tx_power_dbm - free_space_path_loss_db(distance_ft, self.freq_mhz)


@dataclass(frozen=True)
class LogDistanceModel:
    """Log-distance path loss: the simulator's generative model.

    ``RSSI(d) = P_tx − PL(d₀) − 10·n·log₁₀(d/d₀)``.  The default
    ``PL(d₀)`` is the free-space loss at the 1 m reference distance, and
    ``n = 3.0`` is a typical residential-indoor exponent (RADAR reports
    1.5–4 depending on the site).
    """

    tx_power_dbm: float = DEFAULT_TX_POWER_DBM
    exponent: float = 3.0
    ref_distance_ft: float = DEFAULT_REF_DISTANCE_FT
    ref_loss_db: float = None  # type: ignore[assignment]
    freq_mhz: float = DEFAULT_FREQ_MHZ

    def __post_init__(self):
        if self.exponent <= 0:
            raise ValueError(f"path-loss exponent must be positive, got {self.exponent}")
        if self.ref_distance_ft <= 0:
            raise ValueError(f"reference distance must be positive, got {self.ref_distance_ft}")
        if self.ref_loss_db is None:
            object.__setattr__(
                self,
                "ref_loss_db",
                float(free_space_path_loss_db(self.ref_distance_ft, self.freq_mhz)),
            )

    def path_loss_db(self, distance_ft: ArrayLike) -> np.ndarray:
        d = np.maximum(np.asarray(distance_ft, dtype=float), 0.1)
        return self.ref_loss_db + 10.0 * self.exponent * np.log10(d / self.ref_distance_ft)

    def rssi(self, distance_ft: ArrayLike) -> np.ndarray:
        return self.tx_power_dbm - self.path_loss_db(distance_ft)

    def invert(self, rssi_dbm: ArrayLike) -> np.ndarray:
        """Distance (ft) that would produce ``rssi_dbm`` under this model."""
        loss = self.tx_power_dbm - np.asarray(rssi_dbm, dtype=float)
        return self.ref_distance_ft * 10.0 ** ((loss - self.ref_loss_db) / (10.0 * self.exponent))


@dataclass(frozen=True)
class InverseSquareModel:
    """The paper's fitted form: ``SS = a/d² + b/d + c`` (SS units, d in ft).

    §5.2: "We use a reverse square formula to model this relationship …
    we used least-square regression approach and found the following
    formula for one AP".  An *unconstrained* least-squares fit regularly
    produces a curve that is not globally monotone (e.g. ``a < 0``: the
    curve rises to a peak at ``d* = −2a/b`` and decays beyond it —
    training grids rarely sample the near field densely enough to pin
    the ``1/d²`` term).  :meth:`invert` therefore restricts itself to
    the **monotone-decreasing branch** inside ``[min_distance,
    max_distance]`` — the physically meaningful one, since all usable
    ranging happens beyond the near-field peak — and bisects on it;
    signal strengths outside the branch's range clamp to the branch
    endpoints (hot signal → near edge, weak signal → far edge).
    """

    a: float
    b: float
    c: float
    min_distance_ft: float = 1.0
    max_distance_ft: float = 500.0

    def ss(self, distance_ft: ArrayLike) -> np.ndarray:
        d = np.maximum(np.asarray(distance_ft, dtype=float), 1e-6)
        return self.a / d**2 + self.b / d + self.c

    def monotone_branch(self) -> Tuple[float, float]:
        """The sub-interval of [min, max] where SS(d) strictly decreases.

        ``SS'(d) = −(2a + b·d)/d³``; the only positive critical point is
        ``d* = −2a/b``.  Depending on the signs, the decreasing branch is
        everything, ``d ≥ d*``, or ``d ≤ d*``.
        """
        lo, hi = self.min_distance_ft, self.max_distance_ft
        a, b = self.a, self.b
        if b != 0.0:
            d_star = -2.0 * a / b
            if a < 0 and b > 0 and d_star > lo:
                lo = min(d_star, hi)  # decreasing only beyond the peak
            elif a > 0 and b < 0 and d_star < hi:
                hi = max(d_star, lo)  # decreasing only before the trough
            elif a <= 0 and b <= 0:
                # Monotone *increasing* everywhere: no usable branch; keep
                # the full interval and let clamping handle it.
                pass
        return lo, hi

    def invert(self, ss: ArrayLike) -> np.ndarray:
        """Distance estimate for observed signal strength (SS units)."""
        ss_arr = np.atleast_1d(np.asarray(ss, dtype=float))
        out = np.empty_like(ss_arr)
        for i, s in enumerate(ss_arr):
            out[i] = self._invert_scalar(float(s))
        if np.isscalar(ss) or getattr(ss, "ndim", 1) == 0:
            return out[0]
        return out.reshape(np.shape(ss))

    def _invert_scalar(self, s: float) -> float:
        lo, hi = self.monotone_branch()
        ss_lo, ss_hi = float(self.ss(lo)), float(self.ss(hi))
        if ss_lo <= ss_hi:
            # Degenerate (non-decreasing even on the branch): midpoint is
            # the least-wrong total answer.
            return 0.5 * (lo + hi)
        if s >= ss_lo:
            return lo
        if s <= ss_hi:
            return hi
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if float(self.ss(mid)) > s:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    @property
    def coefficients(self) -> Tuple[float, float, float]:
        return (self.a, self.b, self.c)
