"""Shadowing and temporal fading.

Two distinct randomness scales matter for RSSI fingerprinting, and the
simulator keeps them rigorously separate because the paper's two results
depend on the split:

* **Spatial shadowing** (:class:`ShadowingField`) — a *frozen*,
  spatially correlated log-normal field per AP.  Re-measuring the same
  spot reproduces the same bias; nearby spots see similar bias.  This is
  the site signature that makes fingerprinting (§5.1) work, and the
  model-vs-reality gap that hurts the geometric approach (§5.2).
* **Temporal fading** (:class:`TemporalFading`) — an AR(1) (Gauss–
  Markov) dBm process around the frozen mean, modelling the "unstableness
  of the RF signal strength" the paper calls its largest barrier, plus
  white measurement noise from the NIC's quantizer.

The shadowing field uses random Fourier features: ``K`` cosines with
Gaussian-distributed wave vectors give a stationary Gaussian process
with (approximately) squared-exponential covariance and correlation
length ``correlation_ft`` — fully vectorized over query positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.parallel.rng import RngLike, resolve_rng

ArrayLike = Union[float, np.ndarray]


class ShadowingField:
    """Frozen spatially-correlated shadowing, in dB.

    ``sigma_db`` is the marginal standard deviation; ``correlation_ft``
    the distance at which correlation has substantially decayed.  The
    field is deterministic given its seed: every query of the same
    position returns the same value, which is the physical property
    (stable site-specific multipath bias) fingerprinting relies on.
    """

    def __init__(
        self,
        sigma_db: float = 4.0,
        correlation_ft: float = 8.0,
        n_features: int = 128,
        rng: RngLike = None,
    ):
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be non-negative, got {sigma_db}")
        if correlation_ft <= 0:
            raise ValueError(f"correlation_ft must be positive, got {correlation_ft}")
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.sigma_db = float(sigma_db)
        self.correlation_ft = float(correlation_ft)
        gen = resolve_rng(rng)
        # RBF kernel k(r)=exp(-r²/2ℓ²) has spectral density N(0, 1/ℓ² I).
        self._omega = gen.normal(0.0, 1.0 / correlation_ft, size=(n_features, 2))
        self._phase = gen.uniform(0.0, 2.0 * np.pi, size=n_features)
        self._amp = sigma_db * np.sqrt(2.0 / n_features)

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        """Shadowing in dB at ``positions`` of shape ``(..., 2)`` feet."""
        pos = np.asarray(positions, dtype=float)
        if pos.shape[-1] != 2:
            raise ValueError(f"positions must have trailing dimension 2, got shape {pos.shape}")
        if self.sigma_db == 0.0:
            return np.zeros(pos.shape[:-1])
        proj = pos @ self._omega.T + self._phase  # (..., K)
        return self._amp * np.cos(proj).sum(axis=-1)


@dataclass
class TemporalFading:
    """AR(1) fluctuation of RSSI around its frozen mean, plus white noise.

    ``x_{t+1} = ρ·x_t + √(1−ρ²)·σ·ε`` with ``ρ = exp(−Δt/τ)``; each
    reported sample adds independent ``noise_db`` measurement noise and
    is quantized to ``quantize_db`` steps (NICs report integer dBm).
    """

    sigma_db: float = 2.5
    timescale_s: float = 6.0
    noise_db: float = 1.0
    quantize_db: float = 1.0

    def __post_init__(self):
        if self.sigma_db < 0 or self.noise_db < 0:
            raise ValueError("fading and noise sigmas must be non-negative")
        if self.timescale_s <= 0:
            raise ValueError(f"timescale must be positive, got {self.timescale_s}")
        if self.quantize_db < 0:
            raise ValueError(f"quantize_db must be non-negative, got {self.quantize_db}")

    def sample_series(
        self,
        mean_dbm: ArrayLike,
        n_samples: int,
        interval_s: float,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Sample a fading time series.

        ``mean_dbm`` may be scalar (one AP, one spot) or shape ``(m,)``
        (m APs observed simultaneously — their fading processes are
        independent).  Returns shape ``(n_samples,)`` or
        ``(n_samples, m)``.
        """
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative, got {n_samples}")
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        gen = resolve_rng(rng)
        mean = np.asarray(mean_dbm, dtype=float)
        shape = (n_samples,) + mean.shape
        if n_samples == 0:
            return np.empty(shape)
        rho = float(np.exp(-interval_s / self.timescale_s))
        innovations = gen.normal(0.0, 1.0, size=shape)
        x = np.empty(shape)
        x[0] = self.sigma_db * innovations[0]
        scale = self.sigma_db * np.sqrt(1.0 - rho * rho)
        for t in range(1, n_samples):
            x[t] = rho * x[t - 1] + scale * innovations[t]
        out = mean + x
        if self.noise_db > 0:
            out = out + gen.normal(0.0, self.noise_db, size=shape)
        if self.quantize_db > 0:
            out = np.round(out / self.quantize_db) * self.quantize_db
        return out

    def stationary_std(self) -> float:
        """Marginal std of a reported sample (fading ⊕ measurement noise)."""
        return float(np.hypot(self.sigma_db, self.noise_db))
