"""A simulated scanning NIC.

The paper leans on "a third-party signal strength detecting system" that
periodically scans for beacons and reports per-AP RSSI.  This module is
that system's simulator twin: :class:`SimulatedScanner` runs timed scan
sessions against a :class:`~repro.radio.environment.RadioEnvironment`
and yields :class:`ScanReading` records carrying exactly the fields a
2000s-era wardriving tool logged — timestamp, BSSID, SSID, channel,
RSSI — which the wi-scan file layer then serializes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Point
from repro.parallel.rng import RngLike, resolve_rng
from repro.radio.environment import RadioEnvironment

# Same identity contract as repro.wiscan.format.WiScanRecord (duplicated
# rather than imported: wiscan.capture imports this module, so importing
# the wiscan package from here would be a cycle).  Malformed simulator
# output must die here, at the source, not later at serialization.
_BSSID_RE = re.compile(r"^[0-9a-f]{2}(:[0-9a-f]{2}){5}$")


@dataclass(frozen=True)
class ScanReading:
    """One AP sighting within one scan sweep."""

    timestamp_s: float
    bssid: str
    ssid: str
    channel: int
    rssi_dbm: float

    def __post_init__(self):
        if self.timestamp_s < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp_s}")
        bssid = self.bssid.lower()
        if not _BSSID_RE.match(bssid):
            raise ValueError(f"invalid BSSID {self.bssid!r}")
        object.__setattr__(self, "bssid", bssid)
        if not 1 <= self.channel <= 196:
            raise ValueError(f"invalid channel {self.channel}")
        if not -120.0 <= self.rssi_dbm <= 0.0:
            raise ValueError(f"implausible RSSI {self.rssi_dbm} dBm (expected [-120, 0])")


@dataclass(frozen=True)
class ScanSweep:
    """One scan sweep: all APs heard at one instant."""

    timestamp_s: float
    readings: Tuple[ScanReading, ...]

    def rssi_of(self, bssid: str) -> Optional[float]:
        for r in self.readings:
            if r.bssid == bssid:
                return r.rssi_dbm
        return None


class SimulatedScanner:
    """Runs scan sessions at positions inside a radio environment.

    ``interval_s`` is the sweep period (the paper's tooling sampled for
    "1.5 minutes" per training point; at the default 1 s period that is
    90 sweeps).
    """

    def __init__(self, environment: RadioEnvironment, interval_s: float = 1.0):
        if interval_s <= 0:
            raise ValueError(f"scan interval must be positive, got {interval_s}")
        self.environment = environment
        self.interval_s = float(interval_s)

    def scan_session(
        self,
        position,
        duration_s: float,
        rng: RngLike = None,
        start_time_s: float = 0.0,
    ) -> List[ScanSweep]:
        """Scan at ``position`` for ``duration_s`` seconds.

        Returns one :class:`ScanSweep` per period; APs missed in a sweep
        simply don't appear in it (exactly how real scan logs look).
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        gen = resolve_rng(rng)
        n = int(duration_s // self.interval_s)
        matrix = self.environment.sample_rssi(position, n, self.interval_s, rng=gen)
        sweeps: List[ScanSweep] = []
        for t in range(n):
            ts = start_time_s + t * self.interval_s
            readings = tuple(
                ScanReading(
                    timestamp_s=ts,
                    bssid=ap.bssid,
                    ssid=ap.ssid,
                    channel=ap.channel,
                    rssi_dbm=float(np.clip(matrix[t, j], -120.0, 0.0)),
                )
                for j, ap in enumerate(self.environment.aps)
                if np.isfinite(matrix[t, j])
            )
            sweeps.append(ScanSweep(timestamp_s=ts, readings=readings))
        return sweeps

    def walk_session(
        self,
        waypoints: Sequence[Point],
        speed_ft_s: float = 3.0,
        rng: RngLike = None,
    ) -> List[Tuple[Point, ScanSweep]]:
        """Scan continuously while walking a waypoint path.

        Used by the tracking extensions: returns ``(true position,
        sweep)`` pairs at every scan period along the piecewise-linear
        path walked at ``speed_ft_s``.
        """
        if speed_ft_s <= 0:
            raise ValueError(f"speed must be positive, got {speed_ft_s}")
        if len(waypoints) < 2:
            raise ValueError("walk needs at least two waypoints")
        gen = resolve_rng(rng)
        out: List[Tuple[Point, ScanSweep]] = []
        t_now = 0.0
        for a, b in zip(waypoints[:-1], waypoints[1:]):
            leg_len = a.distance_to(b)
            leg_time = leg_len / speed_ft_s
            n_here = max(1, int(leg_time // self.interval_s))
            for k in range(n_here):
                frac = (k * self.interval_s) / leg_time if leg_time > 0 else 0.0
                frac = min(1.0, frac)
                pos = a + (b - a) * frac
                sweep = self.scan_session(pos, self.interval_s, rng=gen, start_time_s=t_now)[0]
                out.append((pos, sweep))
                t_now += self.interval_s
        return out
