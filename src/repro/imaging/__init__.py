"""Pure-Python/NumPy imaging substrate.

The toolkit's Floor Plan Processor and Compositor (paper §4.1–4.2) read
and write **GIF** floor-plan images ("Currently only GIF format is
accepted").  No third-party imaging library is available offline, so this
package implements everything the toolkit needs from scratch:

* :mod:`repro.imaging.raster` — an RGB raster backed by a NumPy array
  with vectorized drawing primitives (lines, circles, rectangles,
  markers, flood fill).
* :mod:`repro.imaging.lzw` — GIF-variant LZW compression with dynamic
  code width, clear/EOI codes.
* :mod:`repro.imaging.gif` — GIF87a/89a decoder and encoder (interlace,
  local/global palettes, multiple image blocks, comment/graphic-control
  extensions).
* :mod:`repro.imaging.palette` — median-cut color quantization so any
  raster can be exported to a ≤256-color GIF.
* :mod:`repro.imaging.font` — a 5×7 bitmap font for labelling floor
  plans (AP names, location names, legends).
* :mod:`repro.imaging.pnm` — PPM/PGM codecs (handy for debugging and as
  a non-GIF interchange path).
* :mod:`repro.imaging.blueprint` — synthetic architectural floor-plan
  drawings standing in for the paper's scanned blueprints.
"""

from repro.imaging.raster import Raster, Color
from repro.imaging.gif import decode_gif, encode_gif, read_gif, write_gif
from repro.imaging.pnm import read_pnm, write_ppm
from repro.imaging.palette import quantize, build_palette

__all__ = [
    "Raster",
    "Color",
    "decode_gif",
    "encode_gif",
    "read_gif",
    "write_gif",
    "read_pnm",
    "write_ppm",
    "quantize",
    "build_palette",
]
