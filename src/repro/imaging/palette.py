"""Color palettes and median-cut quantization.

GIF limits images to 256 colors.  Toolkit-rendered floor plans use a few
dozen flat colors, so :func:`quantize` first tries *exact* palettization
(unique colors → indices, lossless); only when an image exceeds the
color budget does it fall back to median-cut quantization with
nearest-palette-entry mapping.  Both paths are fully vectorized.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _as_pixel_array(pixels: np.ndarray) -> np.ndarray:
    arr = np.asarray(pixels)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3) pixel array, got shape {arr.shape}")
    return np.ascontiguousarray(arr, dtype=np.uint8)


def _pack(flat: np.ndarray) -> np.ndarray:
    """Pack (n, 3) uint8 colors into single int32 keys for fast uniquing."""
    f = flat.astype(np.int32)
    return (f[:, 0] << 16) | (f[:, 1] << 8) | f[:, 2]


def exact_palette(pixels: np.ndarray, max_colors: int = 256):
    """Exact palettization if the image has ≤ ``max_colors`` distinct colors.

    Returns ``(indices, palette)`` or ``None`` when over budget.
    """
    arr = _as_pixel_array(pixels)
    h, w, _ = arr.shape
    flat = arr.reshape(-1, 3)
    keys = _pack(flat)
    uniq, inverse = np.unique(keys, return_inverse=True)
    if uniq.size > max_colors:
        return None
    palette = np.stack(
        [(uniq >> 16) & 0xFF, (uniq >> 8) & 0xFF, uniq & 0xFF], axis=1
    ).astype(np.uint8)
    return inverse.reshape(h, w).astype(np.uint8), palette


def build_palette(pixels: np.ndarray, max_colors: int = 256) -> np.ndarray:
    """Median-cut palette of at most ``max_colors`` colors.

    Classic box-splitting: repeatedly split the box with the widest
    channel range at the median of that channel, then average each box.
    Works on the image's *unique* colors weighted by frequency, which
    keeps the boxes small regardless of image size.
    """
    if max_colors < 2:
        raise ValueError(f"max_colors must be >= 2, got {max_colors}")
    arr = _as_pixel_array(pixels)
    flat = arr.reshape(-1, 3)
    keys = _pack(flat)
    uniq_keys, counts = np.unique(keys, return_counts=True)
    colors = np.stack(
        [(uniq_keys >> 16) & 0xFF, (uniq_keys >> 8) & 0xFF, uniq_keys & 0xFF], axis=1
    ).astype(np.float64)

    if len(colors) <= max_colors:
        return colors.astype(np.uint8)

    boxes: List[Tuple[np.ndarray, np.ndarray]] = [(colors, counts.astype(np.float64))]
    while len(boxes) < max_colors:
        # Split the box with the largest channel spread that is splittable.
        spreads = [np.ptp(b[0], axis=0).max() if len(b[0]) > 1 else -1.0 for b in boxes]
        idx = int(np.argmax(spreads))
        if spreads[idx] <= 0:
            break
        box_colors, box_counts = boxes.pop(idx)
        channel = int(np.argmax(np.ptp(box_colors, axis=0)))
        order = np.argsort(box_colors[:, channel], kind="stable")
        box_colors, box_counts = box_colors[order], box_counts[order]
        # Split at the weighted median so both halves carry similar mass.
        cum = np.cumsum(box_counts)
        split = int(np.searchsorted(cum, cum[-1] / 2.0)) + 1
        split = min(max(split, 1), len(box_colors) - 1)
        boxes.append((box_colors[:split], box_counts[:split]))
        boxes.append((box_colors[split:], box_counts[split:]))

    palette = np.array(
        [
            np.average(box_colors, axis=0, weights=box_counts)
            for box_colors, box_counts in boxes
        ]
    )
    return np.clip(np.rint(palette), 0, 255).astype(np.uint8)


def map_to_palette(pixels: np.ndarray, palette: np.ndarray) -> np.ndarray:
    """Map each pixel to its nearest palette entry (squared-RGB metric).

    Vectorized in chunks to bound the (pixels × palette) distance matrix
    memory, per the cache-friendliness advice in the optimization guides.
    """
    arr = _as_pixel_array(pixels)
    h, w, _ = arr.shape
    flat = arr.reshape(-1, 3).astype(np.int32)
    pal = np.asarray(palette, dtype=np.int32)
    out = np.empty(flat.shape[0], dtype=np.uint8)
    chunk = max(1, (1 << 22) // max(1, pal.shape[0]))  # ~4M cells per chunk
    for start in range(0, flat.shape[0], chunk):
        block = flat[start : start + chunk]
        d2 = ((block[:, None, :] - pal[None, :, :]) ** 2).sum(axis=2)
        out[start : start + chunk] = d2.argmin(axis=1).astype(np.uint8)
    return out.reshape(h, w)


def quantize(pixels: np.ndarray, max_colors: int = 256) -> Tuple[np.ndarray, np.ndarray]:
    """Palettize an RGB image: exact when possible, median-cut otherwise.

    Returns ``(indices, palette)`` with ``indices`` of shape ``(h, w)``
    uint8 and ``palette`` of shape ``(n, 3)`` uint8, ``n <= max_colors``.
    """
    if not 2 <= max_colors <= 256:
        raise ValueError(f"max_colors must be in [2, 256], got {max_colors}")
    exact = exact_palette(pixels, max_colors)
    if exact is not None:
        return exact
    palette = build_palette(pixels, max_colors)
    indices = map_to_palette(pixels, palette)
    return indices, palette
