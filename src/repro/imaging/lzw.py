"""GIF-variant LZW compression.

GIF image data is LZW-compressed with a *variable code width*: codes
start at ``min_code_size + 1`` bits and grow as the string table fills,
up to 12 bits, with two reserved codes — CLEAR (``2**min_code_size``)
resets the table, and END-OF-INFORMATION (``CLEAR + 1``) terminates the
stream.  Codes are packed into bytes **least-significant-bit first**.

The encoder represents the current string by its table code and extends
it via a ``(prefix_code, symbol) -> code`` dict, so compression is O(1)
amortized per input symbol; the decoder's table is a list of ``bytes``.
LZW is inherently sequential (each step depends on the table state from
the previous step), so per the optimization guides we keep the inner
loop small and branch-light rather than pretending to vectorize it.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

MAX_CODE_WIDTH = 12
MAX_TABLE_SIZE = 1 << MAX_CODE_WIDTH  # 4096


class LZWError(ValueError):
    """Raised when an LZW stream is malformed."""


class _BitWriter:
    """Packs variable-width codes into bytes, LSB first (GIF order)."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, code: int, width: int) -> None:
        self._acc |= code << self._nbits
        self._nbits += width
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def finish(self) -> bytes:
        if self._nbits > 0:
            self._out.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0
        return bytes(self._out)


class _BitReader:
    """Reads variable-width codes from bytes, LSB first (GIF order)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read(self, width: int) -> int:
        """Read one ``width``-bit code; raises :class:`LZWError` at EOF."""
        while self._nbits < width:
            if self._pos >= len(self._data):
                raise LZWError("LZW stream truncated (ran out of bits)")
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        code = self._acc & ((1 << width) - 1)
        self._acc >>= width
        self._nbits -= width
        return code

    def exhausted(self, width: int) -> bool:
        """True when fewer than ``width`` bits remain."""
        return self._nbits + 8 * (len(self._data) - self._pos) < width


def compress(indices: Sequence[int], min_code_size: int) -> bytes:
    """LZW-compress a sequence of palette indices.

    ``min_code_size`` must be in [2, 8] (the GIF range) and every index
    must be < ``2**min_code_size``.  The output begins with a CLEAR code
    and ends with END-OF-INFORMATION, as the GIF spec requires.
    """
    if not 2 <= min_code_size <= 8:
        raise LZWError(f"min_code_size must be in [2, 8], got {min_code_size}")
    data = np.asarray(indices, dtype=np.int64).ravel()
    n_symbols = 1 << min_code_size
    if data.size and (data.min() < 0 or data.max() >= n_symbols):
        raise LZWError(
            f"index out of range for min_code_size={min_code_size}: "
            f"values must be in [0, {n_symbols - 1}]"
        )
    clear = n_symbols
    eoi = clear + 1

    writer = _BitWriter()
    code_width = min_code_size + 1
    table = {}
    next_code = eoi + 1
    writer.write(clear, code_width)

    if data.size == 0:
        writer.write(eoi, code_width)
        return writer.finish()

    prefix = int(data[0])  # current string, represented by its code
    for symbol in data[1:].tolist():
        key = (prefix, symbol)
        extended = table.get(key)
        if extended is not None:
            prefix = extended
            continue
        writer.write(prefix, code_width)
        if next_code < MAX_TABLE_SIZE:
            table[key] = next_code
            next_code += 1
            # Encoder widens one step ahead of the decoder (the decoder
            # adds its matching entry only after *reading* this code).
            if next_code == (1 << code_width) + 1 and code_width < MAX_CODE_WIDTH:
                code_width += 1
            if next_code == MAX_TABLE_SIZE:
                writer.write(clear, code_width)
                table.clear()
                next_code = eoi + 1
                code_width = min_code_size + 1
        prefix = symbol
    writer.write(prefix, code_width)
    writer.write(eoi, code_width)
    return writer.finish()


def decompress(payload: bytes, min_code_size: int, expected_length: int = None) -> np.ndarray:
    """Decode a GIF LZW stream back into palette indices.

    Stops at END-OF-INFORMATION, or — tolerating encoders that omit it —
    when ``expected_length`` indices have been produced or the bit stream
    runs dry.  Returns a ``uint8`` array.
    """
    if not 2 <= min_code_size <= 8:
        raise LZWError(f"min_code_size must be in [2, 8], got {min_code_size}")
    n_symbols = 1 << min_code_size
    clear = n_symbols
    eoi = clear + 1

    base_table: List[bytes] = [bytes([i]) for i in range(n_symbols)]
    base_table += [b"", b""]  # placeholders for CLEAR / EOI slots

    reader = _BitReader(payload)
    out = bytearray()

    table = list(base_table)
    code_width = min_code_size + 1
    next_code = eoi + 1
    prev: int = -1  # -1 = expecting first code after a clear

    while True:
        if expected_length is not None and len(out) >= expected_length:
            break
        if reader.exhausted(code_width):
            break
        code = reader.read(code_width)
        if code == clear:
            table = list(base_table)
            code_width = min_code_size + 1
            next_code = eoi + 1
            prev = -1
            continue
        if code == eoi:
            break
        if prev == -1:
            if code >= len(table) or code >= clear:
                raise LZWError(f"first code after clear must be a literal, got {code}")
            out += table[code]
            prev = code
            continue
        if code < next_code:
            if code >= len(table):
                raise LZWError(f"code {code} references empty table slot")
            entry = table[code]
        elif code == next_code:
            entry = table[prev] + table[prev][:1]
        else:
            raise LZWError(f"code {code} is beyond the table (next={next_code})")
        out += entry
        if next_code < MAX_TABLE_SIZE:
            table.append(table[prev] + entry[:1])
            next_code += 1
            if next_code == (1 << code_width) and code_width < MAX_CODE_WIDTH:
                code_width += 1
        prev = code

    if expected_length is not None and len(out) > expected_length:
        del out[expected_length:]
    return np.frombuffer(bytes(out), dtype=np.uint8)
