"""RGB raster with vectorized drawing primitives.

A :class:`Raster` wraps an ``(height, width, 3) uint8`` NumPy array and
offers the drawing operations the Floor Plan Processor/Compositor need:
straight lines (Bresenham, vectorized over the long axis), axis-aligned
rectangles, filled and outlined circles, cross/X/diamond markers, flood
fill, alpha blending, and blitting.  Coordinates are ``(x, y)`` pixels
with the origin at the **top-left** (image convention); the floor-plan
layer converts from floor feet to pixels.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Color = Tuple[int, int, int]

# A small named palette used across the toolkit's rendering code.
BLACK: Color = (0, 0, 0)
WHITE: Color = (255, 255, 255)
RED: Color = (220, 38, 38)
GREEN: Color = (22, 163, 74)
BLUE: Color = (37, 99, 235)
ORANGE: Color = (234, 118, 0)
PURPLE: Color = (147, 51, 234)
GRAY: Color = (120, 120, 120)
LIGHT_GRAY: Color = (210, 210, 210)
DARK_BLUE: Color = (30, 58, 138)


def _validate_color(color: Sequence[int]) -> np.ndarray:
    arr = np.asarray(color, dtype=np.int64)
    if arr.shape != (3,):
        raise ValueError(f"color must be an RGB triple, got {color!r}")
    if (arr < 0).any() or (arr > 255).any():
        raise ValueError(f"color channels must be in [0, 255], got {color!r}")
    return arr.astype(np.uint8)


class Raster:
    """A mutable RGB image backed by a ``(h, w, 3) uint8`` array."""

    def __init__(self, width: int, height: int, background: Color = WHITE):
        if width <= 0 or height <= 0:
            raise ValueError(f"raster dimensions must be positive, got {width}x{height}")
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.pixels[:] = _validate_color(background)

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_array(cls, array: np.ndarray) -> "Raster":
        """Wrap an existing array.  Grayscale ``(h, w)`` is broadcast to RGB."""
        arr = np.asarray(array)
        if arr.ndim == 2:
            arr = np.repeat(arr[:, :, None], 3, axis=2)
        if arr.ndim != 3 or arr.shape[2] != 3:
            raise ValueError(f"expected (h, w, 3) or (h, w) array, got shape {arr.shape}")
        r = cls.__new__(cls)
        r.pixels = np.ascontiguousarray(arr, dtype=np.uint8)
        return r

    def copy(self) -> "Raster":
        return Raster.from_array(self.pixels.copy())

    @property
    def width(self) -> int:
        return self.pixels.shape[1]

    @property
    def height(self) -> int:
        return self.pixels.shape[0]

    @property
    def size(self) -> Tuple[int, int]:
        return (self.width, self.height)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Raster):
            return NotImplemented
        return self.pixels.shape == other.pixels.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __repr__(self) -> str:
        return f"Raster({self.width}x{self.height})"

    # ------------------------------------------------------------------
    # pixel access
    # ------------------------------------------------------------------
    def get(self, x: int, y: int) -> Color:
        if not self.in_bounds(x, y):
            raise IndexError(f"pixel ({x}, {y}) outside {self.width}x{self.height} raster")
        return tuple(int(v) for v in self.pixels[y, x])  # type: ignore[return-value]

    def set(self, x: int, y: int, color: Color) -> None:
        if self.in_bounds(x, y):
            self.pixels[y, x] = _validate_color(color)

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def fill(self, color: Color) -> None:
        self.pixels[:] = _validate_color(color)

    def _put(self, xs: np.ndarray, ys: np.ndarray, color: Color) -> None:
        """Write ``color`` at all in-bounds (xs, ys) pixel coordinates."""
        xs = np.asarray(xs, dtype=np.int64).ravel()
        ys = np.asarray(ys, dtype=np.int64).ravel()
        keep = (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
        self.pixels[ys[keep], xs[keep]] = _validate_color(color)

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def draw_line(self, x0: int, y0: int, x1: int, y1: int, color: Color, thickness: int = 1) -> None:
        """Draw a straight segment.

        Implemented by sampling the major axis densely (vectorized),
        which matches Bresenham output for thickness 1 and generalizes to
        thick lines via perpendicular offsets.
        """
        x0, y0, x1, y1 = int(x0), int(y0), int(x1), int(y1)
        n = max(abs(x1 - x0), abs(y1 - y0)) + 1
        xs = np.rint(np.linspace(x0, x1, n)).astype(np.int64)
        ys = np.rint(np.linspace(y0, y1, n)).astype(np.int64)
        if thickness <= 1:
            self._put(xs, ys, color)
            return
        # Offset copies of the center line across the perpendicular.
        r = (thickness - 1) / 2.0
        offsets = np.arange(-int(np.ceil(r)), int(np.ceil(r)) + 1)
        dx, dy = x1 - x0, y1 - y0
        if abs(dx) >= abs(dy):  # mostly horizontal: offset in y
            all_x = np.repeat(xs, offsets.size)
            all_y = (ys[:, None] + offsets[None, :]).ravel()
        else:
            all_x = (xs[:, None] + offsets[None, :]).ravel()
            all_y = np.repeat(ys, offsets.size)
        self._put(all_x, all_y, color)

    def draw_polyline(self, points: Sequence[Tuple[int, int]], color: Color, thickness: int = 1) -> None:
        for (x0, y0), (x1, y1) in zip(points[:-1], points[1:]):
            self.draw_line(x0, y0, x1, y1, color, thickness)

    def draw_rect(self, x0: int, y0: int, x1: int, y1: int, color: Color, thickness: int = 1) -> None:
        """Axis-aligned rectangle outline with corners (x0,y0)-(x1,y1)."""
        self.draw_line(x0, y0, x1, y0, color, thickness)
        self.draw_line(x1, y0, x1, y1, color, thickness)
        self.draw_line(x1, y1, x0, y1, color, thickness)
        self.draw_line(x0, y1, x0, y0, color, thickness)

    def fill_rect(self, x0: int, y0: int, x1: int, y1: int, color: Color) -> None:
        xa, xb = sorted((int(x0), int(x1)))
        ya, yb = sorted((int(y0), int(y1)))
        xa, ya = max(xa, 0), max(ya, 0)
        xb, yb = min(xb, self.width - 1), min(yb, self.height - 1)
        if xa > xb or ya > yb:
            return
        self.pixels[ya : yb + 1, xa : xb + 1] = _validate_color(color)

    def _disk_mask(self, cx: int, cy: int, radius: float) -> Tuple[np.ndarray, np.ndarray]:
        r = int(np.ceil(radius))
        ys, xs = np.mgrid[cy - r : cy + r + 1, cx - r : cx + r + 1]
        inside = (xs - cx) ** 2 + (ys - cy) ** 2 <= radius * radius
        return xs[inside], ys[inside]

    def fill_circle(self, cx: int, cy: int, radius: float, color: Color) -> None:
        xs, ys = self._disk_mask(int(cx), int(cy), radius)
        self._put(xs, ys, color)

    def draw_circle(self, cx: int, cy: int, radius: float, color: Color, thickness: int = 1) -> None:
        """Circle outline: an annulus mask of width ``thickness``."""
        cx, cy = int(cx), int(cy)
        r_out = radius + thickness / 2.0
        r_in = max(0.0, radius - thickness / 2.0)
        r = int(np.ceil(r_out))
        ys, xs = np.mgrid[cy - r : cy + r + 1, cx - r : cx + r + 1]
        d2 = (xs - cx) ** 2 + (ys - cy) ** 2
        ring = (d2 <= r_out * r_out) & (d2 >= r_in * r_in)
        self._put(xs[ring], ys[ring], color)

    def draw_cross(self, cx: int, cy: int, arm: int, color: Color, thickness: int = 1) -> None:
        """A ``+`` marker (the Compositor's mark for true locations)."""
        self.draw_line(cx - arm, cy, cx + arm, cy, color, thickness)
        self.draw_line(cx, cy - arm, cx, cy + arm, color, thickness)

    def draw_x(self, cx: int, cy: int, arm: int, color: Color, thickness: int = 1) -> None:
        """An ``x`` marker (the Compositor's mark for estimated locations)."""
        self.draw_line(cx - arm, cy - arm, cx + arm, cy + arm, color, thickness)
        self.draw_line(cx - arm, cy + arm, cx + arm, cy - arm, color, thickness)

    def draw_diamond(self, cx: int, cy: int, arm: int, color: Color, thickness: int = 1) -> None:
        self.draw_polyline(
            [(cx, cy - arm), (cx + arm, cy), (cx, cy + arm), (cx - arm, cy), (cx, cy - arm)],
            color,
            thickness,
        )

    def flood_fill(self, x: int, y: int, color: Color) -> int:
        """Fill the 4-connected region of identical color containing (x, y).

        Returns the number of pixels recolored.  Implemented with a
        scanline stack (no recursion) so large rooms fill quickly.
        """
        if not self.in_bounds(x, y):
            return 0
        target = self.pixels[y, x].copy()
        new = _validate_color(color)
        if np.array_equal(target, new):
            return 0
        h, w = self.height, self.width
        px = self.pixels
        filled = 0
        stack = [(x, y)]
        while stack:
            sx, sy = stack.pop()
            if not (0 <= sy < h) or not np.array_equal(px[sy, sx], target):
                continue
            # Expand to the full horizontal run through (sx, sy).
            left = sx
            while left > 0 and np.array_equal(px[sy, left - 1], target):
                left -= 1
            right = sx
            while right < w - 1 and np.array_equal(px[sy, right + 1], target):
                right += 1
            px[sy, left : right + 1] = new
            filled += right - left + 1
            for ny in (sy - 1, sy + 1):
                if 0 <= ny < h:
                    run = left
                    while run <= right:
                        if np.array_equal(px[ny, run], target):
                            stack.append((run, ny))
                            while run <= right and np.array_equal(px[ny, run], target):
                                run += 1
                        else:
                            run += 1
        return filled

    def blend_rect(self, x0: int, y0: int, x1: int, y1: int, color: Color, alpha: float) -> None:
        """Alpha-blend a translucent rectangle (used for legends)."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        xa, xb = sorted((int(x0), int(x1)))
        ya, yb = sorted((int(y0), int(y1)))
        xa, ya = max(xa, 0), max(ya, 0)
        xb, yb = min(xb, self.width - 1), min(yb, self.height - 1)
        if xa > xb or ya > yb:
            return
        region = self.pixels[ya : yb + 1, xa : xb + 1].astype(np.float64)
        tint = _validate_color(color).astype(np.float64)
        blended = region * (1.0 - alpha) + tint * alpha
        self.pixels[ya : yb + 1, xa : xb + 1] = np.clip(np.rint(blended), 0, 255).astype(np.uint8)

    def blit(self, other: "Raster", x: int, y: int) -> None:
        """Paste ``other`` with its top-left corner at (x, y), clipped."""
        x, y = int(x), int(y)
        sx0, sy0 = max(0, -x), max(0, -y)
        dx0, dy0 = max(0, x), max(0, y)
        w = min(other.width - sx0, self.width - dx0)
        h = min(other.height - sy0, self.height - dy0)
        if w <= 0 or h <= 0:
            return
        self.pixels[dy0 : dy0 + h, dx0 : dx0 + w] = other.pixels[sy0 : sy0 + h, sx0 : sx0 + w]

    # ------------------------------------------------------------------
    # analysis helpers (used by tests and the palette builder)
    # ------------------------------------------------------------------
    def unique_colors(self) -> np.ndarray:
        """Distinct colors present, as an ``(n, 3) uint8`` array."""
        flat = self.pixels.reshape(-1, 3)
        return np.unique(flat, axis=0)

    def count_color(self, color: Color) -> int:
        target = _validate_color(color)
        return int((self.pixels == target).all(axis=2).sum())

    def scaled(self, factor: int) -> "Raster":
        """Integer nearest-neighbour upscale (for readable small plans)."""
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {factor}")
        up = np.repeat(np.repeat(self.pixels, factor, axis=0), factor, axis=1)
        return Raster.from_array(up)
