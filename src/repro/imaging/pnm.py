"""PPM / PGM (netpbm) codecs.

The toolkit's interchange format is GIF (per the paper), but the netpbm
formats are invaluable for debugging rendered plans — they are trivially
inspectable — and give tests a second, independent round-trip path.
Supports binary (``P5``/``P6``) and ASCII (``P2``/``P3``) variants with
maxval ≤ 255, including comment lines in headers.
"""

from __future__ import annotations

import re
from typing import Union

import numpy as np

from repro.imaging.raster import Raster


class PnmError(ValueError):
    """Raised when a netpbm stream is malformed."""


_TOKEN = re.compile(rb"(?:^|\s)(?:#[^\n]*\n\s*)*([0-9]+|P[2356])")


def _read_tokens(data: bytes, count: int):
    """Read ``count`` whitespace-separated header tokens, skipping comments."""
    tokens = []
    pos = 0
    while len(tokens) < count:
        m = _TOKEN.match(data, pos) or _TOKEN.search(data, pos)
        if m is None:
            raise PnmError("truncated netpbm header")
        tokens.append(m.group(1))
        pos = m.end()
    return tokens, pos


def write_ppm(path, raster: Raster, binary: bool = True) -> None:
    """Write an RGB raster as PPM (``P6`` binary or ``P3`` ASCII)."""
    with open(path, "wb") as fh:
        fh.write(encode_ppm(raster, binary=binary))


def encode_ppm(raster: Raster, binary: bool = True) -> bytes:
    header = f"{'P6' if binary else 'P3'}\n{raster.width} {raster.height}\n255\n"
    if binary:
        return header.encode("ascii") + raster.pixels.tobytes()
    body = "\n".join(
        " ".join(str(int(v)) for v in row.ravel()) for row in raster.pixels
    )
    return (header + body + "\n").encode("ascii")


def encode_pgm(gray: np.ndarray, binary: bool = True) -> bytes:
    """Encode a ``(h, w)`` grayscale array as PGM."""
    arr = np.ascontiguousarray(gray, dtype=np.uint8)
    if arr.ndim != 2:
        raise PnmError(f"PGM requires a 2-D array, got shape {arr.shape}")
    header = f"{'P5' if binary else 'P2'}\n{arr.shape[1]} {arr.shape[0]}\n255\n"
    if binary:
        return header.encode("ascii") + arr.tobytes()
    body = "\n".join(" ".join(str(int(v)) for v in row) for row in arr)
    return (header + body + "\n").encode("ascii")


def decode_pnm(data: bytes) -> Raster:
    """Decode P2/P3/P5/P6 bytes to an RGB raster (grayscale broadcast)."""
    if not data[:2] in (b"P2", b"P3", b"P5", b"P6"):
        raise PnmError(f"not a supported netpbm stream (magic {data[:2]!r})")
    magic = data[:2].decode("ascii")
    tokens, pos = _read_tokens(data, 4)
    width, height, maxval = (int(t) for t in tokens[1:4])
    if width <= 0 or height <= 0:
        raise PnmError(f"invalid dimensions {width}x{height}")
    if not 0 < maxval <= 255:
        raise PnmError(f"unsupported maxval {maxval} (only <= 255)")
    channels = 3 if magic in ("P3", "P6") else 1
    n_values = width * height * channels

    if magic in ("P5", "P6"):
        body = data[pos + 1 : pos + 1 + n_values]  # single whitespace after maxval
        if len(body) < n_values:
            raise PnmError("truncated binary netpbm body")
        values = np.frombuffer(body, dtype=np.uint8).astype(np.int64)
    else:
        text = data[pos:].decode("ascii", errors="replace")
        text = re.sub(r"#[^\n]*", "", text)
        parsed = [int(t) for t in text.split()]
        if len(parsed) < n_values:
            raise PnmError(
                f"ASCII netpbm body has {len(parsed)} values, expected {n_values}"
            )
        values = np.array(parsed[:n_values], dtype=np.int64)

    if values.max(initial=0) > maxval:
        raise PnmError("sample value exceeds declared maxval")
    if maxval != 255:
        values = values * 255 // maxval
    if channels == 1:
        gray = values.reshape(height, width).astype(np.uint8)
        return Raster.from_array(gray)
    return Raster.from_array(values.reshape(height, width, 3).astype(np.uint8))


def read_pnm(path) -> Raster:
    """Read any supported netpbm file into an RGB raster."""
    with open(path, "rb") as fh:
        return decode_pnm(fh.read())
