"""GIF87a / GIF89a decoder and encoder, from scratch.

The paper's Floor Plan Processor accepts *only* GIF floor plans, so the
toolkit needs a real GIF codec.  This module implements the subset of
the GIF specification the toolkit exercises, plus enough generality to
read typical scanned-blueprint files:

* logical screen descriptor, global and local color tables,
* image descriptors, including **interlaced** images,
* LZW-compressed image data (via :mod:`repro.imaging.lzw`),
* 89a extensions: comments are preserved; graphic-control, plain-text
  and application extensions are parsed and skipped.

Encoding always writes GIF89a with a global color table and a single
image block, optionally preceded by comment extensions — exactly the
kind of file the Processor saves.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.imaging import lzw
from repro.imaging.palette import build_palette, quantize
from repro.imaging.raster import Raster

GIF87A = b"GIF87a"
GIF89A = b"GIF89a"

BLOCK_EXTENSION = 0x21
BLOCK_IMAGE = 0x2C
BLOCK_TRAILER = 0x3B

EXT_GRAPHIC_CONTROL = 0xF9
EXT_COMMENT = 0xFE
EXT_PLAIN_TEXT = 0x01
EXT_APPLICATION = 0xFF

# Interlace pass layout: (row offset, row step) per GIF spec appendix E.
_INTERLACE_PASSES = ((0, 8), (4, 8), (2, 4), (1, 2))


class GifError(ValueError):
    """Raised when a GIF stream is structurally invalid."""


@dataclass
class GifFrame:
    """One decoded image block.

    ``indices`` is an ``(h, w) uint8`` array of palette indices;
    ``palette`` is the effective ``(n, 3) uint8`` color table (local if
    present, else global); ``left``/``top`` position the block on the
    logical screen; ``transparent_index`` comes from a preceding
    graphic-control extension (or ``None``).
    """

    indices: np.ndarray
    palette: np.ndarray
    left: int = 0
    top: int = 0
    interlaced: bool = False
    transparent_index: Optional[int] = None

    @property
    def width(self) -> int:
        return self.indices.shape[1]

    @property
    def height(self) -> int:
        return self.indices.shape[0]

    def to_rgb(self) -> np.ndarray:
        """Expand palette indices to an ``(h, w, 3) uint8`` RGB array."""
        if self.indices.max(initial=0) >= len(self.palette):
            raise GifError(
                f"frame references palette index {int(self.indices.max())} "
                f"but palette has {len(self.palette)} entries"
            )
        return self.palette[self.indices]


@dataclass
class GifImage:
    """A decoded GIF: logical screen plus one or more frames."""

    width: int
    height: int
    frames: List[GifFrame] = field(default_factory=list)
    global_palette: Optional[np.ndarray] = None
    background_index: int = 0
    comments: List[str] = field(default_factory=list)
    version: bytes = GIF89A

    def composite(self) -> Raster:
        """Flatten frames onto the logical screen as an RGB raster.

        The background is the background color when a global palette is
        present, else white.  Frames are pasted in order at their
        (left, top) offsets, honoring transparency.
        """
        if self.global_palette is not None and self.background_index < len(self.global_palette):
            bg = tuple(int(v) for v in self.global_palette[self.background_index])
        else:
            bg = (255, 255, 255)
        canvas = np.empty((self.height, self.width, 3), dtype=np.uint8)
        canvas[:] = bg
        for frame in self.frames:
            rgb = frame.to_rgb()
            y0, x0 = frame.top, frame.left
            h = min(frame.height, self.height - y0)
            w = min(frame.width, self.width - x0)
            if h <= 0 or w <= 0:
                continue
            region = rgb[:h, :w]
            if frame.transparent_index is not None:
                opaque = frame.indices[:h, :w] != frame.transparent_index
                target = canvas[y0 : y0 + h, x0 : x0 + w]
                target[opaque] = region[opaque]
            else:
                canvas[y0 : y0 + h, x0 : x0 + w] = region
        return Raster.from_array(canvas)


class _Cursor:
    """Byte cursor with bounds-checked reads over the GIF stream."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise GifError(f"unexpected end of GIF data at offset {self.pos}")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def sub_blocks(self) -> bytes:
        """Read a sequence of data sub-blocks up to the 0x00 terminator."""
        out = bytearray()
        while True:
            size = self.u8()
            if size == 0:
                return bytes(out)
            out += self.take(size)


def _deinterlace(rows: np.ndarray) -> np.ndarray:
    """Reorder interlaced row storage into display order."""
    height = rows.shape[0]
    out = np.empty_like(rows)
    src = 0
    for offset, step in _INTERLACE_PASSES:
        n = len(range(offset, height, step))
        out[offset:height:step] = rows[src : src + n]
        src += n
    return out


def _interlace(rows: np.ndarray) -> np.ndarray:
    """Reorder display-order rows into interlaced storage order."""
    parts = [rows[offset::step] for offset, step in _INTERLACE_PASSES]
    return np.concatenate(parts, axis=0)


def decode_gif(data: bytes) -> GifImage:
    """Parse a complete GIF byte stream into a :class:`GifImage`."""
    cur = _Cursor(data)
    version = cur.take(6)
    if version not in (GIF87A, GIF89A):
        raise GifError(f"not a GIF file (signature {version!r})")
    width = cur.u16()
    height = cur.u16()
    packed = cur.u8()
    background_index = cur.u8()
    cur.u8()  # pixel aspect ratio: ignored

    global_palette = None
    if packed & 0x80:
        size = 2 << (packed & 0x07)
        raw = cur.take(3 * size)
        global_palette = np.frombuffer(raw, dtype=np.uint8).reshape(size, 3).copy()

    image = GifImage(
        width=width,
        height=height,
        global_palette=global_palette,
        background_index=background_index,
        version=version,
    )

    transparent_index: Optional[int] = None
    while True:
        block = cur.u8()
        if block == BLOCK_TRAILER:
            break
        if block == BLOCK_EXTENSION:
            label = cur.u8()
            payload = cur.sub_blocks()
            if label == EXT_COMMENT:
                image.comments.append(payload.decode("utf-8", errors="replace"))
            elif label == EXT_GRAPHIC_CONTROL:
                if len(payload) >= 4 and payload[0] & 0x01:
                    transparent_index = payload[3]
                else:
                    transparent_index = None
            # plain-text / application / unknown extensions: skipped
        elif block == BLOCK_IMAGE:
            left = cur.u16()
            top = cur.u16()
            w = cur.u16()
            h = cur.u16()
            img_packed = cur.u8()
            interlaced = bool(img_packed & 0x40)
            palette = global_palette
            if img_packed & 0x80:
                size = 2 << (img_packed & 0x07)
                raw = cur.take(3 * size)
                palette = np.frombuffer(raw, dtype=np.uint8).reshape(size, 3).copy()
            if palette is None:
                raise GifError("image block has neither local nor global color table")
            min_code_size = cur.u8()
            compressed = cur.sub_blocks()
            flat = lzw.decompress(compressed, min_code_size, expected_length=w * h)
            if flat.size != w * h:
                raise GifError(
                    f"image data decoded to {flat.size} pixels, expected {w * h}"
                )
            rows = flat.reshape(h, w)
            if interlaced:
                rows = _deinterlace(rows)
            image.frames.append(
                GifFrame(
                    indices=rows.copy(),
                    palette=palette,
                    left=left,
                    top=top,
                    interlaced=interlaced,
                    transparent_index=transparent_index,
                )
            )
            transparent_index = None
        else:
            raise GifError(f"unknown block type 0x{block:02x} at offset {cur.pos - 1}")

    if not image.frames:
        raise GifError("GIF contains no image blocks")
    return image


def _palette_block_size(n_colors: int) -> Tuple[int, int]:
    """GIF color tables must have a power-of-two size in [2, 256].

    Returns ``(table_size, size_field)`` where ``table_size = 2 **
    (size_field + 1)``.
    """
    size_field = 0
    while (2 << size_field) < n_colors:
        size_field += 1
    if size_field > 7:
        raise GifError(f"palette too large for GIF: {n_colors} colors")
    return 2 << size_field, size_field


def encode_gif(
    raster: Raster,
    comments: Sequence[str] = (),
    max_colors: int = 256,
    interlaced: bool = False,
) -> bytes:
    """Encode an RGB raster as a single-frame GIF89a byte stream.

    Rasters with more than ``max_colors`` distinct colors are quantized
    with median-cut first; comments are written as 89a comment extension
    blocks (the Processor stores its provenance line there).
    """
    indices, palette = quantize(raster.pixels, max_colors=max_colors)
    table_size, size_field = _palette_block_size(len(palette))
    padded = np.zeros((table_size, 3), dtype=np.uint8)
    padded[: len(palette)] = palette

    out = bytearray()
    out += GIF89A
    out += struct.pack("<HH", raster.width, raster.height)
    out += bytes([0x80 | 0x70 | size_field])  # GCT present, 8-bit resolution
    out += bytes([0, 0])  # background index, aspect ratio

    out += padded.tobytes()

    for comment in comments:
        out += bytes([BLOCK_EXTENSION, EXT_COMMENT])
        encoded = comment.encode("utf-8")
        for i in range(0, len(encoded), 255):
            chunk = encoded[i : i + 255]
            out += bytes([len(chunk)]) + chunk
        out += b"\x00"

    out += bytes([BLOCK_IMAGE])
    out += struct.pack("<HHHH", 0, 0, raster.width, raster.height)
    out += bytes([0x40 if interlaced else 0x00])  # no local table

    min_code_size = max(2, size_field + 1)
    rows = _interlace(indices) if interlaced else indices
    compressed = lzw.compress(rows.ravel(), min_code_size)
    out += bytes([min_code_size])
    for i in range(0, len(compressed), 255):
        chunk = compressed[i : i + 255]
        out += bytes([len(chunk)]) + chunk
    out += b"\x00"

    out += bytes([BLOCK_TRAILER])
    return bytes(out)


def encode_animation(
    frames: Sequence[Raster],
    delay_cs: int = 10,
    loop: bool = True,
    max_colors: int = 256,
) -> bytes:
    """Encode an animated GIF89a from a sequence of equal-size rasters.

    ``delay_cs`` is the inter-frame delay in centiseconds.  Each frame
    carries its own local color table (quantized independently), and a
    NETSCAPE2.0 application extension makes viewers loop when ``loop``
    is set.  Used by the toolkit to animate tracking runs on a floor
    plan.
    """
    if not frames:
        raise GifError("animation needs at least one frame")
    if delay_cs < 0:
        raise GifError(f"delay must be non-negative, got {delay_cs}")
    w, h = frames[0].width, frames[0].height
    for i, f in enumerate(frames):
        if (f.width, f.height) != (w, h):
            raise GifError(
                f"frame {i} is {f.width}x{f.height}, expected {w}x{h}"
            )

    out = bytearray()
    out += GIF89A
    out += struct.pack("<HH", w, h)
    out += bytes([0x70, 0, 0])  # no global color table

    if loop:
        out += bytes([BLOCK_EXTENSION, EXT_APPLICATION, 11])
        out += b"NETSCAPE2.0"
        out += bytes([3, 1, 0, 0, 0])  # sub-block: loop forever

    for frame in frames:
        indices, palette = quantize(frame.pixels, max_colors=max_colors)
        table_size, size_field = _palette_block_size(len(palette))
        padded = np.zeros((table_size, 3), dtype=np.uint8)
        padded[: len(palette)] = palette

        # Graphic control: delay, no transparency, no disposal.
        out += bytes([BLOCK_EXTENSION, EXT_GRAPHIC_CONTROL, 4, 0x00])
        out += struct.pack("<H", delay_cs)
        out += bytes([0, 0])

        out += bytes([BLOCK_IMAGE])
        out += struct.pack("<HHHH", 0, 0, w, h)
        out += bytes([0x80 | size_field])  # local color table present
        out += padded.tobytes()

        min_code_size = max(2, size_field + 1)
        compressed = lzw.compress(indices.ravel(), min_code_size)
        out += bytes([min_code_size])
        for i in range(0, len(compressed), 255):
            chunk = compressed[i : i + 255]
            out += bytes([len(chunk)]) + chunk
        out += b"\x00"

    out += bytes([BLOCK_TRAILER])
    return bytes(out)


def write_animation(path, frames: Sequence[Raster], delay_cs: int = 10, loop: bool = True) -> None:
    """Write an animated GIF to ``path``."""
    with open(path, "wb") as fh:
        fh.write(encode_animation(frames, delay_cs=delay_cs, loop=loop))


def read_gif(path) -> Raster:
    """Read a GIF file and composite it to an RGB :class:`Raster`."""
    with open(path, "rb") as fh:
        return decode_gif(fh.read()).composite()


def write_gif(path, raster: Raster, comments: Sequence[str] = (), interlaced: bool = False) -> None:
    """Write an RGB raster to ``path`` as a GIF89a file."""
    with open(path, "wb") as fh:
        fh.write(encode_gif(raster, comments=comments, interlaced=interlaced))
