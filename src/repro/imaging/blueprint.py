"""Synthetic architectural floor plans.

The paper's floor plans are GIFs "scanned from the architectural
blueprints of the room or building of interest".  We have no scanner, so
this module *draws* blueprints: exterior shell, interior walls, door
gaps, room labels, a title block and an optional scan-speckle pass that
mimics a photocopied original.  The output is an ordinary
:class:`~repro.imaging.raster.Raster`, which the toolkit then saves as a
GIF — giving the Floor Plan Processor a realistic file to load.

Coordinates given to this module are in **feet** with a y-up floor
convention; rendering flips to the y-down image convention internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.imaging import font
from repro.imaging.raster import BLACK, GRAY, LIGHT_GRAY, Raster, WHITE
from repro.parallel.rng import RngLike, resolve_rng

Segment = Tuple[float, float, float, float]  # x0, y0, x1, y1 in feet

PAPER_TINT = (247, 245, 238)  # aged-paper background
INK = (40, 40, 48)


@dataclass
class BlueprintSpec:
    """Declarative description of a floor plan drawing.

    ``width_ft``/``height_ft`` bound the building; ``interior_walls`` are
    wall center-lines in feet; ``doors`` are (x, y, width_ft, horizontal)
    gaps punched through walls; ``labels`` are (x, y, text) room names.
    """

    width_ft: float
    height_ft: float
    interior_walls: List[Segment] = field(default_factory=list)
    doors: List[Tuple[float, float, float, bool]] = field(default_factory=list)
    labels: List[Tuple[float, float, str]] = field(default_factory=list)
    title: str = "FLOOR PLAN"
    pixels_per_foot: float = 8.0
    margin_px: int = 40

    def __post_init__(self):
        if self.width_ft <= 0 or self.height_ft <= 0:
            raise ValueError(
                f"building dimensions must be positive, got "
                f"{self.width_ft} x {self.height_ft} ft"
            )
        if self.pixels_per_foot <= 0:
            raise ValueError(f"pixels_per_foot must be positive, got {self.pixels_per_foot}")

    @property
    def image_size(self) -> Tuple[int, int]:
        w = int(round(self.width_ft * self.pixels_per_foot)) + 2 * self.margin_px
        h = int(round(self.height_ft * self.pixels_per_foot)) + 2 * self.margin_px + 24
        return (w, h)

    def to_pixel(self, x_ft: float, y_ft: float) -> Tuple[int, int]:
        """Floor feet (y-up) → image pixels (y-down)."""
        px = self.margin_px + x_ft * self.pixels_per_foot
        py = self.margin_px + (self.height_ft - y_ft) * self.pixels_per_foot
        return (int(round(px)), int(round(py)))


def _draw_wall(raster: Raster, spec: BlueprintSpec, seg: Segment, thickness: int) -> None:
    x0, y0 = spec.to_pixel(seg[0], seg[1])
    x1, y1 = spec.to_pixel(seg[2], seg[3])
    raster.draw_line(x0, y0, x1, y1, INK, thickness)


def _punch_door(raster: Raster, spec: BlueprintSpec, door: Tuple[float, float, float, bool]) -> None:
    x, y, width_ft, horizontal = door
    half = width_ft / 2.0
    if horizontal:
        x0, y0 = spec.to_pixel(x - half, y)
        x1, y1 = spec.to_pixel(x + half, y)
    else:
        x0, y0 = spec.to_pixel(x, y - half)
        x1, y1 = spec.to_pixel(x, y + half)
    raster.draw_line(x0, y0, x1, y1, PAPER_TINT, 7)


def render_blueprint(spec: BlueprintSpec, scan_noise: float = 0.0, rng: RngLike = None) -> Raster:
    """Render a :class:`BlueprintSpec` to a raster.

    ``scan_noise`` in [0, 1] adds photocopier speckle (salt-and-pepper
    plus slight ink bleed) at the given density, seeded by ``rng`` so
    test fixtures are reproducible.
    """
    if not 0.0 <= scan_noise <= 1.0:
        raise ValueError(f"scan_noise must be in [0, 1], got {scan_noise}")
    w, h = spec.image_size
    raster = Raster(w, h, background=PAPER_TINT)

    # Faint 10-ft grid, like graph-paper blueprint stock.
    step = 10.0
    x = 0.0
    while x <= spec.width_ft + 1e-9:
        x0, y0 = spec.to_pixel(x, 0.0)
        x1, y1 = spec.to_pixel(x, spec.height_ft)
        raster.draw_line(x0, y0, x1, y1, LIGHT_GRAY, 1)
        x += step
    y = 0.0
    while y <= spec.height_ft + 1e-9:
        x0, y0 = spec.to_pixel(0.0, y)
        x1, y1 = spec.to_pixel(spec.width_ft, y)
        raster.draw_line(x0, y0, x1, y1, LIGHT_GRAY, 1)
        y += step

    # Exterior shell (double-thick), interior walls, then door gaps.
    shell: List[Segment] = [
        (0, 0, spec.width_ft, 0),
        (spec.width_ft, 0, spec.width_ft, spec.height_ft),
        (spec.width_ft, spec.height_ft, 0, spec.height_ft),
        (0, spec.height_ft, 0, 0),
    ]
    for seg in shell:
        _draw_wall(raster, spec, seg, thickness=4)
    for seg in spec.interior_walls:
        _draw_wall(raster, spec, seg, thickness=2)
    for door in spec.doors:
        _punch_door(raster, spec, door)

    for x_ft, y_ft, text in spec.labels:
        px, py = spec.to_pixel(x_ft, y_ft)
        tw, th = font.measure_text(text)
        font.draw_text(raster, px - tw // 2, py - th // 2, text, INK)

    # Title block along the bottom edge.
    font.draw_text(raster, spec.margin_px, h - 18, spec.title, INK, scale=2)
    dims = f"{spec.width_ft:g} FT X {spec.height_ft:g} FT"
    tw, _ = font.measure_text(dims, scale=1)
    font.draw_text(raster, w - spec.margin_px - tw, h - 14, dims, GRAY)

    if scan_noise > 0.0:
        _apply_scan_noise(raster, scan_noise, resolve_rng(rng))
    return raster


def _apply_scan_noise(raster: Raster, density: float, rng: np.random.Generator) -> None:
    """Photocopier speckle: sparse dark/pale dots over the whole sheet."""
    h, w = raster.height, raster.width
    n = int(density * 0.01 * h * w)
    if n == 0:
        return
    ys = rng.integers(0, h, size=n)
    xs = rng.integers(0, w, size=n)
    dark = rng.random(n) < 0.5
    raster.pixels[ys[dark], xs[dark]] = (90, 90, 95)
    raster.pixels[ys[~dark], xs[~dark]] = (252, 252, 248)


def experiment_house_blueprint(pixels_per_foot: float = 8.0, scan_noise: float = 0.15, rng: RngLike = 7) -> Raster:
    """The paper's 50 ft × 40 ft experiment house, as a scanned blueprint.

    Room layout is synthetic (the paper never shows it) but consistent
    with the §5 protocol: an open living area, two bedrooms, a kitchen
    and a hallway, with the four AP corners kept clear.
    """
    spec = BlueprintSpec(
        width_ft=50.0,
        height_ft=40.0,
        interior_walls=[
            (20, 0, 20, 25),    # living / bedroom divider
            (20, 25, 0, 25),    # bedroom 1 north wall
            (35, 40, 35, 25),   # kitchen west wall
            (35, 25, 50, 25),   # kitchen south wall
            (20, 12, 35, 12),   # hallway south wall
        ],
        doors=[
            (20.0, 18.0, 3.0, False),
            (10.0, 25.0, 3.0, True),
            (35.0, 32.0, 3.0, False),
            (27.0, 12.0, 3.0, True),
        ],
        labels=[
            (10, 12, "BED 1"),
            (10, 33, "BED 2"),
            (35, 6, "LIVING"),
            (42, 33, "KITCHEN"),
            (27, 18, "HALL"),
        ],
        title="EXPERIMENT HOUSE",
        pixels_per_foot=pixels_per_foot,
    )
    return render_blueprint(spec, scan_noise=scan_noise, rng=rng)
