"""Command-line entry points for the toolkit's utility programs.

The paper's components are "invoked in a single-line Dos command
window"; these are the equivalents (installed as console scripts):

``floorplan-processor``
    Run Processor commands — either a script file of commands (one per
    line; see :mod:`repro.core.processor` for the command set) or
    inline ``-c`` commands.

``floorplan-compositor``
    §4.2 verbatim: "creates images from a floor plan and marks the
    image with locations out of user-given coordinate values.  The
    coordinate values are given in the Dos command".

``training-db-generator``
    §4.3 verbatim: wi-scan collection (directory or zip) + location map
    → compressed training database.

``locate``
    Phase 2 end-to-end: training database (+ optional annotated plan
    for the geometric algorithm) + an observation (wi-scan file) →
    estimated coordinates and nearest named location.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence


def _fail(message: str) -> "NoReturn":  # noqa: F821 - py3.9 compat
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


# ----------------------------------------------------------------------
# observability plumbing shared by the pipeline commands
# ----------------------------------------------------------------------
def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON metrics snapshot (counters/gauges/histograms) to PATH "
        "and print the text summary",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        help="write the structured-JSON exporter payload (labels split out, "
        "schema-tagged; same document as the ObsServer /metrics.json endpoint)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL trace of nested pipeline spans (wall/CPU ms) to PATH",
    )


class _ObsSession:
    """Activates tracing around a command and writes --metrics/--trace out.

    Written from ``__exit__`` even when the command fails partway — a
    trace of a failed run is exactly when an operator wants one.
    """

    def __init__(self, args: argparse.Namespace):
        self.metrics_path = getattr(args, "metrics", None)
        self.metrics_json_path = getattr(args, "metrics_json", None)
        self.trace_path = getattr(args, "trace", None)
        self._tracer = None
        self._activation = None

    def __enter__(self) -> "_ObsSession":
        from repro import obs

        if self.trace_path:
            self._tracer = obs.Tracer()
            self._activation = self._tracer.activate()
            self._activation.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        import json

        from repro import obs

        if self._activation is not None:
            self._activation.__exit__(exc_type, exc, tb)
        if self.trace_path:
            n = self._tracer.write_jsonl(self.trace_path)
            print(f"wrote {n} trace span(s) to {self.trace_path}")
        if self.metrics_path or self.metrics_json_path:
            snap = obs.snapshot()
            if self.metrics_path:
                Path(self.metrics_path).write_text(
                    json.dumps(snap, indent=2, sort_keys=True) + "\n", encoding="utf-8"
                )
                print(f"wrote metrics snapshot to {self.metrics_path}")
            if self.metrics_json_path:
                Path(self.metrics_json_path).write_text(
                    obs.render_json(snap), encoding="utf-8"
                )
                print(f"wrote JSON metrics payload to {self.metrics_json_path}")
            if self.metrics_path:
                print(obs.render_text(snap))


# ----------------------------------------------------------------------
# floorplan-processor
# ----------------------------------------------------------------------
def processor_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.core.processor import FloorPlanProcessor, ProcessorError

    parser = argparse.ArgumentParser(
        prog="floorplan-processor",
        description="Floor Plan Processor (paper §4.1), scriptable headless edition.",
    )
    parser.add_argument("script", nargs="?", help="file of processor commands, one per line")
    parser.add_argument(
        "-c",
        "--command",
        action="append",
        default=[],
        metavar="CMD",
        help="inline command (repeatable), e.g. -c 'load plan.gif' -c 'set-origin 40 360'",
    )
    args = parser.parse_args(argv)

    lines: List[str] = []
    if args.script:
        path = Path(args.script)
        if not path.is_file():
            _fail(f"script file not found: {path}")
        lines.extend(path.read_text(encoding="utf-8").splitlines())
    lines.extend(args.command)
    if not lines:
        parser.print_help()
        return 1

    proc = FloorPlanProcessor()
    try:
        for out in proc.run_script(lines):
            print(out)
    except ProcessorError as exc:
        _fail(str(exc))
    return 0


# ----------------------------------------------------------------------
# floorplan-compositor
# ----------------------------------------------------------------------
def compositor_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.core.compositor import FloorPlanCompositor
    from repro.core.floorplan import FloorPlan, FloorPlanError
    from repro.imaging.gif import write_gif

    parser = argparse.ArgumentParser(
        prog="floorplan-compositor",
        description=(
            "Floor Plan Compositor (paper §4.2): mark coordinate values "
            "(floor feet) onto an annotated floor plan."
        ),
    )
    parser.add_argument("plan", help="annotated floor-plan GIF (from the Processor)")
    parser.add_argument("output", help="output GIF path")
    parser.add_argument(
        "coordinates",
        nargs="*",
        type=float,
        metavar="XY",
        help="flat x y pairs in feet, e.g. 12.5 30 45 10",
    )
    parser.add_argument("--style", default="cross", help="mark style (cross/x/circle/dot/diamond)")
    parser.add_argument(
        "--pairs",
        action="store_true",
        help="treat coordinates as (true_x true_y est_x est_y) quadruples "
        "and draw true/estimate pairs with error lines",
    )
    # intermixed parsing lets flags appear before the coordinate list
    # without argparse greedily starving the nargs='*' positional.
    args = parser.parse_intermixed_args(list(argv) if argv is not None else None)

    try:
        plan = FloorPlan.load(args.plan)
        compositor = FloorPlanCompositor(plan)
    except (FloorPlanError, OSError, ValueError) as exc:
        _fail(str(exc))

    coords = args.coordinates
    if args.pairs:
        if len(coords) % 4 != 0:
            _fail(f"--pairs needs quadruples of numbers, got {len(coords)} values")
        from repro.core.compositor import EstimatePair
        from repro.core.geometry import Point

        pairs = [
            EstimatePair(Point(coords[i], coords[i + 1]), Point(coords[i + 2], coords[i + 3]))
            for i in range(0, len(coords), 4)
        ]
        image = compositor.render(pairs=pairs)
    else:
        if len(coords) % 2 != 0:
            _fail(f"coordinates must come in x y pairs, got {len(coords)} values")
        xy = [(coords[i], coords[i + 1]) for i in range(0, len(coords), 2)]
        image = compositor.render_coordinates(xy, style=args.style)
    write_gif(args.output, image)
    print(f"wrote {args.output} ({image.width}x{image.height})")
    return 0


# ----------------------------------------------------------------------
# training-db-generator
# ----------------------------------------------------------------------
def generator_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.core.trainingdb import TrainingDBError, generate_training_db

    parser = argparse.ArgumentParser(
        prog="training-db-generator",
        description=(
            "Training Database Generator (paper §4.3): wi-scan collection "
            "(directory or zip) + location map -> compressed .tdb database."
        ),
    )
    parser.add_argument("collection", help="directory or zip of *.wi-scan files")
    parser.add_argument("location_map", help="location map text file (<name> <x> <y>)")
    parser.add_argument("output", help="output .tdb path")
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="recover from damaged survey data (skip bad lines, quarantine bad "
        "files, report what was dropped) and allow sessions missing from the "
        "map to use their wi-scan position header",
    )
    parser.add_argument(
        "--ingest-report",
        metavar="PATH",
        help="also write the ingest report (files read/kept/skipped/quarantined) to PATH",
    )
    _add_obs_flags(parser)
    args = parser.parse_args(argv)
    with _ObsSession(args):
        try:
            db = generate_training_db(
                args.collection,
                args.location_map,
                output=args.output,
                strict=not args.lenient,
                lenient=args.lenient,
            )
        except (TrainingDBError, OSError, ValueError) as exc:
            _fail(str(exc))
        size = Path(args.output).stat().st_size
        print(
            f"wrote {args.output}: {len(db)} locations, {len(db.bssids)} APs, "
            f"{db.total_samples()} sweeps, {size} bytes"
        )
        report = db.ingest_report
        if report is not None and (args.lenient or not report.clean):
            print(report.summary())
        if args.ingest_report:
            if report is None:
                _fail("--ingest-report needs a file-based collection (directory or zip)")
            Path(args.ingest_report).write_text(report.summary() + "\n", encoding="utf-8")
            print(f"wrote ingest report to {args.ingest_report}")
    return 0


# ----------------------------------------------------------------------
# locate
# ----------------------------------------------------------------------
def locate_main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.algorithms.base import available_algorithms

    parser = argparse.ArgumentParser(
        prog="locate",
        description="Phase 2: resolve a wi-scan observation against a training database.",
    )
    parser.add_argument("database", help=".tdb training database")
    parser.add_argument(
        "observations",
        nargs="+",
        metavar="observation",
        help="wi-scan file(s) to resolve; several files become one batched "
        "request through the vectorized scoring engine",
    )
    parser.add_argument(
        "--algorithm",
        default="probabilistic",
        help=f"one of: {', '.join(available_algorithms())}",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        metavar="N",
        help="batched-engine chunk size: observations scored per vectorized "
        "pass (default 256; bounds the working set)",
    )
    parser.add_argument(
        "--shard",
        type=int,
        metavar="W",
        help="fan batched requests out across W worker processes "
        "(default 1: no sharding)",
    )
    parser.add_argument(
        "--plan",
        help="annotated floor-plan GIF (needed for geometric/multilateration AP positions)",
    )
    parser.add_argument(
        "--fallback",
        action="store_true",
        help="use the degraded-mode fallback chain (geometric when --plan is "
        "given, then probabilistic, then nearest training point) and print "
        "which tier answered",
    )
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="parse the observation in recovering mode (skip bad lines)",
    )
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    if args.chunk_size is not None and args.chunk_size < 1:
        _fail(f"--chunk-size must be >= 1, got {args.chunk_size}")
    if args.shard is not None and args.shard < 1:
        _fail(f"--shard must be >= 1, got {args.shard}")
    prev_config = None
    if args.chunk_size is not None or args.shard is not None:
        from repro.algorithms.engine import BatchConfig, get_batch_config, set_batch_config
        from repro.parallel import ParallelConfig

        base = get_batch_config()
        workers = args.shard or base.parallel.max_workers
        prev_config = set_batch_config(
            BatchConfig(
                chunk_size=args.chunk_size or base.chunk_size,
                # With explicit workers, shard any multi-chunk batch.
                shard_threshold=1 if workers > 1 else base.shard_threshold,
                parallel=ParallelConfig(max_workers=workers),
            )
        )

    try:
        return _locate_run(args)
    finally:
        if prev_config is not None:
            from repro.algorithms.engine import set_batch_config

            set_batch_config(prev_config)


def _locate_run(args: argparse.Namespace) -> int:
    from repro.algorithms.base import Observation, make_localizer
    from repro.core.floorplan import FloorPlan, FloorPlanError
    from repro.core.frozenpack import load_database
    from repro.core.system import ap_positions_by_bssid, site_bounds
    from repro.wiscan.format import parse_wiscan

    with _ObsSession(args):
        try:
            db = load_database(args.database)  # .tdb or frozen .tdbx
            sessions = [
                parse_wiscan(
                    Path(path).read_text(encoding="utf-8"),
                    source=path,
                    recover=args.lenient,
                )
                for path in args.observations
            ]
        except (ValueError, OSError) as exc:
            _fail(str(exc))

        algorithm = "fallback" if args.fallback else args.algorithm
        kwargs = {}
        needs_plan = algorithm in ("geometric", "multilateration")
        if needs_plan or (args.fallback and args.plan):
            if not args.plan:
                _fail(f"algorithm {algorithm!r} needs --plan for AP positions")
            plan = FloorPlan.load(args.plan)
            kwargs["ap_positions"] = ap_positions_by_bssid(plan, db)
            if args.fallback:
                try:
                    kwargs["bounds"] = site_bounds(plan)
                except FloorPlanError:
                    pass  # un-framed plan: chain runs without bounds
        try:
            localizer = make_localizer(algorithm, **kwargs).fit(db)
        except (KeyError, ValueError) as exc:
            _fail(str(exc))

        batch = [
            Observation(s.rssi_matrix(db.bssids), bssids=db.bssids) for s in sessions
        ]
        if len(batch) == 1:
            estimates = [localizer.locate(batch[0])]
        else:
            estimates = localizer.locate_many(batch)

        multi = len(batch) > 1
        any_invalid = False
        for path, estimate in zip(args.observations, estimates):
            if multi:
                print(f"{path}:")
            declined = estimate.details.get("declined") or ()
            for d in declined:
                print(f"tier {d['tier']} declined: {d['reason']}")
            if not estimate.valid or estimate.position is None:
                reason = estimate.details.get("reason", "insufficient data")
                print(f"no valid estimate ({reason})")
                any_invalid = True
                continue
            print(f"estimated position: ({estimate.position.x:.2f}, {estimate.position.y:.2f}) ft")
            if estimate.location_name:
                print(f"estimated location: {estimate.location_name}")
            if args.fallback:
                print(f"answered by tier: {estimate.details.get('tier')}")
    return 1 if any_invalid else 0


# ----------------------------------------------------------------------
# coverage-map
# ----------------------------------------------------------------------
def coverage_main(argv: Optional[Sequence[str]] = None) -> int:
    """Render a survey-derived signal heatmap over the annotated plan.

    Works from real artifacts only — the annotated floor plan and the
    training database — interpolating the surveyed RSSI into a
    continuous field (no simulator involved), so it is usable on data
    collected with actual hardware.
    """
    import numpy as np

    from repro.algorithms.tracking.particle import RSSIField
    from repro.core.floorplan import FloorPlan, FloorPlanError
    from repro.core.frozenpack import load_database
    from repro.core.heatmap import render_heatmap
    from repro.imaging.gif import write_gif

    parser = argparse.ArgumentParser(
        prog="coverage-map",
        description="Interpolated RSSI heatmap of one AP (or the strongest-AP index) "
        "from a training database, rendered over the annotated floor plan.",
    )
    parser.add_argument("plan", help="annotated floor-plan GIF (Processor output)")
    parser.add_argument("database", help=".tdb training database")
    parser.add_argument("output", help="output GIF path")
    parser.add_argument(
        "--ap",
        default="0",
        help="AP to map: a BSSID or a 0-based column index (default 0); "
        "'strongest' maps which AP wins per cell",
    )
    parser.add_argument("--resolution", type=float, default=2.0, help="grid pitch in feet")
    parser.add_argument("--alpha", type=float, default=0.55, help="overlay opacity")
    args = parser.parse_args(argv)

    try:
        plan = FloorPlan.load(args.plan)
        db = load_database(args.database)  # .tdb or frozen .tdbx
    except (FloorPlanError, ValueError, OSError) as exc:
        _fail(str(exc))
    if args.resolution <= 0:
        _fail(f"resolution must be positive, got {args.resolution}")

    positions = db.positions()
    x0, y0 = positions.min(axis=0)
    x1, y1 = positions.max(axis=0)
    xs = np.arange(x0, x1 + args.resolution / 2, args.resolution)
    ys = np.arange(y0, y1 + args.resolution / 2, args.resolution)
    gx, gy = np.meshgrid(xs, ys)
    field = RSSIField(db)
    expected = field.expected_rssi(np.column_stack([gx.ravel(), gy.ravel()]))
    expected = expected.reshape(ys.size, xs.size, len(db.bssids))

    if args.ap == "strongest":
        values = expected.argmax(axis=2).astype(float)
        title = "STRONGEST AP INDEX"
    else:
        if args.ap in db.bssids:
            index = db.bssids.index(args.ap)
        else:
            try:
                index = int(args.ap)
            except ValueError:
                _fail(f"--ap must be a BSSID, column index, or 'strongest'; got {args.ap!r}")
            if not 0 <= index < len(db.bssids):
                _fail(f"AP index {index} out of range (database has {len(db.bssids)} APs)")
        values = expected[:, :, index]
        title = f"AP {db.bssids[index].upper()} MEAN RSSI (DBM)"

    try:
        image = render_heatmap(plan, xs, ys, values, alpha=args.alpha, title=title)
    except (FloorPlanError, ValueError) as exc:
        _fail(str(exc))
    write_gif(args.output, image)
    print(f"wrote {args.output} ({image.width}x{image.height}, {values.size} cells)")
    return 0


# ----------------------------------------------------------------------
# simulate-survey
# ----------------------------------------------------------------------
def simulate_main(argv: Optional[Sequence[str]] = None) -> int:
    """Generate a complete synthetic site dataset in one command.

    Produces everything the other tools consume — annotated floor plan,
    wi-scan survey (directory + zip), location map, compiled ``.tdb``
    and a set of Phase-2 observation files with ground truth — so the
    whole toolkit can be exercised without any hardware, and the §5
    dataset can be regenerated bit-for-bit from a seed.
    """
    from pathlib import Path as _Path

    from repro.core.locationmap import LocationMap
    from repro.core.trainingdb import generate_training_db
    from repro.experiments.house import ExperimentHouse, HouseConfig
    from repro.wiscan.capture import CaptureSession, SurveyPoint
    from repro.wiscan.format import render_wiscan

    parser = argparse.ArgumentParser(
        prog="simulate-survey",
        description="Generate a synthetic site dataset (plan, wi-scan survey, "
        "location map, .tdb, test observations) from the calibrated simulator.",
    )
    parser.add_argument("output_dir", help="directory to populate")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--width", type=float, default=50.0, help="site width (ft)")
    parser.add_argument("--height", type=float, default=40.0, help="site height (ft)")
    parser.add_argument("--grid-step", type=float, default=10.0, help="training grid pitch (ft)")
    parser.add_argument("--aps", type=int, default=4, help="access-point count (3-13)")
    parser.add_argument("--dwell", type=float, default=90.0, help="survey dwell per point (s)")
    parser.add_argument("--tests", type=int, default=13, help="Phase-2 test observations")
    parser.add_argument("--zip", action="store_true", help="also pack the survey as a zip")
    args = parser.parse_args(argv)

    try:
        config = HouseConfig(
            width_ft=args.width,
            height_ft=args.height,
            grid_step_ft=args.grid_step,
            n_aps=args.aps,
            dwell_s=args.dwell,
            n_test_points=args.tests,
            site_seed=args.seed,
        )
    except ValueError as exc:
        _fail(str(exc))
    house = ExperimentHouse(config)
    out = _Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)

    plan_path = out / "plan.gif"
    house.floor_plan().save(plan_path)

    survey = house.survey(rng=args.seed)
    survey_dir = out / "survey"
    survey.save_directory(survey_dir)
    if args.zip:
        survey.save_zip(out / "survey.zip")

    map_path = out / "locations.txt"
    house.location_map().save(map_path)

    db_path = out / "training.tdb"
    db = generate_training_db(survey, house.location_map(), output=db_path)

    obs_dir = out / "observations"
    obs_dir.mkdir(exist_ok=True)
    capture = CaptureSession(house.scanner, dwell_s=min(args.dwell, 30.0))
    truth_lines = ["# ground truth: <file>\t<x_ft>\t<y_ft>"]
    for i, p in enumerate(house.test_points(seed=args.seed + 13)):
        session = capture.capture_point(
            SurveyPoint(f"test-{i + 1}", p), rng=args.seed * 1000 + i
        )
        fname = f"test-{i + 1}.wi-scan"
        (obs_dir / fname).write_text(render_wiscan(session), encoding="utf-8")
        truth_lines.append(f"observations/{fname}\t{p.x:.2f}\t{p.y:.2f}")
    (out / "ground_truth.txt").write_text("\n".join(truth_lines) + "\n", encoding="utf-8")

    print(f"wrote {out}/:")
    print(f"  plan.gif            annotated floor plan ({house.config.n_aps} APs)")
    print(f"  survey/             {len(survey)} wi-scan files ({db.total_samples()} sweeps)")
    if args.zip:
        print("  survey.zip          same survey, zipped")
    print(f"  locations.txt       {len(house.location_map())} named locations")
    print(f"  training.tdb        {db_path.stat().st_size} bytes")
    print(f"  observations/       {args.tests} Phase-2 wi-scan files + ground_truth.txt")
    return 0


# ----------------------------------------------------------------------
# repro serve — the localization service front door
# ----------------------------------------------------------------------
def _chaos_kwargs(args: argparse.Namespace):
    """--chaos → ChaosPolicy constructor kwargs (None when off).

    ``--chaos`` alone enables a representative default mix (injected
    dispatch latency + tier faults); any explicit ``--chaos-*`` rate
    overrides the defaults.  Without ``--chaos`` the knobs are inert —
    chaos must be asked for by name.  Returned as kwargs (not a
    policy) so ``--workers`` can ship them to worker processes, each
    of which builds its own seed-offset policy.
    """
    if not args.chaos:
        return None
    latency_ms = args.chaos_latency_ms
    tier_error_rate = args.chaos_tier_error_rate
    if (
        latency_ms == 0.0
        and tier_error_rate == 0.0
        and args.chaos_reset_rate == 0.0
        and args.chaos_slowloris_rate == 0.0
    ):
        latency_ms, tier_error_rate = 25.0, 0.25  # the default mix
    return {
        "latency_ms": latency_ms,
        "latency_rate": args.chaos_latency_rate,
        "latency_jitter_ms": args.chaos_latency_jitter_ms,
        "tier_error_rate": tier_error_rate,
        "tiers": tuple(t for t in (args.chaos_tiers or "").split(",") if t),
        "reset_rate": args.chaos_reset_rate,
        "slowloris_rate": args.chaos_slowloris_rate,
        "seed": args.chaos_seed,
    }


def _build_chaos(args: argparse.Namespace):
    """--chaos → a ChaosPolicy (None when the harness is off)."""
    kwargs = _chaos_kwargs(args)
    if kwargs is None:
        return None
    from repro.serve import ChaosPolicy

    try:
        return ChaosPolicy(**kwargs)
    except ValueError as exc:
        _fail(str(exc))


def _model_banner(info: dict) -> str:
    """The model clause of the machine-readable ``serving`` line."""
    model = f"{info['algorithm']} ({info['locations']} locations, {info['aps']} APs"
    if info.get("tiers"):
        model += f"; tiers: {'>'.join(info['tiers'])}"
    model += ")"
    return model


def _serve_cmd(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from repro.core.floorplan import FloorPlan, FloorPlanError
    from repro.core.system import ap_positions_by_bssid, site_bounds
    from repro.serve import LocalizationHTTPServer, LocalizationService

    if args.max_batch < 1:
        _fail(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_wait_ms < 0:
        _fail(f"--max-wait-ms must be >= 0, got {args.max_wait_ms}")
    if args.max_queue < 1:
        _fail(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.session_capacity < 1:
        _fail(f"--session-capacity must be >= 1, got {args.session_capacity}")
    if args.session_ttl_s <= 0:
        _fail(f"--session-ttl-s must be > 0, got {args.session_ttl_s}")
    if args.workers < 1:
        _fail(f"--workers must be >= 1, got {args.workers}")
    if args.site_capacity < 1:
        _fail(f"--site-capacity must be >= 1, got {args.site_capacity}")
    if args.sites is None and args.database is None:
        _fail("serve needs a training database (or --sites FLEET)")
    if args.sites is not None and args.database is not None:
        _fail("give either a single database or --sites, not both")
    if args.sites is not None and args.plan:
        _fail("--plan is single-site; fleet manifests carry per-site ap_positions")
    if args.sites is None and args.default_site is not None:
        _fail("--default-site needs --sites")

    ap_positions = None
    bounds = None
    if args.plan:
        try:
            from repro.core.frozenpack import load_database

            plan = FloorPlan.load(args.plan)
            db_for_plan = load_database(args.database)  # .tdb or frozen .tdbx
            ap_positions = ap_positions_by_bssid(plan, db_for_plan)
        except (FloorPlanError, ValueError, OSError) as exc:
            _fail(str(exc))
        try:
            bounds = site_bounds(plan)
        except FloorPlanError:
            pass  # un-framed plan: serve without bounds filtering
    elif args.sites is None and args.algorithm in ("geometric", "multilateration"):
        _fail(f"algorithm {args.algorithm!r} needs --plan for AP positions")

    if args.workers > 1:
        return _serve_multiproc(args, ap_positions, bounds)

    chaos = _build_chaos(args)
    service = None
    registry = None
    try:
        if args.sites is not None:
            from repro.serve import ModelRegistry

            registry = ModelRegistry(
                args.sites,
                capacity=args.site_capacity,
                default_site=args.default_site,
                service_kwargs={"breakers": not args.no_breakers, "chaos": chaos},
            )
        else:
            service = LocalizationService(
                args.database,
                algorithm=args.algorithm,
                ap_positions=ap_positions,
                bounds=bounds,
                breakers=not args.no_breakers,
                chaos=chaos,
            )
    except (KeyError, ValueError, OSError) as exc:
        _fail(str(exc))

    server = LocalizationHTTPServer(
        service,
        registry=registry,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        p99_limit_ms=args.p99_limit_ms,
        chaos=chaos,
        drain_deadline_s=args.drain_deadline_s,
        track_filter=args.track_filter,
        session_capacity=args.session_capacity,
        session_ttl_s=args.session_ttl_s,
    )
    # Always-on flight recorder: /debug/traces answers from it, and
    # SIGUSR2 dumps the retained traces to a JSONL for offline reading.
    from repro import obs

    recorder = obs.FlightRecorder()
    obs.set_recorder(recorder)
    if hasattr(signal, "SIGUSR2"):
        import tempfile

        trace_dump = Path(tempfile.gettempdir()) / f"repro-traces-{os.getpid()}.jsonl"

        def _dump_traces(signum, frame):
            n = recorder.dump_jsonl(trace_dump)
            print(f"dumped {n} traces -> {trace_dump}", flush=True)

        signal.signal(signal.SIGUSR2, _dump_traces)
    server.start()
    # SIGTERM must end with a graceful drain, not a mid-request kill:
    # the handler only sets an event; the drain runs on the main thread.
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    try:
        # In fleet mode server.service is the pinned default site's
        # service, so the banner names the model legacy routes hit.
        model = _model_banner(server.service.describe())
        # The URL line is machine-readable on purpose: the CI smoke and
        # the load bench launch `repro serve --port 0` and parse it.
        print(f"serving {server.url}  model: {model}", flush=True)
        print(
            f"micro-batching: max_batch={args.max_batch} "
            f"max_wait_ms={args.max_wait_ms} max_queue={args.max_queue}",
            flush=True,
        )
        print(
            f"resilience: breakers={'off' if args.no_breakers else 'on'} "
            f"p99_limit_ms={args.p99_limit_ms} "
            f"drain_deadline_s={args.drain_deadline_s}",
            flush=True,
        )
        print(
            f"tracking: filter={args.track_filter} "
            f"session_capacity={args.session_capacity} "
            f"session_ttl_s={args.session_ttl_s}",
            flush=True,
        )
        if registry is not None:
            print(
                f"sites: {len(registry.site_ids())} "
                f"(default {registry.default_site}, "
                f"capacity {args.site_capacity})",
                flush=True,
            )
        if chaos is not None:
            print(f"chaos: {chaos.describe()}", flush=True)
        if args.for_seconds is None:
            print("Ctrl-C to stop", flush=True)
        stop.wait(timeout=args.for_seconds)
    except KeyboardInterrupt:
        pass
    # Graceful exit either way (SIGTERM, --for-seconds, Ctrl-C): stop
    # accepting, finish in-flight, flush the batcher, then report.  The
    # CI chaos smoke parses this line and asserts unfinished == 0.
    report = server.drain()
    print(
        f"drain complete: unfinished={report['unfinished']} "
        f"waited_s={report['waited_s']}",
        flush=True,
    )
    server.stop()
    return 0 if report["unfinished"] == 0 else 1


def _serve_multiproc(args: argparse.Namespace, ap_positions, bounds) -> int:
    """``repro serve --workers N``: supervise a SO_REUSEPORT fleet.

    Prints the same machine-readable banner and ``drain complete:``
    line as the single-process path, so the CI smoke and the load
    bench drive both modes with one parser.
    """
    import signal
    import threading

    from repro.serve.workers import Supervisor, WorkerSpec

    spec = WorkerSpec(
        database=args.database or "",
        host=args.host,
        port=args.port,
        algorithm=args.algorithm,
        ap_positions=ap_positions,
        bounds=bounds,
        breakers=not args.no_breakers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        p99_limit_ms=args.p99_limit_ms,
        drain_deadline_s=args.drain_deadline_s,
        track_filter=args.track_filter,
        session_capacity=args.session_capacity,
        session_ttl_s=args.session_ttl_s,
        chaos_kwargs=_chaos_kwargs(args),
        sites=args.sites,
        default_site=args.default_site,
        site_capacity=args.site_capacity,
    )
    supervisor = Supervisor(spec, args.workers, rundir=args.rundir)
    try:
        infos = supervisor.start()
    except (RuntimeError, OSError, ValueError) as exc:
        _fail(str(exc))
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    print(f"serving {supervisor.url}  model: {_model_banner(infos[0]['model'])}",
          flush=True)
    print(
        f"micro-batching: max_batch={args.max_batch} "
        f"max_wait_ms={args.max_wait_ms} max_queue={args.max_queue}",
        flush=True,
    )
    print(
        f"resilience: breakers={'off' if args.no_breakers else 'on'} "
        f"p99_limit_ms={args.p99_limit_ms} "
        f"drain_deadline_s={args.drain_deadline_s}",
        flush=True,
    )
    print(
        f"tracking: filter={args.track_filter} "
        f"session_capacity={args.session_capacity} "
        f"session_ttl_s={args.session_ttl_s}",
        flush=True,
    )
    if args.sites is not None:
        print(
            f"sites: fleet {args.sites} (capacity {args.site_capacity})",
            flush=True,
        )
    print(
        f"workers: {args.workers} rundir: {supervisor.rundir} "
        f"pids: {','.join(str(i['pid']) for i in infos)}",
        flush=True,
    )
    if args.chaos:
        print("chaos: enabled (per-worker seed offsets)", flush=True)
    if args.for_seconds is None:
        print("Ctrl-C to stop", flush=True)
    try:
        supervisor.monitor(stop, for_seconds=args.for_seconds)
    except KeyboardInterrupt:
        pass
    report = supervisor.stop()
    print(
        f"drain complete: unfinished={report['unfinished']} "
        f"waited_s={report['waited_s']}",
        flush=True,
    )
    return 0 if report["drained"] else 1


def _freeze_cmd(args: argparse.Namespace) -> int:
    """``repro freeze``: write a training database as a frozen pack."""
    from repro.core.floorplan import FloorPlan, FloorPlanError
    from repro.core.frozenpack import load_database
    from repro.core.system import ap_positions_by_bssid
    from repro.core.trainingdb import TrainingDBError

    try:
        db = load_database(args.database)
    except (TrainingDBError, OSError, ValueError) as exc:
        _fail(str(exc))
    ap_positions = None
    if args.plan:
        try:
            plan = FloorPlan.load(args.plan)
            ap_positions = ap_positions_by_bssid(plan, db)
        except (FloorPlanError, ValueError, OSError) as exc:
            _fail(str(exc))
    floors = tuple(args.std_floor) if args.std_floor else (0.5,)
    try:
        size = db.freeze(args.output, std_floors=floors, ap_positions=ap_positions)
    except (ValueError, OSError) as exc:
        _fail(str(exc))
    ranging = "with ranging" if ap_positions else "no ranging"
    print(
        f"froze {len(db)} locations, {len(db.bssids)} APs -> "
        f"{args.output} ({size} bytes, {ranging})"
    )
    return 0


def _sites_gen_fleet(args: argparse.Namespace) -> int:
    """``repro sites gen-fleet``: synthesize a multi-site fleet on disk.

    Cycles the experiment site presets (house / office / warehouse) so
    neighbouring sites have genuinely different radio maps, writes one
    pack per site plus a ``fleet.json`` manifest — ready for
    ``repro serve --sites <dir>``.
    """
    from repro.experiments.sites import office_floor, paper_house, warehouse
    from repro.serve.registry import SiteDefinition, write_fleet_manifest

    if args.count < 1:
        _fail(f"--count must be >= 1, got {args.count}")
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    presets = (
        ("house", paper_house),
        ("office", office_floor),
        ("warehouse", warehouse),
    )
    sites = {}
    for i in range(args.count):
        kind, factory = presets[i % len(presets)]
        site_id = f"{kind}-{i:02d}"
        site = factory(dwell_s=args.dwell_s)
        db = site.training_database(rng=args.seed + i)
        ap_positions = site.ap_positions_by_bssid()
        path = out / f"{site_id}{'.tdbx' if args.freeze else '.tdb'}"
        if args.freeze:
            db.freeze(str(path), ap_positions=ap_positions)
        else:
            db.save(str(path))
        sites[site_id] = SiteDefinition(
            site_id,
            str(path),
            algorithm=args.algorithm,
            ap_positions=ap_positions,
            bounds=site.bounds(),
        )
        print(
            f"{site_id}: {len(db)} locations, {len(db.bssids)} APs "
            f"-> {path.name}"
        )
    default = sorted(sites)[0]
    manifest = write_fleet_manifest(out, sites, default=default)
    print(f"fleet: {len(sites)} sites, default {default} -> {manifest}")
    return 0


def _sites_freeze(args: argparse.Namespace) -> int:
    """``repro sites freeze``: freeze fleet packs to .tdbx, repoint manifest."""
    from repro.core.frozenpack import load_database
    from repro.core.trainingdb import TrainingDBError
    from repro.serve.registry import load_fleet, write_fleet_manifest

    target = Path(args.fleet)
    try:
        sites, default = load_fleet(target)
    except (TrainingDBError, OSError, ValueError) as exc:
        _fail(str(exc))
    root = target if target.is_dir() else target.parent
    wanted = set(args.site)
    if not args.all and not wanted:
        _fail("name site ids to freeze, or pass --all")
    unknown = wanted - set(sites)
    if unknown:
        _fail(f"unknown sites {sorted(unknown)} (fleet has {sorted(sites)})")
    frozen = 0
    for sid in sorted(sites):
        if not args.all and sid not in wanted:
            continue
        definition = sites[sid]
        src = Path(definition.database)
        if src.suffix == ".tdbx":
            print(f"{sid}: already frozen ({src.name})")
            continue
        dst = src.with_suffix(".tdbx")
        try:
            db = load_database(str(src))
            size = db.freeze(str(dst), ap_positions=definition.ap_positions)
        except (TrainingDBError, OSError, ValueError) as exc:
            _fail(f"{sid}: {exc}")
        definition.database = str(dst)
        frozen += 1
        print(f"{sid}: froze {len(db)} locations -> {dst.name} ({size} bytes)")
    manifest = write_fleet_manifest(root, sites, default=default)
    print(f"fleet: {frozen} newly frozen -> {manifest}")
    return 0


def _sites_status(args: argparse.Namespace) -> int:
    """``repro sites status``: the registry card, live or from disk."""
    import json

    if args.target.startswith(("http://", "https://")):
        from urllib.request import urlopen

        try:
            with urlopen(args.target.rstrip("/") + "/v1/sites", timeout=10) as resp:
                doc = json.loads(resp.read().decode("utf-8"))
        except (OSError, ValueError) as exc:
            _fail(f"cannot read {args.target}/v1/sites: {exc}")
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    from repro.serve.registry import load_fleet

    try:
        sites, default = load_fleet(args.target)
    except (OSError, ValueError) as exc:
        _fail(str(exc))
    print(f"fleet: {len(sites)} sites, default {default}")
    for sid in sorted(sites):
        definition = sites[sid]
        pack = Path(definition.database)
        kind = "frozen" if pack.suffix == ".tdbx" else "heap"
        geo = "with geometry" if definition.ap_positions else "no geometry"
        print(f"  {sid}: {definition.algorithm}, {kind} pack {pack.name}, {geo}")
    return 0


# ----------------------------------------------------------------------
# repro (umbrella command) — the `obs` telemetry group and `serve`
# ----------------------------------------------------------------------
def _load_snapshot(path: str) -> dict:
    import json

    p = Path(path)
    if not p.is_file():
        _fail(f"snapshot file not found: {p}")
    try:
        snap = json.loads(p.read_text(encoding="utf-8"))
    except (ValueError, OSError) as exc:
        _fail(f"cannot read snapshot {p}: {exc}")
    if not isinstance(snap, dict):
        _fail(f"{p} is not a metrics snapshot (expected a JSON object)")
    return snap


def _obs_demo_workload(drift_offset_db: float):
    """Populate the live registry with a small end-to-end workload.

    Returns the health checks to wire into the server: the RSSI drift
    monitor (fed live observations shifted by ``drift_offset_db`` on
    the first AP — 0 keeps it healthy, a large offset trips it) and the
    fallback-exhaustion check.
    """
    from repro.algorithms.fallback import FallbackLocalizer
    from repro.experiments.house import ExperimentHouse, HouseConfig
    from repro.obs.quality import APDriftMonitor, fallback_exhaustion_check

    house = ExperimentHouse(HouseConfig(dwell_s=5.0))
    db = house.training_database(rng=0)
    chain = FallbackLocalizer().fit(db)
    # Live traffic at the survey grid itself: position-matched to the
    # training reference, so the drift monitor's healthy baseline is
    # genuinely healthy and only the injected offset trips it.
    positions = [sp.position for sp in house.training_points()]
    observations = house.observe_all(positions, rng=1, dwell_s=5.0)
    monitor = APDriftMonitor(db, min_samples=20)
    for o in observations:
        samples = o.samples.copy()
        samples[:, 0] += drift_offset_db
        live = type(o)(samples, bssids=o.bssids)
        chain.locate(live)
        monitor.observe(live)
    monitor.status()  # compute + emit the drift gauges/alerts once
    return [
        ("rssi_drift", monitor.health),
        ("fallback_exhaustion", fallback_exhaustion_check()),
    ]


def _obs_serve(args: argparse.Namespace) -> int:
    import json
    import time

    from repro import obs

    checks = []
    if args.demo:
        print("running demo workload (simulated site, fallback chain, drift monitor)...")
        checks = _obs_demo_workload(args.drift_offset)
        snapshot_fn = obs.snapshot
    elif args.snapshot:
        path = Path(args.snapshot)
        _load_snapshot(args.snapshot)  # validate up front

        def snapshot_fn():
            # Re-read per scrape: rewriting the file updates the scrape.
            return json.loads(path.read_text(encoding="utf-8"))

    else:
        _fail("repro obs serve needs a snapshot file or --demo")

    server = obs.ObsServer(snapshot_fn, host=args.host, port=args.port)
    for name, check in checks:
        server.add_health_check(name, check)
    server.add_health_check(
        "snapshot",
        lambda: (True, {k: len(v) for k, v in snapshot_fn().items() if isinstance(v, dict)}),
    )
    server.start()
    try:
        print(f"serving {server.url}/metrics  /metrics.json  /healthz", flush=True)
        if args.for_seconds is not None:
            time.sleep(args.for_seconds)
        else:
            print("Ctrl-C to stop", flush=True)
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _obs_dump(args: argparse.Namespace) -> int:
    from repro import obs

    snap = _load_snapshot(args.snapshot)
    if args.format == "text":
        print(obs.render_text(snap))
    elif args.format == "prometheus":
        print(obs.render_prometheus(snap), end="")
    else:
        print(obs.render_json(snap), end="")
    return 0


def _obs_diff(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    before = _load_snapshot(args.before)
    after = _load_snapshot(args.after)
    if args.format == "json":
        print(json.dumps(obs.diff_snapshots(before, after), indent=2, sort_keys=True))
    else:
        print(obs.render_diff(before, after))
    return 0


def _span_line(span: dict) -> str:
    """One rendered span: name, timing, status, the useful attributes."""
    name = str(span.get("name", "?"))
    wall = span.get("wall_ms")
    timing = f" {float(wall):.2f}ms" if isinstance(wall, (int, float)) else ""
    status = str(span.get("status", "ok"))
    suffix = "" if status == "ok" else f" !{status}"
    attrs = span.get("attrs")
    extra = ""
    if isinstance(attrs, dict):
        shown = []
        for key in sorted(attrs):
            if key == "links":
                shown.append(f"links={len(attrs[key])}")
            else:
                shown.append(f"{key}={attrs[key]}")
        if shown:
            extra = "  {" + ", ".join(shown) + "}"
    return f"{name}{timing}{suffix}{extra}"


def _render_trace_tree(trace: dict) -> str:
    """ASCII span tree for one flight-recorder trace doc."""
    head = f"trace {trace.get('trace_id', '?')}"
    for key in ("method", "endpoint", "request_id"):
        if trace.get(key):
            head += f"  {key}={trace[key]}"
    if trace.get("status"):
        head += f"  status={trace['status']}"
    wall = trace.get("wall_ms")
    if isinstance(wall, (int, float)):
        head += f"  wall_ms={float(wall):.2f}"
    if trace.get("pinned"):
        head += f"  [pinned: {trace.get('reason', '?')}]"
    spans = [s for s in trace.get("spans", []) if isinstance(s, dict)]
    by_id = {s.get("span"): s for s in spans if s.get("span")}
    children: dict = {}
    roots = []
    for s in spans:
        parent = s.get("parent_span")
        if parent and parent in by_id and parent != s.get("span"):
            children.setdefault(parent, []).append(s)
        else:
            # No in-trace parent: an edge span, or a linked span copied
            # from a sibling trace (the batch-dispatch fan-in).
            roots.append(s)
    lines = [head]

    def walk(span: dict, prefix: str, is_last: bool) -> None:
        branch = "`- " if is_last else "|- "
        lines.append(prefix + branch + _span_line(span))
        kids = children.get(span.get("span"), [])
        kids.sort(key=lambda s: float(s.get("ts") or 0.0))
        child_prefix = prefix + ("   " if is_last else "|  ")
        for i, kid in enumerate(kids):
            walk(kid, child_prefix, i == len(kids) - 1)

    roots.sort(key=lambda s: float(s.get("ts") or 0.0))
    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    if not spans:
        lines.append("   (no spans retained)")
    return "\n".join(lines)


def _obs_traces(args: argparse.Namespace) -> int:
    """``repro obs traces``: render flight-recorder traces as span trees.

    The source is either a live server (``http://host:port`` — its
    ``/debug/traces`` endpoint, which on a fleet merges every worker's
    recorder) or a file: a ``/debug/traces`` JSON capture, a
    ``traces-<i>.json`` rundir dump, or a SIGUSR2 ``.jsonl`` dump.
    """
    import json

    source = args.source
    if source.startswith(("http://", "https://")):
        import urllib.error
        import urllib.parse
        import urllib.request

        url = source.rstrip("/")
        if "/debug/traces" not in url:
            url += "/debug/traces"
        if args.trace_id:
            url += "?" + urllib.parse.urlencode({"trace_id": args.trace_id})
        try:
            with urllib.request.urlopen(url, timeout=10.0) as resp:
                doc = json.loads(resp.read())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            _fail(f"cannot fetch {url}: {exc}")
    else:
        path = Path(source)
        if not path.is_file():
            _fail(f"trace source not found: {path}")
        try:
            text = path.read_text(encoding="utf-8")
            if path.suffix == ".jsonl":
                traces = [json.loads(line) for line in text.splitlines() if line.strip()]
                doc = {"traces": traces}
            else:
                doc = json.loads(text)
        except (OSError, ValueError) as exc:
            _fail(f"cannot read {path}: {exc}")
    traces = [t for t in doc.get("traces", []) if isinstance(t, dict)]
    if args.trace_id:
        traces = [t for t in traces if t.get("trace_id") == args.trace_id]
    traces.sort(key=lambda t: float(t.get("ts") or 0.0))
    if args.json:
        out = dict(doc)
        out["traces"] = traces
        print(json.dumps(out, indent=2, sort_keys=True, default=str))
        return 0
    stats = doc.get("stats")
    if isinstance(stats, dict) and stats:
        summary = ", ".join(f"{k}={stats[k]}" for k in sorted(stats))
        workers = doc.get("workers")
        prefix = f"workers={workers}  " if workers else ""
        print(f"# {prefix}{summary}")
    if not traces:
        print("no traces retained" + (f" for trace_id={args.trace_id}" if args.trace_id else ""))
        return 1 if args.trace_id else 0
    for trace in traces:
        print(_render_trace_tree(trace))
        print()
    return 0


def repro_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Toolkit umbrella command (see also the per-program "
        "entry points: floorplan-processor, training-db-generator, locate, ...).",
    )
    sub = parser.add_subparsers(dest="group", required=True)

    obs_parser = sub.add_parser(
        "obs",
        help="telemetry: serve /metrics over HTTP, render snapshots, diff them",
    )
    obs_sub = obs_parser.add_subparsers(dest="command", required=True)

    serve = obs_sub.add_parser(
        "serve",
        help="serve a metrics snapshot (or a --demo workload) on "
        "/metrics, /metrics.json and /healthz",
    )
    serve.add_argument(
        "snapshot", nargs="?", help="snapshot JSON written by --metrics (re-read per scrape)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9477)
    serve.add_argument(
        "--demo",
        action="store_true",
        help="populate the registry from a small simulated workload and wire "
        "the RSSI drift monitor + fallback health checks into /healthz",
    )
    serve.add_argument(
        "--drift-offset",
        type=float,
        default=0.0,
        metavar="DB",
        help="with --demo: shift live RSSI of the first AP by DB dB "
        "(e.g. 15 trips the drift monitor and /healthz goes degraded)",
    )
    serve.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="S",
        help="serve for S seconds then exit (default: until Ctrl-C)",
    )
    serve.set_defaults(func=_obs_serve)

    dump = obs_sub.add_parser(
        "dump", help="render a snapshot file as text, Prometheus exposition, or JSON"
    )
    dump.add_argument("snapshot", help="snapshot JSON written by --metrics")
    dump.add_argument(
        "--format", choices=("text", "prometheus", "json"), default="text"
    )
    dump.set_defaults(func=_obs_dump)

    diff = obs_sub.add_parser(
        "diff", help="what changed between two snapshots (counter deltas, gauge moves)"
    )
    diff.add_argument("before", help="earlier snapshot JSON")
    diff.add_argument("after", help="later snapshot JSON")
    diff.add_argument("--format", choices=("text", "json"), default="text")
    diff.set_defaults(func=_obs_diff)

    traces = obs_sub.add_parser(
        "traces",
        help="render flight-recorder traces (from a live server's "
        "/debug/traces or a dump file) as span trees",
    )
    traces.add_argument(
        "source",
        help="server URL (http://host:port), a /debug/traces JSON capture, "
        "a rundir traces-<i>.json, or a SIGUSR2 .jsonl dump",
    )
    traces.add_argument(
        "--trace-id", help="show only this trace (exit 1 if not retained)"
    )
    traces.add_argument(
        "--json", action="store_true", help="print the raw trace documents"
    )
    traces.set_defaults(func=_obs_traces)

    serve = sub.add_parser(
        "serve",
        help="run the localization service: JSON observations over HTTP, "
        "micro-batched into the vectorized scoring engine",
    )
    serve.add_argument(
        "database", nargs="?", default=None,
        help=".tdb training database to load and warm (omit with --sites)",
    )
    serve.add_argument(
        "--sites", default=None, metavar="FLEET",
        help="serve a multi-site fleet: a fleet.json manifest or a directory "
        "of .tdb/.tdbx packs; routes /v1/sites/{id}/... and aliases the "
        "legacy routes to the default site (see docs/sites.md)",
    )
    serve.add_argument(
        "--default-site", default=None, metavar="ID",
        help="with --sites: site the legacy single-site routes hit "
        "(default: the manifest's default)",
    )
    serve.add_argument(
        "--site-capacity", type=int, default=8, metavar="N",
        help="with --sites: bound on concurrently resident site models; "
        "LRU eviction beyond it, but in-flight sites are never unloaded",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8311,
        help="bind port (0 picks a free one; the bound URL is printed)",
    )
    serve.add_argument(
        "--algorithm", default="fallback",
        help="localizer registry name (default: the degraded-mode fallback chain)",
    )
    serve.add_argument(
        "--plan",
        help="annotated floor-plan GIF: supplies AP positions (geometric tiers) "
        "and site bounds for the fallback chain",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="dispatch a micro-batch as soon as N requests are queued "
        "(1 disables coalescing)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=5.0, metavar="MS",
        help="how long the first queued request may wait for company",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="admission control: queued requests beyond N are answered "
        "429 + Retry-After",
    )
    serve.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="deadline applied to locate requests that do not carry their own",
    )
    serve.add_argument(
        "--p99-limit-ms", type=float, default=None, metavar="MS",
        help="latency brake: shed bulk traffic when the rolling p99 exceeds "
        "MS, normal traffic at 2x MS (default: queue watermarks only)",
    )
    serve.add_argument(
        "--drain-deadline-s", type=float, default=10.0, metavar="S",
        help="graceful drain (SIGTERM or POST /admin/drain): wait up to S "
        "seconds for in-flight requests before reporting them unfinished",
    )
    serve.add_argument(
        "--track-filter", choices=("kalman", "bayes", "particle"),
        default="kalman",
        help="which filter /v1/track/{session} sessions run",
    )
    serve.add_argument(
        "--session-capacity", type=int, default=10000, metavar="N",
        help="bound on live tracking sessions (LRU eviction beyond it)",
    )
    serve.add_argument(
        "--session-ttl-s", type=float, default=300.0, metavar="S",
        help="idle tracking sessions expire after S seconds without a scan",
    )
    serve.add_argument(
        "--no-breakers", action="store_true",
        help="disable the per-tier circuit breakers around the fallback chain",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="enable the chaos harness; alone it injects a default mix "
        "(25ms dispatch latency + 25%% tier faults), the --chaos-* knobs "
        "tune it",
    )
    serve.add_argument(
        "--chaos-latency-ms", type=float, default=0.0, metavar="MS",
        help="with --chaos: inject MS of dispatch latency",
    )
    serve.add_argument(
        "--chaos-latency-rate", type=float, default=1.0, metavar="R",
        help="with --chaos: fraction of locate requests paying the latency",
    )
    serve.add_argument(
        "--chaos-latency-jitter-ms", type=float, default=0.0, metavar="MS",
        help="with --chaos: uniform jitter added on top of --chaos-latency-ms",
    )
    serve.add_argument(
        "--chaos-tier-error-rate", type=float, default=0.0, metavar="R",
        help="with --chaos: fraction of fallback-tier calls raising an "
        "injected fault (the circuit-breaker workout)",
    )
    serve.add_argument(
        "--chaos-tiers", default="", metavar="NAMES",
        help="with --chaos: comma-separated tier names to fault (default: all)",
    )
    serve.add_argument(
        "--chaos-reset-rate", type=float, default=0.0, metavar="R",
        help="with --chaos: fraction of data-plane responses answered by "
        "abruptly closing the connection",
    )
    serve.add_argument(
        "--chaos-slowloris-rate", type=float, default=0.0, metavar="R",
        help="with --chaos: fraction of responses written in dribbled chunks",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="with --chaos: seed for the chaos draws (reproducible runs)",
    )
    serve.add_argument(
        "--for-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then exit (default: until Ctrl-C)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="prefork N worker processes sharing the port via SO_REUSEPORT "
        "(1 = classic single process); freeze the database to a .tdbx "
        "pack first so the N model copies share one mmap",
    )
    serve.add_argument(
        "--rundir", default=None, metavar="DIR",
        help="with --workers: directory for worker readiness / metrics / "
        "control files (default: a fresh temp dir)",
    )
    serve.set_defaults(func=_serve_cmd)

    freeze = sub.add_parser(
        "freeze",
        help="write a training database as a frozen model pack (.tdbx): "
        "mmap-able, checksummed, zero-copy on load — the format "
        "`repro serve --workers N` shares across processes",
    )
    freeze.add_argument("database", help=".tdb training database (or a pack to re-freeze)")
    freeze.add_argument("output", help="output pack path (convention: .tdbx)")
    freeze.add_argument(
        "--plan", default=None,
        help="annotated floor-plan GIF: also freeze the fitted ranging "
        "model so geometric tiers skip their per-AP regression at load",
    )
    freeze.add_argument(
        "--std-floor", type=float, action="append", default=None, metavar="F",
        help="extra std-matrix floor to precompute (repeatable; default 0.5)",
    )
    freeze.set_defaults(func=_freeze_cmd)

    sites_parser = sub.add_parser(
        "sites",
        help="multi-site fleet tools: generate synthetic fleets, freeze "
        "their packs, inspect a registry (docs/sites.md)",
    )
    sites_sub = sites_parser.add_subparsers(dest="sites_command", required=True)
    gen = sites_sub.add_parser(
        "gen-fleet",
        help="synthesize N training databases (house/office/warehouse "
        "presets) plus a fleet.json manifest",
    )
    gen.add_argument("output", help="fleet directory to create")
    gen.add_argument(
        "--count", type=int, default=4, metavar="N",
        help="number of sites to generate",
    )
    gen.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base RNG seed (site i surveys with seed+i)",
    )
    gen.add_argument(
        "--dwell-s", type=float, default=10.0, metavar="S",
        help="survey dwell per location (lower = faster generation, "
        "noisier radio maps)",
    )
    gen.add_argument(
        "--algorithm", default="fallback",
        help="localizer each site's manifest entry names",
    )
    gen.add_argument(
        "--freeze", action="store_true",
        help="write frozen .tdbx packs (mmap-shareable across --workers) "
        "instead of heap .tdb databases",
    )
    gen.set_defaults(func=_sites_gen_fleet)
    sfreeze = sites_sub.add_parser(
        "freeze",
        help="freeze fleet sites to .tdbx packs and repoint the manifest",
    )
    sfreeze.add_argument("fleet", help="fleet manifest or directory")
    sfreeze.add_argument("site", nargs="*", help="site ids to freeze")
    sfreeze.add_argument(
        "--all", action="store_true",
        help="freeze every heap (.tdb) site in the fleet",
    )
    sfreeze.set_defaults(func=_sites_freeze)
    sstatus = sites_sub.add_parser(
        "status",
        help="show a fleet: sites + default from a manifest/directory, or "
        "the live registry card from a running server URL",
    )
    sstatus.add_argument(
        "target", help="fleet manifest/directory or a server base URL",
    )
    sstatus.set_defaults(func=_sites_status)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - manual smoke entry
    raise SystemExit(processor_main())
