"""Evaluation metrics.

Two headline numbers come straight from the paper:

* **valid-estimation rate** (§5.1: "60% observations end up with a
  valid estimation") — the fraction of observations whose estimate is
  both reported (the algorithm didn't refuse) and *correct at grid
  granularity*: the estimated training point is within one grid step of
  the truth, i.e. the system named the right neighbourhood.  For
  coordinate-valued algorithms the same tolerance applies to the
  coordinates.
* **average deviation** (§5.2: "the average deviation (distance between
  the estimate location and the actual location) of the 13 observation")
  — the mean Euclidean error over observations that produced a fix.

Plus the standard fingerprinting extras: median/quantile error, error
CDF, and the exact-training-point hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Point


def _errors(true_positions: Sequence[Point], estimates) -> np.ndarray:
    if len(true_positions) != len(estimates):
        raise ValueError(
            f"{len(true_positions)} truths vs {len(estimates)} estimates"
        )
    return np.array([est.error_to(t) for t, est in zip(true_positions, estimates)])


def valid_estimation_rate(
    true_positions: Sequence[Point],
    estimates,
    tolerance_ft: float = 10.0,
) -> float:
    """Fraction of observations with a reported, grid-correct estimate."""
    if not estimates:
        raise ValueError("no estimates to score")
    err = _errors(true_positions, estimates)
    return float((err <= tolerance_ft).mean())


def mean_deviation(true_positions: Sequence[Point], estimates) -> float:
    """Mean Euclidean error over the observations that produced a fix."""
    err = _errors(true_positions, estimates)
    finite = err[np.isfinite(err)]
    if finite.size == 0:
        return float("inf")
    return float(finite.mean())


def error_cdf(
    true_positions: Sequence[Point], estimates, grid: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """(error_ft, fraction ≤ error) curve; invalid estimates count as ∞."""
    err = np.sort(_errors(true_positions, estimates))
    if grid is None:
        finite = err[np.isfinite(err)]
        top = finite.max() if finite.size else 1.0
        grid = np.linspace(0.0, max(top, 1.0), 101)
    frac = np.array([(err <= g).mean() for g in grid])
    return grid, frac


@dataclass(frozen=True)
class ExperimentMetrics:
    """The summary table row for one (algorithm, protocol) run."""

    n_observations: int
    n_reported: int
    valid_rate: float
    mean_deviation_ft: float
    median_deviation_ft: float
    p90_deviation_ft: float
    exact_hit_rate: float

    @classmethod
    def compute(
        cls,
        true_positions: Sequence[Point],
        estimates,
        tolerance_ft: float = 10.0,
        exact_tolerance_ft: float = 1e-6,
    ) -> "ExperimentMetrics":
        err = _errors(true_positions, estimates)
        finite = err[np.isfinite(err)]
        reported = int(np.isfinite(err).sum())
        if finite.size:
            mean_d = float(finite.mean())
            med_d = float(np.median(finite))
            p90_d = float(np.percentile(finite, 90))
        else:
            mean_d = med_d = p90_d = float("inf")
        return cls(
            n_observations=len(estimates),
            n_reported=reported,
            valid_rate=float((err <= tolerance_ft).mean()),
            mean_deviation_ft=mean_d,
            median_deviation_ft=med_d,
            p90_deviation_ft=p90_d,
            exact_hit_rate=float((err <= exact_tolerance_ft).mean()),
        )

    def row(self, label: str) -> str:
        """A fixed-width report row (the bench harness prints these)."""
        return (
            f"{label:<22s} n={self.n_observations:<3d} "
            f"valid={100 * self.valid_rate:5.1f}%  "
            f"mean={self.mean_deviation_ft:6.2f} ft  "
            f"median={self.median_deviation_ft:6.2f} ft  "
            f"p90={self.p90_deviation_ft:6.2f} ft"
        )
