"""Protocol runner: Phase 1 + Phase 2 for one algorithm, one site draw.

One call to :func:`run_protocol` is one complete §5 experiment:

1. survey the training grid (Phase 1 capture),
2. generate the training database (§4.3),
3. fit the algorithm,
4. observe at each test point (Phase 2 capture),
5. locate each observation and score it.

Everything stochastic flows from the two seeds — ``site`` geometry
noise lives in the house's own config, and ``rng`` here covers the
survey and the observations — so a result is a pure function of
``(house config, algorithm, rng)`` and sweeps can run cells in
parallel worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.algorithms.base import LocationEstimate, Localizer, Observation, make_localizer
from repro.core.geometry import Point
from repro.core.trainingdb import TrainingDatabase
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.metrics import ExperimentMetrics
from repro.parallel.rng import RngLike, resolve_rng, split_rng


@dataclass(frozen=True)
class ObservationOutcome:
    """One test point's result."""

    true_position: Point
    estimate: LocationEstimate

    @property
    def error_ft(self) -> float:
        return self.estimate.error_to(self.true_position)


@dataclass
class ExperimentResult:
    """A full protocol run: per-observation outcomes plus the summary."""

    algorithm: str
    outcomes: List[ObservationOutcome]
    metrics: ExperimentMetrics
    training_db: Optional[TrainingDatabase] = None

    def errors_ft(self) -> np.ndarray:
        return np.array([o.error_ft for o in self.outcomes])


def _build_localizer(
    algorithm: Union[str, Localizer], house: ExperimentHouse, **kwargs
) -> Localizer:
    if isinstance(algorithm, Localizer):
        return algorithm
    if algorithm in ("geometric", "multilateration") and "ap_positions" not in kwargs:
        kwargs["ap_positions"] = house.ap_positions_by_bssid()
    return make_localizer(algorithm, **kwargs)


def run_protocol(
    algorithm: Union[str, Localizer],
    house: Optional[ExperimentHouse] = None,
    rng: RngLike = 0,
    tolerance_ft: Optional[float] = None,
    test_seed: int = 13,
    observation_dwell_s: Optional[float] = None,
    training_db: Optional[TrainingDatabase] = None,
    keep_db: bool = False,
    **algorithm_kwargs,
) -> ExperimentResult:
    """Run the §5 protocol once.

    Parameters
    ----------
    algorithm:
        Registry name or pre-built localizer.
    house:
        The site; defaults to the calibrated §5 house.
    rng:
        Master seed for this run's survey + observations.
    tolerance_ft:
        Valid-estimation tolerance; defaults to the house grid step.
    test_seed:
        Seed choosing the 13 scattered test points (fixed by default so
        every algorithm sees the same points, like the paper).
    observation_dwell_s:
        Phase-2 window length (defaults to the Phase-1 dwell).
    training_db:
        Reuse an existing Phase-1 database (skips the survey) — lets
        sweeps hold Phase 1 fixed while varying Phase 2 and keeps
        algorithm comparisons on identical training data.
    keep_db:
        Attach the training database to the result.
    """
    house = house or ExperimentHouse()
    gen = resolve_rng(rng)
    survey_rng, observe_rng = split_rng(gen, 2)

    if training_db is None:
        training_db = house.training_database(rng=survey_rng)
    localizer = _build_localizer(algorithm, house, **algorithm_kwargs)
    localizer.fit(training_db)

    test_points = house.test_points(seed=test_seed)
    observations = house.observe_all(test_points, rng=observe_rng, dwell_s=observation_dwell_s)

    outcomes = [
        ObservationOutcome(true_position=p, estimate=localizer.locate(obs))
        for p, obs in zip(test_points, observations)
    ]
    tol = house.config.grid_step_ft if tolerance_ft is None else tolerance_ft
    metrics = ExperimentMetrics.compute(
        test_points, [o.estimate for o in outcomes], tolerance_ft=tol
    )
    name = localizer.name or type(localizer).__name__
    return ExperimentResult(
        algorithm=name,
        outcomes=outcomes,
        metrics=metrics,
        training_db=training_db if keep_db else None,
    )


def run_repeated(
    algorithm: Union[str, Localizer],
    house: Optional[ExperimentHouse] = None,
    n_runs: int = 5,
    rng: RngLike = 0,
    **kwargs,
) -> List[ExperimentResult]:
    """Independent repetitions (fresh survey + observation noise each)."""
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    gen = resolve_rng(rng)
    seeds = split_rng(gen, n_runs)
    return [run_protocol(algorithm, house=house, rng=s, **kwargs) for s in seeds]


def aggregate_metrics(results: Sequence[ExperimentResult]) -> Dict[str, float]:
    """Mean-of-runs summary for repeated protocols."""
    if not results:
        raise ValueError("no results to aggregate")
    finite_means = [
        r.metrics.mean_deviation_ft
        for r in results
        if np.isfinite(r.metrics.mean_deviation_ft)
    ]
    return {
        "n_runs": float(len(results)),
        "valid_rate": float(np.mean([r.metrics.valid_rate for r in results])),
        "mean_deviation_ft": float(np.mean(finite_means)) if finite_means else float("inf"),
        "median_deviation_ft": float(
            np.mean([r.metrics.median_deviation_ft for r in results])
        ),
    }
