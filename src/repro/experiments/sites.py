"""Site presets beyond the paper's house.

The §5 house is small enough that every AP is audible everywhere — some
approaches (identifying codes!) never get to show their behaviour.
These presets give the toolkit bigger stages:

* :func:`paper_house` — the §5 site, verbatim (delegates to the
  defaults; here so experiments can name their site explicitly).
* :func:`office_floor` — a 120 ft × 80 ft office: central corridor,
  perimeter offices off it, concrete core, 8 APs down the corridor.
  Large enough that corner-to-corner APs drop below sensitivity, which
  turns presence/absence into real information.
* :func:`warehouse` — a 200 ft × 120 ft open span with a few metal
  racks: long distances, few walls — the geometric approach's best
  case and fingerprinting's worst (little structure to memorize).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.geometry import Point
from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.radio.environment import Wall


def paper_house(dwell_s: float = 90.0, **overrides) -> ExperimentHouse:
    """The §5 experiment house with calibrated defaults."""
    return ExperimentHouse(HouseConfig(dwell_s=dwell_s, **overrides))


def _office_walls(width: float, height: float) -> List[Wall]:
    """Corridor spine + perimeter office partitions + concrete core."""
    walls: List[Wall] = []
    corridor_lo = height / 2 - 5.0
    corridor_hi = height / 2 + 5.0
    # Corridor walls, with door gaps every 20 ft (gap = 4 ft).
    x = 0.0
    while x < width:
        seg_end = min(x + 16.0, width)
        walls.append(Wall.of(x, corridor_lo, seg_end, corridor_lo, "drywall"))
        walls.append(Wall.of(x, corridor_hi, seg_end, corridor_hi, "drywall"))
        x += 20.0
    # Office partitions perpendicular to the corridor, both sides.
    x = 20.0
    while x < width:
        walls.append(Wall.of(x, 0.0, x, corridor_lo, "drywall"))
        walls.append(Wall.of(x, corridor_hi, x, height, "drywall"))
        x += 20.0
    # Concrete service core in the middle of the north side.
    cx0, cx1 = width / 2 - 12.0, width / 2 + 12.0
    walls.append(Wall.of(cx0, corridor_hi, cx1, corridor_hi, "concrete"))
    walls.append(Wall.of(cx0, height, cx1, height, "concrete"))
    walls.append(Wall.of(cx0, corridor_hi, cx0, height, "concrete"))
    walls.append(Wall.of(cx1, corridor_hi, cx1, height, "concrete"))
    return walls


def office_floor(
    width_ft: float = 120.0,
    height_ft: float = 80.0,
    n_aps: int = 8,
    dwell_s: float = 60.0,
    **overrides,
) -> ExperimentHouse:
    """A corridor-and-offices floor with APs spaced down the corridor."""
    config = HouseConfig(
        width_ft=width_ft,
        height_ft=height_ft,
        n_aps=n_aps,
        dwell_s=dwell_s,
        n_test_points=overrides.pop("n_test_points", 20),
        **overrides,
    )
    # APs along the corridor center line, evenly spaced, alternating a
    # small north/south offset so adjacent cells differ.
    y_mid = height_ft / 2.0
    positions = [
        Point(width_ft * (i + 0.5) / n_aps, y_mid + (6.0 if i % 2 else -6.0))
        for i in range(n_aps)
    ]
    return ExperimentHouse(
        config, walls=_office_walls(width_ft, height_ft), ap_positions=positions
    )


def warehouse(
    width_ft: float = 200.0,
    height_ft: float = 120.0,
    n_aps: int = 6,
    dwell_s: float = 60.0,
    **overrides,
) -> ExperimentHouse:
    """An open span with sparse metal racks and high-mounted corner/edge APs."""
    config = HouseConfig(
        width_ft=width_ft,
        height_ft=height_ft,
        n_aps=n_aps,
        dwell_s=dwell_s,
        n_test_points=overrides.pop("n_test_points", 20),
        grid_step_ft=overrides.pop("grid_step_ft", 20.0),
        **overrides,
    )
    racks: List[Wall] = []
    for i in range(3):
        x = width_ft * (i + 1) / 4.0
        racks.append(Wall.of(x, height_ft * 0.2, x, height_ft * 0.8, "metal"))
    ring = [
        Point(0, 0),
        Point(width_ft, 0),
        Point(width_ft, height_ft),
        Point(0, height_ft),
        Point(width_ft / 2, 0),
        Point(width_ft / 2, height_ft),
    ]
    return ExperimentHouse(config, walls=racks, ap_positions=ring[:n_aps])
