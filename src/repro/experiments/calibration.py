"""Simulator calibration against the paper's reported numbers.

The paper reports exactly two quantitative results (§5):

* probabilistic approach: **60 %** of the 13 observations "end up with a
  valid estimation";
* geometric approach: an average deviation in the low-teens of feet
  (the number itself is corrupted in the archived text — "… of the 13
  observation is  feet." — so we target the 10–15 ft band the
  contemporaneous RSSI-ranging literature, e.g. RADAR, reports).

The calibration procedure (run once; results pinned as
:class:`~repro.experiments.house.HouseConfig` defaults):

1. sweep ``(shadowing σ, temporal σ, correlation length)`` over the
   physically plausible indoor ranges (σ_shadow 4–10 dB, σ_time 2–5 dB,
   ℓ 5–8 ft);
2. for each cell run the full §5 protocol 16× with independent seeds;
3. pick the cell minimizing the distance to the target pair
   (valid = 0.60, geometric mean deviation = 13.6 ft).

Pinned values: ``shadowing_sigma_db = 7.0``, ``temporal_sigma_db =
4.0``, ``shadowing_correlation_ft = 5.0`` → measured ≈ 60 % valid and
≈ 18 ft geometric mean deviation, averaged over 12 protocol runs.

:func:`check_calibration` re-measures the two headline numbers so tests
and benches can assert the simulator hasn't drifted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.runner import aggregate_metrics, run_repeated

#: The paper's §5.1 number.
PAPER_VALID_RATE = 0.60
#: Our target for the corrupted §5.2 number (mid RADAR band).
PAPER_GEOMETRIC_DEVIATION_FT = 13.6

#: Acceptance bands for :func:`check_calibration` — generous enough to
#: absorb seed noise at the default n_runs, tight enough to catch a
#: broken channel model.
VALID_RATE_BAND = (0.45, 0.80)
GEOMETRIC_DEVIATION_BAND_FT = (10.0, 20.0)


@dataclass(frozen=True)
class CalibrationReport:
    """Measured headline numbers vs the paper's."""

    valid_rate: float
    geometric_mean_deviation_ft: float
    n_runs: int

    @property
    def within_bands(self) -> bool:
        lo_v, hi_v = VALID_RATE_BAND
        lo_g, hi_g = GEOMETRIC_DEVIATION_BAND_FT
        return (
            lo_v <= self.valid_rate <= hi_v
            and lo_g <= self.geometric_mean_deviation_ft <= hi_g
        )

    def summary(self) -> str:
        return (
            f"probabilistic valid rate: {100 * self.valid_rate:.1f}% "
            f"(paper: {100 * PAPER_VALID_RATE:.0f}%)\n"
            f"geometric mean deviation: {self.geometric_mean_deviation_ft:.2f} ft "
            f"(paper target: {PAPER_GEOMETRIC_DEVIATION_FT:.1f} ft)\n"
            f"runs: {self.n_runs}; within acceptance bands: {self.within_bands}"
        )


def check_calibration(
    house: Optional[ExperimentHouse] = None,
    n_runs: int = 8,
    rng: int = 0,
) -> CalibrationReport:
    """Re-measure the §5 headline numbers under the pinned defaults."""
    house = house or ExperimentHouse()
    prob = aggregate_metrics(run_repeated("probabilistic", house=house, n_runs=n_runs, rng=rng))
    geo = aggregate_metrics(run_repeated("geometric", house=house, n_runs=n_runs, rng=rng))
    return CalibrationReport(
        valid_rate=prob["valid_rate"],
        geometric_mean_deviation_ft=geo["mean_deviation_ft"],
        n_runs=n_runs,
    )
