"""Walking-path generation and track-level metrics.

The tracking experiments (§6.2 extensions) need client trajectories.
This module provides the two standard generators plus the track metrics
the literature reports:

* :func:`random_waypoint_path` — the classic mobility model: pick a
  uniform waypoint, walk straight to it, repeat.
* :func:`patrol_path` — a deterministic perimeter-ish loop, for
  regression-stable benches.
* :func:`track_errors` / :class:`TrackMetrics` — absolute trajectory
  error statistics (mean/median/p90/RMSE) plus estimate *jumpiness*
  (mean step of the estimate sequence vs the truth's step — a smoothness
  measure the raw error hides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Point
from repro.parallel.rng import RngLike, resolve_rng


def random_waypoint_path(
    bounds: Tuple[float, float, float, float],
    n_waypoints: int = 6,
    margin_ft: float = 3.0,
    rng: RngLike = None,
) -> List[Point]:
    """Random-waypoint trajectory inside ``bounds`` (uniform waypoints)."""
    if n_waypoints < 2:
        raise ValueError(f"a path needs >= 2 waypoints, got {n_waypoints}")
    x0, y0, x1, y1 = bounds
    if x0 + margin_ft >= x1 - margin_ft or y0 + margin_ft >= y1 - margin_ft:
        raise ValueError(f"margin {margin_ft} ft leaves no interior in {bounds}")
    gen = resolve_rng(rng)
    xs = gen.uniform(x0 + margin_ft, x1 - margin_ft, n_waypoints)
    ys = gen.uniform(y0 + margin_ft, y1 - margin_ft, n_waypoints)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def patrol_path(
    bounds: Tuple[float, float, float, float], inset_ft: float = 5.0
) -> List[Point]:
    """A deterministic rectangular patrol loop, ``inset_ft`` off the walls."""
    x0, y0, x1, y1 = bounds
    if x0 + inset_ft >= x1 - inset_ft or y0 + inset_ft >= y1 - inset_ft:
        raise ValueError(f"inset {inset_ft} ft leaves no loop in {bounds}")
    a, b = x0 + inset_ft, y0 + inset_ft
    c, d = x1 - inset_ft, y1 - inset_ft
    return [Point(a, b), Point(c, b), Point(c, d), Point(a, d), Point(a, b)]


def path_length(waypoints: Sequence[Point]) -> float:
    """Total length of a piecewise-linear path (ft)."""
    return float(sum(p.distance_to(q) for p, q in zip(waypoints[:-1], waypoints[1:])))


@dataclass(frozen=True)
class TrackMetrics:
    """Error statistics of one estimated track against the truth."""

    n_steps: int
    n_fixes: int
    mean_error_ft: float
    median_error_ft: float
    p90_error_ft: float
    rmse_ft: float
    jumpiness_ratio: float

    def row(self, label: str) -> str:
        return (
            f"{label:<24s} fixes={self.n_fixes}/{self.n_steps}  "
            f"mean={self.mean_error_ft:6.2f}  median={self.median_error_ft:6.2f}  "
            f"p90={self.p90_error_ft:6.2f}  rmse={self.rmse_ft:6.2f}  "
            f"jump={self.jumpiness_ratio:5.2f}x"
        )


def track_errors(
    true_path: Sequence[Point],
    estimates,
    warmup: int = 3,
) -> TrackMetrics:
    """Score an estimate sequence against the true positions.

    ``estimates`` are :class:`~repro.algorithms.base.LocationEstimate`;
    invalid/position-less steps are skipped (counted as missing fixes).
    The first ``warmup`` steps are excluded from the error statistics
    (filters need a few steps to localize from a uniform prior), but the
    fix count covers everything.  ``jumpiness_ratio`` compares the
    estimate sequence's mean step length against the truth's — 1.0 means
    the track moves like the client; ≫1 means it teleports between
    scans.
    """
    if len(true_path) != len(estimates):
        raise ValueError(f"{len(true_path)} truths vs {len(estimates)} estimates")
    pairs = [
        (t, e.position)
        for t, e in zip(true_path, estimates)
        if e.valid and e.position is not None
    ]
    n_fixes = len(pairs)
    scored = pairs[warmup:] if len(pairs) > warmup else pairs
    if not scored:
        return TrackMetrics(len(true_path), n_fixes, float("inf"), float("inf"),
                            float("inf"), float("inf"), float("inf"))
    errors = np.array([t.distance_to(p) for t, p in scored])

    def step_mean(points: Sequence[Point]) -> float:
        if len(points) < 2:
            return 0.0
        return float(np.mean([a.distance_to(b) for a, b in zip(points[:-1], points[1:])]))

    truth_step = step_mean([t for t, _ in pairs])
    est_step = step_mean([p for _, p in pairs])
    jump = est_step / truth_step if truth_step > 0 else float("inf")
    return TrackMetrics(
        n_steps=len(true_path),
        n_fixes=n_fixes,
        mean_error_ft=float(errors.mean()),
        median_error_ft=float(np.median(errors)),
        p90_error_ft=float(np.percentile(errors, 90)),
        rmse_ft=float(np.sqrt((errors**2).mean())),
        jumpiness_ratio=jump,
    )
