"""Confusion analysis for symbolic localizers.

The §5.1 approach answers with a training-point name, so its errors are
*confusions* — point A attributed to point B.  This module measures the
empirical confusion structure and compares it against the planning
package's Gaussian predictions, closing the loop between design-time
metrics (:mod:`repro.planning.quality`) and run-time behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.base import Localizer
from repro.core.trainingdb import TrainingDatabase
from repro.experiments.house import ExperimentHouse
from repro.parallel.rng import RngLike, resolve_rng, split_rng


@dataclass(frozen=True)
class ConfusionResult:
    """Empirical confusion of a symbolic localizer over the grid."""

    locations: List[str]
    matrix: np.ndarray  # (L, L): row = truth, column = answer; rows sum to 1
    n_trials: int

    def accuracy(self) -> float:
        """Fraction of trials answered with the exactly-correct point."""
        return float(np.diag(self.matrix).mean())

    def confusion_of(self, name: str) -> Dict[str, float]:
        """Where observations from ``name`` actually went (prob > 0)."""
        i = self.locations.index(name)
        return {
            self.locations[j]: float(p)
            for j, p in enumerate(self.matrix[i])
            if p > 0
        }

    def most_confused_pairs(self, top: int = 5) -> List[Tuple[str, str, float]]:
        """Off-diagonal cells with the highest mass, descending."""
        off = self.matrix.copy()
        np.fill_diagonal(off, 0.0)
        flat = np.argsort(off.ravel())[::-1][:top]
        out = []
        for k in flat:
            i, j = np.unravel_index(int(k), off.shape)
            if off[i, j] <= 0:
                break
            out.append((self.locations[int(i)], self.locations[int(j)], float(off[i, j])))
        return out

    def entropy_bits(self) -> float:
        """Mean per-row answer entropy: 0 = deterministic answers."""
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.where(self.matrix > 0, np.log2(self.matrix), 0.0)
        return float(-(self.matrix * logs).sum(axis=1).mean())


def measure_confusion(
    localizer: Localizer,
    house: ExperimentHouse,
    db: TrainingDatabase,
    n_trials: int = 10,
    dwell_s: float = 10.0,
    rng: RngLike = 0,
) -> ConfusionResult:
    """Observe ``n_trials`` windows at every training point; tally answers.

    The localizer must be fitted on ``db`` and answer with
    ``location_name`` (probabilistic/histogram/knn(k=1)/sector/scene);
    answers without a name are tallied to the nearest training point.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    names = db.locations()
    index = {n: i for i, n in enumerate(names)}
    positions = db.positions()
    matrix = np.zeros((len(names), len(names)))
    gen = resolve_rng(rng)
    streams = split_rng(gen, len(names))
    for i, (name, stream) in enumerate(zip(names, streams)):
        true_pos = db.record(name).position
        for _ in range(n_trials):
            obs = house.observe(true_pos, rng=stream, dwell_s=dwell_s)
            est = localizer.locate(obs)
            if est.location_name is not None and est.location_name in index:
                j = index[est.location_name]
            elif est.position is not None:
                d = np.hypot(
                    positions[:, 0] - est.position.x, positions[:, 1] - est.position.y
                )
                j = int(np.argmin(d))
            else:
                continue  # refused: no answer tallied
            matrix[i, j] += 1.0
    row_sums = matrix.sum(axis=1, keepdims=True)
    matrix = np.divide(matrix, np.maximum(row_sums, 1.0))
    return ConfusionResult(locations=names, matrix=matrix, n_trials=n_trials)


def discrimination_auc(
    confusion: ConfusionResult,
    predicted: np.ndarray,
) -> Tuple[float, int]:
    """How well does a predicted-confusion matrix pick out the pairs the
    live system actually mixes up?

    The empirical matrix is *sparse* (most pairs are never confused in a
    finite trial budget), so a rank correlation is tie-dominated; the
    right summary is the **AUC**: the probability that a randomly-drawn
    empirically-confused pair carries a higher predicted confusion than
    a randomly-drawn clean pair.  0.5 = the prediction is useless,
    1.0 = it perfectly separates risky pairs.

    Returns ``(auc, n_confused_pairs)``.
    """
    if predicted.shape != confusion.matrix.shape:
        raise ValueError(
            f"prediction shape {predicted.shape} vs confusion "
            f"{confusion.matrix.shape}"
        )
    emp = confusion.matrix + confusion.matrix.T
    mask = ~np.eye(len(confusion.locations), dtype=bool)
    confused = emp[mask] > 0
    pred = predicted[mask]
    pos, neg = pred[confused], pred[~confused]
    if pos.size == 0 or neg.size == 0:
        return (0.5, int(pos.size))
    # Mann-Whitney AUC via midranks (ties shared evenly).
    allv = np.concatenate([pos, neg])
    order = np.argsort(allv, kind="stable")
    ranks = np.empty(allv.size, dtype=float)
    ranks[order] = np.arange(1, allv.size + 1, dtype=float)
    for v in np.unique(allv):
        tie = allv == v
        if tie.sum() > 1:
            ranks[tie] = ranks[tie].mean()
    auc = (ranks[: pos.size].sum() - pos.size * (pos.size + 1) / 2) / (pos.size * neg.size)
    return (float(auc), int(pos.size))
