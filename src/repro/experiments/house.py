"""The §5 experiment house.

"We set up four 802.11b APs (A, B, C, D) at the four corners of the
experiment house that is 50 feet by 40 feet … We set one corner as the
original point (0, 0).  Then we collect the sample signal strength
vector <A, B, C, D> at each training point (x, y) where x and y are
product of 10 feet. … In Phase 2, we collect signal strength at 13
locations scattered in the house."

:class:`ExperimentHouse` builds the whole site: the radio environment
(APs at the corners, interior walls matching the synthetic blueprint),
the 6 × 5 = 30-point training grid, the 13 scattered test locations
(fixed, pseudo-random but seeded, since the paper doesn't list them),
the annotated floor plan, and the survey/test capture machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.floorplan import FloorPlan, PixelPoint
from repro.core.geometry import Point
from repro.core.locationmap import LocationMap
from repro.core.trainingdb import TrainingDatabase, generate_training_db
from repro.imaging.blueprint import BlueprintSpec, render_blueprint
from repro.parallel.rng import RngLike, resolve_rng, split_rng
from repro.radio.environment import AccessPoint, EnvironmentalFactors, RadioEnvironment, Wall
from repro.radio.fading import TemporalFading
from repro.radio.pathloss import LogDistanceModel
from repro.radio.scanner import SimulatedScanner
from repro.wiscan.capture import PAPER_DWELL_S, CaptureSession, SurveyPoint
from repro.wiscan.collection import WiScanCollection


@dataclass(frozen=True)
class HouseConfig:
    """Everything tunable about the §5 site and protocol.

    Defaults are the calibrated values (see
    :mod:`repro.experiments.calibration`): with them, the §5 protocol
    lands near the paper's reported numbers.
    """

    width_ft: float = 50.0
    height_ft: float = 40.0
    grid_step_ft: float = 10.0
    n_test_points: int = 13
    n_aps: int = 4
    dwell_s: float = PAPER_DWELL_S
    scan_interval_s: float = 1.0

    # Channel parameters (calibration-pinned defaults).
    pathloss_exponent: float = 3.0
    shadowing_sigma_db: float = 7.0
    shadowing_correlation_ft: float = 5.0
    temporal_sigma_db: float = 4.0
    temporal_timescale_s: float = 6.0
    noise_db: float = 1.0
    miss_probability: float = 0.02
    with_walls: bool = True
    temperature_c: float = 21.0
    humidity_pct: float = 45.0
    people: int = 0

    site_seed: int = 2006  # the shadowing-field (site identity) seed

    def __post_init__(self):
        if self.width_ft <= 0 or self.height_ft <= 0:
            raise ValueError("house dimensions must be positive")
        if self.grid_step_ft <= 0:
            raise ValueError("grid step must be positive")
        if self.n_test_points < 1:
            raise ValueError("need at least one test point")
        if not 3 <= self.n_aps <= 26:
            raise ValueError(f"n_aps must be in [3, 26], got {self.n_aps}")


#: Interior wall segments of the synthetic house (feet) — matches
#: :func:`repro.imaging.blueprint.experiment_house_blueprint`.
INTERIOR_WALLS: Tuple[Tuple[float, float, float, float], ...] = (
    (20, 0, 20, 25),
    (20, 25, 0, 25),
    (35, 40, 35, 25),
    (35, 25, 50, 25),
    (20, 12, 35, 12),
)


def _ap_positions(config: HouseConfig) -> List[Point]:
    """AP placements: the four corners first, then perimeter midpoints.

    The paper uses exactly the 4 corners; AP-count ablations extend the
    ring with wall midpoints so geometry stays favorable.
    """
    w, h = config.width_ft, config.height_ft
    ring = [
        Point(0, 0),
        Point(w, 0),
        Point(w, h),
        Point(0, h),
        Point(w / 2, 0),
        Point(w, h / 2),
        Point(w / 2, h),
        Point(0, h / 2),
        Point(w / 2, h / 2),
        Point(w / 4, h / 4),
        Point(3 * w / 4, h / 4),
        Point(3 * w / 4, 3 * h / 4),
        Point(w / 4, 3 * h / 4),
    ]
    if config.n_aps > len(ring):
        raise ValueError(f"at most {len(ring)} APs supported, asked for {config.n_aps}")
    return ring[: config.n_aps]


class ExperimentHouse:
    """The fully assembled §5 site: radio, plan, grid, protocol.

    Parameters
    ----------
    config:
        Geometry, protocol and channel knobs.
    walls:
        Optional explicit wall list (overrides the built-in §5 house
        interior; ignored when ``config.with_walls`` is False).  Used by
        the site presets in :mod:`repro.experiments.sites`.
    ap_positions:
        Optional explicit AP placements (overrides the corner ring).
        Length must equal ``config.n_aps``.
    """

    def __init__(
        self,
        config: Optional[HouseConfig] = None,
        walls: Optional[Sequence[Wall]] = None,
        ap_positions: Optional[Sequence[Point]] = None,
    ):
        self.config = config or HouseConfig()
        cfg = self.config

        placements = list(ap_positions) if ap_positions is not None else _ap_positions(cfg)
        if len(placements) != cfg.n_aps:
            raise ValueError(
                f"{len(placements)} AP positions for n_aps={cfg.n_aps}"
            )
        names = [chr(ord("A") + i) for i in range(cfg.n_aps)]
        self.aps = [
            AccessPoint(name=n, position=p, channel=(1, 6, 11)[i % 3])
            for i, (n, p) in enumerate(zip(names, placements))
        ]
        self._custom_walls = walls is not None
        if not cfg.with_walls:
            walls = []
        elif walls is None:
            walls = [Wall.of(*seg, material="drywall") for seg in INTERIOR_WALLS]
        else:
            walls = list(walls)
        self._walls = walls
        self.environment = RadioEnvironment(
            self.aps,
            walls=walls,
            pathloss=LogDistanceModel(exponent=cfg.pathloss_exponent),
            shadowing_sigma_db=cfg.shadowing_sigma_db,
            shadowing_correlation_ft=cfg.shadowing_correlation_ft,
            fading=TemporalFading(
                sigma_db=cfg.temporal_sigma_db,
                timescale_s=cfg.temporal_timescale_s,
                noise_db=cfg.noise_db,
            ),
            factors=EnvironmentalFactors(
                temperature_c=cfg.temperature_c,
                humidity_pct=cfg.humidity_pct,
                people=cfg.people,
            ),
            miss_probability=cfg.miss_probability,
            seed=cfg.site_seed,
        )
        self.scanner = SimulatedScanner(self.environment, interval_s=cfg.scan_interval_s)

    # ------------------------------------------------------------------
    # protocol geometry
    # ------------------------------------------------------------------
    def training_points(self) -> List[SurveyPoint]:
        """The grid: (x, y) with x and y products of 10 ft (6 × 5 = 30)."""
        cfg = self.config
        points = []
        y = 0.0
        while y <= cfg.height_ft + 1e-9:
            x = 0.0
            while x <= cfg.width_ft + 1e-9:
                points.append(SurveyPoint(name=f"grid-{x:g}-{y:g}", position=Point(x, y)))
                x += cfg.grid_step_ft
            y += cfg.grid_step_ft
        return points

    def test_points(self, seed: int = 13) -> List[Point]:
        """The 13 scattered observation locations.

        The paper never lists them, only that they are "scattered in the
        house"; we draw them once from a seeded RNG with a 3-ft margin
        off the walls so they are reproducible across the whole suite.
        """
        cfg = self.config
        gen = resolve_rng(seed)
        margin = 3.0
        xs = gen.uniform(margin, cfg.width_ft - margin, cfg.n_test_points)
        ys = gen.uniform(margin, cfg.height_ft - margin, cfg.n_test_points)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]

    def location_map(self) -> LocationMap:
        lm = LocationMap()
        for sp in self.training_points():
            lm.add(sp.name, sp.position)
        return lm

    # ------------------------------------------------------------------
    # surveys
    # ------------------------------------------------------------------
    def survey(self, rng: RngLike = None) -> WiScanCollection:
        """Phase-1 survey: dwell at every grid point."""
        session = CaptureSession(self.scanner, dwell_s=self.config.dwell_s)
        return session.capture_survey(self.training_points(), rng=rng)

    def training_database(self, rng: RngLike = None) -> TrainingDatabase:
        """Phase-1 product: survey → training database.

        The generator orders BSSID columns by first appearance in the
        scan logs, which can differ from the AP deployment order when an
        early sweep misses a beacon; observations from :meth:`observe`
        use deployment order, so the columns are canonicalized here.
        """
        db = generate_training_db(self.survey(rng=rng), self.location_map())
        deployment_order = [ap.bssid for ap in self.aps if ap.bssid in set(db.bssids)]
        missing = [b for b in db.bssids if b not in set(deployment_order)]
        return db.subset_aps(deployment_order + missing)

    def observe(
        self,
        position: Point,
        rng: RngLike = None,
        dwell_s: Optional[float] = None,
        device=None,
    ):
        """Phase-2 measurement window at one position.

        Returns an :class:`~repro.algorithms.base.Observation` in the
        environment's AP column order (which
        :meth:`training_database` also canonicalizes to).  Pass a
        :class:`~repro.radio.device.DeviceProfile` as ``device`` to
        observe through a different NIC than the survey used — the
        heterogeneity experiments' knob.
        """
        from repro.algorithms.base import Observation

        gen = resolve_rng(rng)
        dwell = self.config.dwell_s if dwell_s is None else dwell_s
        n = int(dwell // self.config.scan_interval_s)
        samples = self.environment.sample_rssi(
            position, n, self.config.scan_interval_s, rng=gen
        )
        if device is not None:
            samples = device.apply(samples, rng=gen)
        return Observation(samples, bssids=[ap.bssid for ap in self.aps])

    def observe_all(
        self,
        positions: Sequence[Point],
        rng: RngLike = None,
        dwell_s: Optional[float] = None,
        device=None,
    ):
        """Independent observations at each position (split RNG streams)."""
        gen = resolve_rng(rng)
        streams = split_rng(gen, len(positions))
        return [
            self.observe(p, rng=s, dwell_s=dwell_s, device=device)
            for p, s in zip(positions, streams)
        ]

    # ------------------------------------------------------------------
    # plan / rendering
    # ------------------------------------------------------------------
    def blueprint_spec(self, pixels_per_foot: float = 8.0) -> BlueprintSpec:
        cfg = self.config
        wall_segments = [(w.a.x, w.a.y, w.b.x, w.b.y) for w in self._walls]
        default_geometry = (cfg.width_ft, cfg.height_ft) == (50.0, 40.0) and not self._custom_walls
        labels = (
            [
                (10, 12, "BED 1"),
                (10, 33, "BED 2"),
                (35, 6, "LIVING"),
                (42, 33, "KITCHEN"),
                (27, 18, "HALL"),
            ]
            if default_geometry and cfg.with_walls
            else []
        )
        return BlueprintSpec(
            width_ft=cfg.width_ft,
            height_ft=cfg.height_ft,
            interior_walls=wall_segments,
            labels=labels,
            title="EXPERIMENT HOUSE" if default_geometry else "EXPERIMENT SITE",
            pixels_per_foot=pixels_per_foot,
        )

    def floor_plan(self, pixels_per_foot: float = 8.0, rng: RngLike = 7) -> FloorPlan:
        """The annotated plan: blueprint + APs + scale + origin + rooms."""
        spec = self.blueprint_spec(pixels_per_foot)
        image = render_blueprint(spec, scan_noise=0.1, rng=rng)
        plan = FloorPlan(image, source="<experiment-house>")
        plan.set_scale_direct(1.0 / pixels_per_foot)
        ox, oy = spec.to_pixel(0.0, 0.0)
        plan.set_origin(PixelPoint(ox, oy))
        for ap in self.aps:
            px = plan.to_pixel(ap.position)
            plan.add_access_point(ap.name, px)
        for x, y, label in spec.labels:
            plan.add_location(label.title(), plan.to_pixel(Point(x, y)))
        return plan

    def ap_positions_by_bssid(self) -> Dict[str, Point]:
        return {ap.bssid: ap.position for ap in self.aps}

    def bounds(self) -> Tuple[float, float, float, float]:
        return (0.0, 0.0, self.config.width_ft, self.config.height_ft)
