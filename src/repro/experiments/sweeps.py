"""Parameter sweeps over the §5 protocol, parallelized.

Each sweep cell — one (parameter value, algorithm, repetition seed)
triple — is an independent full protocol run, so cells ship to worker
processes via :func:`repro.parallel.parallel_map`.  Worker payloads are
plain dicts (picklable, tiny); results come back as flat row dicts the
bench harnesses format into the paper-style tables.

Seeds: every cell derives its seed via
:func:`repro.parallel.rng.stable_seed` from its labels, so adding a
value to a sweep never changes any other cell's draw.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.runner import run_protocol
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.parallel.rng import stable_seed


def _run_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker: one (config override, algorithm, seed) protocol run."""
    config = HouseConfig(**payload["config_kwargs"])
    house = ExperimentHouse(config)
    result = run_protocol(
        payload["algorithm"],
        house=house,
        rng=payload["seed"],
        observation_dwell_s=payload.get("observation_dwell_s"),
        **payload.get("algorithm_kwargs", {}),
    )
    m = result.metrics
    return {
        "algorithm": payload["algorithm"],
        "param": payload["param_name"],
        "value": payload["param_value"],
        "rep": payload["rep"],
        "valid_rate": m.valid_rate,
        "mean_deviation_ft": m.mean_deviation_ft,
        "median_deviation_ft": m.median_deviation_ft,
        "p90_deviation_ft": m.p90_deviation_ft,
        "n_reported": m.n_reported,
        "n_observations": m.n_observations,
    }


def sweep(
    param_name: str,
    values: Sequence[Any],
    algorithms: Sequence[str] = ("probabilistic", "geometric"),
    n_runs: int = 4,
    base_config: Optional[HouseConfig] = None,
    algorithm_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
    parallel: Optional[ParallelConfig] = None,
    seed_label: str = "sweep",
) -> List[Dict[str, Any]]:
    """Run a full sweep of one :class:`HouseConfig` field.

    ``param_name`` must be a ``HouseConfig`` field (``grid_step_ft``,
    ``shadowing_sigma_db``, ``n_aps``, …) — or the pseudo-parameter
    ``"observation_dwell_s"``, which varies only the Phase-2 window.
    Returns one row dict per (value, algorithm, repetition).
    """
    base = base_config or HouseConfig()
    base_kwargs = asdict(base)
    is_pseudo = param_name == "observation_dwell_s"
    if not is_pseudo and param_name not in base_kwargs:
        raise KeyError(
            f"{param_name!r} is not a HouseConfig field; have {sorted(base_kwargs)}"
        )
    payloads: List[Dict[str, Any]] = []
    for value in values:
        config_kwargs = dict(base_kwargs)
        if not is_pseudo:
            config_kwargs[param_name] = value
        for algorithm in algorithms:
            for rep in range(n_runs):
                payloads.append(
                    {
                        "config_kwargs": config_kwargs,
                        "algorithm": algorithm,
                        "algorithm_kwargs": (algorithm_kwargs or {}).get(algorithm, {}),
                        "param_name": param_name,
                        "param_value": value,
                        "rep": rep,
                        "seed": stable_seed(seed_label, param_name, value, algorithm, rep),
                        "observation_dwell_s": value if is_pseudo else None,
                    }
                )
    return parallel_map(_run_cell, payloads, config=parallel)


def summarize(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Collapse repetitions: mean metrics per (param value, algorithm)."""
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for row in rows:
        groups.setdefault((row["value"], row["algorithm"]), []).append(row)
    out = []
    for (value, algorithm), members in sorted(
        groups.items(), key=lambda kv: (repr(kv[0][0]), kv[0][1])
    ):
        finite = [
            m["mean_deviation_ft"]
            for m in members
            if np.isfinite(m["mean_deviation_ft"])
        ]
        out.append(
            {
                "param": members[0]["param"],
                "value": value,
                "algorithm": algorithm,
                "n_runs": len(members),
                "valid_rate": float(np.mean([m["valid_rate"] for m in members])),
                "mean_deviation_ft": float(np.mean(finite)) if finite else float("inf"),
                "median_deviation_ft": float(
                    np.mean([m["median_deviation_ft"] for m in members])
                ),
            }
        )
    return out


def format_table(summary_rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Fixed-width table of a summarized sweep (bench harness output)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = (
        f"{'param':<22s} {'value':>10s} {'algorithm':<16s} "
        f"{'valid%':>7s} {'mean_ft':>8s} {'median_ft':>10s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in summary_rows:
        lines.append(
            f"{row['param']:<22s} {row['value']!s:>10s} {row['algorithm']:<16s} "
            f"{100 * row['valid_rate']:>6.1f}% {row['mean_deviation_ft']:>8.2f} "
            f"{row['median_deviation_ft']:>10.2f}"
        )
    return "\n".join(lines)
