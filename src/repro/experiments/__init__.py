"""Evaluation harness: the paper's §5 protocol, metrics, and sweeps.

* :mod:`repro.experiments.house` — the 50 ft × 40 ft experiment house,
  its four corner APs, 10-ft training grid and 13 test locations.
* :mod:`repro.experiments.metrics` — valid-estimation rate (the §5.1
  number), average deviation (the §5.2 number), error percentiles/CDFs.
* :mod:`repro.experiments.runner` — run a full Phase-1/Phase-2 protocol
  for one algorithm and collect per-observation results.
* :mod:`repro.experiments.sweeps` — parameter sweeps over (algorithm,
  simulator, protocol) cells, parallelized via :mod:`repro.parallel`.
* :mod:`repro.experiments.calibration` — the simulator defaults pinned
  so the §5 protocol lands near the paper's reported numbers.
"""

from repro.experiments.house import ExperimentHouse, HouseConfig
from repro.experiments.metrics import (
    ExperimentMetrics,
    error_cdf,
    mean_deviation,
    valid_estimation_rate,
)
from repro.experiments.runner import ExperimentResult, ObservationOutcome, run_protocol

__all__ = [
    "ExperimentHouse",
    "HouseConfig",
    "ExperimentMetrics",
    "error_cdf",
    "mean_deviation",
    "valid_estimation_rate",
    "ExperimentResult",
    "ObservationOutcome",
    "run_protocol",
]
