"""Capture sessions: simulated scanner → wi-scan files.

This is the survey crew of the reproduction.  A :class:`CaptureSession`
walks a list of named survey points, runs the scanner at each for the
configured dwell time (the paper's protocol: "signal strength values in
1.5 minutes"), and emits one :class:`~repro.wiscan.format.WiScanFile`
per point — the exact input the Training Database Generator expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.geometry import Point
import numpy as np

from repro.parallel.rng import RngLike, resolve_rng, stable_seed
from repro.radio.scanner import SimulatedScanner
from repro.wiscan.collection import WiScanCollection
from repro.wiscan.format import WiScanFile, WiScanRecord

#: The paper's per-point dwell time ("1.5 minutes"), in seconds.
PAPER_DWELL_S = 90.0


@dataclass(frozen=True)
class SurveyPoint:
    """A named spot to be surveyed."""

    name: str
    position: Point

    def __post_init__(self):
        if not self.name:
            raise ValueError("survey point needs a non-empty name")


class CaptureSession:
    """Runs a survey: scans every point, produces a wi-scan collection.

    Parameters
    ----------
    scanner:
        The (simulated) scanning NIC.
    dwell_s:
        Seconds spent at each point; defaults to the paper's 90 s.
    tool_name:
        Written into each file's headers, standing in for the paper's
        "third-party signal strength detecting system" banner.
    """

    def __init__(
        self,
        scanner: SimulatedScanner,
        dwell_s: float = PAPER_DWELL_S,
        tool_name: str = "repro-simscan/1.0",
    ):
        if dwell_s <= 0:
            raise ValueError(f"dwell time must be positive, got {dwell_s}")
        self.scanner = scanner
        self.dwell_s = float(dwell_s)
        self.tool_name = tool_name

    def capture_point(self, point: SurveyPoint, rng: RngLike = None) -> WiScanFile:
        """Survey one point: one wi-scan session."""
        sweeps = self.scanner.scan_session(point.position, self.dwell_s, rng=rng)
        records: List[WiScanRecord] = []
        for sweep in sweeps:
            for r in sweep.readings:
                records.append(
                    WiScanRecord(
                        time_s=r.timestamp_s,
                        bssid=r.bssid,
                        ssid=r.ssid,
                        channel=r.channel,
                        rssi_dbm=r.rssi_dbm,
                    )
                )
        return WiScanFile(
            location=point.name,
            records=records,
            position=(point.position.x, point.position.y),
            interval_s=self.scanner.interval_s,
            extra_headers={"tool": self.tool_name},
        )

    def capture_survey(
        self,
        points: Sequence[SurveyPoint],
        rng: RngLike = None,
    ) -> WiScanCollection:
        """Survey every point; returns the collection keyed by location.

        Each point's RNG stream is derived from the survey seed **and
        the point's name**, so adding or reordering points never
        perturbs another point's samples — a property the sweep
        experiments rely on.
        """
        if not points:
            raise ValueError("survey needs at least one point")
        names = [p.name for p in points]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate survey point names: {names}")
        gen = resolve_rng(rng)
        base = int(gen.integers(0, 2**62))
        sessions: Dict[str, WiScanFile] = {}
        for point in points:
            stream = np.random.default_rng(
                np.random.SeedSequence([base, stable_seed(point.name)])
            )
            sessions[point.name] = self.capture_point(point, rng=stream)
        return WiScanCollection(sessions)
