"""Wi-scan collections: directories and zip archives.

§4.3: "This collection is passed to the Training Database Generator as
a string representing either the name of a directory containing the
wi-scan files or a zip file containing the wi-scan files.  There are
two things the Training Database Generator must correctly deal with
when handling wi-scan file collections: directory structure and file
format."

:class:`WiScanCollection` is that handling, factored out so every tool
shares it:

* a **directory** is walked recursively; every ``*.wi-scan`` file is a
  session (other files are ignored, so collections can live next to
  notes and floor plans);
* a **zip file** is treated identically, including nested paths inside
  the archive;
* sessions are keyed by their ``# location:`` header — *not* the file
  name — and multiple files for the same location merge into one
  session (surveyors revisit points), with timestamps offset so merged
  records never collide.
"""

from __future__ import annotations

import os
import zipfile
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

from repro.wiscan.format import WiScanFile, WiScanFormatError, parse_wiscan

PathLike = Union[str, os.PathLike]

WISCAN_SUFFIX = ".wi-scan"


class WiScanCollection:
    """An ordered set of wi-scan sessions keyed by location name."""

    def __init__(self, sessions: Dict[str, WiScanFile]):
        self._sessions = dict(sessions)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, source: PathLike) -> "WiScanCollection":
        """Load from a directory or a ``.zip`` archive (auto-detected)."""
        path = Path(source)
        if path.is_dir():
            return cls.from_directory(path)
        if path.is_file() and zipfile.is_zipfile(path):
            return cls.from_zip(path)
        if path.is_file():
            raise WiScanFormatError(f"{path} is neither a directory nor a zip archive")
        raise FileNotFoundError(f"wi-scan collection source does not exist: {path}")

    @classmethod
    def from_directory(cls, directory: PathLike) -> "WiScanCollection":
        """Recursively collect ``*.wi-scan`` files under ``directory``."""
        root = Path(directory)
        if not root.is_dir():
            raise NotADirectoryError(f"not a directory: {root}")
        texts: List[Tuple[str, str]] = []
        for path in sorted(root.rglob(f"*{WISCAN_SUFFIX}")):
            texts.append((str(path), path.read_text(encoding="utf-8")))
        return cls._from_texts(texts)

    @classmethod
    def from_zip(cls, archive: PathLike) -> "WiScanCollection":
        """Collect ``*.wi-scan`` members of a zip archive (any depth)."""
        texts: List[Tuple[str, str]] = []
        with zipfile.ZipFile(archive) as zf:
            for name in sorted(zf.namelist()):
                if name.endswith("/") or not name.endswith(WISCAN_SUFFIX):
                    continue
                texts.append((f"{archive}!{name}", zf.read(name).decode("utf-8")))
        return cls._from_texts(texts)

    @classmethod
    def _from_texts(cls, texts: List[Tuple[str, str]]) -> "WiScanCollection":
        if not texts:
            raise WiScanFormatError("collection contains no *.wi-scan files")
        sessions: Dict[str, WiScanFile] = {}
        for source, text in texts:
            parsed = parse_wiscan(text, source=source)
            existing = sessions.get(parsed.location)
            if existing is None:
                sessions[parsed.location] = parsed
            else:
                sessions[parsed.location] = _merge(existing, parsed)
        return cls(sessions)

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------
    def save_directory(self, directory: PathLike) -> List[Path]:
        """Write each session as ``<location>.wi-scan`` under ``directory``."""
        from repro.wiscan.format import render_wiscan

        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        written = []
        for location, session in self._sessions.items():
            path = root / f"{_safe_filename(location)}{WISCAN_SUFFIX}"
            path.write_text(render_wiscan(session), encoding="utf-8")
            written.append(path)
        return written

    def save_zip(self, archive: PathLike) -> Path:
        """Write the collection as a zip archive of wi-scan members."""
        from repro.wiscan.format import render_wiscan

        path = Path(archive)
        path.parent.mkdir(parents=True, exist_ok=True)
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            for location, session in self._sessions.items():
                zf.writestr(
                    f"{_safe_filename(location)}{WISCAN_SUFFIX}",
                    render_wiscan(session),
                )
        return path

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, location: str) -> bool:
        return location in self._sessions

    def __iter__(self) -> Iterator[WiScanFile]:
        return iter(self._sessions.values())

    def locations(self) -> List[str]:
        return list(self._sessions)

    def session(self, location: str) -> WiScanFile:
        try:
            return self._sessions[location]
        except KeyError:
            raise KeyError(
                f"no wi-scan session for location {location!r}; "
                f"have {sorted(self._sessions)}"
            ) from None

    def all_bssids(self) -> List[str]:
        """Union of BSSIDs across sessions, in first-appearance order."""
        seen: Dict[str, None] = {}
        for session in self._sessions.values():
            for b in session.bssids():
                seen.setdefault(b, None)
        return list(seen)

    def total_records(self) -> int:
        return sum(len(s.records) for s in self._sessions.values())


def _merge(a: WiScanFile, b: WiScanFile) -> WiScanFile:
    """Merge two sessions at the same location, shifting b's timestamps."""
    if a.position is not None and b.position is not None and a.position != b.position:
        raise WiScanFormatError(
            f"conflicting positions for location {a.location!r}: "
            f"{a.position} vs {b.position}"
        )
    offset = (max(r.time_s for r in a.records) + 1.0) if a.records else 0.0
    from dataclasses import replace

    shifted = [replace(r, time_s=r.time_s + offset) for r in b.records]
    merged_extra = dict(a.extra_headers)
    merged_extra.update(b.extra_headers)
    return WiScanFile(
        location=a.location,
        records=list(a.records) + shifted,
        position=a.position or b.position,
        interval_s=a.interval_s or b.interval_s,
        extra_headers=merged_extra,
    )


def _safe_filename(location: str) -> str:
    """Location names may contain spaces/slashes; file names must not."""
    out = []
    for ch in location:
        out.append(ch if ch.isalnum() or ch in "-_." else "_")
    return "".join(out) or "unnamed"
