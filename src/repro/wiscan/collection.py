"""Wi-scan collections: directories and zip archives.

§4.3: "This collection is passed to the Training Database Generator as
a string representing either the name of a directory containing the
wi-scan files or a zip file containing the wi-scan files.  There are
two things the Training Database Generator must correctly deal with
when handling wi-scan file collections: directory structure and file
format."

:class:`WiScanCollection` is that handling, factored out so every tool
shares it:

* a **directory** is walked recursively; every ``*.wi-scan`` file is a
  session (other files are ignored, so collections can live next to
  notes and floor plans);
* a **zip file** is treated identically, including nested paths inside
  the archive;
* sessions are keyed by their ``# location:`` header — *not* the file
  name — and multiple files for the same location merge into one
  session (surveyors revisit points), with timestamps offset so merged
  records never collide.

Error contract: loading raises :class:`WiScanFormatError` for any
malformed content — including non-UTF-8 bytes, which are wrapped and
attributed to the offending file — and :class:`zipfile.BadZipFile` for
archives that are not zips at all.

**Lenient mode** (``lenient=True``) trades the all-or-nothing contract
for maximal salvage: unparseable lines are skipped, files with
file-level damage are quarantined, header conflicts are resolved
first-value-wins, and every such decision is recorded in the
:class:`~repro.robustness.report.IngestReport` carried on the result as
``collection.ingest_report``.  A collection in which *nothing* could be
salvaged still raises.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.robustness.report import IngestReport
from repro.wiscan.format import WiScanFile, WiScanFormatError, parse_wiscan

PathLike = Union[str, os.PathLike]

WISCAN_SUFFIX = ".wi-scan"


class WiScanCollection:
    """An ordered set of wi-scan sessions keyed by location name."""

    def __init__(
        self,
        sessions: Dict[str, WiScanFile],
        ingest_report: Optional[IngestReport] = None,
    ):
        self._sessions = dict(sessions)
        #: Audit trail of the ingest that produced this collection
        #: (None for collections assembled in memory).
        self.ingest_report = ingest_report

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, source: PathLike, *, lenient: bool = False) -> "WiScanCollection":
        """Load from a directory or a ``.zip`` archive (auto-detected)."""
        path = Path(source)
        with obs.span("wiscan.load", source=str(path)):
            if path.is_dir():
                return cls.from_directory(path, lenient=lenient)
            if path.is_file() and zipfile.is_zipfile(path):
                return cls.from_zip(path, lenient=lenient)
            if path.is_file():
                raise WiScanFormatError(f"{path} is neither a directory nor a zip archive")
            raise FileNotFoundError(f"wi-scan collection source does not exist: {path}")

    @classmethod
    def from_directory(
        cls, directory: PathLike, *, lenient: bool = False
    ) -> "WiScanCollection":
        """Recursively collect ``*.wi-scan`` files under ``directory``."""
        root = Path(directory)
        if not root.is_dir():
            raise NotADirectoryError(f"not a directory: {root}")
        with obs.span("wiscan.from_directory", source=str(root)):
            report = IngestReport(lenient=lenient)
            texts: List[Tuple[str, str]] = []
            for path in sorted(root.rglob(f"*{WISCAN_SUFFIX}")):
                text = _decode_member(str(path), path.read_bytes(), lenient, report)
                if text is not None:
                    texts.append((str(path), text))
            return cls._from_texts(texts, lenient=lenient, report=report)

    @classmethod
    def from_zip(cls, archive: PathLike, *, lenient: bool = False) -> "WiScanCollection":
        """Collect ``*.wi-scan`` members of a zip archive (any depth).

        Raises :class:`zipfile.BadZipFile` when ``archive`` is not a zip
        at all, :class:`WiScanFormatError` for damaged or malformed
        members (in lenient mode those are quarantined instead).
        """
        with obs.span("wiscan.from_zip", source=str(archive)):
            report = IngestReport(lenient=lenient)
            texts: List[Tuple[str, str]] = []
            try:
                zf = zipfile.ZipFile(archive)
            except zipfile.BadZipFile:
                raise
            except (NotImplementedError, ValueError, OverflowError, UnicodeDecodeError) as exc:
                # Central-directory damage surfaces from the constructor as a
                # grab-bag of builtins; normalize to the documented type.
                raise zipfile.BadZipFile(f"corrupt zip archive: {exc}") from None
            with zf:
                for name in sorted(zf.namelist()):
                    if name.endswith("/") or not name.endswith(WISCAN_SUFFIX):
                        continue
                    source = f"{archive}!{name}"
                    try:
                        raw = zf.read(name)
                    except (
                        zipfile.BadZipFile,
                        zlib.error,
                        EOFError,
                        # A flipped central-directory byte can claim an
                        # unsupported compression method (NotImplementedError),
                        # an encrypted member (RuntimeError), or a bogus header
                        # offset that seeks before the start of the file
                        # (ValueError / OSError) — zipfile leaks them all.
                        NotImplementedError,
                        RuntimeError,
                        ValueError,
                        OSError,
                    ) as exc:
                        if lenient:
                            report.quarantine(source, f"unreadable zip member: {exc}")
                            continue
                        raise WiScanFormatError(
                            f"{source}: unreadable zip member: {exc}"
                        ) from None
                    text = _decode_member(source, raw, lenient, report)
                    if text is not None:
                        texts.append((source, text))
            return cls._from_texts(texts, lenient=lenient, report=report)

    @classmethod
    def _from_texts(
        cls,
        texts: List[Tuple[str, str]],
        *,
        lenient: bool = False,
        report: Optional[IngestReport] = None,
    ) -> "WiScanCollection":
        report = report if report is not None else IngestReport(lenient=lenient)
        if not texts and not report.quarantined:
            raise WiScanFormatError("collection contains no *.wi-scan files")
        sessions: Dict[str, WiScanFile] = {}
        for source, text in texts:
            report.count_file()
            try:
                parsed = parse_wiscan(text, source=source, recover=lenient, report=report)
            except WiScanFormatError as exc:
                if lenient:
                    report.quarantine(source, str(exc))
                    continue
                raise
            report.count_records(len(parsed.records))
            existing = sessions.get(parsed.location)
            if existing is None:
                sessions[parsed.location] = parsed
            else:
                sessions[parsed.location] = _merge(
                    existing, parsed, source=source, lenient=lenient, report=report
                )
        if not sessions:
            raise WiScanFormatError(
                "no usable wi-scan session in collection "
                f"({len(report.quarantined)} file(s) quarantined: "
                f"{report.quarantined_sources()})"
            )
        return cls(sessions, ingest_report=report)

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------
    def save_directory(self, directory: PathLike) -> List[Path]:
        """Write each session as ``<location>.wi-scan`` under ``directory``."""
        from repro.wiscan.format import render_wiscan

        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        written = []
        for location, session in self._sessions.items():
            path = root / f"{_safe_filename(location)}{WISCAN_SUFFIX}"
            path.write_text(render_wiscan(session), encoding="utf-8")
            written.append(path)
        return written

    def save_zip(self, archive: PathLike) -> Path:
        """Write the collection as a zip archive of wi-scan members."""
        from repro.wiscan.format import render_wiscan

        path = Path(archive)
        path.parent.mkdir(parents=True, exist_ok=True)
        with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            for location, session in self._sessions.items():
                zf.writestr(
                    f"{_safe_filename(location)}{WISCAN_SUFFIX}",
                    render_wiscan(session),
                )
        return path

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, location: str) -> bool:
        return location in self._sessions

    def __iter__(self) -> Iterator[WiScanFile]:
        return iter(self._sessions.values())

    def locations(self) -> List[str]:
        return list(self._sessions)

    def session(self, location: str) -> WiScanFile:
        try:
            return self._sessions[location]
        except KeyError:
            raise KeyError(
                f"no wi-scan session for location {location!r}; "
                f"have {sorted(self._sessions)}"
            ) from None

    def all_bssids(self) -> List[str]:
        """Union of BSSIDs across sessions, in first-appearance order."""
        seen: Dict[str, None] = {}
        for session in self._sessions.values():
            for b in session.bssids():
                seen.setdefault(b, None)
        return list(seen)

    def total_records(self) -> int:
        return sum(len(s.records) for s in self._sessions.values())


def _decode_member(
    source: str, raw: bytes, lenient: bool, report: IngestReport
) -> Optional[str]:
    """Decode a member's bytes, wrapping encoding damage per the contract."""
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        if lenient:
            report.quarantine(source, f"not valid UTF-8: {exc}")
            return None
        raise WiScanFormatError(f"{source}: not valid UTF-8 ({exc})") from None


def _merge(
    a: WiScanFile,
    b: WiScanFile,
    *,
    source: str = "<merge>",
    lenient: bool = False,
    report: Optional[IngestReport] = None,
) -> WiScanFile:
    """Merge two sessions at the same location, shifting b's timestamps.

    Header disagreements resolve first-value-wins and are recorded on
    ``report`` — silent last-writer-wins would let one late file
    overwrite a whole survey's metadata.  A *position* conflict is
    grounds to abort in strict mode (two files claiming the same
    location at different coordinates poisons the training data); in
    lenient mode it too is kept-first and recorded.
    """

    def _conflict(key: str, kept, dropped) -> None:
        if report is not None:
            report.conflict(a.location, key, str(kept), str(dropped), source)

    if a.position is not None and b.position is not None and a.position != b.position:
        if not lenient:
            raise WiScanFormatError(
                f"conflicting positions for location {a.location!r}: "
                f"{a.position} vs {b.position}"
            )
        _conflict("position", a.position, b.position)
    if (
        a.interval_s is not None
        and b.interval_s is not None
        and a.interval_s != b.interval_s
    ):
        _conflict("interval", a.interval_s, b.interval_s)
    offset = (max(r.time_s for r in a.records) + 1.0) if a.records else 0.0
    from dataclasses import replace

    shifted = [replace(r, time_s=r.time_s + offset) for r in b.records]
    merged_extra = dict(a.extra_headers)
    for key, value in b.extra_headers.items():
        if key in merged_extra:
            if merged_extra[key] != value:
                _conflict(key, merged_extra[key], value)
        else:
            merged_extra[key] = value
    return WiScanFile(
        location=a.location,
        records=list(a.records) + shifted,
        position=a.position or b.position,
        interval_s=a.interval_s or b.interval_s,
        extra_headers=merged_extra,
    )


def _safe_filename(location: str) -> str:
    """Location names may contain spaces/slashes; file names must not."""
    out = []
    for ch in location:
        out.append(ch if ch.isalnum() or ch in "-_." else "_")
    return "".join(out) or "unnamed"
