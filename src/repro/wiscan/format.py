"""The wi-scan file format: grammar, parser, serializer.

A wi-scan file is a UTF-8 text log of one scan session at one named
location.  The grammar (line-oriented):

.. code-block:: text

    # wi-scan v1                      <- magic, required first line
    # location: kitchen               <- session headers (key: value)
    # position: 35.0 12.5             <- optional, feet
    # interval: 1.0                   <- optional, seconds
    # <any-key>: <value>              <- tools may add their own
    <time>\t<bssid>\t<ssid>\t<channel>\t<rssi>
    ...

* ``time`` — seconds since session start, decimal.
* ``bssid`` — ``aa:bb:cc:dd:ee:ff`` MAC (case-insensitive).
* ``ssid`` — network name; tabs are escaped as ``\\t``.
* ``channel`` — integer 802.11 channel.
* ``rssi`` — dBm, negative decimal.

Blank lines are ignored.  A sweep in which an AP was not heard simply
has no record for it, exactly like real scan logs.  The parser is
strict about structure (bad lines raise :class:`WiScanFormatError` with
the line number) but lenient about unknown headers, which real tools
always grow.  :func:`parse_wiscan` also has a *recovering* mode
(``recover=True``) that skips unparseable lines instead of raising —
the per-line half of lenient ingestion (see
:mod:`repro.robustness.report`); file-level damage (missing magic,
missing location) still raises so the collection layer can quarantine
the file whole.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pure-diagnostics type; imported lazily to stay cycle-free
    from repro.robustness.report import IngestReport

MAGIC = "# wi-scan v1"

_BSSID_RE = re.compile(r"^[0-9a-f]{2}(:[0-9a-f]{2}){5}$")
_HEADER_RE = re.compile(r"^#\s*([A-Za-z][\w-]*)\s*:\s*(.*)$")


class WiScanFormatError(ValueError):
    """Raised on malformed wi-scan content; carries the offending line."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)
        self.line_no = line_no


@dataclass(frozen=True)
class WiScanRecord:
    """One AP sighting: a single data line of a wi-scan file."""

    time_s: float
    bssid: str
    ssid: str
    channel: int
    rssi_dbm: float

    def __post_init__(self):
        if self.time_s < 0:
            raise ValueError(f"time must be non-negative, got {self.time_s}")
        bssid = self.bssid.lower()
        if not _BSSID_RE.match(bssid):
            raise ValueError(f"invalid BSSID {self.bssid!r}")
        object.__setattr__(self, "bssid", bssid)
        if not 1 <= self.channel <= 196:
            raise ValueError(f"invalid channel {self.channel}")
        if not -120.0 <= self.rssi_dbm <= 0.0:
            raise ValueError(f"implausible RSSI {self.rssi_dbm} dBm")

    def render(self) -> str:
        ssid = self.ssid.replace("\\", "\\\\").replace("\t", "\\t")
        return f"{self.time_s:.3f}\t{self.bssid}\t{ssid}\t{self.channel}\t{self.rssi_dbm:.1f}"


@dataclass
class WiScanFile:
    """A parsed wi-scan session: headers plus the record stream."""

    location: str
    records: List[WiScanRecord] = field(default_factory=list)
    position: Optional[Tuple[float, float]] = None
    interval_s: Optional[float] = None
    extra_headers: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if not self.location:
            raise ValueError("wi-scan session needs a non-empty location name")

    # ------------------------------------------------------------------
    def bssids(self) -> List[str]:
        """Distinct BSSIDs, in order of first appearance."""
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.bssid, None)
        return list(seen)

    def rssi_matrix(self, bssid_order: Sequence[str]) -> np.ndarray:
        """Samples × APs matrix of RSSI (NaN = AP missing from sweep).

        Sweeps are grouped by timestamp; ``bssid_order`` fixes column
        order so matrices from different files align.
        """
        times = sorted({r.time_s for r in self.records})
        t_index = {t: i for i, t in enumerate(times)}
        col = {b: j for j, b in enumerate(bssid_order)}
        out = np.full((len(times), len(bssid_order)), np.nan)
        for r in self.records:
            j = col.get(r.bssid)
            if j is not None:
                out[t_index[r.time_s], j] = r.rssi_dbm
        return out

    def duration_s(self) -> float:
        if not self.records:
            return 0.0
        return max(r.time_s for r in self.records) - min(r.time_s for r in self.records)


def render_wiscan(session: WiScanFile) -> str:
    """Serialize a session to wi-scan text."""
    lines = [MAGIC, f"# location: {session.location}"]
    if session.position is not None:
        lines.append(f"# position: {session.position[0]:g} {session.position[1]:g}")
    if session.interval_s is not None:
        lines.append(f"# interval: {session.interval_s:g}")
    for key, value in sorted(session.extra_headers.items()):
        lines.append(f"# {key}: {value}")
    lines.extend(r.render() for r in session.records)
    return "\n".join(lines) + "\n"


def _unescape_ssid(raw: str) -> str:
    return raw.replace("\\t", "\t").replace("\\\\", "\\")


def parse_wiscan(
    text: str,
    source: str = "<string>",
    *,
    recover: bool = False,
    report: Optional["IngestReport"] = None,
) -> WiScanFile:
    """Parse wi-scan text into a :class:`WiScanFile`.

    ``source`` names the input in error messages (a path, usually).

    With ``recover=True``, line-level damage (malformed data lines,
    unparseable ``position``/``interval`` headers) is skipped rather
    than raised, each skip recorded on ``report`` when one is given.
    File-level damage — missing magic, missing ``location`` header —
    still raises :class:`WiScanFormatError` in either mode: a file
    without an identity cannot be partially salvaged.
    """

    def _skip(line_no: int, reason: str) -> None:
        if report is not None:
            report.skip_line(source, line_no, reason)

    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise WiScanFormatError(
            f"{source}: missing magic line {MAGIC!r} "
            f"(got {lines[0].strip()!r})" if lines else f"{source}: empty file",
            line_no=1,
        )

    location: Optional[str] = None
    position: Optional[Tuple[float, float]] = None
    interval_s: Optional[float] = None
    extra: Dict[str, str] = {}
    records: List[WiScanRecord] = []

    for line_no, raw in enumerate(lines[1:], start=2):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.lstrip().startswith("#"):
            m = _HEADER_RE.match(line.strip())
            if not m:
                continue  # free-form comment
            key, value = m.group(1).lower(), m.group(2).strip()
            if key == "location":
                location = value
            elif key == "position":
                parts = value.split()
                if len(parts) != 2:
                    if recover:
                        _skip(line_no, f"position header needs two numbers, got {value!r}")
                        continue
                    raise WiScanFormatError(
                        f"{source}: position header needs two numbers, got {value!r}",
                        line_no,
                    )
                try:
                    position = (float(parts[0]), float(parts[1]))
                except ValueError:
                    if recover:
                        _skip(line_no, f"non-numeric position {value!r}")
                        continue
                    raise WiScanFormatError(
                        f"{source}: non-numeric position {value!r}", line_no
                    ) from None
            elif key == "interval":
                try:
                    interval_s = float(value)
                except ValueError:
                    if recover:
                        _skip(line_no, f"non-numeric interval {value!r}")
                        continue
                    raise WiScanFormatError(
                        f"{source}: non-numeric interval {value!r}", line_no
                    ) from None
            else:
                extra[key] = value
            continue

        fields = line.split("\t")
        if len(fields) != 5:
            if recover:
                _skip(line_no, f"expected 5 tab-separated fields, got {len(fields)}")
                continue
            raise WiScanFormatError(
                f"{source}: expected 5 tab-separated fields, got {len(fields)}: {line!r}",
                line_no,
            )
        try:
            record = WiScanRecord(
                time_s=float(fields[0]),
                bssid=fields[1].strip().lower(),
                ssid=_unescape_ssid(fields[2]),
                channel=int(fields[3]),
                rssi_dbm=float(fields[4]),
            )
        except ValueError as exc:
            if recover:
                _skip(line_no, str(exc))
                continue
            raise WiScanFormatError(f"{source}: {exc}", line_no) from None
        records.append(record)

    if location is None:
        raise WiScanFormatError(f"{source}: missing required '# location:' header")
    return WiScanFile(
        location=location,
        records=records,
        position=position,
        interval_s=interval_s,
        extra_headers=extra,
    )
