"""The *wi-scan* file substrate.

The paper's Training Database Generator consumes "a collection of
wi-scan files … passed … as a string representing either the name of a
directory containing the wi-scan files or a zip file containing the
wi-scan files", where "each wi-scan file in the collection represents
the data collected at a named location".  The format itself is never
specified, so this package defines it precisely (see
:mod:`repro.wiscan.format` for the grammar), provides robust parsing
with line-level diagnostics, directory/zip collection handling
(:mod:`repro.wiscan.collection`), and capture sessions that produce the
files from the simulated scanner (:mod:`repro.wiscan.capture`).

Ingestion is strict by default; pass ``lenient=True`` to the collection
loaders (or ``recover=True`` to :func:`parse_wiscan`) to salvage what a
damaged survey still holds, with every skip and quarantine recorded in
an :class:`~repro.robustness.report.IngestReport` — see
docs/robustness.md for the full error-type taxonomy.
"""

from repro.wiscan.format import (
    WiScanFile,
    WiScanFormatError,
    WiScanRecord,
    parse_wiscan,
    render_wiscan,
)
from repro.wiscan.collection import WiScanCollection
from repro.wiscan.capture import CaptureSession

__all__ = [
    "WiScanFile",
    "WiScanFormatError",
    "WiScanRecord",
    "parse_wiscan",
    "render_wiscan",
    "WiScanCollection",
    "CaptureSession",
]
