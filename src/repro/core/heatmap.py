"""Signal-strength heatmaps over floor plans.

Another §6.4 toolkit expansion: render a coverage quantity — one AP's
RSSI field, the audible-AP count, a d′ separability field — as a
translucent color wash over an annotated floor plan.  Pairs the
planning package's grids with the Compositor's plan rendering so an
installer can *see* dead zones before surveying.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.compositor import FloorPlanCompositor
from repro.core.floorplan import FloorPlan
from repro.imaging import font
from repro.imaging.raster import BLACK, GRAY, Raster, WHITE

#: Blue → cyan → yellow → red ramp control points (value in [0, 1]).
_RAMP: Tuple[Tuple[float, Tuple[int, int, int]], ...] = (
    (0.00, (38, 70, 160)),
    (0.33, (60, 170, 190)),
    (0.66, (235, 200, 70)),
    (1.00, (200, 45, 40)),
)


def colorize(values: np.ndarray, vmin: float = None, vmax: float = None) -> np.ndarray:
    """Map a 2-D value grid to ``(h, w, 3) uint8`` via the ramp.

    NaN cells map to mid-gray.  ``vmin``/``vmax`` default to the finite
    data range; a degenerate range renders as the ramp's low end.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"heatmap values must be 2-D, got shape {arr.shape}")
    finite = np.isfinite(arr)
    lo = float(np.nanmin(arr)) if vmin is None else float(vmin)
    hi = float(np.nanmax(arr)) if vmax is None else float(vmax)
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        t = np.zeros_like(arr)
    else:
        t = np.clip((arr - lo) / (hi - lo), 0.0, 1.0)
    out = np.full(arr.shape + (3,), 128, dtype=np.uint8)
    stops = np.array([s for s, _ in _RAMP])
    colors = np.array([c for _, c in _RAMP], dtype=float)
    tt = np.where(finite, t, 0.0)
    idx = np.clip(np.searchsorted(stops, tt, side="right") - 1, 0, len(stops) - 2)
    span = stops[idx + 1] - stops[idx]
    frac = np.where(span > 0, (tt - stops[idx]) / np.where(span > 0, span, 1.0), 0.0)
    blended = colors[idx] * (1.0 - frac[..., None]) + colors[idx + 1] * frac[..., None]
    out[finite] = np.clip(np.rint(blended[finite]), 0, 255).astype(np.uint8)
    return out


def render_heatmap(
    plan: FloorPlan,
    xs: np.ndarray,
    ys: np.ndarray,
    values: np.ndarray,
    alpha: float = 0.55,
    vmin: float = None,
    vmax: float = None,
    title: str = "",
    show_access_points: bool = True,
) -> Raster:
    """Blend a gridded value field over the annotated plan.

    ``xs``/``ys`` are floor-feet grid axes (as produced by
    :func:`repro.planning.coverage.coverage_map`); ``values`` has shape
    ``(len(ys), len(xs))``.  Grid cells are painted as filled rectangles
    between midpoints, so any grid resolution renders without gaps.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if values.shape != (len(ys), len(xs)):
        raise ValueError(
            f"values shape {values.shape} does not match grid "
            f"({len(ys)}, {len(xs)})"
        )
    base = FloorPlanCompositor(plan).render(
        show_access_points=show_access_points,
        show_locations=False,
        show_origin=False,
        legend=False,
        scale_bar=False,
    )
    colors = colorize(values, vmin=vmin, vmax=vmax)

    def midpoints(axis: np.ndarray) -> np.ndarray:
        if axis.size == 1:
            return np.array([axis[0] - 0.5, axis[0] + 0.5])
        mids = (axis[:-1] + axis[1:]) / 2.0
        first = axis[0] - (axis[1] - axis[0]) / 2.0
        last = axis[-1] + (axis[-1] - axis[-2]) / 2.0
        return np.concatenate([[first], mids, [last]])

    x_edges, y_edges = midpoints(np.asarray(xs, float)), midpoints(np.asarray(ys, float))
    from repro.core.geometry import Point

    for i in range(len(ys)):
        for j in range(len(xs)):
            p0 = plan.to_pixel(Point(x_edges[j], y_edges[i + 1]))
            p1 = plan.to_pixel(Point(x_edges[j + 1], y_edges[i]))
            base.blend_rect(
                int(round(p0.px)), int(round(p0.py)),
                int(round(p1.px)), int(round(p1.py)),
                tuple(int(v) for v in colors[i, j]),
                alpha,
            )
    if title:
        font.draw_text(base, 6, 6, title, BLACK, background=WHITE)
    _draw_colorbar(base, values, vmin, vmax)
    return base


def _draw_colorbar(canvas: Raster, values: np.ndarray, vmin, vmax) -> None:
    finite = np.isfinite(values)
    if not finite.any():
        return
    lo = float(np.nanmin(values)) if vmin is None else float(vmin)
    hi = float(np.nanmax(values)) if vmax is None else float(vmax)
    bar_w, bar_h = 10, 80
    x0 = canvas.width - bar_w - 8
    y0 = canvas.height - bar_h - 24
    ramp = colorize(np.linspace(hi, lo, bar_h)[:, None], vmin=lo, vmax=hi)
    for i in range(bar_h):
        canvas.fill_rect(x0, y0 + i, x0 + bar_w - 1, y0 + i, tuple(int(v) for v in ramp[i, 0]))
    canvas.draw_rect(x0 - 1, y0 - 1, x0 + bar_w, y0 + bar_h, GRAY)
    font.draw_text(canvas, x0 - 30, y0 - 2, f"{hi:.0f}", BLACK, background=WHITE)
    font.draw_text(canvas, x0 - 30, y0 + bar_h - 6, f"{lo:.0f}", BLACK, background=WHITE)
