"""The Training Database Generator (§4.3) and the ``.tdb`` format.

"Training databases are really collections of observation records, and
are easier to work with than wi-scan file collections and location maps
because they are compressed, which makes them easier to move and
transmit over a network, and they can be loaded into memory more
quickly than reading multiple wi-scan files line by line."

The paper never specifies the container, so we define ``.tdb``: a magic
header plus a zlib-compressed binary body holding, per training
location, the name, the floor position and the full samples × APs RSSI
matrix (float32, NaN = AP missed in that sweep).  Keeping the *full*
matrix — not just means — is deliberate: the paper's future work (§6.2)
wants algorithms that "consider the distribution of these values", and
the histogram/kNN baselines need the raw samples.

:func:`generate_training_db` is the §4.3 program: wi-scan collection
(directory or zip) + location map → database.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.geometry import Point
from repro.core.locationmap import LocationMap
from repro.wiscan.collection import WiScanCollection

PathLike = Union[str, os.PathLike]

MAGIC = b"RTDB1\n"


class TrainingDBError(ValueError):
    """Raised on malformed ``.tdb`` content or inconsistent inputs."""


@dataclass(frozen=True)
class LocationRecord:
    """All observations recorded at one training location."""

    name: str
    position: Point
    samples: np.ndarray  # (n_sweeps, n_bssids) float32, NaN = missed

    def __post_init__(self):
        if self.samples.ndim != 2:
            raise TrainingDBError(
                f"samples for {self.name!r} must be 2-D, got shape {self.samples.shape}"
            )

    def mean_rssi(self) -> np.ndarray:
        """Per-AP mean over detected sweeps (NaN if never heard)."""
        finite = np.isfinite(self.samples)
        counts = finite.sum(axis=0)
        sums = np.where(finite, self.samples, 0.0).sum(axis=0)
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    def std_rssi(self, min_std: float = 0.5) -> np.ndarray:
        """Per-AP sample std, floored at ``min_std``.

        The floor prevents a degenerate zero-variance Gaussian when a
        quantized RSSI held constant for a whole session (common at
        strong signal), which would otherwise give the probabilistic
        method infinite likelihoods.  Never-heard APs are NaN; the
        computation avoids ``np.nanstd``'s empty-slice RuntimeWarning
        because an unheard AP is an expected state, not an anomaly.
        """
        finite = np.isfinite(self.samples)
        counts = finite.sum(axis=0)
        mean = self.mean_rssi()
        sq = np.where(finite, (self.samples - np.where(np.isfinite(mean), mean, 0.0)) ** 2, 0.0)
        var = sq.sum(axis=0) / np.maximum(counts, 1)
        std = np.sqrt(var)
        return np.where(counts > 0, np.maximum(std, min_std), np.nan)

    def detection_rate(self) -> np.ndarray:
        """Fraction of sweeps in which each AP was heard."""
        if self.samples.shape[0] == 0:
            return np.zeros(self.samples.shape[1])
        return np.isfinite(self.samples).mean(axis=0)


class TrainingDatabase:
    """The §4.3 product: locations × APs observation records."""

    #: Ingest audit trail when built by :func:`generate_training_db`
    #: from survey files (None for .tdb loads / in-memory builds).
    ingest_report = None

    def __init__(self, bssids: Sequence[str], records: Sequence[LocationRecord]):
        self.bssids = list(bssids)
        if len(set(self.bssids)) != len(self.bssids):
            raise TrainingDBError(f"duplicate BSSIDs: {self.bssids}")
        names = [r.name for r in records]
        if len(set(names)) != len(names):
            raise TrainingDBError(f"duplicate location names: {names}")
        for r in records:
            if r.samples.shape[1] != len(self.bssids):
                raise TrainingDBError(
                    f"record {r.name!r} has {r.samples.shape[1]} AP columns, "
                    f"database has {len(self.bssids)} BSSIDs"
                )
        self.records = list(records)
        self._by_name = {r.name: r for r in self.records}
        # Matrix-view memos.  The database is immutable after
        # construction, so these never need invalidating; the cached
        # arrays are marked read-only so an accidental in-place write by
        # a consumer fails loudly instead of corrupting every fitted
        # model that shares the cache.
        self._positions_memo: Optional[np.ndarray] = None
        self._mean_matrix_memo: Optional[np.ndarray] = None
        self._std_matrix_memo: Dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def locations(self) -> List[str]:
        return [r.name for r in self.records]

    def record(self, name: str) -> LocationRecord:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no training location {name!r}; have {self.locations()}"
            ) from None

    def positions(self) -> np.ndarray:
        """(n_locations, 2) array of training positions (feet).

        Memoized (and read-only): the same array object is returned on
        every call.
        """
        if self._positions_memo is None:
            arr = np.array([[r.position.x, r.position.y] for r in self.records])
            arr.setflags(write=False)
            self._positions_memo = arr
        return self._positions_memo

    def mean_matrix(self) -> np.ndarray:
        """(n_locations, n_aps) of per-location mean RSSI (NaN = unheard).

        Memoized (and read-only): the same array object is returned on
        every call.
        """
        if self._mean_matrix_memo is None:
            arr = np.vstack([r.mean_rssi() for r in self.records])
            arr.setflags(write=False)
            self._mean_matrix_memo = arr
        return self._mean_matrix_memo

    def std_matrix(self, min_std: float = 0.5) -> np.ndarray:
        """(n_locations, n_aps) of per-location RSSI std (floored).

        Memoized per ``min_std`` (and read-only): the same array object
        is returned on every call with the same floor.
        """
        key = float(min_std)
        cached = self._std_matrix_memo.get(key)
        if cached is None:
            cached = np.vstack([r.std_rssi(min_std=min_std) for r in self.records])
            cached.setflags(write=False)
            self._std_matrix_memo[key] = cached
        return cached

    def total_samples(self) -> int:
        return sum(r.samples.shape[0] for r in self.records)

    def subset_aps(self, bssids: Sequence[str]) -> "TrainingDatabase":
        """A new database restricted (and re-ordered) to ``bssids``."""
        cols = [self.bssids.index(b) for b in bssids]
        records = [
            LocationRecord(r.name, r.position, np.ascontiguousarray(r.samples[:, cols]))
            for r in self.records
        ]
        return TrainingDatabase(list(bssids), records)

    # ------------------------------------------------------------------
    # binary serialization
    # ------------------------------------------------------------------
    def to_bytes(self, compression_level: int = 6) -> bytes:
        body = bytearray()
        body += struct.pack("<I", len(self.bssids))
        for b in self.bssids:
            body += _pack_str(b)
        body += struct.pack("<I", len(self.records))
        for r in self.records:
            body += _pack_str(r.name)
            body += struct.pack("<dd", r.position.x, r.position.y)
            n, m = r.samples.shape
            body += struct.pack("<II", n, m)
            body += np.ascontiguousarray(r.samples, dtype="<f4").tobytes()
        return MAGIC + zlib.compress(bytes(body), level=compression_level)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TrainingDatabase":
        if not blob.startswith(MAGIC):
            raise TrainingDBError(
                f"not a training database (magic {blob[:6]!r}, expected {MAGIC!r})"
            )
        try:
            body = zlib.decompress(blob[len(MAGIC):])
        except zlib.error as exc:
            raise TrainingDBError(f"corrupt training database body: {exc}") from None
        off = 0

        def take(n: int) -> bytes:
            nonlocal off
            if off + n > len(body):
                raise TrainingDBError("truncated training database body")
            chunk = body[off : off + n]
            off += n
            return chunk

        def take_str() -> str:
            (ln,) = struct.unpack("<H", take(2))
            return take(ln).decode("utf-8")

        (n_bssids,) = struct.unpack("<I", take(4))
        bssids = [take_str() for _ in range(n_bssids)]
        (n_records,) = struct.unpack("<I", take(4))
        records = []
        for _ in range(n_records):
            name = take_str()
            x, y = struct.unpack("<dd", take(16))
            n, m = struct.unpack("<II", take(8))
            if m != n_bssids:
                raise TrainingDBError(
                    f"record {name!r} claims {m} AP columns, header says {n_bssids}"
                )
            raw = take(4 * n * m)
            samples = np.frombuffer(raw, dtype="<f4").reshape(n, m).copy()
            records.append(LocationRecord(name, Point(x, y), samples))
        if off != len(body):
            raise TrainingDBError(f"{len(body) - off} trailing bytes in database body")
        return cls(bssids, records)

    def save(self, path: PathLike, compression_level: int = 6) -> int:
        """Write the ``.tdb`` file; returns its size in bytes."""
        blob = self.to_bytes(compression_level=compression_level)
        Path(path).write_bytes(blob)
        return len(blob)

    @classmethod
    def load(cls, path: PathLike) -> "TrainingDatabase":
        with obs.span("trainingdb.load", path=str(path)):
            return cls.from_bytes(Path(path).read_bytes())

    def freeze(self, path: PathLike, std_floors: Sequence[float] = (0.5,),
               ap_positions=None) -> int:
        """Write this database as a mmap-able frozen pack (``.tdbx``).

        See :mod:`repro.core.frozenpack`; returns the pack size in
        bytes.  ``ap_positions`` additionally freezes the §5.2 packed
        ranging tables under a fingerprint of the AP map.
        """
        from repro.core.frozenpack import freeze_training_db

        return freeze_training_db(
            self, path, std_floors=std_floors, ap_positions=ap_positions
        )


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise TrainingDBError(f"string too long for .tdb: {len(raw)} bytes")
    return struct.pack("<H", len(raw)) + raw


def generate_training_db(
    collection: Union[PathLike, WiScanCollection],
    location_map: Union[PathLike, LocationMap],
    output: Optional[PathLike] = None,
    strict: bool = True,
    lenient: bool = False,
) -> TrainingDatabase:
    """The Training Database Generator program (§4.3).

    Parameters
    ----------
    collection:
        Directory, zip path, or pre-loaded :class:`WiScanCollection`.
    location_map:
        Path to a location-map text file, or a :class:`LocationMap`.
    output:
        If given, the resulting database is also written there as
        ``.tdb``.
    strict:
        When True (default), every wi-scan location must appear in the
        location map (the paper's generator "requires two pieces of
        information"); when False, unmapped sessions fall back to the
        position recorded in their wi-scan header, and sessions with
        neither are rejected.
    lenient:
        When True, a path ``collection`` is ingested in recovering mode
        (bad lines skipped, bad files quarantined) instead of
        all-or-nothing; the ingest audit trail is attached to the
        returned database as ``db.ingest_report``.
    """
    with obs.span("trainingdb.build"):
        coll = (
            collection
            if isinstance(collection, WiScanCollection)
            else WiScanCollection.load(collection, lenient=lenient)
        )
        lmap = (
            location_map
            if isinstance(location_map, LocationMap)
            else LocationMap.load(location_map)
        )

        bssids = coll.all_bssids()
        if not bssids:
            raise TrainingDBError("wi-scan collection contains no AP sightings at all")
        records: List[LocationRecord] = []
        with obs.span("trainingdb.assemble"):
            for session in coll:
                if session.location in lmap:
                    position = lmap.position(session.location)
                elif not strict and session.position is not None:
                    position = Point(*session.position)
                else:
                    raise TrainingDBError(
                        f"wi-scan location {session.location!r} is not in the location map "
                        f"(map has {sorted(lmap.names())})"
                    )
                matrix = session.rssi_matrix(bssids).astype(np.float32)
                records.append(LocationRecord(session.location, position, matrix))

        db = TrainingDatabase(bssids, records)
        db.ingest_report = getattr(coll, "ingest_report", None)
        obs.counter("trainingdb.builds").inc()
        obs.gauge("trainingdb.locations").set(len(db))
        obs.gauge("trainingdb.aps").set(len(db.bssids))
        obs.gauge("trainingdb.samples").set(db.total_samples())
        if output is not None:
            with obs.span("trainingdb.save", path=str(output)):
                db.save(output)
        return db
