"""Planar geometry used throughout the toolkit.

The paper works entirely in a two-dimensional floor coordinate system
(feet, relative to a user-chosen origin).  This module provides the
geometric machinery its algorithms need:

* :class:`Point` — an immutable 2-D point with vector arithmetic.
* :func:`circle_intersections` — the core of the geometric approach
  (§5.2): the 0, 1 or 2 intersection points of two circles.
* :func:`best_circle_intersection` — the robust variant the geometric
  localizer actually uses: when two "distance circles" fail to meet
  (common with noisy RSSI→distance inversion), fall back to the point on
  the line of centers that minimizes the sum of squared radial errors.
* :func:`median_point` / :func:`geometric_median` — the paper aggregates
  the four pairwise intersections with a median point; we provide both a
  componentwise median (the straightforward reading) and the true
  geometric (Weiszfeld) median as an ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "Circle",
    "distance",
    "circle_intersections",
    "best_circle_intersection",
    "median_point",
    "geometric_median",
    "centroid",
    "polygon_contains",
    "segment_intersects",
    "point_segment_distance",
]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point (or vector) in floor coordinates, in feet."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __iter__(self):
        yield self.x
        yield self.y

    def dot(self, other: "Point") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def rotated(self, angle_rad: float) -> "Point":
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        return Point(c * self.x - s * self.y, s * self.x + c * self.y)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    @staticmethod
    def from_array(arr: Sequence[float]) -> "Point":
        if len(arr) != 2:
            raise ValueError(f"expected length-2 coordinate, got {len(arr)}")
        return Point(float(arr[0]), float(arr[1]))

    def round(self, ndigits: int = 6) -> "Point":
        return Point(round(self.x, ndigits), round(self.y, ndigits))


@dataclass(frozen=True)
class Circle:
    """A circle: center + radius.  The geometric approach builds one per AP."""

    center: Point
    radius: float

    def __post_init__(self):
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        return self.center.distance_to(p) <= self.radius + tol

    def on_boundary(self, p: Point, tol: float = 1e-6) -> bool:
        return abs(self.center.distance_to(p) - self.radius) <= tol


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points, in feet."""
    return a.distance_to(b)


def circle_intersections(c1: Circle, c2: Circle, tol: float = 1e-9) -> List[Point]:
    """Intersection points of two circles.

    Returns ``[]`` when the circles are separate or one strictly contains
    the other, one point at tangency (within ``tol``), two points in the
    generic case.  Concentric circles (even with equal radii) return
    ``[]`` — an infinite intersection has no usable single point.
    """
    d = c1.center.distance_to(c2.center)
    if d <= tol:  # concentric
        return []
    r1, r2 = c1.radius, c2.radius
    if d > r1 + r2 + tol or d < abs(r1 - r2) - tol:
        return []
    # a = distance from c1.center to the foot of the chord on the center line
    a = (d * d + r1 * r1 - r2 * r2) / (2.0 * d)
    h_sq = r1 * r1 - a * a
    ex = (c2.center - c1.center) / d  # unit vector along centers
    foot = c1.center + ex * a
    # Collapse to tangency only when the half-chord h is itself below the
    # length tolerance — comparing h² against (tol·scale)² keeps the test
    # meaningful when one radius is tiny next to the other.
    scale = max(1.0, r1, r2, d)
    if h_sq <= (tol * scale) ** 2:
        return [foot]
    h = math.sqrt(max(0.0, h_sq))
    perp = Point(-ex.y, ex.x)
    return [foot + perp * h, foot - perp * h]


def best_circle_intersection(c1: Circle, c2: Circle) -> List[Point]:
    """Intersections of two circles, with a least-error fallback.

    Noisy RSSI→distance inversion routinely produces circle pairs that do
    not intersect (too far apart, or one swallowing the other).  The paper
    does not say how its implementation handled that; the standard remedy
    — and the one that keeps the §5.2 pipeline total — is the point on the
    line of centers minimizing the sum of squared radial residuals
    ``(|t| − r1)² + (|d − t| − r2)²`` over the signed offset ``t`` from
    ``c1`` toward ``c2``:

    * separate circles (``d ≥ |r1 − r2|``): ``t* = (d + r1 − r2)/2`` —
      the middle of the gap;
    * ``c2`` nested in ``c1`` (``r1 > r2 + d``): ``t* = (d + r1 + r2)/2``
      — between ``c2``'s far boundary and ``c1``'s;
    * ``c1`` nested in ``c2`` (``r2 > r1 + d``): ``t* = (d − r1 − r2)/2``
      — behind ``c1``, between the two near boundaries.

    Returns one or two points; only returns ``[]`` for concentric centers.
    """
    pts = circle_intersections(c1, c2)
    if pts:
        return pts
    d = c1.center.distance_to(c2.center)
    if d <= 1e-12:
        return []
    ex = (c2.center - c1.center) / d
    r1, r2 = c1.radius, c2.radius
    if d >= abs(r1 - r2):
        t = (d + r1 - r2) / 2.0
    elif r1 > r2:
        t = (d + r1 + r2) / 2.0
    else:
        t = (d - r1 - r2) / 2.0
    return [c1.center + ex * t]


def median_point(points: Sequence[Point]) -> Point:
    """Componentwise median of a set of points (the paper's aggregator).

    The §5.2 text takes "the median point P of P1..P4"; for an even count
    the componentwise median is the midpoint of the two middle values,
    which is the conventional reading.
    """
    if not points:
        raise ValueError("median_point requires at least one point")
    xs = np.median([p.x for p in points])
    ys = np.median([p.y for p in points])
    return Point(float(xs), float(ys))


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a set of points."""
    if not points:
        raise ValueError("centroid requires at least one point")
    return Point(
        sum(p.x for p in points) / len(points),
        sum(p.y for p in points) / len(points),
    )


def geometric_median(
    points: Sequence[Point],
    tol: float = 1e-7,
    max_iter: int = 200,
) -> Point:
    """True geometric (L1/Fermat) median via Weiszfeld iteration.

    Provided as an ablation alternative to :func:`median_point`: it
    minimizes the sum of Euclidean distances to the inputs and is more
    robust to a single wild intersection point.
    """
    if not points:
        raise ValueError("geometric_median requires at least one point")
    pts = np.array([[p.x, p.y] for p in points], dtype=float)

    def total_cost(q: np.ndarray) -> float:
        return float(np.hypot(pts[:, 0] - q[0], pts[:, 1] - q[1]).sum())

    est = pts.mean(axis=0)
    for _ in range(max_iter):
        diffs = pts - est
        dists = np.hypot(diffs[:, 0], diffs[:, 1])
        coincident = dists < 1e-12
        if coincident.any():
            # Weiszfeld is undefined at a data point; nudge off it (the
            # data-point candidates below recover the exact case).
            est = est + 1e-9
            diffs = pts - est
            dists = np.hypot(diffs[:, 0], diffs[:, 1])
        w = 1.0 / dists
        new_est = (pts * w[:, None]).sum(axis=0) / w.sum()
        if np.hypot(*(new_est - est)) < tol:
            est = new_est
            break
        est = new_est
    # The optimum may sit exactly on an input point (where Weiszfeld
    # cannot converge); pick the best of the iterate and every input.
    best, best_cost = est, total_cost(est)
    for candidate in pts:
        c = total_cost(candidate)
        if c < best_cost:
            best, best_cost = candidate, c
    return Point(float(best[0]), float(best[1]))


def polygon_contains(vertices: Sequence[Point], p: Point) -> bool:
    """Even-odd-rule point-in-polygon test (used for room membership)."""
    inside = False
    n = len(vertices)
    if n < 3:
        return False
    j = n - 1
    for i in range(n):
        vi, vj = vertices[i], vertices[j]
        intersects = (vi.y > p.y) != (vj.y > p.y)
        if intersects:
            x_cross = (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x
            if p.x < x_cross:
                inside = not inside
        j = i
    return inside


def segment_intersects(a1: Point, a2: Point, b1: Point, b2: Point) -> bool:
    """Do closed segments ``a1a2`` and ``b1b2`` intersect?

    Used by the radio simulator to count how many walls a direct AP→client
    ray crosses.  Handles collinear overlap as intersecting.
    """

    def orient(p: Point, q: Point, r: Point) -> float:
        return (q - p).cross(r - p)

    def on_segment(p: Point, q: Point, r: Point) -> bool:
        return (
            min(p.x, r.x) - 1e-12 <= q.x <= max(p.x, r.x) + 1e-12
            and min(p.y, r.y) - 1e-12 <= q.y <= max(p.y, r.y) + 1e-12
        )

    d1 = orient(b1, b2, a1)
    d2 = orient(b1, b2, a2)
    d3 = orient(a1, a2, b1)
    d4 = orient(a1, a2, b2)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 != 0 and d2 != 0 and d3 != 0 and d4 != 0:
        return True
    if abs(d1) < 1e-12 and on_segment(b1, a1, b2):
        return True
    if abs(d2) < 1e-12 and on_segment(b1, a2, b2):
        return True
    if abs(d3) < 1e-12 and on_segment(a1, b1, a2):
        return True
    if abs(d4) < 1e-12 and on_segment(a1, b2, a2):
        return True
    return False


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from point ``p`` to the closed segment ``ab``."""
    ab = b - a
    denom = ab.dot(ab)
    if denom < 1e-24:
        return p.distance_to(a)
    t = max(0.0, min(1.0, (p - a).dot(ab) / denom))
    return p.distance_to(a + ab * t)
