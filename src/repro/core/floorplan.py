"""The annotated floor plan: the Processor's document model.

A :class:`FloorPlan` is what the Floor Plan Processor edits and saves: a
GIF image of the physical space plus the five annotation layers §4.1
describes — access points, scale, origin, named locations — and the
coordinate transform they induce between **image pixels** (x right, y
down) and **floor feet** (x right, y up, origin wherever the user
clicked).

Persistence keeps the paper's "the floor plan … can be saved" promise
with a single self-contained file: annotations are serialized into a
GIF89a *comment extension* block, so a saved plan is simultaneously a
perfectly ordinary GIF (any viewer shows the image) and a lossless
round-trip of the annotation state (this toolkit reads the comment
back).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.geometry import Point
from repro.core.locationmap import LocationMap
from repro.imaging.gif import decode_gif, encode_gif
from repro.imaging.raster import Raster

PathLike = Union[str, os.PathLike]

ANNOTATION_MAGIC = "repro-floorplan v1"


class FloorPlanError(ValueError):
    """Raised for invalid floor-plan state or files."""


@dataclass(frozen=True)
class PixelPoint:
    """A point in image coordinates (pixels, y down)."""

    px: float
    py: float

    def __iter__(self):
        yield self.px
        yield self.py


class FloorPlan:
    """A floor-plan image plus its annotation layers.

    Parameters
    ----------
    image:
        The plan raster (decoded from the GIF the user loaded).
    source:
        Provenance string (path of the loaded GIF), informational.
    """

    def __init__(self, image: Raster, source: str = ""):
        self.image = image
        self.source = source
        self.access_points: Dict[str, PixelPoint] = {}
        self.locations: Dict[str, PixelPoint] = {}
        self.origin: Optional[PixelPoint] = None
        self._feet_per_pixel: Optional[float] = None
        self._scale_reference: Optional[Tuple[PixelPoint, PixelPoint, float]] = None

    # ------------------------------------------------------------------
    # scale / origin
    # ------------------------------------------------------------------
    def set_scale(self, p1: PixelPoint, p2: PixelPoint, real_distance_ft: float) -> float:
        """§4.1 op 3: two clicked points plus their real distance.

        Returns the derived feet-per-pixel factor.
        """
        if real_distance_ft <= 0:
            raise FloorPlanError(f"real distance must be positive, got {real_distance_ft}")
        pixel_d = ((p1.px - p2.px) ** 2 + (p1.py - p2.py) ** 2) ** 0.5
        if pixel_d < 1e-9:
            raise FloorPlanError("scale reference points must be distinct")
        self._feet_per_pixel = real_distance_ft / pixel_d
        self._scale_reference = (p1, p2, float(real_distance_ft))
        return self._feet_per_pixel

    def set_scale_direct(self, feet_per_pixel: float) -> None:
        """Set the scale factor directly (loading, synthetic plans)."""
        if feet_per_pixel <= 0:
            raise FloorPlanError(f"feet_per_pixel must be positive, got {feet_per_pixel}")
        self._feet_per_pixel = float(feet_per_pixel)
        self._scale_reference = None

    @property
    def feet_per_pixel(self) -> float:
        if self._feet_per_pixel is None:
            raise FloorPlanError("scale not set — use set_scale() first (§4.1 op 3)")
        return self._feet_per_pixel

    @property
    def has_scale(self) -> bool:
        return self._feet_per_pixel is not None

    def set_origin(self, p: PixelPoint) -> None:
        """§4.1 op 4: the clicked pixel becomes floor coordinate (0, 0)."""
        if not (0 <= p.px < self.image.width and 0 <= p.py < self.image.height):
            raise FloorPlanError(
                f"origin ({p.px}, {p.py}) outside the "
                f"{self.image.width}x{self.image.height} image"
            )
        self.origin = p

    @property
    def has_origin(self) -> bool:
        return self.origin is not None

    # ------------------------------------------------------------------
    # annotations
    # ------------------------------------------------------------------
    def add_access_point(self, name: str, p: PixelPoint) -> None:
        """§4.1 op 2: record an AP's position on the plan."""
        if not name or not name.strip():
            raise FloorPlanError("access point name must be non-empty")
        self.access_points[name.strip()] = p

    def add_location(self, name: str, p: PixelPoint) -> None:
        """§4.1 op 5: attach an application-meaningful name to a spot."""
        if not name or not name.strip():
            raise FloorPlanError("location name must be non-empty")
        self.locations[name.strip()] = p

    # ------------------------------------------------------------------
    # coordinate transform
    # ------------------------------------------------------------------
    def _require_frame(self) -> Tuple[PixelPoint, float]:
        if self.origin is None:
            raise FloorPlanError("origin not set — use set_origin() first (§4.1 op 4)")
        return self.origin, self.feet_per_pixel

    def to_floor(self, p: PixelPoint) -> Point:
        """Image pixels → floor feet (y flips: image y grows downward)."""
        origin, fpp = self._require_frame()
        return Point((p.px - origin.px) * fpp, (origin.py - p.py) * fpp)

    def to_pixel(self, p: Point) -> PixelPoint:
        """Floor feet → image pixels."""
        origin, fpp = self._require_frame()
        return PixelPoint(origin.px + p.x / fpp, origin.py - p.y / fpp)

    def ap_floor_positions(self) -> Dict[str, Point]:
        """Access points in floor coordinates."""
        return {name: self.to_floor(p) for name, p in self.access_points.items()}

    def location_map(self) -> LocationMap:
        """Export named locations as a :class:`LocationMap` (floor feet).

        This is the bridge from the Processor (§4.1) to the Training
        Database Generator (§4.3): click locations once, export the map.
        """
        lm = LocationMap()
        for name, pixel in self.locations.items():
            lm.add(name, self.to_floor(pixel))
        return lm

    # ------------------------------------------------------------------
    # persistence (GIF with an annotation comment block)
    # ------------------------------------------------------------------
    def _annotations_payload(self) -> str:
        payload = {
            "magic": ANNOTATION_MAGIC,
            "source": self.source,
            "feet_per_pixel": self._feet_per_pixel,
            "scale_reference": (
                None
                if self._scale_reference is None
                else {
                    "p1": list(self._scale_reference[0]),
                    "p2": list(self._scale_reference[1]),
                    "distance_ft": self._scale_reference[2],
                }
            ),
            "origin": None if self.origin is None else list(self.origin),
            "access_points": {k: list(v) for k, v in self.access_points.items()},
            "locations": {k: list(v) for k, v in self.locations.items()},
        }
        return json.dumps(payload, sort_keys=True)

    def save(self, path: PathLike) -> None:
        """Write the plan as a GIF with annotations in a comment block."""
        blob = encode_gif(self.image, comments=[self._annotations_payload()])
        Path(path).write_bytes(blob)

    @classmethod
    def load(cls, path: PathLike) -> "FloorPlan":
        """Load a GIF floor plan, with annotations if present.

        A plain GIF (no annotation comment) loads as a fresh, unannotated
        plan — exactly the Processor's "load the floor plan GIF image"
        entry state.
        """
        data = Path(path).read_bytes()
        gif = decode_gif(data)
        plan = cls(gif.composite(), source=str(path))
        for comment in gif.comments:
            try:
                payload = json.loads(comment)
            except (ValueError, TypeError):
                continue
            if not isinstance(payload, dict) or payload.get("magic") != ANNOTATION_MAGIC:
                continue
            plan._apply_payload(payload)
            break
        return plan

    def _apply_payload(self, payload: dict) -> None:
        """Best-effort restore: malformed fields are skipped, not fatal.

        A plan whose annotation comment was hand-edited or mangled in
        transit still loads as an image with whatever annotations
        survive — the Processor's "load" must never refuse a viewable
        GIF over sidecar damage.
        """

        def as_pixel(value) -> Optional[PixelPoint]:
            try:
                x, y = value
                return PixelPoint(float(x), float(y))
            except (TypeError, ValueError):
                return None

        try:
            if payload.get("feet_per_pixel") is not None:
                self._feet_per_pixel = float(payload["feet_per_pixel"])
        except (TypeError, ValueError):
            pass
        ref = payload.get("scale_reference")
        if isinstance(ref, dict):
            p1, p2 = as_pixel(ref.get("p1")), as_pixel(ref.get("p2"))
            try:
                dist = float(ref.get("distance_ft"))
            except (TypeError, ValueError):
                dist = None
            if p1 and p2 and dist is not None:
                self._scale_reference = (p1, p2, dist)
        origin = as_pixel(payload.get("origin")) if payload.get("origin") is not None else None
        if origin is not None:
            self.origin = origin
        aps = payload.get("access_points")
        if isinstance(aps, dict):
            for name, xy in aps.items():
                p = as_pixel(xy)
                if p is not None and isinstance(name, str) and name:
                    self.access_points[name] = p
        locs = payload.get("locations")
        if isinstance(locs, dict):
            for name, xy in locs.items():
                p = as_pixel(xy)
                if p is not None and isinstance(name, str) and name:
                    self.locations[name] = p
        if isinstance(payload.get("source"), str) and payload["source"]:
            self.source = payload["source"]

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph state description (the CLI's `info` output)."""
        parts = [
            f"floor plan {self.image.width}x{self.image.height}px",
            f"scale: {self._feet_per_pixel:.4f} ft/px" if self.has_scale else "scale: UNSET",
            f"origin: ({self.origin.px:g}, {self.origin.py:g})px" if self.origin else "origin: UNSET",
            f"{len(self.access_points)} access point(s)",
            f"{len(self.locations)} named location(s)",
        ]
        return "; ".join(parts)
