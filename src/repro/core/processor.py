"""The Floor Plan Processor (§4.1), headless.

The paper's Processor is "a GUI-based Python program for constructing
position maps and visualizing oneself in the physical space" with six
mouse-driven functions.  A GUI is incidental to what those functions
*do* — they edit a :class:`~repro.core.floorplan.FloorPlan` document —
so this reproduction exposes them as a scriptable session:

===============================  =======================================
paper §4.1 function              processor command
===============================  =======================================
1. load the floor plan GIF       ``load <path.gif>``
2. add access points             ``add-ap <name> <px> <py>``
3. set the scale                 ``set-scale <px1> <py1> <px2> <py2> <ft>``
4. set the point of origin       ``set-origin <px> <py>``
5. add location names            ``add-location "<name>" <px> <py>``
6. save the floor plan           ``save <path.gif>``
===============================  =======================================

plus ``info``, ``undo``, ``export-locations <path>`` conveniences.  The
pixel arguments are exactly what the GUI's mouse clicks would deliver,
so every paper workflow is reproducible as a script (and the CLI in
:mod:`repro.cli` runs such scripts from "a single-line Dos command").
"""

from __future__ import annotations

import copy
import shlex
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.floorplan import FloorPlan, FloorPlanError, PixelPoint
from repro.imaging.raster import Raster


class ProcessorError(ValueError):
    """Raised for invalid processor commands or command arguments."""


class FloorPlanProcessor:
    """A stateful editing session over one floor plan."""

    def __init__(self, plan: Optional[FloorPlan] = None):
        self.plan = plan
        self._undo_stack: List[FloorPlan] = []
        self.log: List[str] = []

    # ------------------------------------------------------------------
    # the six operations, as a Python API
    # ------------------------------------------------------------------
    def load(self, path) -> FloorPlan:
        """Op 1: open a GIF floor plan (only GIF is accepted, per paper)."""
        p = Path(path)
        if p.suffix.lower() != ".gif":
            raise ProcessorError(
                f"only GIF format is accepted (paper §4.1), got {p.suffix!r}"
            )
        self.plan = FloorPlan.load(p)
        self._undo_stack.clear()
        self._record(f"load {p}")
        return self.plan

    def new_plan(self, image: Raster, source: str = "<generated>") -> FloorPlan:
        """Start a session from an in-memory raster (synthetic blueprints)."""
        self.plan = FloorPlan(image, source=source)
        self._undo_stack.clear()
        self._record(f"new-plan {source}")
        return self.plan

    def add_access_point(self, name: str, px: float, py: float) -> None:
        """Op 2: click an AP onto the plan."""
        plan = self._require_plan()
        self._checkpoint()
        self._validate_pixel(px, py)
        plan.add_access_point(name, PixelPoint(px, py))
        self._record(f"add-ap {name} {px:g} {py:g}")

    def set_scale(self, px1: float, py1: float, px2: float, py2: float, distance_ft: float) -> float:
        """Op 3: two clicks plus the real distance between them.

        The reference points are measurement aids, not annotations, so
        they may sit on (or just past) the image edge — measuring a
        full wall span clicks at ``x = width``.
        """
        plan = self._require_plan()
        self._checkpoint()
        fpp = plan.set_scale(PixelPoint(px1, py1), PixelPoint(px2, py2), distance_ft)
        self._record(f"set-scale {px1:g} {py1:g} {px2:g} {py2:g} {distance_ft:g}")
        return fpp

    def set_origin(self, px: float, py: float) -> None:
        """Op 4: click the floor-frame origin."""
        plan = self._require_plan()
        self._checkpoint()
        plan.set_origin(PixelPoint(px, py))
        self._record(f"set-origin {px:g} {py:g}")

    def add_location(self, name: str, px: float, py: float) -> None:
        """Op 5: click a spot and give it an application-meaningful name."""
        plan = self._require_plan()
        self._checkpoint()
        self._validate_pixel(px, py)
        plan.add_location(name, PixelPoint(px, py))
        self._record(f"add-location {name!r} {px:g} {py:g}")

    def save(self, path) -> None:
        """Op 6: persist the annotated plan (GIF + comment annotations)."""
        plan = self._require_plan()
        p = Path(path)
        if p.suffix.lower() != ".gif":
            raise ProcessorError(f"floor plans are saved as GIF, got {p.suffix!r}")
        plan.save(p)
        self._record(f"save {p}")

    # ------------------------------------------------------------------
    # conveniences beyond the paper's six
    # ------------------------------------------------------------------
    def undo(self) -> None:
        """Revert the most recent mutating operation."""
        if not self._undo_stack:
            raise ProcessorError("nothing to undo")
        self.plan = self._undo_stack.pop()
        self._record("undo")

    def info(self) -> str:
        return self._require_plan().summary()

    def export_locations(self, path) -> None:
        """Write the named locations as a location-map text file (§4.3 input)."""
        plan = self._require_plan()
        plan.location_map().save(path)
        self._record(f"export-locations {path}")

    # ------------------------------------------------------------------
    # scripted command interface
    # ------------------------------------------------------------------
    def execute(self, command: str) -> Optional[str]:
        """Execute one command line; returns printable output, if any."""
        tokens = shlex.split(command, comments=True)
        if not tokens:
            return None
        op, args = tokens[0].lower(), tokens[1:]
        try:
            handler = self._HANDLERS[op]
        except KeyError:
            known = ", ".join(sorted(self._HANDLERS))
            raise ProcessorError(f"unknown command {op!r}; known commands: {known}") from None
        return handler(self, args)

    def run_script(self, lines) -> List[str]:
        """Execute a sequence of command lines; returns their outputs."""
        outputs = []
        for i, line in enumerate(lines, start=1):
            try:
                out = self.execute(line)
            except (ProcessorError, FloorPlanError) as exc:
                raise ProcessorError(f"script line {i} ({line.strip()!r}): {exc}") from exc
            if out:
                outputs.append(out)
        return outputs

    # -- command handlers ------------------------------------------------
    def _cmd_load(self, args) -> str:
        self._expect(args, 1, "load <path.gif>")
        self.load(args[0])
        return self.info()

    def _cmd_add_ap(self, args) -> None:
        self._expect(args, 3, "add-ap <name> <px> <py>")
        self.add_access_point(args[0], self._num(args[1]), self._num(args[2]))

    def _cmd_set_scale(self, args) -> str:
        self._expect(args, 5, "set-scale <px1> <py1> <px2> <py2> <feet>")
        fpp = self.set_scale(*(self._num(a) for a in args))
        return f"scale set: {fpp:.5f} ft/px"

    def _cmd_set_origin(self, args) -> None:
        self._expect(args, 2, "set-origin <px> <py>")
        self.set_origin(self._num(args[0]), self._num(args[1]))

    def _cmd_add_location(self, args) -> None:
        self._expect(args, 3, 'add-location "<name>" <px> <py>')
        self.add_location(args[0], self._num(args[1]), self._num(args[2]))

    def _cmd_save(self, args) -> None:
        self._expect(args, 1, "save <path.gif>")
        self.save(args[0])

    def _cmd_info(self, args) -> str:
        self._expect(args, 0, "info")
        return self.info()

    def _cmd_undo(self, args) -> None:
        self._expect(args, 0, "undo")
        self.undo()

    def _cmd_export_locations(self, args) -> None:
        self._expect(args, 1, "export-locations <path>")
        self.export_locations(args[0])

    _HANDLERS: Dict[str, Callable] = {
        "load": _cmd_load,
        "add-ap": _cmd_add_ap,
        "set-scale": _cmd_set_scale,
        "set-origin": _cmd_set_origin,
        "add-location": _cmd_add_location,
        "save": _cmd_save,
        "info": _cmd_info,
        "undo": _cmd_undo,
        "export-locations": _cmd_export_locations,
    }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_plan(self) -> FloorPlan:
        if self.plan is None:
            raise ProcessorError("no floor plan loaded — use 'load <path.gif>' first")
        return self.plan

    def _checkpoint(self) -> None:
        plan = self._require_plan()
        snapshot = FloorPlan(plan.image, source=plan.source)
        snapshot.access_points = dict(plan.access_points)
        snapshot.locations = dict(plan.locations)
        snapshot.origin = plan.origin
        snapshot._feet_per_pixel = plan._feet_per_pixel
        snapshot._scale_reference = plan._scale_reference
        self._undo_stack.append(snapshot)

    def _validate_pixel(self, px: float, py: float) -> None:
        plan = self._require_plan()
        if not (0 <= px < plan.image.width and 0 <= py < plan.image.height):
            raise ProcessorError(
                f"pixel ({px:g}, {py:g}) outside the "
                f"{plan.image.width}x{plan.image.height} image"
            )

    def _record(self, entry: str) -> None:
        self.log.append(entry)

    @staticmethod
    def _expect(args, n: int, usage: str) -> None:
        if len(args) != n:
            raise ProcessorError(f"usage: {usage}")

    @staticmethod
    def _num(token: str) -> float:
        try:
            return float(token)
        except ValueError:
            raise ProcessorError(f"expected a number, got {token!r}") from None
