"""The location toolkit: the paper's primary contribution.

Three §4 utility programs — :class:`~repro.core.processor.FloorPlanProcessor`,
:class:`~repro.core.compositor.FloorPlanCompositor`,
:func:`~repro.core.trainingdb.generate_training_db` — plus the document
models they share (:class:`~repro.core.floorplan.FloorPlan`,
:class:`~repro.core.locationmap.LocationMap`,
:class:`~repro.core.trainingdb.TrainingDatabase`) and the assembled
two-phase system (:class:`~repro.core.system.LocalizationSystem`).
"""

from repro.core.geometry import Circle, Point
from repro.core.floorplan import FloorPlan, FloorPlanError, PixelPoint
from repro.core.locationmap import LocationMap, LocationMapError
from repro.core.processor import FloorPlanProcessor, ProcessorError
from repro.core.compositor import EstimatePair, FloorPlanCompositor, Mark
from repro.core.trainingdb import (
    LocationRecord,
    TrainingDatabase,
    TrainingDBError,
    generate_training_db,
)
from repro.core.system import LocalizationSystem, ResolvedLocation

__all__ = [
    "Circle",
    "Point",
    "FloorPlan",
    "FloorPlanError",
    "PixelPoint",
    "LocationMap",
    "LocationMapError",
    "FloorPlanProcessor",
    "ProcessorError",
    "EstimatePair",
    "FloorPlanCompositor",
    "Mark",
    "LocationRecord",
    "TrainingDatabase",
    "TrainingDBError",
    "generate_training_db",
    "LocalizationSystem",
    "ResolvedLocation",
]
