"""The end-to-end location determination system (paper §3, Figure 1).

:class:`LocalizationSystem` wires the toolkit together along the
paper's two-phase pipeline:

* **Phase 1 (training)** — steps 1–4 of Figure 1: an annotated floor
  plan supplies AP positions and named locations; a wi-scan collection
  (from a survey) plus the location map become a training database; the
  chosen algorithm is fitted.
* **Phase 2 (working)** — steps 5–6: observed signal strength resolves
  to a coordinate estimate *and* the application-specific location name
  (the abstraction the paper's introduction insists applications need).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # import cycle guard: algorithms.base imports core.geometry
    from repro.algorithms.base import LocationEstimate, Localizer, Observation

from repro.core.floorplan import FloorPlan, FloorPlanError
from repro.core.geometry import Point
from repro.core.locationmap import LocationMap
from repro.core.trainingdb import TrainingDatabase, generate_training_db
from repro.wiscan.collection import WiScanCollection


@dataclass(frozen=True)
class ResolvedLocation:
    """A Phase-2 answer with the application-level name attached."""

    estimate: LocationEstimate
    name: Optional[str]
    name_distance_ft: float

    @property
    def position(self) -> Optional[Point]:
        return self.estimate.position

    @property
    def valid(self) -> bool:
        return self.estimate.valid

    @property
    def diagnostics(self) -> Dict[str, object]:
        """Algorithm-reported request diagnostics (``estimate.details``).

        For the fallback chain this carries ``tier`` (who answered) and
        ``declined`` (who passed, and why); see docs/robustness.md.
        """
        return self.estimate.details

    @property
    def tier(self) -> Optional[str]:
        """Name of the fallback tier that answered (None outside chains)."""
        tier = self.estimate.details.get("tier")
        return tier if isinstance(tier, str) else None


class LocalizationSystem:
    """A trained location determination system for one site.

    Construct via :meth:`train` (the Phase-1 factory) or directly from a
    fitted localizer plus the site's location map.
    """

    def __init__(
        self,
        localizer: Localizer,
        training_db: TrainingDatabase,
        location_map: Optional[LocationMap] = None,
        plan: Optional[FloorPlan] = None,
    ):
        self.localizer = localizer
        self.training_db = training_db
        self.location_map = location_map
        self.plan = plan

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        collection: Union[str, WiScanCollection],
        location_map: Union[str, LocationMap],
        algorithm: Union[str, Localizer] = "probabilistic",
        plan: Optional[FloorPlan] = None,
        lenient: bool = False,
        **algorithm_kwargs,
    ) -> "LocalizationSystem":
        """Phase 1: survey data + location map (+ plan) → working system.

        ``algorithm`` may be a registry name (``"probabilistic"``,
        ``"geometric"``, …) or a pre-built localizer.  Algorithms that
        need AP positions (geometric, multilateration, the fallback
        chain's geometric tier) take them from the annotated floor plan
        automatically when ``plan`` is given and ``ap_positions`` isn't
        passed explicitly.  ``lenient=True`` ingests the survey in
        recovering mode (skip/quarantine instead of abort); the
        resulting :class:`~repro.robustness.report.IngestReport` is
        available as ``system.training_db.ingest_report``.
        """
        from repro.algorithms.base import Localizer, make_localizer

        lmap = location_map if isinstance(location_map, LocationMap) else LocationMap.load(location_map)
        db = generate_training_db(collection, lmap, lenient=lenient)
        if isinstance(algorithm, Localizer):
            localizer = algorithm
        else:
            if (
                algorithm in ("geometric", "multilateration")
                and "ap_positions" not in algorithm_kwargs
            ):
                if plan is None:
                    raise ValueError(
                        f"algorithm {algorithm!r} needs ap_positions or an "
                        "annotated floor plan"
                    )
                algorithm_kwargs["ap_positions"] = ap_positions_by_bssid(plan, db)
            elif (
                algorithm == "fallback"
                and "ap_positions" not in algorithm_kwargs
                and plan is not None
            ):
                # Optional for the chain: without a plan the geometric
                # tier is simply omitted rather than failing training.
                algorithm_kwargs["ap_positions"] = ap_positions_by_bssid(plan, db)
                if "bounds" not in algorithm_kwargs:
                    try:
                        algorithm_kwargs["bounds"] = site_bounds(plan)
                    except FloorPlanError:
                        pass  # un-framed plan: chain runs without bounds
            localizer = make_localizer(algorithm, **algorithm_kwargs)
        localizer.fit(db)
        return cls(localizer, db, location_map=lmap, plan=plan)

    # ------------------------------------------------------------------
    def locate(self, observation: Observation) -> ResolvedLocation:
        """Phase 2: one observation → coordinates + nearest named location."""
        estimate = self.localizer.locate(observation)
        name, dist = None, float("inf")
        if estimate.location_name is not None:
            name, dist = estimate.location_name, 0.0
        elif (
            estimate.valid
            and estimate.position is not None
            and self.location_map is not None
            and len(self.location_map) > 0
        ):
            name, dist = self.location_map.nearest(estimate.position)
        return ResolvedLocation(estimate=estimate, name=name, name_distance_ft=dist)

    def locate_rssi(self, rssi_dbm: Sequence[float]) -> ResolvedLocation:
        """Convenience: a single mean RSSI vector (NaN = AP unheard)."""
        from repro.algorithms.base import Observation

        return self.locate(Observation(np.asarray(rssi_dbm, dtype=float)[None, :]))


def ap_positions_by_bssid(plan: FloorPlan, db: TrainingDatabase) -> Dict[str, Point]:
    """Match the plan's AP annotations to the database's BSSIDs.

    The Processor stores APs by *name*; wi-scan data keys by *BSSID*.
    Plan AP names that are themselves BSSIDs match exactly
    (case-insensitive); otherwise, when the plan has exactly one AP
    annotation per survey BSSID, they pair up in order — the common
    deploy-N-APs-and-click-them-in-order case.  Anything else is
    ambiguous and raises.
    """
    floor_positions = plan.ap_floor_positions()
    lower = {name.lower(): pos for name, pos in floor_positions.items()}
    out: Dict[str, Point] = {
        bssid: lower[bssid.lower()] for bssid in db.bssids if bssid.lower() in lower
    }
    if len(out) == len(db.bssids):
        return out
    if not out and len(floor_positions) == len(db.bssids):
        return {bssid: pos for bssid, pos in zip(db.bssids, floor_positions.values())}
    raise ValueError(
        f"cannot match plan APs {sorted(floor_positions)} to survey BSSIDs "
        f"{db.bssids}; annotate the plan with BSSIDs, or with exactly one "
        "AP per BSSID in survey order"
    )


def site_bounds(plan: FloorPlan) -> "tuple[float, float, float, float]":
    """The plan image's extent as an ``(x0, y0, x1, y1)`` floor-feet box.

    The fallback chain uses this to reject off-site answers; raises
    :class:`~repro.core.floorplan.FloorPlanError` when the plan has no
    origin/scale frame yet.
    """
    from repro.core.floorplan import PixelPoint

    corners = (
        plan.to_floor(PixelPoint(0, 0)),
        plan.to_floor(PixelPoint(plan.image.width - 1, plan.image.height - 1)),
    )
    xs = sorted(p.x for p in corners)
    ys = sorted(p.y for p in corners)
    return (xs[0], ys[0], xs[1], ys[1])
