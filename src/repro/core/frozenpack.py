"""Frozen model packs: the mmap-able ``.tdbx`` on-disk layout.

The ``.tdb`` container (:mod:`repro.core.trainingdb`) optimizes for
*transport*: one zlib stream, decompressed and copied record by record
on every load.  That is the wrong trade for a serving fleet — N worker
processes each paying a full decompress + copy hold N private heap
copies of the same fitted-model arrays, and a hot reload re-parses the
whole database on the serving path.

A frozen pack stores the arrays a fitted model actually reads —
``positions``, ``mean_matrix``, ``std_matrix``, the raw per-location
``samples``, and optionally the :class:`~repro.algorithms.regression.
PackedRanging` inversion tables — as **aligned, raw little-endian
sections** behind a checksummed JSON header.  Opening a pack maps the
file read-only (``mmap.ACCESS_READ``) and exposes each section as a
zero-copy ``np.frombuffer`` view:

* every view is ``writeable=False`` (the buffer itself is read-only),
  so the corruption-by-aliasing class of bugs cannot exist;
* N processes opening one pack share **one page-cache copy** of the
  model — combined RSS for the model stays at ~one worker's, which is
  what lets ``repro serve --workers N`` scale without N× memory;
* hot-reload is "open the new pack, swap one reference" — no
  ``zlib.decompress``, no per-record copies on the serving path;
* :mod:`repro.parallel` shard fan-out can ship the *pack path* to
  worker processes instead of pickling fitted arrays per shard
  (see ``repro.algorithms.engine``).

Layout::

    MAGIC "RTDX1\\n" | u32 header_len | u32 header_crc32
    | header JSON (utf-8) | zero padding to 64-byte alignment
    | section 0 bytes | padding | section 1 bytes | ...

The header records ``{"format", "meta", "sections": [{name, dtype,
shape, offset, nbytes, crc32}]}`` with offsets relative to the aligned
data start, so byte layout is a pure function of the content.  All
sections are little-endian; the checksums (zlib CRC-32) cover the
header bytes and each section's bytes, giving the loader a taxonomy of
failures: :class:`FrozenPackMagicError` (not a pack),
:class:`FrozenPackTruncatedError` (short file),
:class:`FrozenPackChecksumError` (bit rot), all under
:class:`FrozenPackError`.

The freeze path (:func:`freeze_training_db`) writes the exact bytes
the heap-backed accessors produce — ``db.mean_matrix()`` and friends
are computed once at freeze time by the same code every consumer runs
— so a localizer fitted on a frozen database answers **bit-for-bit**
identically to one fitted on the ``.tdb`` it was frozen from (the
parity suite in ``tests/test_frozenpack.py`` enforces this across
every registered algorithm).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.geometry import Point
from repro.core.trainingdb import LocationRecord, TrainingDatabase, TrainingDBError
from repro.core.trainingdb import MAGIC as TDB_MAGIC

PathLike = Union[str, os.PathLike]

__all__ = [
    "MAGIC",
    "FrozenPack",
    "FrozenPackError",
    "FrozenPackMagicError",
    "FrozenPackTruncatedError",
    "FrozenPackChecksumError",
    "write_pack",
    "freeze_training_db",
    "load_frozen_db",
    "load_database",
    "is_frozen_pack",
    "ranging_fingerprint",
    "frozen_ranging_for",
]

MAGIC = b"RTDX1\n"

#: Section payloads start on this boundary.  The mmap base is
#: page-aligned, so a 64-byte file offset alignment gives every view
#: cache-line-aligned data — and comfortably satisfies any dtype's
#: alignment requirement.
ALIGN = 64

_LEN_CRC = struct.Struct("<II")

#: The std floor(s) precomputed into a pack by default.  0.5 is the
#: toolkit-wide default of :meth:`LocationRecord.std_rssi`; consumers
#: asking for another floor fall back to computing it from the mapped
#: samples (still zero-copy inputs, heap output).
DEFAULT_STD_FLOORS = (0.5,)

_FORMAT = "repro-frozenpack/1"


class FrozenPackError(ValueError):
    """Base class for malformed / unreadable frozen packs."""


class FrozenPackMagicError(FrozenPackError):
    """The file does not start with the ``.tdbx`` magic."""


class FrozenPackTruncatedError(FrozenPackError):
    """The file ends before the bytes its header promises."""


class FrozenPackChecksumError(FrozenPackError):
    """Stored CRC-32 does not match the bytes on disk (bit rot)."""


def _align(n: int) -> int:
    return (n + ALIGN - 1) // ALIGN * ALIGN


def _le_dtype(dtype: np.dtype) -> np.dtype:
    """The little-endian spelling of ``dtype`` (no-op on LE hosts)."""
    return dtype.newbyteorder("<")


def write_pack(
    path: PathLike,
    sections: Sequence[Tuple[str, np.ndarray]],
    meta: Optional[Dict[str, object]] = None,
) -> int:
    """Write named arrays as one frozen pack; returns the file size.

    Arrays are serialized contiguously in little-endian byte order;
    ``sections`` order is preserved (it becomes the on-disk order).
    """
    blobs: List[bytes] = []
    table: List[Dict[str, object]] = []
    offset = 0
    seen = set()
    for name, arr in sections:
        if name in seen:
            raise FrozenPackError(f"duplicate section name {name!r}")
        seen.add(name)
        a = np.ascontiguousarray(arr)
        dt = _le_dtype(a.dtype)
        data = np.ascontiguousarray(a, dtype=dt).tobytes()
        offset = _align(offset)
        table.append({
            "name": name,
            "dtype": dt.str,
            "shape": list(a.shape),
            "offset": offset,
            "nbytes": len(data),
            "crc32": zlib.crc32(data) & 0xFFFFFFFF,
        })
        blobs.append(data)
        offset += len(data)
    header = {"format": _FORMAT, "meta": meta or {}, "sections": table}
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align(len(MAGIC) + _LEN_CRC.size + len(header_bytes))
    out = bytearray()
    out += MAGIC
    out += _LEN_CRC.pack(len(header_bytes), zlib.crc32(header_bytes) & 0xFFFFFFFF)
    out += header_bytes
    out += b"\0" * (data_start - len(out))
    for entry, data in zip(table, blobs):
        absolute = data_start + int(entry["offset"])
        out += b"\0" * (absolute - len(out))
        out += data
    Path(path).write_bytes(bytes(out))
    return len(out)


class FrozenPack:
    """A read-only mmap over one ``.tdbx`` file.

    Every :meth:`array` is a zero-copy ``np.frombuffer`` view into the
    mapping — ``writeable=False`` by construction, shared page-cache
    backing across every process that opens the same file.  Keep the
    pack object alive as long as its views are in use (the loader
    attaches it to the :class:`TrainingDatabase` it builds); ``close``
    tolerates live views by leaving the final unmap to the GC.
    """

    def __init__(self, path: PathLike, verify: bool = True):
        self.path = str(path)
        st = os.stat(self.path)
        #: (size, mtime_ns) at open time — the shard-spec cache key that
        #: distinguishes a pack file replaced in place.
        self.stat: Tuple[int, int] = (st.st_size, st.st_mtime_ns)
        prefix_len = len(MAGIC) + _LEN_CRC.size
        with open(self.path, "rb") as f:
            head = f.read(prefix_len)
            if len(head) < len(MAGIC) or not head.startswith(MAGIC):
                raise FrozenPackMagicError(
                    f"{self.path}: not a frozen pack "
                    f"(magic {head[:len(MAGIC)]!r}, expected {MAGIC!r})"
                )
            if len(head) < prefix_len:
                raise FrozenPackTruncatedError(f"{self.path}: truncated header prefix")
            header_len, header_crc = _LEN_CRC.unpack(head[len(MAGIC):])
            header_bytes = f.read(header_len)
            if len(header_bytes) < header_len:
                raise FrozenPackTruncatedError(
                    f"{self.path}: header claims {header_len} bytes, "
                    f"file has {len(header_bytes)}"
                )
            if zlib.crc32(header_bytes) & 0xFFFFFFFF != header_crc:
                raise FrozenPackChecksumError(f"{self.path}: header checksum mismatch")
            try:
                header = json.loads(header_bytes)
            except ValueError as exc:
                raise FrozenPackError(f"{self.path}: unparseable header: {exc}") from None
            if header.get("format") != _FORMAT:
                raise FrozenPackError(
                    f"{self.path}: unsupported format {header.get('format')!r}"
                )
            f.seek(0, os.SEEK_END)
            size = f.tell()
            f.seek(0)
            self._mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        self.meta: Dict[str, object] = header.get("meta") or {}
        data_start = _align(prefix_len + header_len)
        self._arrays: Dict[str, np.ndarray] = {}
        for entry in header.get("sections", []):
            name = entry["name"]
            off = data_start + int(entry["offset"])
            nbytes = int(entry["nbytes"])
            if off + nbytes > size:
                self._mm.close()
                raise FrozenPackTruncatedError(
                    f"{self.path}: section {name!r} wants bytes "
                    f"[{off}, {off + nbytes}), file has {size}"
                )
            if verify:
                crc = zlib.crc32(memoryview(self._mm)[off:off + nbytes]) & 0xFFFFFFFF
                if crc != int(entry["crc32"]):
                    self._mm.close()
                    raise FrozenPackChecksumError(
                        f"{self.path}: section {name!r} checksum mismatch"
                    )
            dt = np.dtype(entry["dtype"])
            shape = tuple(int(s) for s in entry["shape"])
            count = 1
            for s in shape:
                count *= s
            if count * dt.itemsize != nbytes:
                self._mm.close()
                raise FrozenPackError(
                    f"{self.path}: section {name!r} shape {shape} x {dt} "
                    f"!= {nbytes} bytes"
                )
            view = np.frombuffer(self._mm, dtype=dt, count=count, offset=off)
            self._arrays[name] = view.reshape(shape)

    def names(self) -> List[str]:
        return list(self._arrays)

    def array(self, name: str) -> np.ndarray:
        """The named section as a read-only zero-copy view."""
        try:
            return self._arrays[name]
        except KeyError:
            raise FrozenPackError(
                f"{self.path}: no section {name!r}; have {self.names()}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def close(self) -> None:
        """Drop the array views and try to unmap.

        Views handed out earlier keep the mapping alive (closing an
        mmap with exported buffers raises ``BufferError``); in that
        case the unmap happens when the last view is collected.
        """
        self._arrays = {}
        try:
            self._mm.close()
        except BufferError:
            pass  # live views: the GC unmaps when the last one dies

    def __enter__(self) -> "FrozenPack":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def ranging_fingerprint(ap_positions: Dict[str, Point]) -> str:
    """Stable digest of an AP-position map.

    Stored beside frozen :class:`PackedRanging` tables; a localizer
    only adopts the frozen tables when its own ``ap_positions`` hash to
    the same value, since the regression fits depend on them.
    """
    doc = sorted(
        (str(b), float(p.x), float(p.y)) for b, p in ap_positions.items()
    )
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def freeze_training_db(
    db: TrainingDatabase,
    path: PathLike,
    std_floors: Sequence[float] = DEFAULT_STD_FLOORS,
    ap_positions: Optional[Dict[str, Point]] = None,
) -> int:
    """Write ``db`` (plus optional ranging tables) as a frozen pack.

    The stored matrices are produced by the database's own accessors,
    so a pack round-trip is bit-exact by construction.  With
    ``ap_positions`` the §5.2 per-AP regression is fitted here, once,
    and its :class:`PackedRanging` arrays ride in the pack under a
    fingerprint of the AP map — geometric/multilateration fits on the
    loaded database reuse them instead of re-running the regression.

    Returns the pack size in bytes.
    """
    with obs.span("frozenpack.freeze", path=str(path)):
        if db.records:
            samples = np.concatenate(
                [np.ascontiguousarray(r.samples, dtype="<f4") for r in db.records]
            )
        else:
            samples = np.zeros((0, len(db.bssids)), dtype="<f4")
        offsets = np.zeros(len(db.records) + 1, dtype=np.int64)
        np.cumsum([r.samples.shape[0] for r in db.records], out=offsets[1:])
        sections: List[Tuple[str, np.ndarray]] = [
            ("positions", db.positions()),
            ("mean_matrix", db.mean_matrix()),
            ("samples", samples),
            ("sample_offsets", offsets),
        ]
        floors = sorted({float(f) for f in std_floors})
        for floor in floors:
            sections.append((f"std_matrix/{floor!r}", db.std_matrix(min_std=floor)))
        meta: Dict[str, object] = {
            "bssids": list(db.bssids),
            "names": [r.name for r in db.records],
            "std_floors": floors,
        }
        if ap_positions:
            from repro.algorithms.regression import PackedRanging, fit_per_ap

            packed = PackedRanging.from_fits(
                fit_per_ap(db, ap_positions), db.bssids
            )
            for field in ("columns", "a", "b", "c", "lo", "hi", "ss_lo", "ss_hi"):
                sections.append((f"ranging/{field}", getattr(packed, field)))
            meta["ranging"] = {
                "bssids": list(packed.bssids),
                "fingerprint": ranging_fingerprint(ap_positions),
            }
        size = write_pack(path, sections, meta=meta)
        obs.counter("frozenpack.freezes").inc()
        return size


class _FrozenRanging:
    """The pack's PackedRanging arrays + the AP-map fingerprint."""

    __slots__ = ("packed", "fingerprint")

    def __init__(self, packed, fingerprint: str):
        self.packed = packed
        self.fingerprint = fingerprint


def load_frozen_db(path: PathLike, verify: bool = True) -> TrainingDatabase:
    """Open a pack as a :class:`TrainingDatabase` of zero-copy views.

    Record samples are read-only row slices of one mapped ``samples``
    section; the positions / mean / std matrices are the mapped
    sections themselves, pre-seeded into the database's memo slots so
    every consumer reads the page-cache copy.  The returned database
    carries ``frozen_pack`` (the open :class:`FrozenPack`),
    ``frozen_path``, and — when the pack includes ranging tables —
    ``frozen_ranging`` for :func:`frozen_ranging_for`.
    """
    with obs.span("frozenpack.load", path=str(path)):
        pack = FrozenPack(path, verify=verify)
        try:
            bssids = list(pack.meta["bssids"])
            names = list(pack.meta["names"])
        except KeyError as exc:
            pack.close()
            raise FrozenPackError(f"{path}: pack meta lacks {exc}") from None
        positions = pack.array("positions")
        samples = pack.array("samples")
        offsets = pack.array("sample_offsets")
        if positions.shape != (len(names), 2):
            pack.close()
            raise FrozenPackError(
                f"{path}: positions shape {positions.shape} != ({len(names)}, 2)"
            )
        if offsets.shape != (len(names) + 1,):
            pack.close()
            raise FrozenPackError(
                f"{path}: sample_offsets shape {offsets.shape} != ({len(names) + 1},)"
            )
        records = []
        for i, name in enumerate(names):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            records.append(LocationRecord(
                name,
                Point(float(positions[i, 0]), float(positions[i, 1])),
                samples[lo:hi],
            ))
        try:
            db = TrainingDatabase(bssids, records)
        except TrainingDBError:
            pack.close()
            raise
        db._positions_memo = positions
        db._mean_matrix_memo = pack.array("mean_matrix")
        for floor in pack.meta.get("std_floors", []):
            db._std_matrix_memo[float(floor)] = pack.array(f"std_matrix/{float(floor)!r}")
        db.frozen_pack = pack
        db.frozen_path = os.fspath(path)
        ranging_meta = pack.meta.get("ranging")
        if ranging_meta:
            from repro.algorithms.regression import PackedRanging

            db.frozen_ranging = _FrozenRanging(
                PackedRanging(
                    bssids=tuple(ranging_meta["bssids"]),
                    columns=pack.array("ranging/columns"),
                    a=pack.array("ranging/a"),
                    b=pack.array("ranging/b"),
                    c=pack.array("ranging/c"),
                    lo=pack.array("ranging/lo"),
                    hi=pack.array("ranging/hi"),
                    ss_lo=pack.array("ranging/ss_lo"),
                    ss_hi=pack.array("ranging/ss_hi"),
                ),
                str(ranging_meta["fingerprint"]),
            )
        obs.counter("frozenpack.loads").inc()
        return db


def frozen_ranging_for(
    db: TrainingDatabase, ap_positions: Dict[str, Point]
):
    """The database's frozen ranging tables, iff they match ``ap_positions``.

    Returns the pack-backed :class:`PackedRanging` when ``db`` was
    loaded from a pack frozen with the *same* AP map (fingerprint
    equality); None otherwise — callers then run the regression as
    usual.  Adoption is safe because the frozen arrays were produced by
    the identical ``from_fits`` computation at freeze time.
    """
    frozen = getattr(db, "frozen_ranging", None)
    if frozen is None:
        return None
    if frozen.fingerprint != ranging_fingerprint(ap_positions):
        return None
    return frozen.packed


def is_frozen_pack(path: PathLike) -> bool:
    """True iff ``path`` starts with the frozen-pack magic."""
    try:
        with open(path, "rb") as f:
            return f.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def load_database(path: PathLike) -> TrainingDatabase:
    """Load ``path`` as whichever container it is (``.tdb`` / ``.tdbx``).

    Sniffs the magic rather than trusting the suffix; unknown magics
    raise :class:`TrainingDBError` naming both formats.
    """
    with open(path, "rb") as f:
        head = f.read(max(len(MAGIC), len(TDB_MAGIC)))
    if head.startswith(MAGIC):
        return load_frozen_db(path)
    if head.startswith(TDB_MAGIC):
        return TrainingDatabase.load(path)
    raise TrainingDBError(
        f"{path}: neither a .tdb ({TDB_MAGIC!r}) nor a frozen pack ({MAGIC!r}); "
        f"got {head!r}"
    )
