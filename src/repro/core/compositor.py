"""The Floor Plan Compositor (§4.2).

"The Floor Plan Compositor creates images from a floor plan and marks
the image with locations out of user-given coordinate values. … We can
take a set of testing locations in a room, run the system, and use the
Floor Plan Compositor to display all the testing locations and their
corresponding estimated locations derived by the location determination
algorithm."

:class:`FloorPlanCompositor` renders an annotated
:class:`~repro.core.floorplan.FloorPlan` with overlay layers:

* the plan's own annotations (APs as labelled triangles, named
  locations as dots, the origin as a circled cross),
* free marks (:class:`Mark`) given in **floor feet**,
* true/estimated pairs (:class:`EstimatePair`) — the paper's test-view:
  a ``+`` at the truth, an ``×`` at the estimate, a line between them,
* a legend and a 10-ft scale bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.floorplan import FloorPlan, FloorPlanError
from repro.core.geometry import Point
from repro.imaging import font
from repro.imaging.raster import (
    BLACK,
    BLUE,
    Color,
    DARK_BLUE,
    GRAY,
    GREEN,
    ORANGE,
    PURPLE,
    RED,
    Raster,
    WHITE,
)

MARK_STYLES = ("cross", "x", "circle", "dot", "diamond")


@dataclass(frozen=True)
class Mark:
    """One free overlay mark at a floor position (feet)."""

    position: Point
    style: str = "cross"
    color: Color = RED
    label: str = ""
    size_px: int = 6

    def __post_init__(self):
        if self.style not in MARK_STYLES:
            raise ValueError(f"unknown mark style {self.style!r}; use one of {MARK_STYLES}")
        if self.size_px < 1:
            raise ValueError(f"mark size must be >= 1 px, got {self.size_px}")


@dataclass(frozen=True)
class EstimatePair:
    """A true location and the algorithm's estimate for it."""

    true_position: Point
    estimated_position: Point
    label: str = ""

    @property
    def error_ft(self) -> float:
        return self.true_position.distance_to(self.estimated_position)


class FloorPlanCompositor:
    """Renders overlay views of one annotated floor plan."""

    TRUE_COLOR = GREEN
    ESTIMATE_COLOR = RED
    AP_COLOR = DARK_BLUE
    LOCATION_COLOR = PURPLE
    ORIGIN_COLOR = ORANGE

    def __init__(self, plan: FloorPlan):
        if not plan.has_scale or not plan.has_origin:
            raise FloorPlanError(
                "compositor needs a plan with scale and origin set "
                "(run the Processor's set-scale / set-origin first)"
            )
        self.plan = plan

    # ------------------------------------------------------------------
    def render(
        self,
        marks: Sequence[Mark] = (),
        pairs: Sequence[EstimatePair] = (),
        show_access_points: bool = True,
        show_locations: bool = True,
        show_origin: bool = True,
        legend: bool = True,
        scale_bar: bool = True,
    ) -> Raster:
        """Produce the composited image."""
        canvas = self.plan.image.copy()
        if show_access_points:
            self._draw_access_points(canvas)
        if show_locations:
            self._draw_named_locations(canvas)
        if show_origin and self.plan.origin is not None:
            self._draw_origin(canvas)
        for pair in pairs:
            self._draw_pair(canvas, pair)
        for mark in marks:
            self._draw_mark(canvas, mark)
        if scale_bar:
            self._draw_scale_bar(canvas)
        if legend and (marks or pairs):
            self._draw_legend(canvas, bool(pairs), {m.style for m in marks})
        return canvas

    def render_coordinates(
        self, coordinates: Sequence[Tuple[float, float]], style: str = "cross", color: Color = RED
    ) -> Raster:
        """The §4.2 CLI contract: mark plain (x, y) feet coordinates."""
        marks = [Mark(Point(x, y), style=style, color=color) for x, y in coordinates]
        return self.render(marks=marks)

    # ------------------------------------------------------------------
    def _pixel(self, p: Point) -> Tuple[int, int]:
        px = self.plan.to_pixel(p)
        return (int(round(px.px)), int(round(px.py)))

    def _draw_mark(self, canvas: Raster, mark: Mark) -> None:
        x, y = self._pixel(mark.position)
        s = mark.size_px
        if mark.style == "cross":
            canvas.draw_cross(x, y, s, mark.color, thickness=2)
        elif mark.style == "x":
            canvas.draw_x(x, y, s, mark.color, thickness=2)
        elif mark.style == "circle":
            canvas.draw_circle(x, y, s, mark.color, thickness=2)
        elif mark.style == "dot":
            canvas.fill_circle(x, y, max(2, s // 2), mark.color)
        elif mark.style == "diamond":
            canvas.draw_diamond(x, y, s, mark.color, thickness=2)
        if mark.label:
            font.draw_text(canvas, x + s + 3, y - 3, mark.label, mark.color, background=WHITE)

    def _draw_pair(self, canvas: Raster, pair: EstimatePair) -> None:
        tx, ty = self._pixel(pair.true_position)
        ex, ey = self._pixel(pair.estimated_position)
        canvas.draw_line(tx, ty, ex, ey, GRAY, 1)
        canvas.draw_cross(tx, ty, 6, self.TRUE_COLOR, thickness=2)
        canvas.draw_x(ex, ey, 6, self.ESTIMATE_COLOR, thickness=2)
        if pair.label:
            font.draw_text(canvas, tx + 9, ty - 3, pair.label, self.TRUE_COLOR, background=WHITE)

    def _draw_access_points(self, canvas: Raster) -> None:
        for name, pp in self.plan.access_points.items():
            x, y = int(round(pp.px)), int(round(pp.py))
            # Filled triangle marker: three stacked shrinking lines.
            for dy in range(7):
                half = dy
                canvas.draw_line(x - half, y - 6 + dy, x + half, y - 6 + dy, self.AP_COLOR)
            font.draw_text(canvas, x + 6, y - 10, f"AP {name}", self.AP_COLOR, background=WHITE)

    def _draw_named_locations(self, canvas: Raster) -> None:
        for name, pp in self.plan.locations.items():
            x, y = int(round(pp.px)), int(round(pp.py))
            canvas.fill_circle(x, y, 3, self.LOCATION_COLOR)
            font.draw_text(canvas, x + 6, y - 3, name, self.LOCATION_COLOR, background=WHITE)

    def _draw_origin(self, canvas: Raster) -> None:
        o = self.plan.origin
        x, y = int(round(o.px)), int(round(o.py))
        canvas.draw_circle(x, y, 6, self.ORIGIN_COLOR, thickness=2)
        canvas.draw_cross(x, y, 8, self.ORIGIN_COLOR)
        font.draw_text(canvas, x + 10, y + 4, "(0,0)", self.ORIGIN_COLOR, background=WHITE)

    def _draw_scale_bar(self, canvas: Raster) -> None:
        bar_ft = 10.0
        bar_px = int(round(bar_ft / self.plan.feet_per_pixel))
        if bar_px < 8 or bar_px > canvas.width - 20:
            return
        x0, y0 = 10, canvas.height - 12
        canvas.draw_line(x0, y0, x0 + bar_px, y0, BLACK, 2)
        canvas.draw_line(x0, y0 - 3, x0, y0 + 3, BLACK)
        canvas.draw_line(x0 + bar_px, y0 - 3, x0 + bar_px, y0 + 3, BLACK)
        font.draw_text(canvas, x0 + 4, y0 - 11, f"{bar_ft:g} FT", BLACK, background=WHITE)

    def _draw_legend(self, canvas: Raster, has_pairs: bool, mark_styles: set) -> None:
        entries: List[Tuple[str, Color, str]] = []
        if has_pairs:
            entries.append(("cross", self.TRUE_COLOR, "TRUE"))
            entries.append(("x", self.ESTIMATE_COLOR, "ESTIMATE"))
        for style in sorted(mark_styles):
            entries.append((style, RED, style.upper()))
        if not entries:
            return
        row_h = 14
        w = 96
        h = row_h * len(entries) + 8
        x0 = canvas.width - w - 6
        y0 = 6
        canvas.blend_rect(x0, y0, x0 + w, y0 + h, WHITE, 0.85)
        canvas.draw_rect(x0, y0, x0 + w, y0 + h, GRAY)
        for i, (style, color, text) in enumerate(entries):
            cy = y0 + 10 + i * row_h
            cx = x0 + 10
            if style == "cross":
                canvas.draw_cross(cx, cy, 4, color, thickness=2)
            elif style == "x":
                canvas.draw_x(cx, cy, 4, color, thickness=2)
            elif style == "circle":
                canvas.draw_circle(cx, cy, 4, color)
            elif style == "dot":
                canvas.fill_circle(cx, cy, 2, color)
            elif style == "diamond":
                canvas.draw_diamond(cx, cy, 4, color)
            font.draw_text(canvas, cx + 10, cy - 3, text, BLACK)
