"""Location maps: the "text file of location names and coordinates".

§4.3 gives the Training Database Generator two inputs: the wi-scan
collection and "a location map (a text file of location names and
coordinates)".  The format here is line-oriented:

.. code-block:: text

    # any comment
    kitchen     35.0    12.5
    room D22    10.0    30.0

Fields are separated by **tabs or runs of 2+ spaces** so names may
contain single spaces ("room D22", "Center of Hallway" — the paper's own
examples).  Coordinates are feet in the floor frame.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.geometry import Point

PathLike = Union[str, os.PathLike]

_SPLIT_RE = re.compile(r"\t+|[ ]{2,}")


class LocationMapError(ValueError):
    """Raised on malformed location-map content."""


class LocationMap:
    """Ordered mapping of location name → floor position (feet)."""

    def __init__(self, entries: Optional[Dict[str, Point]] = None):
        self._entries: Dict[str, Point] = dict(entries or {})

    # ------------------------------------------------------------------
    def add(self, name: str, position: Point) -> None:
        if not name or not name.strip():
            raise LocationMapError("location name must be non-empty")
        self._entries[name.strip()] = position

    def remove(self, name: str) -> None:
        try:
            del self._entries[name]
        except KeyError:
            raise KeyError(f"no location named {name!r}") from None

    def position(self, name: str) -> Point:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"no location named {name!r}; have {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        return list(self._entries)

    def items(self) -> Iterator[Tuple[str, Point]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocationMap):
            return NotImplemented
        return self._entries == other._entries

    def nearest(self, position: Point) -> Tuple[str, float]:
        """Closest named location to ``position`` and its distance (ft).

        This is the abstraction step the paper's introduction demands:
        raw coordinates → "application-specific building name and room
        number".
        """
        if not self._entries:
            raise LocationMapError("location map is empty")
        best_name, best_d = None, float("inf")
        for name, pos in self._entries.items():
            d = pos.distance_to(position)
            if d < best_d:
                best_name, best_d = name, d
        return best_name, best_d  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = ["# location map: <name>\\t<x_ft>\\t<y_ft>"]
        for name, pos in self._entries.items():
            lines.append(f"{name}\t{pos.x:g}\t{pos.y:g}")
        return "\n".join(lines) + "\n"

    def save(self, path: PathLike) -> None:
        Path(path).write_text(self.render(), encoding="utf-8")

    @classmethod
    def parse(cls, text: str, source: str = "<string>") -> "LocationMap":
        lm = cls()
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = [f.strip() for f in _SPLIT_RE.split(line) if f.strip()]
            if len(fields) != 3:
                raise LocationMapError(
                    f"{source}:{line_no}: expected '<name> <x> <y>' "
                    f"(tab or 2+ space separated), got {line!r}"
                )
            name, xs, ys = fields
            try:
                point = Point(float(xs), float(ys))
            except ValueError:
                raise LocationMapError(
                    f"{source}:{line_no}: non-numeric coordinates in {line!r}"
                ) from None
            if name in lm:
                raise LocationMapError(
                    f"{source}:{line_no}: duplicate location name {name!r}"
                )
            lm.add(name, point)
        return lm

    @classmethod
    def load(cls, path: PathLike) -> "LocationMap":
        p = Path(path)
        return cls.parse(p.read_text(encoding="utf-8"), source=str(p))
