"""Snapshot diffing: what happened between two metric snapshots.

An operator grabs ``--metrics`` (or ``/metrics.json``) before and after
an incident window and asks *what moved*.  :func:`diff_snapshots`
answers structurally; :func:`render_diff` formats it for a terminal.

Counter semantics are monotonic, so a negative delta can only mean the
process restarted (or the registry was reset) between the snapshots —
those series are flagged ``reset`` and reported at their new absolute
value instead of a meaningless negative.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.render import sorted_series

__all__ = ["diff_snapshots", "render_diff"]


def diff_snapshots(
    before: Dict[str, Dict[str, object]],
    after: Dict[str, Dict[str, object]],
) -> Dict[str, object]:
    """Structured delta ``after - before`` over two snapshot dicts.

    Returns ``{"counters": {series: delta}, "resets": [series...],
    "gauges": {series: (before, after)}, "histograms": {series:
    {"count": dcount, "sum": dsum}}}``.  Unchanged series are omitted;
    series absent from ``before`` diff against zero/empty.
    """
    out: Dict[str, object] = {"counters": {}, "resets": [], "gauges": {}, "histograms": {}}

    b_counters = before.get("counters", {})
    for series, value in after.get("counters", {}).items():
        delta = int(value) - int(b_counters.get(series, 0))
        if delta < 0:  # restart/reset between snapshots: report absolute
            out["resets"].append(series)
            delta = int(value)
        if delta:
            out["counters"][series] = delta
    for series in b_counters:
        if series not in after.get("counters", {}):
            out["resets"].append(series)

    b_gauges = before.get("gauges", {})
    for series, value in after.get("gauges", {}).items():
        prev = b_gauges.get(series)
        if prev is None or float(prev) != float(value):
            out["gauges"][series] = (
                None if prev is None else float(prev),
                float(value),
            )

    b_hists = before.get("histograms", {})
    for series, summary in after.get("histograms", {}).items():
        prev = b_hists.get(series, {})
        dcount = int(summary.get("count", 0)) - int(prev.get("count", 0))
        dsum = float(summary.get("sum", 0.0)) - float(prev.get("sum", 0.0))
        if dcount < 0:
            out["resets"].append(series)
            dcount = int(summary.get("count", 0))
            dsum = float(summary.get("sum", 0.0))
        if dcount:
            out["histograms"][series] = {"count": dcount, "sum": dsum}

    out["resets"] = sorted(set(out["resets"]))
    return out


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value != value:
        return "nan"
    if abs(value) >= 1000 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.3g}"


def render_diff(
    before: Dict[str, Dict[str, object]],
    after: Dict[str, Dict[str, object]],
) -> str:
    """Aligned text for :func:`diff_snapshots` (deterministic order)."""
    d = diff_snapshots(before, after)
    counters, gauges, histograms = d["counters"], d["gauges"], d["histograms"]
    if not (counters or gauges or histograms or d["resets"]):
        return "no change between snapshots"

    lines: List[str] = []
    width = max(
        (len(k) for k in list(counters) + list(gauges) + list(histograms)),
        default=0,
    )
    if counters:
        lines.append("counters (delta):")
        for series, delta in sorted_series(counters):
            mark = "  [reset]" if series in d["resets"] else ""
            lines.append(f"  {series:<{width}s} +{delta}{mark}")
    if gauges:
        lines.append("gauges (before -> after):")
        for series, (prev, now) in sorted_series(gauges):
            lines.append(f"  {series:<{width}s} {_fmt(prev)} -> {_fmt(now)}")
    if histograms:
        lines.append("histograms (delta):")
        for series, h in sorted_series(histograms):
            mark = "  [reset]" if series in d["resets"] else ""
            sign = "+" if h["sum"] >= 0 else ""  # negatives carry their own sign
            lines.append(
                f"  {series:<{width}s} count=+{h['count']} sum={sign}{_fmt(h['sum'])}{mark}"
            )
    vanished = [s for s in d["resets"] if s not in counters and s not in histograms]
    if vanished:
        lines.append("series present before, missing after (reset):")
        for series in vanished:
            lines.append(f"  {series}")
    return "\n".join(lines)
