"""Observability: metrics, tracing, exporters and rendering for the pipeline.

The ingest → train → locate pipeline is instrumented end-to-end
through this package (see docs/observability.md for the metric-name
catalogue, exporter formats and the trace format):

* :mod:`repro.obs.metrics` — counters, gauges, reservoir-free
  streaming histograms, a process-global default registry, and
  cross-process aggregation (``MetricsRegistry.dump_state/merge``).
* :mod:`repro.obs.trace` — ``span("stage")`` context managers feeding
  a JSONL :class:`Tracer` with nesting and wall/CPU time, plus the
  request-tracing layer: W3C-compatible :class:`TraceContext`
  propagation (``bind``/``current_context``) and the per-process
  :class:`FlightRecorder` ring of completed traces.
* :mod:`repro.obs.render` — ``render_text()`` snapshot formatting
  (deterministic series order).
* :mod:`repro.obs.export` — Prometheus text exposition
  (``render_prometheus``) and structured JSON (``render_json``).
* :mod:`repro.obs.compare` — ``diff_snapshots``/``render_diff``
  between two snapshots.
* :mod:`repro.obs.server` — :class:`ObsServer`, a stdlib HTTP thread
  serving ``/metrics``, ``/metrics.json`` and ``/healthz``.
* :mod:`repro.obs.quality` — RSSI drift monitors and degraded-mode
  health checks.  The one numpy-using module; import it explicitly
  (``from repro.obs.quality import APDriftMonitor``) — it is kept out
  of this namespace so everything imported here stays stdlib-only.

Everything re-exported here is stdlib-only so any layer can import it
without cycles.
"""

from repro.obs.compare import diff_snapshots, render_diff
from repro.obs.export import json_payload, render_json, render_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    get_registry,
    histogram,
    merge_state,
    reset,
    set_enabled,
    set_registry,
    snapshot,
)
from repro.obs.render import render_text
from repro.obs.server import ObsServer
from repro.obs.trace import (
    FlightRecorder,
    TraceContext,
    Tracer,
    annotate,
    bind,
    capture_spans,
    current_context,
    current_tracer,
    deliver_spans,
    get_recorder,
    new_span_id,
    set_recorder,
    span,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsServer",
    "TraceContext",
    "Tracer",
    "annotate",
    "bind",
    "capture_spans",
    "counter",
    "current_context",
    "current_tracer",
    "deliver_spans",
    "get_recorder",
    "new_span_id",
    "set_recorder",
    "diff_snapshots",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "json_payload",
    "merge_state",
    "render_diff",
    "render_json",
    "render_prometheus",
    "render_text",
    "reset",
    "set_enabled",
    "set_registry",
    "snapshot",
    "span",
]
