"""Observability: metrics, tracing and rendering for the pipeline.

The ingest → train → locate pipeline is instrumented end-to-end
through this package (see docs/observability.md for the metric-name
catalogue and the trace format):

* :mod:`repro.obs.metrics` — counters, gauges, reservoir-free
  streaming histograms, and a process-global default registry.
* :mod:`repro.obs.trace` — ``span("stage")`` context managers feeding
  a JSONL :class:`Tracer` with nesting and wall/CPU time.
* :mod:`repro.obs.render` — ``render_text()`` snapshot formatting.

Everything is stdlib-only so any layer can import it without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    reset,
    set_enabled,
    set_registry,
    snapshot,
)
from repro.obs.render import render_text
from repro.obs.trace import Tracer, current_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "counter",
    "current_tracer",
    "gauge",
    "get_registry",
    "histogram",
    "render_text",
    "reset",
    "set_enabled",
    "set_registry",
    "snapshot",
    "span",
]
