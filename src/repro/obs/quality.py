"""Quality telemetry: is live RSSI still the RSSI we trained on?

Fingerprinting dies silently: an AP gets moved, replaced, or its power
level changes, live RSSI drifts away from the training database, and
accuracy decays with no error anywhere — the dominant failure mode the
RADAR and Horus lines of work both call out.  This module watches for
it at serve time:

* :class:`APDriftMonitor` — per-AP live-vs-training health.  Live
  observations stream in; per AP it tracks the **mean shift** (live
  mean minus the training mean from
  ``TrainingDatabase.mean_matrix()``) and a **KS-style distribution
  distance** (sup-norm between the live empirical CDF and the training
  reference CDF, a per-location Gaussian mixture built from
  ``mean_matrix``/``std_matrix``).  Crossing either threshold marks
  the AP *drifted*, increments ``quality.drift_alerts{ap=...}`` and
  flips the monitor's :meth:`health` — wire that into
  :meth:`repro.obs.server.ObsServer.add_health_check` and ``/healthz``
  goes degraded while the deployment no longer matches its survey.
* :func:`fallback_exhaustion_check` — degraded-mode health from the
  fallback chain's own counters (``fallback.exhausted`` vs answered).

Unlike the rest of :mod:`repro.obs` this module uses numpy (it reasons
about RSSI matrices); it is therefore *not* imported by
``repro.obs.__init__`` — import it explicitly::

    from repro.obs.quality import APDriftMonitor
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import metrics as _metrics

__all__ = ["APDriftMonitor", "fallback_exhaustion_check"]


def _gaussian_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class APDriftMonitor:
    """Streaming per-AP drift detection against a training database.

    Parameters
    ----------
    db:
        A fitted :class:`~repro.core.trainingdb.TrainingDatabase` (duck
        typed: needs ``bssids``, ``mean_matrix()``, ``std_matrix()``).
    mean_shift_db:
        Absolute live-vs-training mean divergence (dB) that marks an AP
        drifted.  6 dB ≈ halving/doubling received power twice over.
    ks_threshold:
        KS-style distance (sup-norm of CDF difference, in [0, 1]) that
        marks an AP drifted even when means agree (e.g. a bimodal live
        distribution from an AP now heard through a new wall).
    min_samples:
        Per-AP live readings required before the AP is judged at all —
        below it the AP reports ``insufficient data`` and never trips.
    bin_width_db / rssi_range:
        Fixed binning grid for the live empirical distribution.  2 dB
        bins over [-100, -20] dBm keep state tiny (40 ints per AP) and
        bound the CDF discretization error well under any sane
        ``ks_threshold``.
    site:
        Optional site id: every emitted ``quality.*`` series gains a
        ``site`` label (fleet mode) and a ``quality.drifted_aps{site=}``
        summary gauge is kept.  Without it, series names are exactly
        the single-site ones.
    max_ap_series:
        Cardinality cap on the per-AP gauge/alert series this monitor
        emits per scrape.  With more judged APs than the cap, only the
        ``max_ap_series`` most severe (mean shift and KS distance
        measured in units of their thresholds) get per-AP series — so
        a fleet's ``/metrics`` grows as ``sites × cap``, never
        ``sites × APs``.  The :meth:`status` report itself always
        covers every AP; ``None`` disables the cap.
    """

    def __init__(
        self,
        db,
        mean_shift_db: float = 6.0,
        ks_threshold: float = 0.35,
        min_samples: int = 50,
        bin_width_db: float = 2.0,
        rssi_range: Tuple[float, float] = (-100.0, -20.0),
        min_std: float = 0.5,
        site: Optional[str] = None,
        max_ap_series: Optional[int] = 12,
    ):
        if mean_shift_db <= 0 or not 0 < ks_threshold <= 1:
            raise ValueError(
                f"thresholds out of range: mean_shift_db={mean_shift_db}, "
                f"ks_threshold={ks_threshold}"
            )
        lo, hi = rssi_range
        if hi <= lo or bin_width_db <= 0:
            raise ValueError(f"bad binning: range={rssi_range}, width={bin_width_db}")
        if max_ap_series is not None and max_ap_series < 1:
            raise ValueError(f"max_ap_series must be >= 1 or None, got {max_ap_series}")
        self.bssids: List[str] = list(db.bssids)
        self.mean_shift_db = float(mean_shift_db)
        self.ks_threshold = float(ks_threshold)
        self.min_samples = int(min_samples)
        self.site = site
        self.max_ap_series = max_ap_series
        self._lo = float(lo)
        self._width = float(bin_width_db)
        self._n_bins = int(math.ceil((hi - lo) / bin_width_db))

        mean = np.asarray(db.mean_matrix(), dtype=float)  # (L, A)
        std = np.asarray(db.std_matrix(min_std), dtype=float)
        heard = np.isfinite(mean)
        counts = heard.sum(axis=0)
        self.train_mean = np.where(
            counts > 0,
            np.where(heard, mean, 0.0).sum(axis=0) / np.maximum(counts, 1),
            np.nan,
        )
        # Reference CDF at each bin's upper edge: an equal-weight
        # Gaussian mixture over the training locations that heard the
        # AP — exactly the distribution the probabilistic localizer
        # scores against, so "drifted" means "the model's world moved".
        edges = self._lo + self._width * np.arange(1, self._n_bins + 1)
        self.train_cdf = np.full((len(self.bssids), self._n_bins), np.nan)
        for a in range(len(self.bssids)):
            rows = np.nonzero(heard[:, a])[0]
            if rows.size == 0:
                continue
            for e, edge in enumerate(edges):
                acc = 0.0
                for l in rows:
                    acc += _gaussian_cdf((edge - mean[l, a]) / std[l, a])
                self.train_cdf[a, e] = acc / rows.size

        # live accumulation
        A = len(self.bssids)
        self._n = np.zeros(A, dtype=np.int64)
        self._sum = np.zeros(A)
        self._hist = np.zeros((A, self._n_bins), dtype=np.int64)
        self._drifted = np.zeros(A, dtype=bool)

    # ------------------------------------------------------------------
    def observe(self, observation) -> None:
        """Feed one live observation (or a raw ``(sweeps, aps)`` matrix).

        Observations carrying BSSIDs are aligned to the training column
        order; bare matrices are trusted to already be in it.
        """
        samples = observation
        if hasattr(samples, "samples"):
            if getattr(samples, "bssids", None) and list(samples.bssids) != self.bssids:
                samples = samples.reordered(self.bssids)
            samples = samples.samples
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if samples.shape[1] != len(self.bssids):
            raise ValueError(
                f"observation has {samples.shape[1]} AP columns, "
                f"monitor expects {len(self.bssids)}"
            )
        finite = np.isfinite(samples)
        self._n += finite.sum(axis=0)
        self._sum += np.where(finite, samples, 0.0).sum(axis=0)
        rows, cols = np.nonzero(finite)
        if rows.size:
            bins = np.clip(
                ((samples[rows, cols] - self._lo) / self._width).astype(int),
                0,
                self._n_bins - 1,
            )
            np.add.at(self._hist, (cols, bins), 1)

    def observe_many(self, observations: Sequence) -> None:
        for o in observations:
            self.observe(o)

    # ------------------------------------------------------------------
    def status(self, emit: bool = True) -> Dict[str, Dict[str, object]]:
        """Per-AP drift report; also emits gauges/alert counters.

        Alert counters fire on the *transition* into drifted (one alert
        per incident, not per scrape); gauges always reflect the latest
        computed shift/distance.  Per-AP series respect the
        ``max_ap_series`` cap — the report covers every AP regardless,
        so nothing is lost, only the exposition is bounded.
        """
        report: Dict[str, Dict[str, object]] = {}
        judged: List[Tuple[str, float, float, bool, bool]] = []
        for a, bssid in enumerate(self.bssids):
            entry: Dict[str, object] = {"n": int(self._n[a])}
            if self._n[a] < self.min_samples:
                entry["judged"] = False
                entry["drifted"] = False
                report[bssid] = entry
                continue
            live_mean = self._sum[a] / self._n[a]
            shift = live_mean - self.train_mean[a]
            live_cdf = np.cumsum(self._hist[a]) / self._n[a]
            if np.all(np.isfinite(self.train_cdf[a])):
                ks = float(np.max(np.abs(live_cdf - self.train_cdf[a])))
            else:
                ks = math.nan  # AP never heard in training: mean test only
            drifted = bool(
                (math.isfinite(shift) and abs(shift) > self.mean_shift_db)
                or (math.isfinite(ks) and ks > self.ks_threshold)
            )
            entry.update(
                judged=True,
                live_mean_dbm=float(live_mean),
                train_mean_dbm=float(self.train_mean[a])
                if math.isfinite(self.train_mean[a])
                else None,
                mean_shift_db=float(shift) if math.isfinite(shift) else None,
                ks_distance=ks if math.isfinite(ks) else None,
                drifted=drifted,
            )
            report[bssid] = entry
            judged.append((bssid, shift, ks, drifted, drifted and not self._drifted[a]))
            self._drifted[a] = drifted
        if emit:
            self._emit(judged)
        return report

    def _severity(self, shift: float, ks: float) -> float:
        """How far past its thresholds an AP is (unitless, max of both)."""
        s = abs(shift) / self.mean_shift_db if math.isfinite(shift) else 0.0
        k = ks / self.ks_threshold if math.isfinite(ks) else 0.0
        return max(s, k)

    def _emit(self, judged: List[Tuple[str, float, float, bool, bool]]) -> None:
        labels: Dict[str, str] = {"site": self.site} if self.site is not None else {}
        emitted = judged
        if self.max_ap_series is not None and len(judged) > self.max_ap_series:
            # Bounded exposition: only the most severe APs get per-AP
            # series.  (A previously emitted AP that drops out of the
            # top-K keeps its last gauge value — read the cap as "the
            # K series worth watching", not a complete census.)
            emitted = sorted(
                judged,
                key=lambda j: self._severity(j[1], j[2]),
                reverse=True,
            )[: self.max_ap_series]
        visible = {j[0] for j in emitted}
        for bssid, shift, ks, drifted, transition in judged:
            if bssid in visible:
                if math.isfinite(shift):
                    _metrics.gauge(
                        "quality.ap_mean_shift_db", ap=bssid, **labels
                    ).set(shift)
                if math.isfinite(ks):
                    _metrics.gauge(
                        "quality.ap_ks_distance", ap=bssid, **labels
                    ).set(ks)
                if transition:
                    _metrics.counter("quality.drift_alerts", ap=bssid, **labels).inc()
            if transition:
                # The aggregate alert never misses an incident, capped
                # per-AP series or not.
                _metrics.counter("quality.alert", kind="rssi_drift").inc()
        if self.site is not None:
            _metrics.gauge("quality.drifted_aps", site=self.site).set(
                sum(1 for j in judged if j[3])
            )

    def drifted_aps(self) -> List[str]:
        status = self.status()
        return [b for b, e in status.items() if e.get("drifted")]

    def health(self) -> Tuple[bool, Dict[str, object]]:
        """(ok, detail) in the :class:`~repro.obs.server.ObsServer` shape."""
        status = self.status()
        drifted = [b for b, e in status.items() if e.get("drifted")]
        judged = sum(1 for e in status.values() if e.get("judged"))
        detail = {
            "aps": len(self.bssids),
            "aps_judged": judged,
            "drifted": drifted,
            "thresholds": {
                "mean_shift_db": self.mean_shift_db,
                "ks_distance": self.ks_threshold,
            },
        }
        return not drifted, detail

    def reset(self) -> None:
        """Forget the live window (e.g. after re-surveying the site)."""
        self._n[:] = 0
        self._sum[:] = 0.0
        self._hist[:] = 0
        self._drifted[:] = False


def fallback_exhaustion_check(
    max_ratio: float = 0.25,
    min_requests: int = 20,
    registry: Optional[_metrics.MetricsRegistry] = None,
):
    """Health check: the degraded-mode chain still answers.

    Reads the ``fallback.*`` counters (see
    :mod:`repro.algorithms.fallback`) from ``registry`` (default: the
    global one) and fails once more than ``max_ratio`` of chain
    requests exhausted every tier.  Returns a callable in the
    :class:`~repro.obs.server.ObsServer` health-check shape.
    """
    if not 0 <= max_ratio <= 1:
        raise ValueError(f"max_ratio must be in [0, 1], got {max_ratio}")

    def check() -> Tuple[bool, Dict[str, object]]:
        reg = registry if registry is not None else _metrics.get_registry()
        counters = reg.snapshot()["counters"]
        answered = sum(
            v for k, v in counters.items() if k.startswith("fallback.answered")
        )
        exhausted = int(counters.get("fallback.exhausted", 0))
        total = answered + exhausted
        detail: Dict[str, object] = {
            "answered": answered,
            "exhausted": exhausted,
            "max_ratio": max_ratio,
        }
        if total < min_requests:
            detail["note"] = f"insufficient traffic ({total} < {min_requests})"
            return True, detail
        ratio = exhausted / total
        detail["ratio"] = round(ratio, 4)
        return ratio <= max_ratio, detail

    return check
