"""A stdlib-only live metrics endpoint: ``/metrics``, ``/metrics.json``, ``/healthz``.

:class:`ObsServer` wraps :class:`http.server.ThreadingHTTPServer` in a
daemon thread so any long-running process (a sharded batch service, a
soak bench, the ``repro obs serve`` CLI) can expose its registry to a
Prometheus scraper without adding a dependency:

* ``GET /metrics`` — Prometheus text exposition of the current snapshot
  (``text/plain; version=0.0.4``).
* ``GET /metrics.json`` — the structured-JSON exporter payload.
* ``GET /healthz`` — runs every registered health check; HTTP 200 with
  ``{"status": "ok"}`` while all pass, HTTP 503 with
  ``{"status": "degraded"}`` once any fails (per-check detail in the
  body either way).  The RSSI drift monitors of
  :mod:`repro.obs.quality` plug in here via ``add_health_check``.

The server never mutates the registry; scrapes are read-only snapshots,
safe concurrently with the workload thanks to the registry's locking.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs.export import render_json, render_prometheus

__all__ = ["ObsServer", "HealthCheck", "run_health_checks"]

#: A health check: () -> (ok, detail).  ``detail`` may be any
#: JSON-serializable value (string, dict of per-AP findings, ...).
HealthCheck = Callable[[], Tuple[bool, object]]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def run_health_checks(
    checks: List[Tuple[str, HealthCheck]]
) -> Tuple[bool, Dict[str, object]]:
    """Run named checks: (all_ok, JSON-ready ``/healthz`` report).

    A check that raises is itself a failed check (the endpoint must
    never 500 out of a monitor bug), recorded with the exception.
    Shared by :class:`ObsServer` and the localization service's
    ``/healthz`` (:mod:`repro.serve.http`), so both report the same
    shape: ``{"status": ..., "checks": {name: {ok, detail}}}``.
    """
    report: Dict[str, object] = {}
    all_ok = True
    for name, check in checks:
        try:
            ok, detail = check()
        except Exception as exc:  # noqa: BLE001 - monitor bugs degrade, not crash
            ok, detail = False, f"check error: {type(exc).__name__}: {exc}"
        report[name] = {"ok": bool(ok), "detail": detail}
        all_ok = all_ok and bool(ok)
    return all_ok, {"status": "ok" if all_ok else "degraded", "checks": report}


class _Handler(BaseHTTPRequestHandler):
    server: "ObsServer._HTTPServer"

    def do_GET(self):  # noqa: N802 - http.server API
        owner: "ObsServer" = self.server.owner
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(owner._snapshot(), prefix=owner.prefix)
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body.encode("utf-8"))
        elif path == "/metrics.json":
            body = render_json(owner._snapshot())
            self._reply(200, "application/json", body.encode("utf-8"))
        elif path == "/healthz":
            ok, report = owner.health()
            body = json.dumps(report, indent=2, sort_keys=True) + "\n"
            self._reply(200 if ok else 503, "application/json", body.encode("utf-8"))
        else:
            self._reply(
                404,
                "text/plain",
                b"not found; try /metrics, /metrics.json or /healthz\n",
            )

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by design
        pass


class ObsServer:
    """Serve the metrics registry over HTTP from a daemon thread.

    Parameters
    ----------
    snapshot_fn:
        Zero-arg callable returning a snapshot dict.  Defaults to the
        global registry's :func:`repro.obs.snapshot`; pass a closure to
        serve a specific registry or a file-backed snapshot.
    host, port:
        Bind address.  ``port=0`` (default) lets the OS pick a free
        port; read it back from :attr:`port` / :attr:`url` after
        :meth:`start`.
    prefix:
        Prometheus metric-name prefix (default ``repro_``).

    Use as a context manager or call :meth:`start`/:meth:`stop`::

        with ObsServer() as srv:
            print(srv.url)        # http://127.0.0.1:<port>
            ...workload...
    """

    class _HTTPServer(ThreadingHTTPServer):
        daemon_threads = True
        owner: "ObsServer"

        def service_actions(self):
            # First pass through the serve_forever poll loop: the server
            # is demonstrably live.  start() blocks on this event, so a
            # stop() issued immediately after start() can never race a
            # not-yet-entered serve loop, and scrapes after start() hit
            # a serving socket — event-based, no sleep/poll.
            self.owner._ready.set()

    def __init__(
        self,
        snapshot_fn: Optional[Callable[[], Dict[str, Dict[str, object]]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro_",
    ):
        self._snapshot = snapshot_fn if snapshot_fn is not None else _metrics.snapshot
        self.host = host
        self.prefix = prefix
        self._requested_port = int(port)
        self._httpd: Optional[ObsServer._HTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._checks: List[Tuple[str, HealthCheck]] = []
        self._ready = threading.Event()

    # -- health ----------------------------------------------------------
    def add_health_check(self, name: str, check: HealthCheck) -> "ObsServer":
        """Register a named check consulted by ``/healthz``; chainable."""
        self._checks.append((name, check))
        return self

    def health(self) -> Tuple[bool, Dict[str, object]]:
        """Run every check: (all_ok, JSON-ready report)."""
        return run_health_checks(self._checks)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ObsServer":
        if self._httpd is not None:
            raise RuntimeError("ObsServer already started")
        httpd = ObsServer._HTTPServer((self.host, self._requested_port), _Handler)
        httpd.owner = self
        self._httpd = httpd
        self._ready.clear()
        self._thread = threading.Thread(
            # A short poll interval keeps the readiness handshake fast;
            # service_actions (above) runs once per poll.
            target=lambda: httpd.serve_forever(poll_interval=0.05),
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=5.0)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("ObsServer is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
