"""Tracing: nested spans, W3C trace context, and a flight recorder.

Two layers share the :func:`span` context manager:

* **Pipeline tracing** (PR 2): while a :class:`Tracer` is active
  (``with tracer.activate(): ...``) every span that closes appends one
  event carrying its name, nesting depth, parent span id, wall/CPU
  milliseconds, outcome (``ok`` or the exception type) and any keyword
  attributes.  Activation is a lock-protected stack, so concurrent
  ``activate()`` blocks from different threads are safe and re-entrant
  (the old single ``_active`` global let one thread's exit clobber
  another's still-active tracer).
* **Request tracing** (PR 9): a :class:`TraceContext` — a W3C
  ``traceparent``-compatible ``(trace_id, span_id, sampled)`` triple —
  can be bound to the current thread (:func:`bind`).  While bound,
  every span mints a fresh 64-bit span id, stamps
  ``trace_id``/``span``/``parent_span`` into its event, and re-binds
  itself as the context so nested spans (and anything that captures
  :func:`current_context`, e.g. the micro-batcher) parent correctly.
  Completed events feed the process :class:`FlightRecorder` (when one
  is installed) and any :func:`capture_spans` sink — the ride-back
  channel shard worker processes use to ship their spans home.

With no tracer active, no context bound and no capture sink, a span
costs one context-manager entry and two ``None`` checks — cheap enough
to leave on the hot paths permanently.

Events are recorded at span *exit*, so children precede their parents;
``trace_id``/``span``/``parent_span`` (or the legacy numeric
``id``/``parent``/``depth``) are enough to rebuild the tree.  The
active-span stack is thread-local: spans on worker threads nest
correctly within their own thread.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.obs.metrics import Histogram

__all__ = [
    "Tracer",
    "span",
    "annotate",
    "current_tracer",
    "TraceContext",
    "new_span_id",
    "bind",
    "current_context",
    "capture_spans",
    "deliver_spans",
    "FlightRecorder",
    "get_recorder",
    "set_recorder",
]

_state = threading.local()


def _stack() -> List[object]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


def _attr_stack() -> List[Dict[str, object]]:
    stack = getattr(_state, "attr_stack", None)
    if stack is None:
        stack = _state.attr_stack = []
    return stack


# ----------------------------------------------------------------------
# trace context (W3C traceparent triple)
# ----------------------------------------------------------------------

_TRACEPARENT_VERSION = "00"


def new_span_id() -> str:
    """A fresh random 64-bit span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


class TraceContext:
    """One hop of a distributed trace: ``(trace_id, span_id, sampled)``.

    ``trace_id`` is 32 lowercase hex chars shared by every span of the
    request; ``span_id`` is the 16-hex id of the *current* span — the
    parent of whatever span opens next (``None`` for a context minted
    at the edge with no upstream caller).  ``sampled`` gates flight
    recorder retention, never span emission.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: Optional[str], sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = bool(sampled)

    @classmethod
    def mint(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new trace with no parent span (edge-minted)."""
        return cls(os.urandom(16).hex(), None, sampled)

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a W3C ``traceparent`` header; ``None`` on any malformation.

        Malformed headers are treated as absent (the edge mints a fresh
        context) rather than erroring — a bad client header must never
        fail the request it decorates.
        """
        if not header or not isinstance(header, str):
            return None
        parts = header.strip().lower().split("-")
        if len(parts) < 4:
            return None
        version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
        if version == "ff" or len(version) != 2:
            return None
        if len(trace_id) != 32 or len(span_id) != 16 or len(flags) != 2:
            return None
        try:
            int(trace_id, 16), int(span_id, 16), int(flags, 16)
        except ValueError:
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id, span_id, sampled=bool(int(flags, 16) & 0x01))

    def to_traceparent(self) -> str:
        span_id = self.span_id or new_span_id()
        flags = "01" if self.sampled else "00"
        return f"{_TRACEPARENT_VERSION}-{self.trace_id}-{span_id}-{flags}"

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — one hop down (or one retry over)."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)

    # -- serialization (pack-spec jobs ship contexts across processes) --
    def to_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_dict(cls, doc: Optional[Dict[str, object]]) -> Optional["TraceContext"]:
        if not isinstance(doc, dict) or "trace_id" not in doc:
            return None
        return cls(
            str(doc["trace_id"]),
            str(doc["span_id"]) if doc.get("span_id") else None,
            bool(doc.get("sampled", True)),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.sampled == other.sampled
        )

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, {self.span_id!r}, sampled={self.sampled})"


def current_context() -> Optional[TraceContext]:
    """The context bound to this thread, or ``None``."""
    return getattr(_state, "ctx", None)


@contextmanager
def bind(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Bind ``ctx`` as this thread's trace context for the block.

    ``bind(None)`` explicitly unbinds (used around model rebuilds and
    other work that must not attribute spans to the triggering
    request).
    """
    previous = getattr(_state, "ctx", None)
    _state.ctx = ctx
    try:
        yield ctx
    finally:
        _state.ctx = previous


@contextmanager
def capture_spans() -> Iterator[List[Dict[str, object]]]:
    """Collect every context-stamped span this thread closes in the block.

    The shard fan-out path runs inside worker processes whose flight
    recorder is not the serving worker's; the pool kernel wraps chunk
    execution in ``capture_spans()`` and ships the list back with the
    results, where :meth:`FlightRecorder.absorb` stitches them in.
    """
    events: List[Dict[str, object]] = []
    previous = getattr(_state, "capture", None)
    _state.capture = events
    try:
        yield events
    finally:
        _state.capture = previous


def deliver_spans(events: Iterable[Dict[str, object]]) -> None:
    """Deliver spans that completed elsewhere as if they closed here.

    The parent side of the shard ride-back: events go to this thread's
    capture sink if one is installed (nested capture chains compose),
    otherwise to the process flight recorder; an active :class:`Tracer`
    receives them either way.
    """
    events = [e for e in events if isinstance(e, dict)]
    capture = getattr(_state, "capture", None)
    if capture is not None:
        capture.extend(events)
    else:
        recorder = _recorder
        if recorder is not None:
            recorder.absorb(events)
    tracer = _active
    if tracer is not None:
        for event in events:
            tracer._close(event)


# ----------------------------------------------------------------------
# tracer activation (lock-protected stack: thread-safe + re-entrant)
# ----------------------------------------------------------------------

_active: Optional["Tracer"] = None
_active_lock = threading.Lock()
_active_stack: List["Tracer"] = []


def current_tracer() -> Optional["Tracer"]:
    return _active


class Tracer:
    """Collects span events; activate around the work, then write JSONL."""

    def __init__(self):
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._origin = time.perf_counter()

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install as the process-wide active tracer for the block.

        Activations nest as a stack under a lock: exiting removes *this*
        tracer's most recent entry (not blindly the top), so two
        threads' overlapping ``activate()`` blocks never clobber each
        other — thread A exiting while thread B's tracer is still
        active leaves B's tracer installed.
        """
        global _active
        with _active_lock:
            _active_stack.append(self)
            _active = self
        try:
            yield self
        finally:
            with _active_lock:
                for i in range(len(_active_stack) - 1, -1, -1):
                    if _active_stack[i] is self:
                        del _active_stack[i]
                        break
                _active = _active_stack[-1] if _active_stack else None

    # -- called by span() ------------------------------------------------
    def _open(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _close(self, event: Dict[str, object]) -> None:
        with self._lock:
            self.events.append(event)

    # -- output ----------------------------------------------------------
    def write_jsonl(self, path: Union[str, "os.PathLike"]) -> int:
        """Write one JSON object per event; returns the event count."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)


def annotate(**attrs: object) -> None:
    """Merge attributes into the innermost open span (no-op outside one).

    This is how a decision made *after* a span opened still lands on it
    — e.g. the HTTP edge span learns ``decision="shed"`` when admission
    rejects the request halfway through the handler.
    """
    stack = getattr(_state, "attr_stack", None)
    if stack:
        stack[-1].update(attrs)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Trace one pipeline stage; records even when the body raises."""
    tracer = _active
    ctx = getattr(_state, "ctx", None)
    if tracer is None and ctx is None:
        yield
        return
    stack = _stack()
    span_id = tracer._open() if tracer is not None else None
    parent = stack[-1] if stack else None
    stack.append(span_id)
    child: Optional[TraceContext] = None
    ts: Optional[float] = None
    if ctx is not None:
        child = TraceContext(ctx.trace_id, new_span_id(), ctx.sampled)
        _state.ctx = child
        ts = time.time()
    open_attrs: Dict[str, object] = dict(attrs)
    attr_stack = _attr_stack()
    attr_stack.append(open_attrs)
    t0 = time.perf_counter()
    c0 = time.process_time()
    status = "ok"
    try:
        yield
    except BaseException as exc:
        status = type(exc).__name__
        raise
    finally:
        wall_ms = 1000.0 * (time.perf_counter() - t0)
        cpu_ms = 1000.0 * (time.process_time() - c0)
        stack.pop()
        attr_stack.pop()
        if ctx is not None:
            _state.ctx = ctx
        event: Dict[str, object] = {
            "name": name,
            "wall_ms": wall_ms,
            "cpu_ms": cpu_ms,
            "status": status,
        }
        if tracer is not None:
            event["id"] = span_id
            event["parent"] = parent
            event["depth"] = len(stack)
            event["t_start_ms"] = 1000.0 * (t0 - tracer._origin)
        if open_attrs:
            event["attrs"] = open_attrs
        if child is not None:
            event["trace_id"] = child.trace_id
            event["span"] = child.span_id
            event["parent_span"] = ctx.span_id
            event["ts"] = ts
        if tracer is not None:
            tracer._close(event)
        if child is not None:
            capture = getattr(_state, "capture", None)
            if capture is not None:
                # Captured spans are delivered by the capture owner
                # (FlightRecorder.absorb on the parent side), never
                # double-fed to the local recorder.
                capture.append(event)
            else:
                recorder = _recorder
                if recorder is not None and child.sampled:
                    recorder.record(event)


# ----------------------------------------------------------------------
# flight recorder (bounded ring of completed traces, tail-based keep)
# ----------------------------------------------------------------------

SNAPSHOT_SCHEMA = "repro.traces/1"


class FlightRecorder:
    """Always-on bounded ring buffer of completed request traces.

    Spans stream in while a trace is *open* (:meth:`begin` …
    :meth:`record`/:meth:`absorb` … :meth:`finish`); at finish the
    trace is either **pinned** (errors, deadline misses, p99-slow — a
    separate ring so a burst of healthy traffic can't evict the one
    trace the operator needs) or kept as an **ok** trace, sampled one
    in ``sample_every`` through its own ring.  Everything is bounded:
    open traces (oldest evicted), spans per trace, and both completed
    rings — the recorder can run forever on a serving worker.
    """

    def __init__(
        self,
        max_open: int = 512,
        max_spans: int = 256,
        keep_pinned: int = 64,
        keep_ok: int = 256,
        sample_every: int = 1,
        slow_min_samples: int = 50,
    ):
        self._lock = threading.Lock()
        self._open: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._pinned: "deque[Dict[str, object]]" = deque(maxlen=keep_pinned)
        self._ok: "deque[Dict[str, object]]" = deque(maxlen=keep_ok)
        self._wall = Histogram("flightrecorder.wall_ms")
        self.max_open = int(max_open)
        self.max_spans = int(max_spans)
        self.sample_every = max(1, int(sample_every))
        self.slow_min_samples = int(slow_min_samples)
        self._finished = 0
        self._dropped_open = 0
        self._sampled_out = 0
        self._truncated_spans = 0

    # -- lifecycle -------------------------------------------------------
    def begin(self, ctx: TraceContext, **meta: object) -> None:
        """Open a trace for ``ctx`` (idempotent; unsampled contexts skip)."""
        if not ctx.sampled:
            return
        with self._lock:
            if ctx.trace_id in self._open:
                return
            while len(self._open) >= self.max_open:
                self._open.popitem(last=False)
                self._dropped_open += 1
            entry: Dict[str, object] = {
                "trace_id": ctx.trace_id,
                "ts": time.time(),
                "spans": [],
            }
            entry.update(meta)
            self._open[ctx.trace_id] = entry

    def record(self, event: Dict[str, object]) -> None:
        """Append one completed span event to its open trace.

        A span whose attributes carry ``links`` (the batch-dispatch
        fan-in) is *also* appended to every linked open trace, so each
        coalesced request's trace shows the shared dispatch span.
        """
        trace_id = event.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            self._append_locked(trace_id, event)
            attrs = event.get("attrs")
            links = attrs.get("links") if isinstance(attrs, dict) else None
            if links:
                for link in links:
                    linked = link.get("trace_id") if isinstance(link, dict) else None
                    if linked and linked != trace_id:
                        self._append_locked(linked, event)

    def _append_locked(self, trace_id: str, event: Dict[str, object]) -> None:
        entry = self._open.get(trace_id)
        if entry is None:
            return
        spans = entry["spans"]
        if len(spans) < self.max_spans:
            spans.append(event)
        else:
            self._truncated_spans += 1

    def absorb(self, events: Iterable[Dict[str, object]]) -> None:
        """Stitch spans that completed elsewhere (shard workers) in."""
        for event in events:
            if isinstance(event, dict):
                self.record(event)

    def finish(
        self,
        trace_id: str,
        status: str = "ok",
        wall_ms: Optional[float] = None,
        pin: bool = False,
        reason: Optional[str] = None,
    ) -> Optional[Dict[str, object]]:
        """Close a trace and decide retention; returns the trace doc.

        Pinned when the caller says so (``pin=True``, e.g. a deadline
        miss), when ``status`` is not ``ok``, or when ``wall_ms`` sits
        at or above the recorder's own running p99 (once
        ``slow_min_samples`` finishes have been seen).  Everything else
        is an ok trace, kept one-in-``sample_every``.
        """
        with self._lock:
            entry = self._open.pop(trace_id, None)
            if entry is None:
                return None
            self._finished += 1
            finished = self._finished
        if wall_ms is None:
            wall_ms = 1000.0 * (time.time() - float(entry["ts"]))
        entry["status"] = status
        entry["wall_ms"] = wall_ms
        slow = False
        if math.isfinite(wall_ms):
            if self._wall.count >= self.slow_min_samples:
                slow = wall_ms >= self._wall.quantile(0.99)
            self._wall.observe(wall_ms)
        pinned = pin or status != "ok" or slow
        if pinned:
            entry["pinned"] = True
            entry["reason"] = reason or ("slow_p99" if slow and status == "ok" else status)
            with self._lock:
                self._pinned.append(entry)
        else:
            entry["pinned"] = False
            if finished % self.sample_every:
                with self._lock:
                    self._sampled_out += 1
                return entry
            with self._lock:
                self._ok.append(entry)
        return entry

    # -- reading ---------------------------------------------------------
    def traces(self, trace_id: Optional[str] = None) -> List[Dict[str, object]]:
        """Completed traces, oldest first (pinned and sampled together)."""
        with self._lock:
            done = list(self._pinned) + list(self._ok)
        if trace_id is not None:
            done = [t for t in done if t.get("trace_id") == trace_id]
        done.sort(key=lambda t: float(t.get("ts", 0.0)))
        return done

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        found = self.traces(trace_id)
        return found[-1] if found else None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "open": len(self._open),
                "pinned": len(self._pinned),
                "ok": len(self._ok),
                "finished": self._finished,
                "dropped_open": self._dropped_open,
                "sampled_out": self._sampled_out,
                "truncated_spans": self._truncated_spans,
            }

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe doc of every retained trace (fleet dump format)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "stats": self.stats(),
            "traces": self.traces(),
        }

    def dump_jsonl(self, path: Union[str, "os.PathLike"]) -> int:
        """One JSON object per retained trace; returns the trace count."""
        traces = self.traces()
        with open(path, "w", encoding="utf-8") as fh:
            for trace in traces:
                fh.write(json.dumps(trace, sort_keys=True) + "\n")
        return len(traces)

    @staticmethod
    def merge_docs(docs: Iterable[Dict[str, object]]) -> Dict[str, object]:
        """Merge per-worker :meth:`snapshot` docs into one fleet view.

        Traces dedupe by id — the copy with the most spans wins (a
        worker that absorbed shard ride-backs beats a stale dump).
        Stats sum field-wise except ``open`` which is a point-in-time
        gauge (summed too; it is per-worker in-flight).
        """
        best: Dict[str, Dict[str, object]] = {}
        stats: Dict[str, int] = {}
        workers = 0
        for doc in docs:
            if not isinstance(doc, dict):
                continue
            workers += 1
            for key, value in (doc.get("stats") or {}).items():
                stats[key] = stats.get(key, 0) + int(value)
            traces = doc.get("traces")
            if not isinstance(traces, list):
                continue
            for trace in traces:
                trace_id = trace.get("trace_id") if isinstance(trace, dict) else None
                if not trace_id:
                    continue
                held = best.get(trace_id)
                if held is None or len(trace.get("spans") or ()) > len(held.get("spans") or ()):
                    best[trace_id] = trace
        merged = sorted(best.values(), key=lambda t: float(t.get("ts", 0.0)))
        return {
            "schema": SNAPSHOT_SCHEMA,
            "workers": workers,
            "stats": stats,
            "traces": merged,
        }


# ----------------------------------------------------------------------
# process-global recorder (None by default: tracing costs nothing)
# ----------------------------------------------------------------------
_recorder: Optional[FlightRecorder] = None


def get_recorder() -> Optional[FlightRecorder]:
    return _recorder


def set_recorder(recorder: Optional[FlightRecorder]) -> Optional[FlightRecorder]:
    """Install the process flight recorder; returns the previous one."""
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous
