"""Lightweight tracing: nested spans with wall and CPU time, JSONL out.

A :func:`span` context manager wraps a pipeline stage::

    with span("trainingdb.build", source=str(path)):
        ...

While a :class:`Tracer` is active (``with tracer.activate(): ...``)
every span that closes appends one event carrying its name, nesting
depth, parent span id, wall/CPU milliseconds, outcome (``ok`` or the
exception type) and any keyword attributes.  With no tracer active a
span costs one context-manager entry and two ``None`` checks — cheap
enough to leave on the hot paths permanently.

Events are recorded at span *exit*, so children precede their parents
in the JSONL file; ``id``/``parent``/``depth``/``t_start_ms`` are
enough to rebuild the tree.  The active-span stack is thread-local:
spans on worker threads nest correctly within their own thread.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

__all__ = ["Tracer", "span", "current_tracer"]

_state = threading.local()


def _stack() -> List[int]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


_active: Optional["Tracer"] = None


def current_tracer() -> Optional["Tracer"]:
    return _active


class Tracer:
    """Collects span events; activate around the work, then write JSONL."""

    def __init__(self):
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._origin = time.perf_counter()

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install as the process-wide active tracer for the block."""
        global _active
        previous = _active
        _active = self
        try:
            yield self
        finally:
            _active = previous

    # -- called by span() ------------------------------------------------
    def _open(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _close(self, event: Dict[str, object]) -> None:
        with self._lock:
            self.events.append(event)

    # -- output ----------------------------------------------------------
    def write_jsonl(self, path: Union[str, "os.PathLike"]) -> int:
        """Write one JSON object per event; returns the event count."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Trace one pipeline stage; records even when the body raises."""
    tracer = _active
    if tracer is None:
        yield
        return
    stack = _stack()
    span_id = tracer._open()
    parent = stack[-1] if stack else None
    stack.append(span_id)
    t0 = time.perf_counter()
    c0 = time.process_time()
    status = "ok"
    try:
        yield
    except BaseException as exc:
        status = type(exc).__name__
        raise
    finally:
        wall_ms = 1000.0 * (time.perf_counter() - t0)
        cpu_ms = 1000.0 * (time.process_time() - c0)
        stack.pop()
        event: Dict[str, object] = {
            "name": name,
            "id": span_id,
            "parent": parent,
            "depth": len(stack),
            "t_start_ms": 1000.0 * (t0 - tracer._origin),
            "wall_ms": wall_ms,
            "cpu_ms": cpu_ms,
            "status": status,
        }
        if attrs:
            event["attrs"] = attrs
        tracer._close(event)
