"""Machine-readable exporters over a metrics snapshot.

Two wire formats, both pure functions of a snapshot dict (so they work
on the live registry, a ``--metrics`` file read back from disk, or a
merged cross-process state):

* :func:`render_prometheus` — Prometheus text exposition (the format
  ``GET /metrics`` scrapers expect, version 0.0.4).  Counters export
  with the conventional ``_total`` suffix, histograms as ``summary``
  series (``{quantile="0.5"}``/``_sum``/``_count``).
* :func:`json_payload` / :func:`render_json` — a structured JSON
  document with labels split out of the series name, one entry per
  series, schema-tagged so downstream dashboards can version-check.

Series order follows the same deterministic (name, label tuple) sort as
``render_text``; stdlib-only like the rest of the substrate.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs.render import sorted_series

__all__ = [
    "render_prometheus",
    "render_openmetrics",
    "render_json",
    "json_payload",
    "JSON_SCHEMA",
    "OPENMETRICS_CONTENT_TYPE",
]

#: Schema tag stamped into every JSON payload.
JSON_SCHEMA = "repro.obs/2"

#: What ``GET /metrics`` negotiates to when the scraper accepts it.
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    return _NAME_SANITIZE.sub("_", prefix + name)


def _prom_labels(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        f'{_LABEL_SANITIZE.sub("_", k)}="{_escape(v)}"' for k, v in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_value(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(
    snapshot: Optional[Dict[str, Dict[str, object]]] = None,
    prefix: str = "repro_",
) -> str:
    """Prometheus text exposition of a snapshot (default: live registry).

    Metric and label names are sanitized to the Prometheus charset,
    every metric gets exactly one ``# TYPE`` line (series grouped under
    it), and label values are escaped per the exposition rules — the
    output parses under any standard scraper.
    """
    snap = snapshot if snapshot is not None else _metrics.snapshot()
    lines: List[str] = []

    # counters — grouped by base name so each TYPE line appears once
    groups: Dict[str, List[str]] = {}
    for series, value in sorted_series(snap.get("counters", {})):
        name, labels = _metrics.split_series(series)
        metric = _prom_name(name, prefix) + "_total"
        groups.setdefault(metric, []).append(
            f"{metric}{_prom_labels(labels)} {_prom_value(value)}"
        )
    for metric, rows in groups.items():
        lines.append(f"# TYPE {metric} counter")
        lines.extend(rows)

    groups = {}
    for series, value in sorted_series(snap.get("gauges", {})):
        name, labels = _metrics.split_series(series)
        metric = _prom_name(name, prefix)
        groups.setdefault(metric, []).append(
            f"{metric}{_prom_labels(labels)} {_prom_value(value)}"
        )
    for metric, rows in groups.items():
        lines.append(f"# TYPE {metric} gauge")
        lines.extend(rows)

    groups = {}
    for series, summary in sorted_series(snap.get("histograms", {})):
        name, labels = _metrics.split_series(series)
        metric = _prom_name(name, prefix)
        rows = groups.setdefault(metric, [])
        count = int(summary.get("count", 0))
        if count:
            for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                qlabel = 'quantile="%s"' % q
                rows.append(
                    f"{metric}{_prom_labels(labels, qlabel)} {_prom_value(summary[key])}"
                )
        rows.append(
            f"{metric}_sum{_prom_labels(labels)} {_prom_value(summary.get('sum', 0.0))}"
        )
        rows.append(f"{metric}_count{_prom_labels(labels)} {count}")
    for metric, rows in groups.items():
        lines.append(f"# TYPE {metric} summary")
        lines.extend(rows)

    return "\n".join(lines) + "\n" if lines else "\n"


def _openmetrics_histogram(
    metric: str,
    labels: Tuple[Tuple[str, str], ...],
    hstate: Dict[str, object],
    max_buckets: int,
) -> List[str]:
    """Cumulative ``le`` bucket rows for one histogram's dumped state.

    The registry's log buckets (index ``i`` covers
    ``[growth^i, growth^(i+1))``) are coalesced into at most
    ``max_buckets`` groups of consecutive occupied buckets; each group
    renders one cumulative bucket whose ``le`` is the group's upper
    bound.  Non-positive observations sit below every positive bucket,
    so they seed the running cumulative count.  A bucket whose source
    buckets carry an exemplar gets the newest one appended in
    OpenMetrics exemplar syntax (``# {trace_id="..."} value ts``) —
    the jump-link from a latency bucket to a flight-recorder trace.
    """
    growth = float(hstate.get("growth", 1.04))
    log_growth = math.log(growth)
    buckets = {int(k): int(v) for k, v in (hstate.get("buckets") or {}).items()}
    exemplars = {int(k): v for k, v in (hstate.get("exemplars") or {}).items()}
    count = int(hstate.get("count", 0))
    total = float(hstate.get("total", 0.0))
    rows: List[str] = []
    cumulative = int(hstate.get("nonpositive", 0))
    idxs = sorted(buckets)
    if idxs:
        stride = max(1, -(-len(idxs) // max_buckets))  # ceil division
        for start in range(0, len(idxs), stride):
            group = idxs[start:start + stride]
            cumulative += sum(buckets[i] for i in group)
            le = math.exp((group[-1] + 1) * log_growth)
            exemplar = None
            for i in group:
                candidate = exemplars.get(i)
                if candidate is not None and (
                    exemplar is None or float(candidate[2]) >= float(exemplar[2])
                ):
                    exemplar = candidate
            le_label = 'le="%s"' % _prom_value(le)
            line = f"{metric}_bucket{_prom_labels(labels, le_label)} {cumulative}"
            if exemplar is not None:
                line += ' # {trace_id="%s"} %s %.3f' % (
                    _escape(str(exemplar[1])),
                    _prom_value(float(exemplar[0])),
                    float(exemplar[2]),
                )
            rows.append(line)
    inf_label = 'le="+Inf"'
    rows.append(f"{metric}_bucket{_prom_labels(labels, inf_label)} {count}")
    rows.append(f"{metric}_sum{_prom_labels(labels)} {_prom_value(total)}")
    rows.append(f"{metric}_count{_prom_labels(labels)} {count}")
    return rows


def render_openmetrics(
    state: Optional[Dict[str, Dict[str, object]]] = None,
    prefix: str = "repro_",
    max_buckets: int = 32,
) -> str:
    """OpenMetrics 1.0 exposition of a registry *state* (with exemplars).

    Takes :meth:`MetricsRegistry.dump_state` form — not a snapshot —
    because only the dumped state carries histogram buckets and
    exemplars (a snapshot collapses them into quantile answers).
    Defaults to the live default registry's state.  Histograms export
    as real cumulative-``le`` histograms (vs the summary series of
    :func:`render_prometheus`), latency buckets carry sample trace ids
    as exemplars, and the body is terminated with the mandatory
    ``# EOF`` line.
    """
    st = state if state is not None else _metrics.get_registry().dump_state()
    lines: List[str] = []

    groups: Dict[str, List[str]] = {}
    for series, value in sorted_series(st.get("counters", {})):
        name, labels = _metrics.split_series(series)
        metric = _prom_name(name, prefix)
        groups.setdefault(metric, []).append(
            f"{metric}_total{_prom_labels(labels)} {_prom_value(value)}"
        )
    for metric, rows in groups.items():
        lines.append(f"# TYPE {metric} counter")
        lines.extend(rows)

    groups = {}
    for series, value in sorted_series(st.get("gauges", {})):
        name, labels = _metrics.split_series(series)
        metric = _prom_name(name, prefix)
        groups.setdefault(metric, []).append(
            f"{metric}{_prom_labels(labels)} {_prom_value(value)}"
        )
    for metric, rows in groups.items():
        lines.append(f"# TYPE {metric} gauge")
        lines.extend(rows)

    groups = {}
    for series, hstate in sorted_series(st.get("histograms", {})):
        name, labels = _metrics.split_series(series)
        metric = _prom_name(name, prefix)
        groups.setdefault(metric, []).extend(
            _openmetrics_histogram(metric, labels, hstate, max_buckets)
        )
    for metric, rows in groups.items():
        lines.append(f"# TYPE {metric} histogram")
        lines.extend(rows)

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _clean_float(value) -> Optional[float]:
    """NaN/inf → None so the payload is strict JSON."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def json_payload(
    snapshot: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Structured-JSON document for a snapshot (default: live registry).

    One entry per series with ``name``/``labels`` split apart (and the
    joined ``series`` key kept for correlation with text renderings);
    strictly valid JSON — non-finite floats become ``null``.
    """
    snap = snapshot if snapshot is not None else _metrics.snapshot()
    payload: Dict[str, object] = {"schema": JSON_SCHEMA}

    counters = []
    for series, value in sorted_series(snap.get("counters", {})):
        name, labels = _metrics.split_series(series)
        counters.append(
            {"name": name, "labels": dict(labels), "series": series, "value": int(value)}
        )
    gauges = []
    for series, value in sorted_series(snap.get("gauges", {})):
        name, labels = _metrics.split_series(series)
        gauges.append(
            {
                "name": name,
                "labels": dict(labels),
                "series": series,
                "value": _clean_float(value),
            }
        )
    histograms = []
    for series, summary in sorted_series(snap.get("histograms", {})):
        name, labels = _metrics.split_series(series)
        entry: Dict[str, object] = {
            "name": name,
            "labels": dict(labels),
            "series": series,
            "count": int(summary.get("count", 0)),
        }
        for key in ("sum", "min", "max", "mean", "p50", "p95", "p99"):
            if key in summary:
                entry[key] = _clean_float(summary[key])
        histograms.append(entry)

    payload["counters"] = counters
    payload["gauges"] = gauges
    payload["histograms"] = histograms
    return payload


def render_json(
    snapshot: Optional[Dict[str, Dict[str, object]]] = None,
    indent: Optional[int] = 2,
) -> str:
    """The :func:`json_payload` document serialized (strict JSON)."""
    return json.dumps(
        json_payload(snapshot), indent=indent, sort_keys=False, allow_nan=False
    ) + "\n"
