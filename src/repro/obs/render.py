"""Human-readable rendering of a metrics snapshot.

``render_text()`` is what the CLI prints next to ``--metrics`` output
and what ``benchmarks/make_report.py`` folds into RESULTS.md — one
aligned block per metric kind, histogram rows carrying the quantiles an
operator actually reads (see docs/observability.md for how).

Output is fully deterministic: series are re-sorted by (base name,
label tuple) regardless of the snapshot dict's insertion order (merged
or JSON-round-tripped snapshots arrive unsorted), and floats render
through one stable formatter — so two snapshots of the same state are
line-comparable with a plain ``diff``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs import metrics as _metrics

__all__ = ["render_text", "sorted_series"]


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.3g}"


def sorted_series(table: Dict[str, object]) -> List[Tuple[str, object]]:
    """Items of a snapshot section ordered by (name, label tuple).

    The one sort rule every renderer (text, Prometheus, JSON) shares,
    so the same registry state always serializes in the same order.
    """
    return sorted(table.items(), key=lambda kv: _metrics.split_series(kv[0]))


def render_text(snapshot: Optional[Dict[str, Dict[str, object]]] = None) -> str:
    """Format a snapshot (default: the global registry) as aligned text."""
    snap = snapshot if snapshot is not None else _metrics.snapshot()
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    histograms = snap.get("histograms", {})
    if not (counters or gauges or histograms):
        return "no metrics recorded"

    lines = []
    width = max(
        (len(k) for k in list(counters) + list(gauges) + list(histograms)),
        default=0,
    )
    if counters:
        lines.append("counters:")
        for name, value in sorted_series(counters):
            lines.append(f"  {name:<{width}s} {value}")
    if gauges:
        lines.append("gauges:")
        for name, value in sorted_series(gauges):
            lines.append(f"  {name:<{width}s} {_fmt(float(value))}")
    if histograms:
        lines.append("histograms:")
        for name, s in sorted_series(histograms):
            if not s.get("count"):
                lines.append(f"  {name:<{width}s} count=0")
                continue
            lines.append(
                f"  {name:<{width}s} count={s['count']} mean={_fmt(s['mean'])} "
                f"p50={_fmt(s['p50'])} p95={_fmt(s['p95'])} p99={_fmt(s['p99'])} "
                f"max={_fmt(s['max'])}"
            )
    return "\n".join(lines)
