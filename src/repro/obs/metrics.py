"""Counters, gauges and streaming histograms for the toolkit's hot paths.

Design constraints (this is the substrate every perf PR reports
through, so it must be boring and cheap):

* **Dependency-free** — stdlib only, importable from every layer
  (format parser, pool, algorithms) without cycles.
* **Reservoir-free quantiles** — :class:`Histogram` is log-bucketed
  (multiplicative bucket width ``growth``), so p50/p95/p99 come from a
  fixed-size dict with a bounded relative error of ``growth - 1``
  regardless of how many values streamed through.  No sampling, no
  sorting, no unbounded memory.
* **Labels** — metrics take keyword labels
  (``counter("locate.requests", algorithm="knn")``); each label
  combination is its own time series, rendered as
  ``name{algorithm=knn}``.
* **A process-global default registry** — instrumented library code
  emits into it unconditionally; tests grab :func:`snapshot` and call
  :func:`reset` around themselves.  :func:`set_enabled` (False) swaps
  every lookup for shared no-op metrics, which is how the overhead
  bench isolates instrumentation cost.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "set_registry",
    "set_enabled",
    "snapshot",
    "reset",
]


def _series_name(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


class Gauge:
    """A point-in-time value (worker counts, database sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Streaming log-bucketed histogram with bounded-error quantiles.

    Positive values land in bucket ``floor(log(v) / log(growth))``; a
    quantile answer is the geometric midpoint of its bucket, so the
    relative error is at most ``growth - 1`` (4 % by default).  Zero
    and negative values (legal for e.g. dB deltas) are counted in a
    single underflow bucket pinned to the exact minimum seen.
    """

    __slots__ = ("name", "growth", "_log_growth", "count", "total", "min", "max",
                 "_buckets", "_nonpositive")

    def __init__(self, name: str, growth: float = 1.04):
        if growth <= 1.0:
            raise ValueError(f"histogram growth must be > 1, got {growth}")
        self.name = name
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: Dict[int, int] = {}
        self._nonpositive = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._nonpositive += 1
            return
        idx = int(math.floor(math.log(value) / self._log_growth))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0 <= q <= 1) of everything observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        seen = self._nonpositive
        if seen >= target and self._nonpositive:
            return self.min  # inside the underflow bucket
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= target:
                # geometric midpoint of [growth^idx, growth^(idx+1))
                mid = math.exp((idx + 0.5) * self._log_growth)
                return min(max(mid, self.min), self.max)
        return self.max

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _NullMetric:
    """Shared sink used while the subsystem is disabled."""

    name = "<disabled>"
    value = 0

    def inc(self, n=1):  # noqa: D102 - deliberate no-ops
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL = _NullMetric()


class MetricsRegistry:
    """A namespace of named metrics; creation is thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- lookup-or-create ------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = _series_name(name, labels)
        m = self._counters.get(key)
        if m is None:
            with self._lock:
                m = self._counters.setdefault(key, Counter(key))
        return m

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _series_name(name, labels)
        m = self._gauges.get(key)
        if m is None:
            with self._lock:
                m = self._gauges.setdefault(key, Gauge(key))
        return m

    def histogram(self, name: str, growth: float = 1.04, **labels: str) -> Histogram:
        key = _series_name(name, labels)
        m = self._histograms.get(key)
        if m is None:
            with self._lock:
                m = self._histograms.setdefault(key, Histogram(key, growth=growth))
        return m

    # -- reading ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable view of every series (stable key order)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.summary() for k, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# process-global default registry
# ----------------------------------------------------------------------
_default = MetricsRegistry()
_enabled = True


def get_registry() -> MetricsRegistry:
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one (for tests)."""
    global _default
    previous, _default = _default, registry
    return previous


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable emission; returns the previous state."""
    global _enabled
    previous, _enabled = _enabled, bool(enabled)
    return previous


def counter(name: str, **labels: str):
    return _default.counter(name, **labels) if _enabled else _NULL


def gauge(name: str, **labels: str):
    return _default.gauge(name, **labels) if _enabled else _NULL


def histogram(name: str, **labels: str):
    return _default.histogram(name, **labels) if _enabled else _NULL


def snapshot() -> Dict[str, Dict[str, object]]:
    return _default.snapshot()


def reset() -> None:
    _default.reset()
